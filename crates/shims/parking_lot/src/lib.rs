//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the handful of external crates it uses as minimal
//! API-compatible shims (see `crates/shims/README.md`). This one maps the
//! `parking_lot` surface the workspace uses onto `std::sync` primitives:
//!
//! * guards come straight from `lock()`/`read()`/`write()` with no
//!   `Result` (poisoning is swallowed, matching parking_lot's semantics);
//! * `Condvar::wait`/`wait_for` take `&mut MutexGuard` like parking_lot,
//!   not guard-by-value like std.
//!
//! Only the subset the workspace actually calls is provided, on purpose:
//! if upstream parking_lot becomes available again, swapping the path
//! dependency back is a one-line change in the workspace manifest.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Mutual exclusion backed by [`std::sync::Mutex`], poison-transparent.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Holds an `Option` so [`Condvar::wait`] can
/// temporarily take the inner std guard out and put it back.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Reader-writer lock backed by [`std::sync::RwLock`], poison-transparent.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of [`Condvar::wait_for`]: whether the wait hit its timeout.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with parking_lot's `&mut guard` calling convention.
#[derive(Default, Debug)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.0.take().expect("guard present");
        let g = self.0.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.0.take().expect("guard present");
        let (g, res) = self.0.wait_timeout(g, timeout).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn condvar_wait_roundtrips_guard() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut flag = m.lock();
            while !*flag {
                cv.wait(&mut flag);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(1));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
        drop((r1, r2));
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
