//! Offline stand-in for the `criterion` crate.
//!
//! All workspace benches use `harness = false` with the classic
//! `criterion_group!`/`criterion_main!` entry points, so this shim
//! provides just enough of the API for them to compile and run: each
//! `Bencher::iter` closure is warmed up briefly, then timed over a small
//! fixed number of batches, and a single mean-per-iteration line is
//! printed. There is no statistical analysis, no HTML report, and no
//! saved baselines — the numbers are indicative, not publishable.
//! Throughput declarations are used to also print MB/s when present.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export-compatible hint; upstream criterion's `black_box` now
/// forwards to `std::hint::black_box` as well.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput for a benchmark, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifier for parameterized benchmarks: `BenchmarkId::new("am", size)`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to each benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    /// Accumulated (total duration, iteration count) for the timed batches.
    result: Option<(Duration, u64)>,
    sample_size: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~20ms have elapsed to settle caches/locks.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warm_iters += 1;
        }
        // Pick a batch size targeting ~10ms per batch, bounded to keep
        // total runtime sane for slow (multi-ms) payloads.
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
        let batch = ((10_000_000 / per_iter.max(1)) as u64).clamp(1, 1_000_000);
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t0.elapsed();
            iters += batch;
        }
        self.result = Some((total, iters));
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Upstream takes the number of samples; we cap it because each of
        // our samples is already a ~10ms batch.
        self.sample_size = (n as u64).clamp(1, 20);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { result: None, sample_size: self.sample_size };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { result: None, sample_size: self.sample_size };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let Some((total, iters)) = b.result else {
            println!("{}/{id}: no measurement (iter was never called)", self.name);
            return;
        };
        let ns = total.as_nanos() as f64 / iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                format!("  ({:.1} MiB/s)", bytes as f64 / ns * 1e9 / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", n as f64 / ns * 1e3)
            }
            None => String::new(),
        };
        println!("{}/{id}: {}{}", self.name, fmt_ns(ns), rate);
        let _ = &self.criterion; // group lifetime ties reports to the runner
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us/iter", ns / 1_000.0)
    } else {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    }
}

/// The top-level benchmark runner.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup { criterion: self, name, sample_size: 5, throughput: None }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("run", f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(8));
        let mut ran = false;
        group.bench_function("add", |b| {
            b.iter(|| black_box(1u64) + black_box(2u64));
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats_like_upstream() {
        assert_eq!(BenchmarkId::new("am", 256).to_string(), "am/256");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
