//! Offline stand-in for the `rand` crate.
//!
//! Implements the tiny slice of `rand` 0.8 the workspace calls —
//! `thread_rng()` plus `Rng::gen_range`/`gen` — over a per-thread
//! SplitMix64 generator seeded from the thread id and clock. SplitMix64
//! passes BigCrush-level statistical smoke tests, which is far more than
//! the histogram/index-gather example drivers need; this is NOT a
//! cryptographic generator and must never be used as one.

use std::cell::Cell;
use std::ops::Range;

/// Minimal mirror of `rand::Rng` for the methods the workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range` by rejection-free multiply-shift reduction
    /// (Lemire); bias is < 2^-32 for the range sizes used here.
    fn gen_range(&mut self, range: Range<usize>) -> usize {
        let span = range.end.checked_sub(range.start).expect("non-empty range") as u128;
        assert!(span > 0, "cannot sample an empty range");
        let x = self.next_u64() as u128;
        range.start + ((x * span) >> 64) as usize
    }

    fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        // Match rand 0.8's guarantees at the endpoints (p>=1.0 is always
        // true, p<=0.0 always false) and compare in integer space so low
        // bits aren't lost to the f64 division.
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_u64() < (p * u64::MAX as f64) as u64
    }
}

/// Minimal mirror of `rand::SeedableRng` for explicitly-seeded generators.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed. Equal seeds produce equal
    /// streams — the reproducibility contract fault injection relies on.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Owned, explicitly-seeded SplitMix64 generator, mirroring
/// `rand::rngs::SmallRng`: small state, fast, deterministic per seed, and
/// emphatically not cryptographic.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // The golden-gamma increment in `next_u64` keeps even a zero seed
        // out of any fixed point, so the seed maps to state unchanged —
        // distinct seeds MUST yield distinct streams.
        SmallRng { state: seed }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let mut z = self.state.wrapping_add(0x9e3779b97f4a7c15);
        self.state = z;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Per-thread RNG handle, mirroring `rand::rngs::ThreadRng`.
#[derive(Clone, Debug)]
pub struct ThreadRng;

thread_local! {
    static STATE: Cell<u64> = Cell::new(seed());
}

fn seed() -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9e3779b97f4a7c15)
        .hash(&mut h);
    h.finish() | 1
}

fn splitmix64(state: &Cell<u64>) -> u64 {
    let mut z = state.get().wrapping_add(0x9e3779b97f4a7c15);
    state.set(z);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl Rng for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        STATE.with(splitmix64)
    }
}

/// Handle to the calling thread's generator, like `rand::thread_rng()`.
pub fn thread_rng() -> ThreadRng {
    ThreadRng
}

pub mod rngs {
    pub use super::{SmallRng, ThreadRng};
}

pub mod prelude {
    pub use super::{thread_rng, Rng, SeedableRng, SmallRng, ThreadRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = thread_rng();
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_range_hits_every_bucket() {
        let mut rng = thread_rng();
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[rng.gen_range(0..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "8-bucket draw left a bucket empty");
    }

    #[test]
    fn sequence_is_not_constant() {
        let mut rng = thread_rng();
        let first = rng.next_u64();
        assert!((0..64).any(|_| rng.next_u64() != first));
    }

    #[test]
    fn small_rng_is_reproducible_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb, "equal seeds must produce equal streams");
        assert_ne!(sa, sc, "different seeds must diverge");
    }

    #[test]
    fn small_rng_gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 hit count {hits}");
        assert!(SmallRng::seed_from_u64(1).gen_bool(1.0));
        assert!(!SmallRng::seed_from_u64(1).gen_bool(0.0));
    }
}
