//! Offline stand-in for the `crossbeam-deque` crate.
//!
//! Provides the `Injector` / `Worker` / `Stealer` / `Steal` surface the
//! executor uses, implemented over `Arc<Mutex<VecDeque>>` rather than the
//! real lock-free Chase-Lev deques. Semantics match the upstream crate:
//! a LIFO worker pushes and pops at the back of its deque while stealers
//! take from the front, so the owner keeps cache-hot tasks and thieves
//! get the coldest ones. Performance is obviously not lock-free-grade,
//! but the scheduling behaviour (and therefore every test that asserts
//! on steal counts) is preserved.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Result of a steal attempt, mirroring `crossbeam_deque::Steal`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    Empty,
    Success(T),
    Retry,
}

impl<T> Steal<T> {
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

type Shared<T> = Arc<Mutex<VecDeque<T>>>;

/// Global FIFO injection queue shared by all workers.
pub struct Injector<T> {
    queue: Shared<T>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    pub fn new() -> Self {
        Injector { queue: Arc::new(Mutex::new(VecDeque::new())) }
    }

    pub fn push(&self, task: T) {
        self.queue.lock().unwrap().push_back(task);
    }

    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().unwrap().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Move roughly half the queue into `dest`'s local deque, returning one
    /// task directly (the upstream contention-amortizing refill path).
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        // Never hold the victim and destination locks at once: two workers
        // batch-stealing from each other would take them in opposite orders
        // (ABBA deadlock). Drain into a local buffer, drop the victim lock,
        // then refill dest.
        let mut batch = {
            let mut q = self.queue.lock().unwrap();
            let take = (q.len() / 2).max(1).min(q.len());
            q.drain(..take).collect::<VecDeque<T>>()
        };
        match batch.pop_front() {
            Some(t) => {
                if !batch.is_empty() {
                    dest.queue.lock().unwrap().extend(batch);
                }
                Steal::Success(t)
            }
            None => Steal::Empty,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap().is_empty()
    }

    pub fn len(&self) -> usize {
        self.queue.lock().unwrap().len()
    }
}

/// A worker's local deque. LIFO flavor: owner pushes/pops at the back.
pub struct Worker<T> {
    queue: Shared<T>,
}

impl<T> Worker<T> {
    pub fn new_lifo() -> Self {
        Worker { queue: Arc::new(Mutex::new(VecDeque::new())) }
    }

    pub fn new_fifo() -> Self {
        // Same storage; only pop order differs upstream. The workspace only
        // uses LIFO workers, so FIFO maps to the identical implementation.
        Self::new_lifo()
    }

    pub fn stealer(&self) -> Stealer<T> {
        Stealer { queue: Arc::clone(&self.queue) }
    }

    pub fn push(&self, task: T) {
        self.queue.lock().unwrap().push_back(task);
    }

    pub fn pop(&self) -> Option<T> {
        self.queue.lock().unwrap().pop_back()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap().is_empty()
    }

    pub fn len(&self) -> usize {
        self.queue.lock().unwrap().len()
    }
}

/// Handle for stealing from another worker's deque (front end).
pub struct Stealer<T> {
    queue: Shared<T>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer { queue: Arc::clone(&self.queue) }
    }
}

impl<T> Stealer<T> {
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().unwrap().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        // Same two-phase protocol as `Injector::steal_batch_and_pop`: drain
        // under the victim lock only, then push under the dest lock only,
        // so opposing batch-steals can never ABBA-deadlock.
        let mut batch = {
            let mut q = self.queue.lock().unwrap();
            let take = (q.len() / 2).max(1).min(q.len());
            q.drain(..take).collect::<VecDeque<T>>()
        };
        match batch.pop_front() {
            Some(t) => {
                if !batch.is_empty() {
                    dest.queue.lock().unwrap().extend(batch);
                }
                Steal::Success(t)
            }
            None => Steal::Empty,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap().is_empty()
    }

    pub fn len(&self) -> usize {
        self.queue.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_lifo_stealer_takes_oldest() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        // Owner pops the newest...
        assert_eq!(w.pop(), Some(3));
        // ...while a thief takes the oldest.
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        assert_eq!(inj.steal(), Steal::Success("a"));
        assert_eq!(inj.steal(), Steal::Success("b"));
        assert!(inj.steal().is_empty());
    }

    #[test]
    fn opposing_batch_steals_do_not_deadlock() {
        // Regression test: two workers batch-stealing from each other used
        // to lock (victim, dest) in opposite orders — an ABBA deadlock.
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let a = Arc::new(Worker::new_lifo());
        let b = Arc::new(Worker::new_lifo());
        let steal_a = a.stealer();
        let steal_b = b.stealer();
        for i in 0..1024 {
            a.push(i);
            b.push(i);
        }
        let done = Arc::new(AtomicBool::new(false));
        let t1 = {
            let (a, done) = (Arc::clone(&a), Arc::clone(&done));
            std::thread::spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let _ = steal_b.steal_batch_and_pop(&a);
                    a.push(0);
                }
            })
        };
        let t2 = {
            let (b, done) = (Arc::clone(&b), Arc::clone(&done));
            std::thread::spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let _ = steal_a.steal_batch_and_pop(&b);
                    b.push(0);
                }
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(200));
        done.store(true, Ordering::Relaxed);
        t1.join().unwrap();
        t2.join().unwrap();
    }

    #[test]
    fn batch_steal_moves_half_and_pops_one() {
        let inj = Injector::new();
        for i in 0..8 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        // Half of 8 = 4 moved in total: one returned, three landed locally.
        assert_eq!(w.len(), 3);
        assert_eq!(inj.len(), 4);
    }
}
