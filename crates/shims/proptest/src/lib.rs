//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of proptest the workspace's property tests use:
//!
//! * the `proptest!` macro with `#![proptest_config(..)]`, `name in strategy`
//!   and `name: Type` (Arbitrary) parameters, freely mixed;
//! * `Strategy` with `prop_map`, tuple/range/`&str` strategies, `prop_oneof!`,
//!   `any::<T>()`, `prop::collection::vec`, and `num::f64::{NORMAL, ZERO}`;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the inputs baked into the
//!   assertion message; it is not minimized.
//! * **Deterministic generation.** Every test fn runs a fixed-seed SplitMix64
//!   sequence, so failures reproduce exactly across runs and machines.
//! * **`&str` strategies ignore the regex** and generate arbitrary short
//!   UTF-8 strings. The workspace only ever uses the pattern `".*"`, for
//!   which this is exactly the right distribution.

pub mod test_runner {
    /// Execution knobs; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Matches upstream's default case count.
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 used for all value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed | 1 }
        }

        /// Fixed seed so test failures reproduce bit-exactly.
        pub fn deterministic() -> Self {
            Self::new(0x1a3e11a6_5eed_0001)
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut z = self.state.wrapping_add(0x9e3779b97f4a7c15);
            self.state = z;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)` via 128-bit multiply-shift.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generator of values of type `Value`. Unlike upstream there is no
    /// value tree: `new_value` draws a concrete value directly.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Derived strategy applying `f` to each generated value.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Object-safe view of [`Strategy`] so unions can mix concrete types.
    pub trait DynStrategy<V> {
        fn dyn_value(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// Type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            self.0.dyn_value(rng)
        }
    }

    /// Uniform choice between alternatives (the `prop_oneof!` backend).
    pub struct Union<V> {
        alternatives: Vec<Box<dyn DynStrategy<V>>>,
    }

    impl<V> Union<V> {
        pub fn new(alternatives: Vec<Box<dyn DynStrategy<V>>>) -> Self {
            assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
            Union { alternatives }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.alternatives.len() as u64) as usize;
            self.alternatives[i].dyn_value(rng)
        }
    }

    /// `Just(v)` always yields clones of `v`.
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;

        fn new_value(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u64;
                    assert!(span > 0, "empty strategy range");
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                    (*self.start() as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Upstream interprets `&str` as a regex; the shim ignores the pattern
    /// and produces arbitrary short UTF-8 strings (multibyte included),
    /// which matches the `".*"` patterns the workspace uses.
    impl Strategy for &str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            crate::arbitrary::arbitrary_string(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical generation strategy (`name: Type` params).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy wrapper returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arb_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Bias toward boundary values, like upstream's binary
                    // search shrinking tends to surface.
                    match rng.next_u64() & 0xf {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 => 1,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite doubles only; NaN/inf generation is opt-in upstream too.
            loop {
                let v = f64::from_bits(rng.next_u64());
                if v.is_finite() {
                    return v;
                }
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            arbitrary_char(rng)
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> Self {
            arbitrary_string(rng)
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(T::arbitrary(rng))
            }
        }
    }

    impl<T: Arbitrary> Arbitrary for Vec<T> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let len = rng.below(33) as usize;
            (0..len).map(|_| T::arbitrary(rng)).collect()
        }
    }

    macro_rules! arb_tuple {
        ($(($($t:ident),+))*) => {$(
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($t::arbitrary(rng),)+)
                }
            }
        )*};
    }

    arb_tuple! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    pub(crate) fn arbitrary_char(rng: &mut TestRng) -> char {
        // Mostly printable ASCII, with multibyte code points mixed in to
        // stress UTF-8 length handling in the codec.
        match rng.next_u64() & 7 {
            0 => char::from_u32(0x00A1 + rng.below(0x500) as u32).unwrap_or('é'),
            1 => ['é', '中', '🦀', '\u{0}', '\n', '"', '\\'][rng.below(7) as usize],
            _ => (0x20u8 + rng.below(0x5f) as u8) as char,
        }
    }

    pub(crate) fn arbitrary_string(rng: &mut TestRng) -> String {
        let len = rng.below(33) as usize;
        (0..len).map(|_| arbitrary_char(rng)).collect()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s of `elem` values with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

pub mod num {
    /// Float class strategies, combinable with `|` like upstream's.
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Bitmask of allowed f64 classes; `|` unions the classes.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct F64Class(u32);

        pub const NORMAL: F64Class = F64Class(1);
        pub const ZERO: F64Class = F64Class(2);
        pub const SUBNORMAL: F64Class = F64Class(4);
        pub const INFINITE: F64Class = F64Class(8);

        impl core::ops::BitOr for F64Class {
            type Output = F64Class;
            fn bitor(self, rhs: F64Class) -> F64Class {
                F64Class(self.0 | rhs.0)
            }
        }

        impl Strategy for F64Class {
            type Value = f64;

            fn new_value(&self, rng: &mut TestRng) -> f64 {
                let classes: Vec<u32> = (0..4).filter(|b| self.0 & (1 << b) != 0).collect();
                assert!(!classes.is_empty(), "empty f64 class mask");
                let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
                match classes[rng.below(classes.len() as u64) as usize] {
                    0 => loop {
                        let v = f64::from_bits(rng.next_u64());
                        if v.is_normal() {
                            return v;
                        }
                    },
                    1 => sign * 0.0,
                    2 => sign * f64::from_bits(rng.below((1u64 << 52) - 1) + 1),
                    _ => sign * f64::INFINITY,
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Shim `prop_assert!`: panics instead of returning `Err` (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
/// Weighted alternatives (`w => strat`) are not supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::strategy::DynStrategy<_>>),+
        ])
    };
}

/// The `proptest!` test-harness macro. Parses an optional
/// `#![proptest_config(..)]` header then any number of test fns whose
/// parameters are either `name in strategy` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr)) => {};
    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__config.cases {
                let _ = __case;
                $crate::proptest!(@bind __rng, $($params)*);
                $body
            }
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@bind $rng:ident $(,)?) => {};
    (@bind $rng:ident, $pname:ident in $strat:expr, $($rest:tt)*) => {
        let $pname = $crate::strategy::Strategy::new_value(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $pname:ident in $strat:expr) => {
        let $pname = $crate::strategy::Strategy::new_value(&($strat), &mut $rng);
    };
    (@bind $rng:ident, $pname:ident : $pty:ty, $($rest:tt)*) => {
        let $pname: $pty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $pname:ident : $pty:ty) => {
        let $pname: $pty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..10_000 {
            let v = Strategy::new_value(&(10usize..20), &mut rng);
            assert!((10..20).contains(&v));
            let w = Strategy::new_value(&(-5i16..5), &mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn determinism_same_seed_same_sequence() {
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn oneof_covers_all_alternatives() {
        let strat = prop_oneof![
            (0usize..1).prop_map(|_| 'a'),
            (0usize..1).prop_map(|_| 'b'),
            (0usize..1).prop_map(|_| 'c'),
        ];
        let mut rng = TestRng::deterministic();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.new_value(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn vec_strategy_honors_size_range() {
        let strat = prop::collection::vec(any::<u8>(), 2..5);
        let mut rng = TestRng::deterministic();
        for _ in 0..500 {
            let v = strat.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn f64_classes_generate_members() {
        let strat = crate::num::f64::NORMAL | crate::num::f64::ZERO;
        let mut rng = TestRng::deterministic();
        let (mut normals, mut zeros) = (0, 0);
        for _ in 0..500 {
            let v = strat.new_value(&mut rng);
            if v == 0.0 {
                zeros += 1;
            } else {
                assert!(v.is_normal());
                normals += 1;
            }
        }
        assert!(normals > 0 && zeros > 0);
    }

    // The macro itself, exercised end-to-end with mixed parameter styles.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_mixed_params(a in 0u64..100, b: u64, s in ".*", o: Option<i16>) {
            prop_assert!(a < 100);
            let _ = (b, o);
            prop_assert_eq!(s.len(), s.chars().map(|c| c.len_utf8()).sum::<usize>());
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(v: Vec<(u32, String, Option<i16>)>) {
            prop_assert!(v.len() <= 32);
        }
    }
}
