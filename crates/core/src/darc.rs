//! Distributed Atomic Reference Counting (paper Sec. III-E).
//!
//! A [`Darc<T>`] is "a distributed extension to Rust language-provided
//! Arcs": each member PE holds its own *independent instance* of the inner
//! object, and the group of instances "remains valid and accessible as long
//! as any PE maintains a reference". Darcs travel inside AMs; a received
//! Darc resolves to the *destination PE's* instance.
//!
//! ## Substitution note (DESIGN.md §1)
//!
//! The real runtime tracks lifetime with status bits in RDMA memory plus a
//! deallocation AM. With all simulated PEs in one process, the same
//! observable semantics are obtained with per-PE reference counters in a
//! shared registry plus *serialization pins*: encoding a Darc into an AM
//! parks a strong reference in the registry until the destination decodes
//! it, so an object can never die while a reference is in flight — exactly
//! the guarantee the paper's transfer-count tracking provides. Per-PE
//! counts are observable through [`Darc::local_count`], and destruction is
//! collective: the instances drop together only after every PE's count
//! reaches zero.

use crate::runtime::current_rt;
use crate::team::LamellarTeam;
use crate::world::WorldShared;
use lamellar_codec::{Codec, CodecError, Reader};
use lamellar_metrics::AmMetrics;
use std::any::Any;
use std::ops::Deref;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

/// Shared state for one Darc group: every PE's instance plus the per-PE
/// reference counts.
pub(crate) struct DarcState<T: Send + Sync + 'static> {
    id: u64,
    shared: Weak<WorldShared>,
    /// World PE ids of the owning team, ascending.
    team_pes: Vec<usize>,
    /// One instance per team rank — "each PE will maintain its own
    /// independent instance of the inner object".
    instances: Arc<Vec<T>>,
    /// Per-team-rank handle counts.
    counts: Vec<AtomicUsize>,
}

impl<T: Send + Sync + 'static> Drop for DarcState<T> {
    fn drop(&mut self) {
        // The last strong reference anywhere (handle or pin) is gone:
        // deregister so the id cannot resolve anymore.
        if let Some(shared) = self.shared.upgrade() {
            shared.unregister_trackable(self.id);
        }
    }
}

/// A distributed atomically reference counted pointer.
///
/// Dereferences to the local PE's instance. "Inner mutability of the object
/// pointed to by the Darc is disallowed by default" — `Deref` hands out
/// `&T`, so mutation requires `Mutex`/`RwLock`/atomics inside `T`, exactly
/// as with `Arc`.
pub struct Darc<T: Send + Sync + 'static> {
    state: Arc<DarcState<T>>,
    /// Team rank of the PE holding this handle.
    rank: usize,
    /// This PE's AM-layer metrics registry: Darc lifecycle events (group
    /// creation, local count reaching zero) are recorded here.
    metrics: Arc<AmMetrics>,
}

impl<T: Send + Sync + 'static> Darc<T> {
    /// Collectively construct a Darc over `team`; every member passes its
    /// own instance (the paper's `Darc::new<T>(team, item: T)`).
    pub fn new(team: &LamellarTeam, item: T) -> Self {
        let rt = team.rt();
        let shared = Arc::clone(rt.shared());
        // Gather every member's instance, ordered by team rank.
        let instances = team.deposit_all(item);
        // Rank 0 assembles the state and registers it; everyone receives
        // the same Arc.
        let team_pes = team.pes().to_vec();
        let num = team_pes.len();
        let state = team.exchange_object(0, move || {
            let id = shared.new_trackable_id();
            DarcState {
                id,
                shared: Arc::downgrade(&shared),
                team_pes,
                instances,
                counts: (0..num).map(|_| AtomicUsize::new(1)).collect(),
            }
        });
        if team.my_rank() == 0 {
            let shared = rt.shared();
            shared.register_trackable(
                state.id,
                Arc::downgrade(&state) as Weak<dyn Any + Send + Sync>,
            );
        }
        // Registration must be visible before any PE can serialize the darc.
        team.barrier();
        let metrics = Arc::clone(rt.am_metrics());
        metrics.record_darc_created();
        Darc { state, rank: team.my_rank(), metrics }
    }

    /// The id under which this Darc is registered (diagnostics).
    pub fn id(&self) -> u64 {
        self.state.id
    }

    /// Reference count held by team-rank `rank`'s PE (diagnostics; the
    /// lifetime guarantee the paper describes: the object lives while any
    /// of these is nonzero or a reference is in flight).
    pub fn local_count(&self, rank: usize) -> usize {
        self.state.counts[rank].load(Ordering::Acquire)
    }

    /// World PE ids of the owning team.
    pub fn team_pes(&self) -> &[usize] {
        &self.state.team_pes
    }

    /// The instance belonging to team rank `rank` — remote-instance access
    /// is what AMs use when they carry a Darc to another PE.
    pub fn instance_at(&self, rank: usize) -> &T {
        &self.state.instances[rank]
    }
}

impl<T: Send + Sync + 'static> Deref for Darc<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.state.instances[self.rank]
    }
}

impl<T: Send + Sync + 'static> Clone for Darc<T> {
    fn clone(&self) -> Self {
        // "Reference counting occurs as normal during Clone."
        self.state.counts[self.rank].fetch_add(1, Ordering::AcqRel);
        Darc { state: Arc::clone(&self.state), rank: self.rank, metrics: Arc::clone(&self.metrics) }
    }
}

impl<T: Send + Sync + 'static> Drop for Darc<T> {
    fn drop(&mut self) {
        if self.state.counts[self.rank].fetch_sub(1, Ordering::AcqRel) == 1 {
            // This PE's local count reached zero — a lifecycle event worth
            // observing (the group itself may live on via other PEs or
            // in-flight pins).
            self.metrics.record_darc_dropped();
        }
        // When this was the globally-last handle and no serialized
        // reference is in flight, the enclosing Arc chain unwinds and
        // DarcState::drop deregisters the id. No explicit protocol needed:
        // the state Arc's strong count *is* the global agreement.
    }
}

impl<T: Send + Sync + 'static> Codec for Darc<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        // Park a strong reference for the in-flight period ("serialization
        // and deserialization is used to track the transfer of Darcs to
        // remote PEs in AMs").
        if let Some(shared) = self.state.shared.upgrade() {
            shared.pin_trackable(
                self.state.id,
                Arc::clone(&self.state) as Arc<dyn Any + Send + Sync>,
            );
        }
        self.state.id.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        // Must NOT fall back to the encode-and-measure default: `encode`
        // pins a strong reference as a side effect, and sizing a message
        // must not pin twice. The wire form is the fixed-width id alone.
        8
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let id = u64::decode(r)?;
        let rt = current_rt().expect("Darc decoded outside a runtime context");
        let shared = rt.shared();
        let state = shared
            .lookup_trackable(id)
            .ok_or(CodecError::UnknownTypeHash(id))?
            .downcast::<DarcState<T>>()
            .map_err(|_| CodecError::UnknownTypeHash(id))?;
        let rank = state
            .team_pes
            .binary_search(&rt.pe())
            .unwrap_or_else(|_| panic!("Darc received on PE {} outside its team", rt.pe()));
        state.counts[rank].fetch_add(1, Ordering::AcqRel);
        // Release the in-flight pin now that a live handle exists here.
        shared.unpin_trackable(id);
        let metrics = Arc::clone(rt.am_metrics());
        Ok(Darc { state, rank, metrics })
    }
}

impl<T: Send + Sync + 'static + std::fmt::Debug> std::fmt::Debug for Darc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Darc")
            .field("id", &self.state.id)
            .field("rank", &self.rank)
            .field("local", &**self)
            .finish()
    }
}
