//! The Active Message layer (paper Sec. III-C).
//!
//! An AM "contains both data ... and metadata that indicates how to process
//! this data when it arrives at its destination". In Lamellar an AM is a
//! struct implementing [`LamellarAm`]: its fields are the data (serialized
//! by [`Codec`]), and `exec` is the computation, run asynchronously on the
//! destination PE's thread pool.
//!
//! The paper exposes AMs through the `#[AmData]` and `#[am]` procedural
//! macros; this reproduction's [`am!`](crate::am!) declarative macro plays the same
//! role (see [`lamellar_codec::impl_codec!`] for why no proc-macros). Like
//! the paper's macro, it "assigns each AM a unique identifier which is
//! registered in a runtime lookup table, enabling AMs to properly
//! deserialize and execute on remote PEs" — the identifier is the FNV-1a
//! hash of the type name, and registration happens transparently on first
//! launch (all simulated PEs share the process, hence the registry).

use crate::lamellae::CommError;
pub use crate::runtime::AmContext;
use lamellar_codec::{typeid::type_hash_of, Codec, CodecError};
use lamellar_executor::OneshotReceiver;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::OnceLock;
use std::task::{Context, Poll};

/// A user-defined Active Message.
///
/// Trait bounds mirror the paper's: "(de)serialization, safe referencing
/// from multiple threads (Sync), and safety to send from one thread to
/// another (Send)".
pub trait LamellarAm: Codec + Send + Sync + 'static {
    /// Data returned to the launching PE ("Lamellar supports returning both
    /// 'normal' data ... and AMs"; returning an AM is expressed by making
    /// `Output` an AM type and launching it from the caller).
    type Output: Codec + Send + Sync + 'static;

    /// The computation performed on the destination PE. Async: AMs are
    /// asynchronous tasks on the destination's thread pool.
    fn exec(self, ctx: AmContext) -> impl Future<Output = Self::Output> + Send;
}

/// Type-erased executor stored in the registry: decode payload, run, encode
/// output.
pub type ErasedExec =
    fn(
        &[u8],
        AmContext,
    ) -> Result<Pin<Box<dyn Future<Output = Vec<u8>> + Send + 'static>>, CodecError>;

/// One registry entry.
#[derive(Clone, Copy)]
pub struct AmVTable {
    /// Fully-qualified type name (collision diagnostics).
    pub name: &'static str,
    /// The erased decode-execute-encode function.
    pub exec: ErasedExec,
}

fn registry() -> &'static RwLock<HashMap<u64, AmVTable>> {
    static REGISTRY: OnceLock<RwLock<HashMap<u64, AmVTable>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(HashMap::new()))
}

fn exec_erased<T: LamellarAm>(
    payload: &[u8],
    ctx: AmContext,
) -> Result<Pin<Box<dyn Future<Output = Vec<u8>> + Send + 'static>>, CodecError> {
    let am = T::from_bytes(payload)?;
    Ok(Box::pin(async move { am.exec(ctx).await.to_bytes() }))
}

/// The stable identifier for an AM type (what the paper's `#[am]` macro
/// assigns at compile time).
pub fn am_id<T: LamellarAm>() -> u64 {
    type_hash_of::<T>()
}

/// Register `T` in the runtime lookup table. Idempotent; panics on a hash
/// collision between distinct types (never observed for FNV-1a over
/// fully-qualified names, but checked regardless).
pub fn register_am<T: LamellarAm>() -> u64 {
    let id = am_id::<T>();
    let name = std::any::type_name::<T>();
    {
        let reg = registry().read();
        if let Some(existing) = reg.get(&id) {
            assert_eq!(existing.name, name, "AM type-id collision: {} vs {name}", existing.name);
            return id;
        }
    }
    registry().write().entry(id).or_insert(AmVTable { name, exec: exec_erased::<T> });
    id
}

/// Look up a registered AM by id.
pub fn lookup_am(id: u64) -> Option<AmVTable> {
    registry().read().get(&id).copied()
}

/// Why an AM request failed to produce its output.
#[derive(Debug, Clone, PartialEq)]
pub enum AmError {
    /// The AM's `exec` panicked on its destination PE; the payload is the
    /// remote panic message.
    RemotePanic(String),
    /// The runtime could not deliver the request — or gave up on the
    /// destination after the reliable layer exhausted its retries. Note the
    /// inherent ambiguity of [`CommError::PeerUnreachable`]: the request
    /// may or may not have executed remotely before the pair died; only
    /// the reply is known lost.
    Comm(CommError),
}

impl std::fmt::Display for AmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmError::RemotePanic(msg) => write!(f, "AM panicked on its destination PE: {msg}"),
            AmError::Comm(e) => write!(f, "AM delivery failed: {e}"),
        }
    }
}

impl std::error::Error for AmError {}

/// A typed handle to one in-flight AM request.
///
/// Awaiting it yields the AM's `Output` once the destination PE has executed
/// the AM and the reply has arrived (reply payloads are decoded by the
/// runtime in a context where Darcs can resolve). If the AM panicked on its
/// destination — or the runtime declared the destination unreachable —
/// awaiting panics *here* with the failure message; the caller is the right
/// place for the error to surface (a lost reply would otherwise hang
/// `block_on`). Callers that want to handle failure instead of crashing
/// convert with [`AmHandle::fallible`]. Dropping the handle detaches: the
/// AM still runs, and `wait_all()` still accounts for it.
pub struct AmHandle<T> {
    pub(crate) rx: OneshotReceiver<Result<T, AmError>>,
}

impl<T> AmHandle<T> {
    /// Convert into a handle that resolves to `Result` instead of
    /// panicking: `Err(AmError::Comm(_))` when the destination became
    /// unreachable (fault-plane worlds), `Err(AmError::RemotePanic(_))`
    /// when the AM crashed remotely.
    pub fn fallible(self) -> FallibleAmHandle<T> {
        FallibleAmHandle { rx: self.rx }
    }
}

impl<T> Future for AmHandle<T> {
    type Output = T;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match Pin::new(&mut self.rx).poll(cx) {
            Poll::Ready(Some(Ok(v))) => Poll::Ready(v),
            Poll::Ready(Some(Err(e))) => panic!("{e}"),
            Poll::Ready(None) => panic!("AM completed without a reply"),
            Poll::Pending => Poll::Pending,
        }
    }
}

impl<T> std::fmt::Debug for AmHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AmHandle")
    }
}

/// The `Result`-returning counterpart of [`AmHandle`], for callers that
/// treat delivery failure as data rather than a crash (see
/// [`AmHandle::fallible`]). Every future resolves, even on a severed
/// PE pair — never hangs, never panics on comm failure.
pub struct FallibleAmHandle<T> {
    rx: OneshotReceiver<Result<T, AmError>>,
}

impl<T> Future for FallibleAmHandle<T> {
    type Output = Result<T, AmError>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match Pin::new(&mut self.rx).poll(cx) {
            Poll::Ready(Some(out)) => Poll::Ready(out),
            // The runtime always sends Ok or Err before dropping the
            // sender; a dropped channel is a runtime bug, not a comm fault.
            Poll::Ready(None) => panic!("AM completed without a reply"),
            Poll::Pending => Poll::Pending,
        }
    }
}

impl<T> std::fmt::Debug for FallibleAmHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FallibleAmHandle")
    }
}

/// Handle to an `exec_am_all` broadcast: resolves to one output per PE,
/// indexed by PE id.
pub struct MultiAmHandle<T> {
    pub(crate) handles: Vec<Option<AmHandle<T>>>,
    pub(crate) results: Vec<Option<T>>,
}

impl<T> Unpin for MultiAmHandle<T> {}

impl<T> Future for MultiAmHandle<T> {
    type Output = Vec<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut all_done = true;
        for (i, slot) in this.handles.iter_mut().enumerate() {
            if let Some(handle) = slot {
                match Pin::new(handle).poll(cx) {
                    Poll::Ready(v) => {
                        this.results[i] = Some(v);
                        *slot = None;
                    }
                    Poll::Pending => all_done = false,
                }
            }
        }
        if all_done {
            Poll::Ready(this.results.iter_mut().map(|r| r.take().expect("result")).collect())
        } else {
            Poll::Pending
        }
    }
}

impl<T> std::fmt::Debug for MultiAmHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MultiAmHandle({} PEs)", self.handles.len())
    }
}

/// Define an Active Message: struct, serialization, and `exec` body in one
/// declaration — the `macro_rules!` equivalent of the paper's
/// `#[AmData]` + `#[am]` procedural macros.
///
/// ```
/// use lamellar_core::active_messaging::prelude::*;
///
/// lamellar_core::am! {
///     /// Adds `amount` to a remote accumulator (illustrative).
///     pub struct AddAm { pub amount: usize }
///     exec(am, ctx) -> usize {
///         // runs on the destination PE
///         am.amount * (ctx.current_pe() + 1)
///     }
/// }
///
/// let out = lamellar_core::world::launch(2, |world| {
///     let h = world.exec_am_pe(1, AddAm { amount: 10 });
///     world.block_on(h)
/// });
/// assert_eq!(out, vec![20, 20]);
/// ```
#[macro_export]
macro_rules! am {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $( $fvis:vis $fname:ident : $fty:ty ),* $(,)?
        }
        exec($am:ident, $ctx:ident) -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        #[derive(Clone, Debug)]
        $vis struct $name {
            $( $fvis $fname : $fty, )*
        }

        $crate::impl_codec!($name { $($fname),* });

        impl $crate::am::LamellarAm for $name {
            type Output = $out;
            fn exec(
                self,
                ctx: $crate::runtime::AmContext,
            ) -> impl ::std::future::Future<Output = $out> + Send {
                let $am = self;
                let $ctx = ctx;
                async move { $body }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct PingAm {
        x: u64,
    }
    crate::impl_codec!(PingAm { x });

    impl LamellarAm for PingAm {
        type Output = u64;
        async fn exec(self, _ctx: AmContext) -> u64 {
            self.x + 1
        }
    }

    #[test]
    fn registration_is_idempotent() {
        let a = register_am::<PingAm>();
        let b = register_am::<PingAm>();
        assert_eq!(a, b);
        assert!(lookup_am(a).is_some());
        assert!(lookup_am(a).unwrap().name.contains("PingAm"));
    }

    #[test]
    fn unknown_id_lookup_fails() {
        assert!(lookup_am(0xdead_beef_0bad_f00d).is_none());
    }
}
