//! The Active Message layer (paper Sec. III-C).
//!
//! An AM "contains both data ... and metadata that indicates how to process
//! this data when it arrives at its destination". In Lamellar an AM is a
//! struct implementing [`LamellarAm`]: its fields are the data (serialized
//! by [`Codec`]), and `exec` is the computation, run asynchronously on the
//! destination PE's thread pool.
//!
//! The paper exposes AMs through the `#[AmData]` and `#[am]` procedural
//! macros; this reproduction's [`am!`](crate::am!) declarative macro plays the same
//! role (see [`lamellar_codec::impl_codec!`] for why no proc-macros). Like
//! the paper's macro, it "assigns each AM a unique identifier which is
//! registered in a runtime lookup table, enabling AMs to properly
//! deserialize and execute on remote PEs" — the identifier is the FNV-1a
//! hash of the type name, and registration happens transparently on first
//! launch (all simulated PEs share the process, hence the registry).

use crate::lamellae::CommError;
pub use crate::runtime::AmContext;
use crate::runtime::RuntimeInner;
use lamellar_codec::{typeid::type_hash_of, Codec, CodecError};
use lamellar_executor::{ExpBackoff, OneshotReceiver};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::{OnceLock, Weak};
use std::task::{Context, Poll};
use std::time::Duration;

/// A user-defined Active Message.
///
/// Trait bounds mirror the paper's: "(de)serialization, safe referencing
/// from multiple threads (Sync), and safety to send from one thread to
/// another (Send)".
pub trait LamellarAm: Codec + Send + Sync + 'static {
    /// Data returned to the launching PE ("Lamellar supports returning both
    /// 'normal' data ... and AMs"; returning an AM is expressed by making
    /// `Output` an AM type and launching it from the caller).
    type Output: Codec + Send + Sync + 'static;

    /// The computation performed on the destination PE. Async: AMs are
    /// asynchronous tasks on the destination's thread pool.
    fn exec(self, ctx: AmContext) -> impl Future<Output = Self::Output> + Send;
}

/// Adapter that discards an AM's output, making any AM eligible for the
/// fire-and-forget unit path (DESIGN.md §4d): `UnitAm(am)` has
/// `Output = ()`, so `exec_unit_am_pe` can ship it with reply elision. The
/// wire payload is byte-identical to the inner AM's (the adapter adds
/// nothing), but the type registers under its own AM id so the serving PE
/// knows not to encode a result. The array batch layer uses this to route
/// non-fetching batches through counted completions.
pub struct UnitAm<A>(pub A);

impl<A: LamellarAm> Codec for UnitAm<A> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf)
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
    fn decode(r: &mut lamellar_codec::Reader<'_>) -> Result<Self, CodecError> {
        Ok(UnitAm(A::decode(r)?))
    }
}

impl<A: LamellarAm> LamellarAm for UnitAm<A> {
    type Output = ();
    async fn exec(self, ctx: AmContext) {
        let _ = self.0.exec(ctx).await;
    }
}

/// Type-erased executor stored in the registry: decode payload, run, encode
/// output.
pub type ErasedExec =
    fn(
        &[u8],
        AmContext,
    ) -> Result<Pin<Box<dyn Future<Output = Vec<u8>> + Send + 'static>>, CodecError>;

/// One registry entry.
#[derive(Clone, Copy)]
pub struct AmVTable {
    /// Fully-qualified type name (collision diagnostics).
    pub name: &'static str,
    /// The erased decode-execute-encode function.
    pub exec: ErasedExec,
}

fn registry() -> &'static RwLock<HashMap<u64, AmVTable>> {
    static REGISTRY: OnceLock<RwLock<HashMap<u64, AmVTable>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(HashMap::new()))
}

fn exec_erased<T: LamellarAm>(
    payload: &[u8],
    ctx: AmContext,
) -> Result<Pin<Box<dyn Future<Output = Vec<u8>> + Send + 'static>>, CodecError> {
    let am = T::from_bytes(payload)?;
    Ok(Box::pin(async move { am.exec(ctx).await.to_bytes() }))
}

/// The stable identifier for an AM type (what the paper's `#[am]` macro
/// assigns at compile time).
pub fn am_id<T: LamellarAm>() -> u64 {
    type_hash_of::<T>()
}

/// Register `T` in the runtime lookup table. Idempotent; panics on a hash
/// collision between distinct types (never observed for FNV-1a over
/// fully-qualified names, but checked regardless).
pub fn register_am<T: LamellarAm>() -> u64 {
    let id = am_id::<T>();
    let name = std::any::type_name::<T>();
    {
        let reg = registry().read();
        if let Some(existing) = reg.get(&id) {
            assert_eq!(existing.name, name, "AM type-id collision: {} vs {name}", existing.name);
            return id;
        }
    }
    registry().write().entry(id).or_insert(AmVTable { name, exec: exec_erased::<T> });
    id
}

/// Look up a registered AM by id.
pub fn lookup_am(id: u64) -> Option<AmVTable> {
    registry().read().get(&id).copied()
}

/// Why an AM request failed to produce its output.
#[derive(Debug, Clone, PartialEq)]
pub enum AmError {
    /// The AM's `exec` panicked on its destination PE; the payload is the
    /// remote panic message.
    RemotePanic {
        /// The PE the AM executed (and panicked) on.
        pe: usize,
        /// The remote panic message.
        msg: String,
    },
    /// The runtime could not deliver the request — or gave up on the
    /// destination after the reliable layer exhausted its retries. Note the
    /// inherent ambiguity of [`CommError::PeerUnreachable`]: the request
    /// may or may not have executed remotely before the pair died; only
    /// the reply is known lost.
    Comm(CommError),
    /// No reply arrived within the request's deadline (per-call
    /// [`AmOpts::deadline`] or the world default `am_deadline`), after
    /// `attempts` send attempts. Same ambiguity as `Comm`: the AM may have
    /// executed remotely — only the reply is missing. Retries therefore
    /// require the [`IdempotentAm`] opt-in.
    Timeout {
        /// Destination PE that never answered in time.
        pe: usize,
        /// Total send attempts made (1 = no retries).
        attempts: u32,
    },
    /// The caller cancelled the request through [`AmHandle::cancel`] (or a
    /// [`CancelOnDrop`] guard). The AM may still execute remotely; only the
    /// local reply slot is released.
    Cancelled,
    /// The liveness watchdog (DESIGN.md §4c) declared this PE stalled —
    /// `waited` elapsed inside `wait_all`/`barrier` with in-flight work and
    /// zero runtime progress — and its fail mode resolved the request.
    Stalled {
        /// Destination PE of the in-flight request at stall time.
        pe: usize,
        /// How long the watchdog observed zero progress before failing.
        waited: Duration,
    },
}

impl std::fmt::Display for AmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmError::RemotePanic { pe, msg } => {
                write!(f, "AM panicked on destination PE {pe}: {msg}")
            }
            AmError::Comm(e) => write!(f, "AM delivery failed: {e}"),
            AmError::Timeout { pe, attempts } => {
                write!(f, "AM to PE {pe} timed out after {attempts} attempt(s)")
            }
            AmError::Cancelled => write!(f, "AM cancelled by caller"),
            AmError::Stalled { pe, waited } => {
                write!(f, "AM to PE {pe} abandoned by the liveness watchdog after {waited:?} of zero progress")
            }
        }
    }
}

impl std::error::Error for AmError {}

/// Marker opt-in for AMs that are safe to *re-issue* on a deadline miss.
///
/// A timed-out request is ambiguous: the AM may have executed remotely with
/// only its reply lost. Re-sending such a request executes it **at least
/// once more** — so the runtime only retries AMs whose effects are
/// idempotent (safe to apply twice), which the author asserts by
/// implementing this trait. `Clone` is required so the runtime can keep a
/// copy to re-encode on each attempt (AM structs from the [`am!`](crate::am!)
/// macro already derive it).
pub trait IdempotentAm: LamellarAm + Clone {}

/// Retry schedule for [`exec_idempotent_am_pe`](crate::world::LamellarWorld::exec_idempotent_am_pe):
/// exponential backoff expressed as successively *wider deadline windows*.
/// The first window is the request's deadline; each re-issue then waits
/// `base`, `base × factor`, ... (capped at `cap`) before being declared
/// dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-issues after the initial attempt (0 = fail on first miss).
    pub max_retries: u32,
    /// Deadline window for the first re-issue.
    pub base: Duration,
    /// Multiplier applied to the window after each re-issue.
    pub factor: u32,
    /// Upper bound on the window.
    pub cap: Duration,
}

impl RetryPolicy {
    /// No retries: a deadline miss is immediately `AmError::Timeout`.
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0, base: Duration::ZERO, factor: 1, cap: Duration::ZERO }
    }

    /// Classic exponential backoff: up to `max_retries` re-issues with
    /// windows `base`, `base × factor`, ... capped at `cap`.
    pub fn exponential(max_retries: u32, base: Duration, factor: u32, cap: Duration) -> Self {
        RetryPolicy { max_retries, base, factor, cap }
    }

    /// The widening-window schedule as an iterator-style helper.
    pub(crate) fn schedule(&self) -> ExpBackoff {
        ExpBackoff::new(self.base, self.factor, self.cap)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Per-call resilience options for
/// [`exec_am_pe_with`](crate::world::LamellarWorld::exec_am_pe_with).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AmOpts {
    /// Response deadline for this request. `None` falls back to the world
    /// default (`WorldConfig::am_deadline`); if that is also `None` the
    /// request waits indefinitely. Deadlines apply to *remote* AMs only —
    /// local execution cannot lose a reply.
    pub deadline: Option<Duration>,
    /// Retry schedule on deadline miss. Honored only by
    /// `exec_idempotent_am_pe` (re-issuing needs the [`IdempotentAm`]
    /// assertion); `exec_am_pe_with` ignores it and resolves the first
    /// miss to `AmError::Timeout`.
    pub retry: RetryPolicy,
}

impl AmOpts {
    /// Deadline only, no retries.
    pub fn deadline(d: Duration) -> Self {
        AmOpts { deadline: Some(d), retry: RetryPolicy::none() }
    }

    /// Set the retry policy (builder-style).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }
}

/// Capability to cancel one in-flight request (held inside [`AmHandle`]).
/// Weak: cancellation after world teardown is a silent no-op.
pub(crate) struct CancelToken {
    pub(crate) rt: Weak<RuntimeInner>,
    pub(crate) req_id: u64,
}

impl CancelToken {
    /// Resolve the pending slot to `Err(AmError::Cancelled)` if the reply
    /// has not already arrived. Returns whether this call cancelled it.
    fn fire(&self) -> bool {
        self.rt.upgrade().map(|rt| rt.cancel_pending(self.req_id)).unwrap_or(false)
    }
}

/// A typed handle to one in-flight AM request.
///
/// Awaiting it yields the AM's `Output` once the destination PE has executed
/// the AM and the reply has arrived (reply payloads are decoded by the
/// runtime in a context where Darcs can resolve). If the AM panicked on its
/// destination — or the runtime declared the destination unreachable —
/// awaiting panics *here* with the failure message; the caller is the right
/// place for the error to surface (a lost reply would otherwise hang
/// `block_on`). Callers that want to handle failure instead of crashing
/// convert with [`AmHandle::fallible`]. Dropping the handle detaches: the
/// AM still runs, and `wait_all()` still accounts for it.
pub struct AmHandle<T> {
    pub(crate) rx: OneshotReceiver<Result<T, AmError>>,
    /// Cancellation capability; `None` for local-path AMs (already running
    /// on this PE's pool — there is no pending reply slot to release).
    pub(crate) cancel: Option<CancelToken>,
}

impl<T> AmHandle<T> {
    /// Convert into a handle that resolves to `Result` instead of
    /// panicking: `Err(AmError::Comm(_))` when the destination became
    /// unreachable (fault-plane worlds), `Err(AmError::RemotePanic { .. })`
    /// when the AM crashed remotely, `Err(AmError::Timeout { .. })` on a
    /// deadline miss.
    pub fn fallible(self) -> FallibleAmHandle<T> {
        FallibleAmHandle { rx: self.rx, cancel: self.cancel }
    }

    /// Cancel the request: release its pending-reply slot so `wait_all`
    /// no longer accounts for it. Returns `true` if this call cancelled it,
    /// `false` if the reply had already arrived (or the AM was local —
    /// local AMs are already executing and cannot be recalled). The remote
    /// side may still execute the AM; cancellation is a *local* disclaimer
    /// of interest, not a remote abort.
    pub fn cancel(self) -> bool {
        self.cancel.as_ref().map(CancelToken::fire).unwrap_or(false)
    }

    /// Wrap into a guard that auto-cancels on drop: if the guard is dropped
    /// before the reply arrives, the pending slot is released exactly as by
    /// [`AmHandle::cancel`]. Awaiting the guard yields `Result` like
    /// [`FallibleAmHandle`]. Plain `AmHandle` drop intentionally stays
    /// detach (fire-and-forget callers rely on `wait_all` accounting).
    pub fn cancel_on_drop(self) -> CancelOnDrop<T> {
        CancelOnDrop { rx: self.rx, cancel: self.cancel, resolved: false }
    }
}

impl<T> Future for AmHandle<T> {
    type Output = T;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match Pin::new(&mut self.rx).poll(cx) {
            Poll::Ready(Some(Ok(v))) => Poll::Ready(v),
            Poll::Ready(Some(Err(e))) => panic!("{e}"),
            Poll::Ready(None) => panic!("AM completed without a reply"),
            Poll::Pending => Poll::Pending,
        }
    }
}

impl<T> std::fmt::Debug for AmHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AmHandle")
    }
}

/// The `Result`-returning counterpart of [`AmHandle`], for callers that
/// treat delivery failure as data rather than a crash (see
/// [`AmHandle::fallible`]). Every future resolves, even on a severed
/// PE pair — never hangs, never panics on comm failure.
pub struct FallibleAmHandle<T> {
    rx: OneshotReceiver<Result<T, AmError>>,
    cancel: Option<CancelToken>,
}

impl<T> FallibleAmHandle<T> {
    /// Cancel the request (see [`AmHandle::cancel`]).
    pub fn cancel(self) -> bool {
        self.cancel.as_ref().map(CancelToken::fire).unwrap_or(false)
    }
}

impl<T> Future for FallibleAmHandle<T> {
    type Output = Result<T, AmError>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match Pin::new(&mut self.rx).poll(cx) {
            Poll::Ready(Some(out)) => Poll::Ready(out),
            // The runtime always sends Ok or Err before dropping the
            // sender; a dropped channel is a runtime bug, not a comm fault.
            Poll::Ready(None) => panic!("AM completed without a reply"),
            Poll::Pending => Poll::Pending,
        }
    }
}

impl<T> std::fmt::Debug for FallibleAmHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FallibleAmHandle")
    }
}

/// Drop-guard wrapper around an in-flight AM (see
/// [`AmHandle::cancel_on_drop`]): dropping it unresolved cancels the
/// request so abandoned handles cannot leak pending-reply slots into
/// `wait_all`. Awaiting it yields `Result` like [`FallibleAmHandle`].
pub struct CancelOnDrop<T> {
    rx: OneshotReceiver<Result<T, AmError>>,
    cancel: Option<CancelToken>,
    resolved: bool,
}

impl<T> Future for CancelOnDrop<T> {
    type Output = Result<T, AmError>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        match Pin::new(&mut this.rx).poll(cx) {
            Poll::Ready(Some(out)) => {
                this.resolved = true;
                Poll::Ready(out)
            }
            Poll::Ready(None) => panic!("AM completed without a reply"),
            Poll::Pending => Poll::Pending,
        }
    }
}

impl<T> Drop for CancelOnDrop<T> {
    fn drop(&mut self) {
        if !self.resolved {
            if let Some(token) = &self.cancel {
                token.fire();
            }
        }
    }
}

impl<T> std::fmt::Debug for CancelOnDrop<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CancelOnDrop")
    }
}

/// Handle to an `exec_am_all` broadcast: resolves to one output per PE,
/// indexed by PE id.
pub struct MultiAmHandle<T> {
    pub(crate) handles: Vec<Option<AmHandle<T>>>,
    pub(crate) results: Vec<Option<T>>,
}

impl<T> MultiAmHandle<T> {
    /// Convert into the per-PE `Result` form: resolves to one
    /// `Result<T, AmError>` per PE, so a broadcast over a world with failed
    /// or panicking members reports each PE's outcome individually instead
    /// of panicking on the first casualty.
    pub fn fallible(self) -> FallibleMultiAmHandle<T> {
        FallibleMultiAmHandle {
            handles: self.handles.into_iter().map(|h| h.map(AmHandle::fallible)).collect(),
            results: self.results.into_iter().map(|r| r.map(Ok)).collect(),
        }
    }
}

impl<T> Unpin for MultiAmHandle<T> {}

impl<T> Future for MultiAmHandle<T> {
    type Output = Vec<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut all_done = true;
        for (i, slot) in this.handles.iter_mut().enumerate() {
            if let Some(handle) = slot {
                match Pin::new(handle).poll(cx) {
                    Poll::Ready(v) => {
                        this.results[i] = Some(v);
                        *slot = None;
                    }
                    Poll::Pending => all_done = false,
                }
            }
        }
        if all_done {
            Poll::Ready(this.results.iter_mut().map(|r| r.take().expect("result")).collect())
        } else {
            Poll::Pending
        }
    }
}

impl<T> std::fmt::Debug for MultiAmHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MultiAmHandle({} PEs)", self.handles.len())
    }
}

/// The `Result`-per-PE counterpart of [`MultiAmHandle`] (see
/// [`MultiAmHandle::fallible`]): resolves to `Vec<Result<T, AmError>>`
/// indexed by PE id, never panicking on individual-PE failure.
pub struct FallibleMultiAmHandle<T> {
    handles: Vec<Option<FallibleAmHandle<T>>>,
    results: Vec<Option<Result<T, AmError>>>,
}

impl<T> Unpin for FallibleMultiAmHandle<T> {}

impl<T> Future for FallibleMultiAmHandle<T> {
    type Output = Vec<Result<T, AmError>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut all_done = true;
        for (i, slot) in this.handles.iter_mut().enumerate() {
            if let Some(handle) = slot {
                match Pin::new(handle).poll(cx) {
                    Poll::Ready(out) => {
                        this.results[i] = Some(out);
                        *slot = None;
                    }
                    Poll::Pending => all_done = false,
                }
            }
        }
        if all_done {
            Poll::Ready(this.results.iter_mut().map(|r| r.take().expect("result")).collect())
        } else {
            Poll::Pending
        }
    }
}

impl<T> std::fmt::Debug for FallibleMultiAmHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FallibleMultiAmHandle({} PEs)", self.handles.len())
    }
}

/// Define an Active Message: struct, serialization, and `exec` body in one
/// declaration — the `macro_rules!` equivalent of the paper's
/// `#[AmData]` + `#[am]` procedural macros.
///
/// ```
/// use lamellar_core::active_messaging::prelude::*;
///
/// lamellar_core::am! {
///     /// Adds `amount` to a remote accumulator (illustrative).
///     pub struct AddAm { pub amount: usize }
///     exec(am, ctx) -> usize {
///         // runs on the destination PE
///         am.amount * (ctx.current_pe() + 1)
///     }
/// }
///
/// let out = lamellar_core::world::launch(2, |world| {
///     let h = world.exec_am_pe(1, AddAm { amount: 10 });
///     world.block_on(h)
/// });
/// assert_eq!(out, vec![20, 20]);
/// ```
#[macro_export]
macro_rules! am {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $( $fvis:vis $fname:ident : $fty:ty ),* $(,)?
        }
        exec($am:ident, $ctx:ident) -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        #[derive(Clone, Debug)]
        $vis struct $name {
            $( $fvis $fname : $fty, )*
        }

        $crate::impl_codec!($name { $($fname),* });

        impl $crate::am::LamellarAm for $name {
            type Output = $out;
            fn exec(
                self,
                ctx: $crate::runtime::AmContext,
            ) -> impl ::std::future::Future<Output = $out> + Send {
                let $am = self;
                let $ctx = ctx;
                async move { $body }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct PingAm {
        x: u64,
    }
    crate::impl_codec!(PingAm { x });

    impl LamellarAm for PingAm {
        type Output = u64;
        async fn exec(self, _ctx: AmContext) -> u64 {
            self.x + 1
        }
    }

    #[test]
    fn registration_is_idempotent() {
        let a = register_am::<PingAm>();
        let b = register_am::<PingAm>();
        assert_eq!(a, b);
        assert!(lookup_am(a).is_some());
        assert!(lookup_am(a).unwrap().name.contains("PingAm"));
    }

    #[test]
    fn unknown_id_lookup_fails() {
        assert!(lookup_am(0xdead_beef_0bad_f00d).is_none());
    }
}
