//! Teams: subsets of the world's PEs (paper Sec. III: "Team — a subset of
//! PEs in the world; sub-teams are supported").
//!
//! Teams scope collectives (barriers, allocations, Darc construction) to
//! their members. Collective construction helpers here implement the
//! root-allocates-then-broadcasts pattern the runtime uses everywhere a
//! symmetric resource is created.

use crate::memregion::{Dist, SharedMemoryRegion};
use crate::runtime::RuntimeInner;
use crate::world::WorldGuard;
use rofi_sim::SenseBarrier;
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Immutable description of a team, replicated per member PE.
pub(crate) struct TeamInfo {
    pub(crate) id: u64,
    /// World PE ids of the members, sorted ascending.
    pub(crate) pes: Vec<usize>,
    /// Per-PE collective sequence number; SPMD programs issue team
    /// collectives in the same order on every member, which makes
    /// `(world, team, seq)` a globally-agreed tag for each collective.
    seq: AtomicU64,
}

/// A handle on a team, specific to the local PE.
#[derive(Clone)]
pub struct LamellarTeam {
    rt: Arc<RuntimeInner>,
    info: Arc<TeamInfo>,
    barrier: Arc<SenseBarrier>,
    /// Keeps world teardown ordered after team-held resources (present on
    /// user-held teams).
    _guard: Option<Arc<WorldGuard>>,
}

impl LamellarTeam {
    /// The whole-world team.
    pub(crate) fn world_team(rt: Arc<RuntimeInner>, guard: Option<Arc<WorldGuard>>) -> Self {
        let n = rt.num_pes();
        let shared = Arc::clone(rt.shared());
        // Team id 0 is reserved for the world team of each world.
        let barrier = shared.team_barrier(0, n);
        // All PEs construct an identical TeamInfo; each holds its own copy
        // (mirroring per-process team state in the real runtime).
        let info = Arc::new(TeamInfo { id: 0, pes: (0..n).collect(), seq: AtomicU64::new(0) });
        LamellarTeam { rt, info, barrier, _guard: guard }
    }

    /// World PE id of the calling PE.
    pub fn my_pe(&self) -> usize {
        self.rt.pe()
    }

    /// This PE's rank within the team (`None` if not a member — cannot
    /// happen for handles obtained through the public API).
    pub fn my_rank(&self) -> usize {
        self.rank_of(self.rt.pe()).expect("calling PE is a team member")
    }

    /// Rank of a world PE within this team.
    pub fn rank_of(&self, pe: usize) -> Option<usize> {
        self.info.pes.binary_search(&pe).ok()
    }

    /// Number of member PEs.
    pub fn num_pes(&self) -> usize {
        self.info.pes.len()
    }

    /// The member world-PE ids, ascending.
    pub fn pes(&self) -> &[usize] {
        &self.info.pes
    }

    /// Team identifier (0 = the world team).
    pub fn id(&self) -> u64 {
        self.info.id
    }

    /// Barrier across the team's members, servicing runtime progress while
    /// waiting.
    pub fn barrier(&self) {
        let _waiting = self.rt.wait_guard();
        self.rt.lamellae().flush();
        let rt = Arc::clone(&self.rt);
        self.barrier.wait_with_progress(move || {
            rt.shared().check_poison();
            rt.tick();
        });
    }

    /// Collectively create a sub-team of `pes` (world ids; deduplicated and
    /// sorted). Every member of *this* team must call with the same list;
    /// members of the new team get `Some`, others `None`.
    pub fn create_subteam(&self, pes: &[usize]) -> Option<LamellarTeam> {
        let mut members: Vec<usize> = pes.to_vec();
        members.sort_unstable();
        members.dedup();
        assert!(!members.is_empty(), "sub-team needs at least one PE");
        for &pe in &members {
            assert!(self.rank_of(pe).is_some(), "PE {pe} is not a member of the parent team");
        }
        // Root (parent rank 0) draws the id; everyone learns it via OOB.
        let shared = Arc::clone(self.rt.shared());
        let team_id = self.bcast_u64(0, || shared.new_team_id());
        if !members.contains(&self.rt.pe()) {
            // Still participate in the parent-team synchronization above,
            // but hold no handle.
            return None;
        }
        let barrier = self.rt.shared().team_barrier(team_id, members.len());
        let info = Arc::new(TeamInfo { id: team_id, pes: members, seq: AtomicU64::new(0) });
        Some(LamellarTeam { rt: Arc::clone(&self.rt), info, barrier, _guard: self._guard.clone() })
    }

    /// Collectively allocate a [`SharedMemoryRegion`] of `len` elements per
    /// member PE.
    pub fn alloc_shared_mem_region<T: Dist>(&self, len: usize) -> SharedMemoryRegion<T> {
        SharedMemoryRegion::new(self.clone(), len)
    }

    /// Next collective tag for this team (see [`TeamInfo::seq`]).
    pub(crate) fn next_tag(&self) -> u64 {
        let seq = self.info.seq.fetch_add(1, Ordering::Relaxed);
        // Combine (world, team, seq) into an OOB tag.
        let shared = self.rt.shared();
        lamellar_codec::type_hash("team-collective")
            ^ shared.world_id.rotate_left(40)
            ^ self.info.id.rotate_left(20)
            ^ seq
    }

    /// Collective broadcast of a u64 computed by the team member with rank
    /// `root`. Blocks until the value is available; synchronizes the team.
    #[doc(hidden)]
    pub fn bcast_u64(&self, root: usize, make: impl FnOnce() -> u64) -> u64 {
        let tag = self.next_tag();
        self.rt.shared().check_collective(tag, "bcast_u64");
        let lam = self.rt.lamellae();
        if self.my_rank() == root {
            let v = make();
            lam.oob_put(tag, v);
        }
        let v = lam.oob_get(tag);
        self.barrier();
        if self.my_rank() == root {
            lam.oob_remove(tag);
            self.rt.shared().finish_collective(tag);
        }
        v
    }

    /// Collective exchange of a shared object: `root` constructs it, every
    /// member receives a clone of the `Arc`. Synchronizes the team twice
    /// (deposit visible → all fetched).
    #[doc(hidden)]
    pub fn exchange_object<T: Send + Sync + 'static>(
        &self,
        root: usize,
        make: impl FnOnce() -> T,
    ) -> Arc<T> {
        let tag = self.next_tag();
        let shared = Arc::clone(self.rt.shared());
        shared.check_collective(tag, "exchange_object");
        if self.my_rank() == root {
            shared.exchange_put(tag, Arc::new(make()));
        }
        self.barrier();
        let obj = shared
            .exchange_get(tag)
            .expect("exchange object present after barrier")
            .downcast::<T>()
            .expect("exchange object type");
        self.barrier();
        if self.my_rank() == root {
            shared.exchange_remove(tag);
            shared.finish_collective(tag);
        }
        obj
    }

    /// Collective all-deposit: every member contributes a value; returns
    /// the full vector (indexed by team rank) to every member.
    #[doc(hidden)]
    pub fn deposit_all<T: Send + Sync + 'static>(&self, mine: T) -> Arc<Vec<T>> {
        let tag = self.next_tag();
        let shared = Arc::clone(self.rt.shared());
        shared.check_collective(tag, "deposit_all");
        let rank = self.my_rank();
        let completed = shared.deposit(tag, rank, self.num_pes(), Box::new(mine));
        if let Some(slots) = completed {
            // Last depositor assembles the vector and republishes it.
            let vec: Vec<T> = slots
                .into_iter()
                .map(|s| *s.expect("all deposited").downcast::<T>().expect("deposit type"))
                .collect();
            shared.exchange_put(tag, Arc::new(vec) as Arc<dyn Any + Send + Sync>);
        }
        self.barrier();
        let obj = shared
            .exchange_get(tag)
            .expect("deposit vector present after barrier")
            .downcast::<Vec<T>>()
            .expect("deposit vector type");
        self.barrier();
        if rank == 0 {
            shared.exchange_remove(tag);
            shared.finish_collective(tag);
        }
        obj
    }

    /// Launch `am` on the team member with team rank `rank` (paper: both
    /// `lamellar::world` and `lamellar::team` can launch AMs).
    pub fn exec_am_rank<T: crate::am::LamellarAm>(
        &self,
        rank: usize,
        am: T,
    ) -> crate::am::AmHandle<T::Output> {
        let pe = *self.info.pes.get(rank).unwrap_or_else(|| {
            panic!("rank {rank} out of range (team has {} PEs)", self.num_pes())
        });
        self.rt.exec_am_pe(pe, am)
    }

    /// [`exec_am_rank`](LamellarTeam::exec_am_rank) with per-call
    /// resilience options (deadline; see
    /// [`LamellarWorld::exec_am_pe_with`](crate::world::LamellarWorld::exec_am_pe_with)).
    pub fn exec_am_rank_with<T: crate::am::LamellarAm>(
        &self,
        rank: usize,
        am: T,
        opts: crate::am::AmOpts,
    ) -> crate::am::AmHandle<T::Output> {
        let pe = *self.info.pes.get(rank).unwrap_or_else(|| {
            panic!("rank {rank} out of range (team has {} PEs)", self.num_pes())
        });
        self.rt.exec_am_pe_with(pe, am, opts)
    }

    /// Launch `am` on every member of this team; resolves to one output
    /// per member, in team-rank order.
    pub fn exec_am_team<T: crate::am::LamellarAm + Clone>(
        &self,
        am: T,
    ) -> crate::am::MultiAmHandle<T::Output> {
        let handles = self
            .info
            .pes
            .iter()
            .map(|&pe| Some(self.rt.exec_am_pe(pe, am.clone())))
            .collect::<Vec<_>>();
        let results = (0..self.info.pes.len()).map(|_| None).collect();
        crate::am::MultiAmHandle { handles, results }
    }

    /// Runtime access for sibling crates (the array layer).
    #[doc(hidden)]
    pub fn rt(&self) -> &Arc<RuntimeInner> {
        &self.rt
    }
}

impl std::fmt::Debug for LamellarTeam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LamellarTeam")
            .field("id", &self.info.id)
            .field("pes", &self.info.pes)
            .field("my_pe", &self.my_pe())
            .finish()
    }
}
