//! Per-PE runtime state: request tracking, dispatch, progress engine.
//!
//! One [`RuntimeInner`] exists per PE. It owns the PE's thread pool and
//! Lamellae, tracks in-flight requests for `wait_all`, and dispatches
//! incoming envelopes:
//!
//! * `Request` → look up the AM in the registry, deserialize, spawn its
//!   `exec` future on the thread pool, and send the encoded output back as
//!   a `Reply` (paper Sec. III-C: "the communication task will create an
//!   asynchronous task to deserialize, execute and return results").
//! * `Reply` → complete the caller's pending-request entry, decoding the
//!   payload into the typed [`crate::am::AmHandle`].
//! * `LargeRequest`/`FreeHeap` → the big-payload staging handshake.
//!
//! A dedicated progress thread per PE polls the Lamellae and flushes
//! aggregation buffers when the wire goes idle. Barriers and `wait_all`
//! also pump progress, so a PE blocked in a collective keeps executing AMs
//! sent to it.

use crate::am::{
    am_id, lookup_am, register_am, AmError, AmHandle, AmOpts, CancelToken, IdempotentAm,
    LamellarAm, MultiAmHandle, RetryPolicy,
};
use crate::config::WatchdogConfig;
use crate::lamellae::{CommError, Lamellae};
use crate::proto::{self, frame, Envelope, EnvelopeView};
use crate::world::WorldShared;
use lamellar_codec::Codec;
use lamellar_executor::{oneshot, Backoff, ExpBackoff, JoinHandle, ThreadPool};
use lamellar_metrics::{AmMetrics, RuntimeStats};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::future::Future;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Completion callback for one pending request: decodes the reply payload
/// (or carries the failure — remote panic or comm breakdown) and resolves
/// the typed handle. The payload is a slice borrowed from the transport's
/// receive buffer — the callback deserializes in place, the only copy on
/// the reply path being the typed decode itself.
type PendingReply = Box<dyn for<'a> FnOnce(Result<&'a [u8], AmError>) + Send>;

/// One in-flight remote request: its destination (so comm failures toward
/// that PE can fail it) and the completion callback.
struct Pending {
    dst: usize,
    reply: PendingReply,
}

/// Shard count for the pending-request table. Power of two so the modulo
/// compiles to a mask; 64 shards keep fetching batches (e.g. IndexGather's
/// thousands of in-flight sub-batches) from serializing insert/remove on a
/// single lock while the progress thread drains replies.
const PENDING_SHARDS: usize = 64;

/// The pending-request table, sharded by `req_id` (DESIGN.md §4d). Request
/// ids are allocated sequentially, so consecutive requests land on distinct
/// shards and the sender-side insert and the progress-side remove contend
/// only 1/64th of the time.
struct PendingTable {
    shards: [Mutex<HashMap<u64, Pending>>; PENDING_SHARDS],
}

impl PendingTable {
    fn new() -> Self {
        PendingTable { shards: std::array::from_fn(|_| Mutex::new(HashMap::new())) }
    }

    #[inline]
    fn shard(&self, req_id: u64) -> &Mutex<HashMap<u64, Pending>> {
        &self.shards[(req_id % PENDING_SHARDS as u64) as usize]
    }

    fn insert_reply(&self, req_id: u64, dst: usize, cb: PendingReply) {
        let prev = self.shard(req_id).lock().insert(req_id, Pending { dst, reply: cb });
        debug_assert!(prev.is_none(), "req_id collision");
    }

    fn remove(&self, req_id: u64) -> Option<Pending> {
        self.shard(req_id).lock().remove(&req_id)
    }

    fn contains(&self, req_id: u64) -> bool {
        self.shard(req_id).lock().contains_key(&req_id)
    }

    /// True when no request is in flight. Scans shard by shard (not
    /// atomically across shards) — callers use it as a heuristic (watchdog
    /// arming), never as a correctness gate.
    fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Distinct destination PEs across every in-flight request (diagnostic).
    fn dsts(&self) -> Vec<usize> {
        let mut dsts: Vec<usize> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().values().map(|p| p.dst).collect::<Vec<_>>())
            .collect();
        dsts.sort_unstable();
        dsts.dedup();
        dsts
    }

    /// Remove every request addressed to a PE in `dead`.
    fn remove_to(&self, dead: &[usize]) -> Vec<Pending> {
        let mut victims = Vec::new();
        for shard in &self.shards {
            let mut map = shard.lock();
            let ids: Vec<u64> =
                map.iter().filter(|(_, p)| dead.contains(&p.dst)).map(|(&id, _)| id).collect();
            victims.extend(ids.iter().map(|id| map.remove(id).expect("just listed")));
        }
        victims
    }

    /// Remove every in-flight request (watchdog fail mode).
    fn drain_all(&self) -> Vec<Pending> {
        self.shards
            .iter()
            .flat_map(|s| s.lock().drain().map(|(_, p)| p).collect::<Vec<_>>())
            .collect()
    }
}

/// Origin-side fire-and-forget accounting toward one destination PE. A
/// mutex (not two atomics) so the send-count, the cumulative-ack credit,
/// and the death-time reconciliation are mutually exclusive — otherwise a
/// `fail_pes` racing an in-flight ack could double-decrement `my_pending`.
#[derive(Default)]
struct UnitOrigin {
    /// Unit-AM requests successfully handed to the wire toward this PE.
    sent: u64,
    /// Highest cumulative completion count credited so far (from `AckCount`
    /// envelopes, or forced to `sent` when the peer is declared dead).
    acked: u64,
}

/// Inline-execution budget per progress tick: at most this many inbound AM
/// futures are polled on the progress path before the rest of the buffer
/// spills to the thread pool, bounding how long one tick can monopolize the
/// progress thread behind a large aggregation buffer.
const INLINE_BUDGET_PER_TICK: usize = 4096;

/// Largest AM payload the progress thread will execute inline. Inline
/// execution skips the pool spawn entirely (no task box, no scheduler
/// hand-off), which measurably wins for the aggregated kernels; the cap
/// keeps a near-`large_threshold` handler from monopolizing a progress
/// tick, and `INLINE_BUDGET_PER_TICK` bounds the count per tick.
const INLINE_MAX_PAYLOAD: usize = 65536;

/// Completions a serving PE accumulates per source before emitting a
/// cumulative `AckCount` mid-traffic (idle ticks flush unconditionally).
const UNIT_ACK_BATCH: u64 = 64;

/// Deadline bookkeeping for one remote request (DESIGN.md §4c). Lives in
/// `RuntimeInner::deadlines`, checked on every progress tick. The first
/// window is the request's deadline; each re-issue (idempotent AMs only)
/// widens the window per the retry policy's exponential schedule.
struct DeadlineEntry {
    req_id: u64,
    dst: usize,
    expires: Instant,
    /// Send attempts so far (1 = the original send).
    attempts: u32,
    retries_left: u32,
    backoff: ExpBackoff,
    /// Re-encode-and-resend closure; `None` for non-idempotent AMs (a
    /// deadline miss then resolves straight to `Err(Timeout)`).
    reissue: Option<ReissueFn>,
}

/// Re-encode-and-resend closure stored per retryable deadline entry.
type ReissueFn = Box<dyn Fn(&Arc<RuntimeInner>) -> Result<(), CommError> + Send>;

/// Adapter that converts a panicking future into `Err(panic message)`, so
/// a crashed AM produces an error reply instead of stranding its caller.
struct CatchPanic<F>(F);

impl<F: Future> Future for CatchPanic<F> {
    type Output = Result<F::Output, String>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        // SAFETY: structural pinning of the sole field.
        let inner = unsafe { self.map_unchecked_mut(|s| &mut s.0) };
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inner.poll(cx))) {
            Ok(std::task::Poll::Ready(v)) => std::task::Poll::Ready(Ok(v)),
            Ok(std::task::Poll::Pending) => std::task::Poll::Pending,
            Err(payload) => std::task::Poll::Ready(Err(panic_message(&*payload))),
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-PE runtime state.
pub struct RuntimeInner {
    pe: usize,
    num_pes: usize,
    lamellae: Arc<dyn Lamellae>,
    pool: ThreadPool,
    shared: Arc<WorldShared>,
    pending: PendingTable,
    next_req: AtomicU64,
    /// AMs this PE has launched that have not yet completed (drives
    /// `wait_all`, which "blocks the calling PE until all of the AMs it
    /// launched have completed").
    my_pending: AtomicUsize,
    /// Signals the progress thread to exit.
    pub(crate) shutdown: AtomicBool,
    /// Payload size above which requests take the heap-staging path.
    large_threshold: usize,
    /// AM-layer observability: directional AM counts, replies, batch
    /// fan-out, Darc lifecycle events.
    am_metrics: Arc<AmMetrics>,
    /// World-default per-attempt response deadline for remote AMs
    /// (`WorldConfig::am_deadline`); per-call [`AmOpts`] overrides it.
    default_deadline: Option<Duration>,
    /// Armed deadlines, polled by [`RuntimeInner::check_deadlines`] on the
    /// progress path.
    deadlines: Mutex<Vec<DeadlineEntry>>,
    /// Bumped whenever the runtime makes observable progress (message
    /// handled, future resolved). The watchdog reads it to detect
    /// zero-progress intervals.
    progress_epoch: AtomicU64,
    /// Threads currently blocked in `wait_all`/`barrier` on this PE.
    waiting: AtomicUsize,
    /// Watchdog stall verdicts so far (lets `try_wait_all` detect that a
    /// stall fired during its wait).
    stall_events: AtomicU64,
    /// The most recent watchdog failure, for `try_wait_all` to report.
    last_stall: Mutex<Option<AmError>>,
    /// Whether unit-output AMs may take the fire-and-forget wire path
    /// (`WorldConfig::reply_elision`); off, they fall back to tracked
    /// replies — the ablation baseline.
    reply_elision: bool,
    /// Serving side: cumulative count of unit-AM requests from each source
    /// PE that this PE has finished executing.
    unit_served: Vec<AtomicU64>,
    /// Serving side: the last cumulative count conveyed to each source via
    /// an `AckCount` envelope (CAS-guarded so concurrent tickers emit each
    /// credit exactly once).
    unit_ack_sent: Vec<AtomicU64>,
    /// Origin side: per-destination fire-and-forget accounting.
    unit_origin: Vec<Mutex<UnitOrigin>>,
    /// Remaining inline-execution budget for the current progress tick.
    inline_budget: AtomicUsize,
    /// Tick counter driving the periodic forced unit-ack flush.
    ack_tick: AtomicU64,
}

thread_local! {
    static CURRENT_RT: RefCell<Vec<Arc<RuntimeInner>>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with `rt` installed as the thread's current runtime — the decode
/// context Darcs and memory regions need to resolve their registry entries.
pub(crate) fn with_rt_context<R>(rt: &Arc<RuntimeInner>, f: impl FnOnce() -> R) -> R {
    CURRENT_RT.with(|c| c.borrow_mut().push(Arc::clone(rt)));
    // Pop even on panic so a panicking AM doesn't poison the stack.
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            CURRENT_RT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
    let _guard = PopGuard;
    f()
}

/// The runtime a (de)serialization is currently executing under, if any.
pub(crate) fn current_rt() -> Option<Arc<RuntimeInner>> {
    CURRENT_RT.with(|c| c.borrow().last().cloned())
}

impl RuntimeInner {
    pub(crate) fn new(
        lamellae: Arc<dyn Lamellae>,
        pool: ThreadPool,
        shared: Arc<WorldShared>,
        large_threshold: usize,
        metrics: bool,
        default_deadline: Option<Duration>,
        reply_elision: bool,
    ) -> Arc<Self> {
        let num_pes = lamellae.num_pes();
        Arc::new(RuntimeInner {
            pe: lamellae.my_pe(),
            num_pes,
            lamellae,
            pool,
            shared,
            pending: PendingTable::new(),
            next_req: AtomicU64::new(1),
            my_pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            large_threshold,
            am_metrics: Arc::new(AmMetrics::new(metrics)),
            default_deadline,
            deadlines: Mutex::new(Vec::new()),
            progress_epoch: AtomicU64::new(0),
            waiting: AtomicUsize::new(0),
            stall_events: AtomicU64::new(0),
            last_stall: Mutex::new(None),
            reply_elision,
            unit_served: (0..num_pes).map(|_| AtomicU64::new(0)).collect(),
            unit_ack_sent: (0..num_pes).map(|_| AtomicU64::new(0)).collect(),
            unit_origin: (0..num_pes).map(|_| Mutex::new(UnitOrigin::default())).collect(),
            inline_budget: AtomicUsize::new(0),
            ack_tick: AtomicU64::new(0),
        })
    }

    /// This PE's id.
    pub fn pe(&self) -> usize {
        self.pe
    }

    /// World size.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// The Lamellae backing this PE.
    pub fn lamellae(&self) -> &Arc<dyn Lamellae> {
        &self.lamellae
    }

    /// The PE's thread pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Cross-PE shared world state.
    pub(crate) fn shared(&self) -> &Arc<WorldShared> {
        &self.shared
    }

    /// The live AM-layer metrics registry (the Darc and array layers record
    /// their lifecycle/fan-out events here).
    pub fn am_metrics(&self) -> &Arc<AmMetrics> {
        &self.am_metrics
    }

    /// Assemble a typed snapshot across every runtime layer this PE can
    /// observe. Fabric counters are fabric-global (shared across PEs);
    /// lamellae, executor, and AM counters are per-PE.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            fabric: self.lamellae.fabric_stats(),
            lamellae: self.lamellae.lamellae_stats(),
            executor: self.pool.stats(),
            am: self.am_metrics.snapshot(),
            fault: self.lamellae.fault_stats(),
        }
    }

    /// Launch `am` on `dst`, returning a typed handle to its output.
    /// Remote launches honor the world-default response deadline
    /// (`WorldConfig::am_deadline`) when one is configured.
    pub fn exec_am_pe<T: LamellarAm>(self: &Arc<Self>, dst: usize, am: T) -> AmHandle<T::Output> {
        self.exec_am_pe_inner(dst, am, None, RetryPolicy::none(), None)
    }

    /// [`RuntimeInner::exec_am_pe`] with per-call resilience options. The
    /// deadline (per-call, falling back to the world default) resolves the
    /// handle to `Err(AmError::Timeout)` if no reply arrives in time.
    /// `opts.retry` is **ignored** here: a timed-out AM may have executed
    /// remotely, so re-issuing requires the [`IdempotentAm`] assertion —
    /// use [`RuntimeInner::exec_idempotent_am_pe`].
    pub fn exec_am_pe_with<T: LamellarAm>(
        self: &Arc<Self>,
        dst: usize,
        am: T,
        opts: AmOpts,
    ) -> AmHandle<T::Output> {
        self.exec_am_pe_inner(dst, am, opts.deadline, RetryPolicy::none(), None)
    }

    /// Launch an [`IdempotentAm`] with deadline *and* retry: each deadline
    /// miss re-encodes and re-sends the AM (same request id, so a late
    /// first reply still wins and duplicates are dropped) with
    /// exponentially widening windows, until `opts.retry.max_retries` is
    /// exhausted — then `Err(AmError::Timeout)` carrying the attempt count.
    pub fn exec_idempotent_am_pe<T: IdempotentAm>(
        self: &Arc<Self>,
        dst: usize,
        am: T,
        opts: AmOpts,
    ) -> AmHandle<T::Output> {
        let copy = am.clone();
        self.exec_am_pe_inner(dst, am, opts.deadline, opts.retry, Some(copy))
    }

    /// Launch a unit-output AM fire-and-forget (DESIGN.md §4d): no oneshot,
    /// no pending-table slot, and no `Reply` envelope comes back. The launch
    /// still counts toward `my_pending`, so `wait_all`/quiet semantics are
    /// preserved — the serving PE's cumulative [`Envelope::AckCount`]
    /// credits retire it. Calls that need a deadline or retry must use the
    /// tracked [`RuntimeInner::exec_am_pe_with`] path instead.
    ///
    /// Falls back to the tracked path when elision is disabled
    /// (`WorldConfig::reply_elision(false)`) or the payload exceeds the
    /// heap-staging threshold.
    pub fn exec_unit_am_pe<T: LamellarAm<Output = ()>>(self: &Arc<Self>, dst: usize, am: T) {
        assert!(dst < self.num_pes, "PE {dst} out of range (world has {})", self.num_pes);
        register_am::<T>();
        if dst == self.pe {
            // Local fast path: no serialization, no completion plumbing at
            // all beyond the `my_pending` count.
            self.am_metrics.record_local();
            self.my_pending.fetch_add(1, Ordering::AcqRel);
            let ctx = AmContext { rt: Arc::clone(self), src_pe: self.pe };
            let rt = Arc::clone(self);
            drop(self.pool.spawn(async move {
                if CatchPanic(am.exec(ctx)).await.is_err() {
                    rt.am_metrics.record_panic_caught();
                }
                rt.my_pending.fetch_sub(1, Ordering::AcqRel);
                rt.note_progress();
            }));
            return;
        }
        let payload_len = with_rt_context(self, || am.encoded_len());
        if !self.reply_elision || payload_len > self.large_threshold {
            // Tracked fallback: the large-payload heap-staging handshake
            // needs a req_id, and with elision off every AM measures the
            // ablation baseline. Dropping the handle is fine — `my_pending`
            // still tracks it.
            drop(self.exec_am_pe(dst, am));
            return;
        }
        self.am_metrics.record_sent();
        self.am_metrics.record_unit_sent();
        self.my_pending.fetch_add(1, Ordering::AcqRel);
        // The send-count bump and the wire hand-off stay under one lock so
        // an `AckCount` (or a peer-death reconciliation) can never observe a
        // sent count that excludes a message already on the wire.
        let sent = {
            let mut origin = self.unit_origin[dst].lock();
            let res = self.lamellae.try_send_with(
                dst,
                proto::framed_request_unit_len(payload_len),
                &mut |buf| {
                    proto::frame_request_unit_with(
                        buf,
                        am_id::<T>(),
                        self.pe as u64,
                        payload_len,
                        |b| with_rt_context(self, || am.encode(b)),
                    );
                },
            );
            if res.is_ok() {
                origin.sent += 1;
            }
            res.is_ok()
        };
        if !sent {
            // The request never left this PE (peer already declared dead):
            // fire-and-forget has no future to fail, so just stop counting
            // it — the tracked path's dropped handle would swallow the same
            // error unseen.
            self.my_pending.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Total fire-and-forget launches not yet credited by an `AckCount`.
    fn unit_outstanding(&self) -> u64 {
        self.unit_origin
            .iter()
            .map(|o| {
                let o = o.lock();
                o.sent - o.acked
            })
            .sum()
    }

    /// Credit a cumulative completion count from serving PE `from`: retire
    /// `n - acked` launches from `my_pending`. Late or duplicate acks (after
    /// a peer-death reconciliation forced `acked = sent`) are no-ops.
    fn handle_ack(&self, from: usize, n: u64) {
        self.am_metrics.record_ack_received();
        let mut origin = self.unit_origin[from].lock();
        let n = n.min(origin.sent);
        if n > origin.acked {
            let delta = (n - origin.acked) as usize;
            origin.acked = n;
            drop(origin);
            self.my_pending.fetch_sub(delta, Ordering::AcqRel);
            self.note_progress();
        }
    }

    /// Serving side: piggyback a cumulative `AckCount` toward every source
    /// PE whose completed-unit count has advanced since the last one sent.
    /// Runs on every progress tick; the CAS ensures each credit is emitted
    /// exactly once even with wait_all/barrier tickers running concurrently
    /// with the progress thread. A send toward a dead peer is dropped — the
    /// origin reconciles through its own comm-failure path, mirroring how a
    /// tracked `Reply` toward a dead PE is lost.
    ///
    /// Emission is batched: while traffic is flowing (`!idle`) a credit is
    /// only sent once `UNIT_ACK_BATCH` completions have accumulated —
    /// otherwise the spinning progress thread would stream one tiny ack
    /// per handful of completions, contending the outbound queue lock with
    /// the main thread's sends. An idle tick flushes unconditionally, so
    /// an origin blocked in `wait_all` is credited within one progress
    /// iteration of the last completion.
    fn flush_unit_acks(&self, idle: bool) {
        for src in 0..self.num_pes {
            if src == self.pe {
                continue;
            }
            let served = self.unit_served[src].load(Ordering::Acquire);
            let sent = self.unit_ack_sent[src].load(Ordering::Acquire);
            if served > sent
                && (idle || served - sent >= UNIT_ACK_BATCH)
                && self.unit_ack_sent[src]
                    .compare_exchange(sent, served, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                let _ = self.lamellae.try_send_with(
                    src,
                    proto::framed_ack_count_len(served),
                    &mut |buf| proto::frame_ack_count(buf, served),
                );
            }
        }
    }

    fn exec_am_pe_inner<T: LamellarAm>(
        self: &Arc<Self>,
        dst: usize,
        am: T,
        deadline: Option<Duration>,
        retry: RetryPolicy,
        reissue_copy: Option<T>,
    ) -> AmHandle<T::Output> {
        assert!(dst < self.num_pes, "PE {dst} out of range (world has {})", self.num_pes);
        register_am::<T>();
        self.my_pending.fetch_add(1, Ordering::AcqRel);
        let (tx, rx) = oneshot::<Result<T::Output, AmError>>();
        if dst == self.pe {
            // Local fast path: no serialization (as in the paper — local AMs
            // are placed directly into the thread pool). Deadlines do not
            // apply: the AM is already running here and no reply can be
            // lost.
            self.am_metrics.record_local();
            let ctx = AmContext { rt: Arc::clone(self), src_pe: self.pe };
            let rt = Arc::clone(self);
            let pe = self.pe;
            drop(self.pool.spawn(async move {
                let out = CatchPanic(am.exec(ctx)).await.map_err(|msg| {
                    rt.am_metrics.record_panic_caught();
                    AmError::RemotePanic { pe, msg }
                });
                tx.send(out);
                rt.my_pending.fetch_sub(1, Ordering::AcqRel);
                rt.note_progress();
            }));
            return AmHandle { rx, cancel: None };
        }
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed);
        let rt = Arc::clone(self);
        self.pending.insert_reply(
            req_id,
            dst,
            Box::new(move |result| {
                let out = result.map(|bytes| {
                    with_rt_context(&rt, || T::Output::from_bytes(bytes).expect("AM reply decode"))
                });
                tx.send(out);
                rt.my_pending.fetch_sub(1, Ordering::AcqRel);
            }),
        );
        if let Err(e) = self.send_request(dst, req_id, &am) {
            self.fail_pending(req_id, AmError::Comm(e));
        } else if let Some(window) = deadline.or(self.default_deadline) {
            self.arm_deadline(req_id, dst, window, retry, reissue_copy);
        }
        AmHandle { rx, cancel: Some(CancelToken { rt: Arc::downgrade(self), req_id }) }
    }

    /// Encode `am` and push it to the wire toward `dst` under request id
    /// `req_id` — the heap-staging path for large payloads, the zero-copy
    /// encode-in-place path otherwise. Takes the AM by reference so
    /// deadline-driven re-issues can resend the same request (same id:
    /// duplicate replies are dropped by the `Reply` handler).
    fn send_request<T: LamellarAm>(
        self: &Arc<Self>,
        dst: usize,
        req_id: u64,
        am: &T,
    ) -> Result<(), CommError> {
        // `encoded_len` is side-effect free (no Darc/region pinning), so
        // it is safe to size the wire frame before encoding.
        let payload_len = with_rt_context(self, || am.encoded_len());
        self.am_metrics.record_sent();
        if payload_len > self.large_threshold {
            // Stage the payload in the one-sided heap; the receiver
            // RDMA-gets it and sends FreeHeap back.
            let payload = with_rt_context(self, || am.to_bytes());
            debug_assert_eq!(payload.len(), payload_len, "encoded_len disagrees with encode");
            // On failure the request never leaves this PE: the caller fails
            // the future instead of hanging.
            let off = self.lamellae.try_alloc_heap(payload.len(), 8)?;
            // SAFETY: freshly allocated, private until the receiver is
            // told about it, freed only on FreeHeap.
            unsafe { self.lamellae.put(self.pe, off, &payload) };
            let env = Envelope::LargeRequest(
                am_id::<T>(),
                req_id,
                self.pe as u64,
                off as u64,
                payload.len() as u64,
            );
            if let Err(e) = self
                .lamellae
                .try_send_with(dst, proto::framed_len(&env), &mut |buf| frame(&env, buf))
            {
                self.lamellae.free_heap(self.pe, off);
                return Err(e);
            }
            Ok(())
        } else {
            // Zero-copy send: the AM encodes straight into the
            // aggregation buffer, no intermediate payload or frame Vec.
            self.lamellae.try_send_with(dst, proto::framed_request_len(payload_len), &mut |buf| {
                proto::frame_request_with(
                    buf,
                    am_id::<T>(),
                    req_id,
                    self.pe as u64,
                    payload_len,
                    |b| with_rt_context(self, || am.encode(b)),
                );
            })
        }
    }

    /// Register a deadline for an in-flight request. The first window is
    /// the request's deadline; re-issues (idempotent AMs only) use the
    /// retry policy's widening-window schedule.
    fn arm_deadline<T: LamellarAm>(
        self: &Arc<Self>,
        req_id: u64,
        dst: usize,
        window: Duration,
        retry: RetryPolicy,
        reissue_copy: Option<T>,
    ) {
        let reissue = reissue_copy.map(|am| {
            Box::new(move |rt: &Arc<RuntimeInner>| rt.send_request(dst, req_id, &am))
                as Box<dyn Fn(&Arc<RuntimeInner>) -> Result<(), CommError> + Send>
        });
        let retries_left = if reissue.is_some() { retry.max_retries } else { 0 };
        self.deadlines.lock().push(DeadlineEntry {
            req_id,
            dst,
            expires: Instant::now() + window,
            attempts: 1,
            retries_left,
            backoff: retry.schedule(),
            reissue,
        });
    }

    /// Expire overdue deadlines: re-issue idempotent AMs with retries left,
    /// fail the rest with `Err(AmError::Timeout)`. Runs on the progress
    /// path; uses `try_lock` so concurrent tickers never serialize here.
    /// Returns true if any deadline fired.
    fn check_deadlines(self: &Arc<Self>) -> bool {
        let now = Instant::now();
        let expired: Vec<DeadlineEntry> = {
            let Some(mut deadlines) = self.deadlines.try_lock() else { return false };
            if deadlines.is_empty() {
                return false;
            }
            let mut expired = Vec::new();
            let mut i = 0;
            while i < deadlines.len() {
                if deadlines[i].expires <= now {
                    expired.push(deadlines.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            expired
        };
        let mut fired = false;
        for mut entry in expired {
            // Entry outlived its request (reply arrived, or the pair died):
            // just drop the bookkeeping.
            if !self.pending.contains(entry.req_id) {
                continue;
            }
            fired = true;
            if entry.retries_left > 0 {
                let reissue = entry.reissue.as_ref().expect("retries imply a reissue closure");
                match reissue(self) {
                    Ok(()) => {
                        self.am_metrics.record_retry();
                        entry.attempts += 1;
                        entry.retries_left -= 1;
                        entry.expires = Instant::now() + entry.backoff.next_delay();
                        self.deadlines.lock().push(entry);
                    }
                    Err(e) => {
                        // The wire itself refused (e.g. the reliable layer
                        // already declared the peer dead): no point backing
                        // off further.
                        self.fail_pending(entry.req_id, AmError::Comm(e));
                    }
                }
            } else {
                self.am_metrics.record_timeout();
                self.fail_pending(
                    entry.req_id,
                    AmError::Timeout { pe: entry.dst, attempts: entry.attempts },
                );
            }
        }
        fired
    }

    /// Cancel an in-flight request: resolve its future to
    /// `Err(AmError::Cancelled)` and release the pending-reply slot (so
    /// `wait_all` stops accounting for it). Returns false if the reply
    /// already arrived. A reply that limps home later is dropped like any
    /// duplicate.
    pub(crate) fn cancel_pending(self: &Arc<Self>, req_id: u64) -> bool {
        let Some(p) = self.pending.remove(req_id) else { return false };
        self.am_metrics.record_cancelled();
        (p.reply)(Err(AmError::Cancelled));
        self.note_progress();
        true
    }

    /// Resolve a pending request to `Err` (delivery failed before or after
    /// the wire). No-op if a reply beat the failure to it.
    fn fail_pending(&self, req_id: u64, err: AmError) {
        if let Some(p) = self.pending.remove(req_id) {
            (p.reply)(Err(err));
        }
    }

    /// Fail every pending request addressed to a PE in `dead` — called when
    /// the reliable-delivery layer reports exhausted retries. The futures
    /// resolve to [`CommError::PeerUnreachable`] instead of hanging.
    fn fail_pes(&self, dead: &[usize]) {
        let victims = self.pending.remove_to(dead);
        // Callbacks run outside the lock: they complete oneshots and may
        // wake arbitrary user code.
        for p in victims {
            (p.reply)(Err(AmError::Comm(CommError::PeerUnreachable { pe: p.dst })));
        }
        // Fire-and-forget launches toward the dead PEs will never be acked:
        // reconcile by crediting them now (forcing `acked = sent` also
        // neutralizes any ack that limps home later).
        let mut reclaimed = 0usize;
        for &pe in dead {
            if pe >= self.num_pes {
                continue;
            }
            let mut origin = self.unit_origin[pe].lock();
            reclaimed += (origin.sent - origin.acked) as usize;
            origin.acked = origin.sent;
        }
        if reclaimed > 0 {
            self.my_pending.fetch_sub(reclaimed, Ordering::AcqRel);
        }
    }

    /// Launch `am` on every PE in the world (including this one).
    pub fn exec_am_all<T: LamellarAm + Clone>(self: &Arc<Self>, am: T) -> MultiAmHandle<T::Output> {
        let handles =
            (0..self.num_pes).map(|dst| Some(self.exec_am_pe(dst, am.clone()))).collect::<Vec<_>>();
        let results = (0..self.num_pes).map(|_| None).collect();
        MultiAmHandle { handles, results }
    }

    /// Spawn a plain user future on the PE's thread pool; tracked by
    /// `wait_all` like an AM.
    pub fn spawn<F>(self: &Arc<Self>, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        self.my_pending.fetch_add(1, Ordering::AcqRel);
        let rt = Arc::clone(self);
        self.pool.spawn(async move {
            let out = fut.await;
            rt.my_pending.fetch_sub(1, Ordering::AcqRel);
            out
        })
    }

    /// Drive a future to completion on the calling thread, helping the
    /// thread pool while blocked. Only blocks this PE.
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        self.pool.block_on(fut)
    }

    /// Block until every AM and task launched by this PE has completed.
    pub fn wait_all(self: &Arc<Self>) {
        let _waiting = WaitGuard::new(self);
        let mut backoff = Backoff::new();
        loop {
            self.lamellae.flush();
            if self.my_pending.load(Ordering::Acquire) == 0 {
                return;
            }
            if self.tick() {
                backoff.reset();
            } else {
                backoff.snooze();
            }
        }
    }

    /// [`RuntimeInner::wait_all`] that reports liveness-watchdog verdicts:
    /// if the watchdog's fail mode abandoned stalled work during this wait,
    /// returns `Err(AmError::Stalled { .. })` (the wait still terminates —
    /// the stalled futures were resolved to `Err`). Without a configured
    /// watchdog this is exactly `wait_all`.
    pub fn try_wait_all(self: &Arc<Self>) -> Result<(), AmError> {
        let before = self.stall_events.load(Ordering::Acquire);
        self.wait_all();
        if self.stall_events.load(Ordering::Acquire) != before {
            if let Some(stall) = self.last_stall.lock().take() {
                return Err(stall);
            }
        }
        Ok(())
    }

    /// Global synchronization across all PEs. Keeps servicing progress (and
    /// therefore incoming AMs) while waiting.
    pub fn barrier(self: &Arc<Self>) {
        let _waiting = WaitGuard::new(self);
        self.lamellae.flush();
        let rt = Arc::clone(self);
        self.lamellae.barrier_with(&mut || {
            rt.tick();
        });
    }

    /// One progress tick: drain incoming chunks, parsing each envelope in
    /// place out of the transport's pooled receive buffer. Also expires AM
    /// deadlines. Returns true if any message was handled or deadline
    /// fired.
    pub(crate) fn tick(self: &Arc<Self>) -> bool {
        self.inline_budget.store(INLINE_BUDGET_PER_TICK, Ordering::Relaxed);
        let rt = Arc::clone(self);
        let any = self.lamellae.progress(&mut |src, chunk| {
            for body in proto::deframe_raw(chunk) {
                let view = EnvelopeView::parse(body).expect("envelope decode");
                rt.handle(src, view);
            }
        });
        // Piggyback counted-completion credits onto whatever flushes next
        // toward each unit-AM source (DESIGN.md §4d). A quiet tick flushes
        // partial credits so blocked origins never wait on the batch; the
        // periodic force bounds credit latency even if *unrelated* traffic
        // keeps every tick busy indefinitely.
        let force = !any || self.ack_tick.fetch_add(1, Ordering::Relaxed) % 256 == 255;
        self.flush_unit_acks(force);
        let timed = self.check_deadlines();
        // Surface reliable-delivery breakdowns: every future addressed to a
        // newly dead PE resolves to Err right here, on the progress path.
        let dead = self.lamellae.take_comm_failures();
        if !dead.is_empty() {
            self.fail_pes(&dead);
            self.note_progress();
            return true;
        }
        if any || timed {
            self.note_progress();
        }
        any || timed
    }

    /// Record observable runtime progress for the liveness watchdog.
    #[inline]
    fn note_progress(&self) {
        self.progress_epoch.fetch_add(1, Ordering::Release);
    }

    /// Mark the current thread as blocked in a wait/barrier for the
    /// duration of the returned guard (watchdog instrumentation for waits
    /// implemented outside this module, e.g. team barriers).
    pub(crate) fn wait_guard(&self) -> WaitGuard<'_> {
        WaitGuard::new(self)
    }

    /// Dispatch one incoming envelope. The view borrows from the receive
    /// buffer; data that must outlive this call (the AM future's state, the
    /// typed reply value) is produced by the typed decode, not by copying
    /// the raw bytes first.
    fn handle(self: &Arc<Self>, wire_src: usize, env: EnvelopeView<'_>) {
        match env {
            EnvelopeView::Request { am_id, req_id, src_pe, payload } => {
                self.dispatch_request(am_id, req_id, src_pe as usize, payload);
            }
            EnvelopeView::RequestUnit { am_id, src_pe, payload } => {
                self.dispatch_unit_request(am_id, src_pe as usize, payload);
            }
            EnvelopeView::AckCount { n } => self.handle_ack(wire_src, n),
            EnvelopeView::LargeRequest { am_id, req_id, src_pe, heap_offset, len } => {
                let src_pe = src_pe as usize;
                let mut payload = vec![0u8; len as usize];
                // SAFETY: the sender staged [off, off+len) for us and will
                // not touch it until our FreeHeap arrives.
                unsafe { self.lamellae.get(src_pe, heap_offset as usize, &mut payload) };
                let env = Envelope::FreeHeap(heap_offset);
                self.lamellae
                    .send_with(src_pe, proto::framed_len(&env), &mut |buf| frame(&env, buf));
                self.dispatch_request(am_id, req_id, src_pe, &payload);
            }
            EnvelopeView::Reply { req_id, payload } => {
                // An absent entry is legal under faults: the request was
                // already failed as PeerUnreachable (one direction died) and
                // the reply limped home anyway. Drop it — the future has
                // resolved.
                let Some(p) = self.pending.remove(req_id) else { return };
                self.am_metrics.record_reply_received();
                (p.reply)(Ok(payload));
            }
            EnvelopeView::ReplyErr { req_id, msg } => {
                let Some(p) = self.pending.remove(req_id) else { return };
                self.am_metrics.record_reply_received();
                (p.reply)(Err(AmError::RemotePanic { pe: p.dst, msg: msg.to_string() }));
            }
            EnvelopeView::FreeHeap { offset } => {
                self.lamellae.free_heap(self.pe, offset as usize);
            }
        }
    }

    /// Decode an inbound AM and return its (panic-guarded) erased future.
    fn decode_am(
        self: &Arc<Self>,
        am_id: u64,
        src_pe: usize,
        payload: &[u8],
    ) -> CatchPanic<std::pin::Pin<Box<dyn Future<Output = Vec<u8>> + Send>>> {
        self.am_metrics.record_received();
        let vtable = lookup_am(am_id).unwrap_or_else(|| {
            panic!("incoming AM with unregistered id {am_id:#x} — register_am on every PE")
        });
        let ctx = AmContext { rt: Arc::clone(self), src_pe };
        // Deserialization runs under this runtime's context so Darcs inside
        // the payload can resolve. This typed decode is the first (and only)
        // point the payload bytes leave the receive buffer.
        let fut = with_rt_context(self, || (vtable.exec)(payload, ctx))
            .unwrap_or_else(|e| panic!("AM payload decode failed for {}: {e}", vtable.name));
        CatchPanic(fut)
    }

    /// Claim one unit of this tick's inline-execution budget.
    #[inline]
    fn take_inline_budget(&self) -> bool {
        self.inline_budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_ok()
    }

    /// Is an AM with this payload size a candidate for inline execution?
    ///
    /// Payload size is the only work proxy available before decoding, and
    /// it is a good one for the aggregated kernels: a big payload means a
    /// big batch (thousands of table updates), and running those on the
    /// single progress thread would *serialize* work the pool executes in
    /// parallel — measurably losing throughput. Small payloads mean
    /// latency-bound handlers where skipping the spawn is pure win.
    #[inline]
    fn inline_eligible(&self, payload_len: usize) -> bool {
        payload_len <= INLINE_MAX_PAYLOAD && self.take_inline_budget()
    }

    fn dispatch_request(self: &Arc<Self>, am_id: u64, req_id: u64, src_pe: usize, payload: &[u8]) {
        let payload_len = payload.len();
        let mut fut = self.decode_am(am_id, src_pe, payload);
        // Inline fast path: poll once on the progress path. Synchronous
        // handlers complete immediately and their reply is framed straight
        // into the aggregation buffer — no pool spawn, no task box churn.
        if self.inline_eligible(payload_len) {
            if let std::task::Poll::Ready(out) = poll_once(std::pin::Pin::new(&mut fut)) {
                self.am_metrics.record_inline_exec();
                self.send_reply(src_pe, req_id, out);
                return;
            }
        }
        self.am_metrics.record_spilled_exec();
        let rt = Arc::clone(self);
        drop(self.pool.spawn(async move {
            let out = fut.await;
            rt.send_reply(src_pe, req_id, out);
        }));
    }

    /// Frame the outcome of a tracked AM back to its origin: a `Reply` on
    /// success, a `ReplyErr` carrying the caught panic otherwise.
    fn send_reply(&self, src_pe: usize, req_id: u64, out: Result<Vec<u8>, String>) {
        self.am_metrics.record_reply_sent();
        match out {
            Ok(out_bytes) => {
                self.lamellae.send_with(
                    src_pe,
                    proto::framed_reply_len(out_bytes.len()),
                    &mut |buf| proto::frame_reply(buf, req_id, &out_bytes),
                );
            }
            Err(msg) => {
                // The panic is caught *here*, on the serving PE: the worker
                // thread survives and the caller gets a typed error reply
                // instead of a stranded future.
                self.am_metrics.record_panic_caught();
                let env = Envelope::ReplyErr(req_id, msg);
                self.lamellae
                    .send_with(src_pe, proto::framed_len(&env), &mut |buf| frame(&env, buf));
            }
        }
    }

    /// Dispatch a fire-and-forget unit AM: execute it (inline when the
    /// budget allows and the handler is synchronous, on the pool otherwise)
    /// and bump the per-source served count. No reply of any kind is sent —
    /// [`RuntimeInner::flush_unit_acks`] conveys completion in bulk. A
    /// panicking unit AM still counts as served (the origin's `wait_all`
    /// must terminate); the panic is recorded, not reported.
    fn dispatch_unit_request(self: &Arc<Self>, am_id: u64, src_pe: usize, payload: &[u8]) {
        let payload_len = payload.len();
        let mut fut = self.decode_am(am_id, src_pe, payload);
        if self.inline_eligible(payload_len) {
            if let std::task::Poll::Ready(out) = poll_once(std::pin::Pin::new(&mut fut)) {
                self.am_metrics.record_inline_exec();
                if out.is_err() {
                    self.am_metrics.record_panic_caught();
                }
                self.unit_served[src_pe].fetch_add(1, Ordering::AcqRel);
                return;
            }
        }
        self.am_metrics.record_spilled_exec();
        let rt = Arc::clone(self);
        drop(self.pool.spawn(async move {
            if fut.await.is_err() {
                rt.am_metrics.record_panic_caught();
            }
            rt.unit_served[src_pe].fetch_add(1, Ordering::AcqRel);
            rt.note_progress();
        }));
    }

    /// Payload size (bytes) above which AM payloads take the heap-staging
    /// path — also the runtime's aggregation threshold (the two coincide,
    /// as in the paper's Fig. 2 discussion).
    pub fn large_threshold(&self) -> usize {
        self.large_threshold
    }

    /// Number of AMs/tasks this PE has launched and not yet completed.
    pub fn pending_count(&self) -> usize {
        self.my_pending.load(Ordering::Acquire)
    }

    /// Number of outstanding *tracked* (reply-carrying) request slots on
    /// this PE. Unit AMs never allocate one — their completion is counted
    /// via cumulative acks — so a pure fire-and-forget workload reads 0.
    pub fn pending_handles(&self) -> usize {
        self.pending.len()
    }

    /// The progress engine: runs on a dedicated thread until shutdown.
    /// When the wire is idle it flushes partial aggregation buffers, so
    /// sub-threshold batches (e.g. AM replies) never stall.
    pub(crate) fn progress_loop(self: &Arc<Self>) {
        while !self.shutdown.load(Ordering::Acquire) {
            let any = self.tick();
            if !any {
                self.lamellae.flush();
                std::thread::sleep(std::time::Duration::from_micros(20));
            }
        }
    }

    /// The liveness watchdog (DESIGN.md §4c): runs on a dedicated thread
    /// until shutdown, declaring a stall when this PE has been blocked in
    /// `wait_all`/`barrier` for `cfg.interval` with remote AMs in flight
    /// and zero runtime progress. On a verdict it emits a one-shot
    /// diagnostic dump; in fail mode it additionally resolves the stalled
    /// requests to `Err(AmError::Stalled)` so the wait terminates.
    ///
    /// Scope: the watchdog monitors *remote* liveness (its unit of blame is
    /// the in-flight request). A wait blocked only on local tasks, or a
    /// barrier with no requests outstanding, is never flagged.
    pub(crate) fn watchdog_loop(self: &Arc<Self>, cfg: WatchdogConfig) {
        let step = (cfg.interval / 4).max(Duration::from_millis(1));
        let mut last_epoch = self.progress_epoch.load(Ordering::Acquire);
        let mut stalled_since: Option<Instant> = None;
        let mut dumped = false;
        while !self.shutdown.load(Ordering::Acquire) {
            std::thread::sleep(step);
            let epoch = self.progress_epoch.load(Ordering::Acquire);
            let blocked = self.waiting.load(Ordering::Acquire) > 0;
            let remote_inflight = !self.pending.is_empty() || self.unit_outstanding() > 0;
            if epoch != last_epoch || !blocked || !remote_inflight {
                last_epoch = epoch;
                stalled_since = None;
                dumped = false; // re-arm the one-shot dump once progress resumes
                continue;
            }
            let since = *stalled_since.get_or_insert_with(Instant::now);
            let waited = since.elapsed();
            if waited < cfg.interval {
                continue;
            }
            // Verdict: >= interval of zero progress while blocked with
            // remote work in flight. The event count is bumped *before*
            // pending entries are failed — the moment a failed future
            // unblocks `wait_all`, `try_wait_all` must already see both the
            // count and `last_stall`.
            self.am_metrics.record_stall();
            self.stall_events.fetch_add(1, Ordering::AcqRel);
            if !dumped {
                self.dump_stall_diagnostic(waited);
                dumped = true;
            }
            if cfg.fail {
                self.fail_all_pending_stalled(waited);
            }
            // Warn mode: re-verdict (without re-dumping) after another full
            // interval of continued silence.
            stalled_since = None;
        }
    }

    /// One-shot stall diagnostic: what this PE is waiting for and where the
    /// runtime's queues stand, printed to stderr (the watchdog's audience
    /// is a human staring at a hung job).
    fn dump_stall_diagnostic(&self, waited: Duration) {
        let count = self.pending.len();
        let dsts = self.pending.dsts();
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "[lamellar-watchdog] PE {}: zero progress for {waited:?} while blocked in wait/barrier",
            self.pe
        );
        let _ = writeln!(
            out,
            "  in-flight remote AMs: {count} (to PEs {dsts:?}); unacked unit AMs: {}; local tasks+AMs pending: {}",
            self.unit_outstanding(),
            self.my_pending.load(Ordering::Acquire)
        );
        for pair in self.lamellae.pair_liveness() {
            let _ = writeln!(out, "  pair {pair}");
        }
        let exec = self.pool.stats();
        let _ = writeln!(
            out,
            "  executor: spawned {} completed {} stolen {} queue-depth hwm {:?}",
            exec.spawned, exec.completed, exec.stolen, exec.queue_depth_hwm
        );
        eprint!("{out}");
    }

    /// Fail-mode watchdog action: resolve every pending remote request to
    /// `Err(AmError::Stalled)` and remember one representative error for
    /// `try_wait_all` to report.
    fn fail_all_pending_stalled(&self, waited: Duration) {
        let victims = self.pending.drain_all();
        // Abandon unacked fire-and-forget launches too, or a stalled
        // unit-only workload would leave `wait_all` spinning forever.
        let mut reclaimed = 0usize;
        let mut stalled_unit_dst = None;
        for (pe, origin) in self.unit_origin.iter().enumerate() {
            let mut o = origin.lock();
            if o.sent > o.acked {
                stalled_unit_dst.get_or_insert(pe);
                reclaimed += (o.sent - o.acked) as usize;
                o.acked = o.sent;
            }
        }
        if let Some(first) = victims.first() {
            *self.last_stall.lock() = Some(AmError::Stalled { pe: first.dst, waited });
        } else if let Some(pe) = stalled_unit_dst {
            *self.last_stall.lock() = Some(AmError::Stalled { pe, waited });
        }
        if reclaimed > 0 {
            self.my_pending.fetch_sub(reclaimed, Ordering::AcqRel);
        }
        // Callbacks run outside the lock (they wake user code).
        for p in victims {
            (p.reply)(Err(AmError::Stalled { pe: p.dst, waited }));
        }
    }
}

/// RAII marker that this thread is blocked in `wait_all`/`barrier` — the
/// window in which the liveness watchdog is allowed to declare a stall.
/// Team barriers obtain one through [`RuntimeInner::wait_guard`].
pub(crate) struct WaitGuard<'a>(&'a RuntimeInner);

impl<'a> WaitGuard<'a> {
    fn new(rt: &'a RuntimeInner) -> Self {
        rt.waiting.fetch_add(1, Ordering::AcqRel);
        WaitGuard(rt)
    }
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.0.waiting.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A `Waker` that does nothing: the inline fast path polls each inbound AM
/// future exactly once on the progress path, so a wake has nowhere to go —
/// a future that returns `Pending` is handed to the thread pool, which
/// installs its own waker on the next poll (futures re-register their waker
/// every poll per the `Future` contract).
fn noop_waker() -> std::task::Waker {
    use std::task::{RawWaker, RawWakerVTable, Waker};
    fn clone(_: *const ()) -> RawWaker {
        RawWaker::new(std::ptr::null(), &VTABLE)
    }
    fn noop(_: *const ()) {}
    static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, noop, noop, noop);
    // SAFETY: every vtable entry is a no-op over a null data pointer.
    unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), &VTABLE)) }
}

/// Poll `fut` once with a no-op waker (the inline-execution probe).
fn poll_once<F: Future + Unpin>(fut: std::pin::Pin<&mut F>) -> std::task::Poll<F::Output> {
    let waker = noop_waker();
    let mut cx = std::task::Context::from_waker(&waker);
    F::poll(fut, &mut cx)
}

impl std::fmt::Debug for RuntimeInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeInner")
            .field("pe", &self.pe)
            .field("num_pes", &self.num_pes)
            .field("pending", &self.pending_count())
            .finish()
    }
}

/// Execution context handed to every AM's `exec` (the paper exposes the
/// same information through `lamellar::current_pe`, `lamellar::num_pes`,
/// `lamellar::world`, and `lamellar::team`).
#[derive(Clone)]
pub struct AmContext {
    pub(crate) rt: Arc<RuntimeInner>,
    pub(crate) src_pe: usize,
}

impl AmContext {
    /// The PE this AM is executing on (`lamellar::current_pe`).
    pub fn current_pe(&self) -> usize {
        self.rt.pe()
    }

    /// Total PEs in the world (`lamellar::num_pes`).
    pub fn num_pes(&self) -> usize {
        self.rt.num_pes()
    }

    /// The PE that launched this AM.
    pub fn src_pe(&self) -> usize {
        self.src_pe
    }

    /// A world handle for launching nested AMs (`lamellar::world`) — "both
    /// Lamellar::world and Lamellar::team can be used to launch new AMs
    /// from within a currently executing AM".
    pub fn world(&self) -> crate::world::LamellarWorld {
        crate::world::LamellarWorld::from_rt(Arc::clone(&self.rt))
    }
}

impl std::fmt::Debug for AmContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AmContext")
            .field("current_pe", &self.current_pe())
            .field("src_pe", &self.src_pe)
            .finish()
    }
}
