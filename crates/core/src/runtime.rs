//! Per-PE runtime state: request tracking, dispatch, progress engine.
//!
//! One [`RuntimeInner`] exists per PE. It owns the PE's thread pool and
//! Lamellae, tracks in-flight requests for `wait_all`, and dispatches
//! incoming envelopes:
//!
//! * `Request` → look up the AM in the registry, deserialize, spawn its
//!   `exec` future on the thread pool, and send the encoded output back as
//!   a `Reply` (paper Sec. III-C: "the communication task will create an
//!   asynchronous task to deserialize, execute and return results").
//! * `Reply` → complete the caller's pending-request entry, decoding the
//!   payload into the typed [`crate::am::AmHandle`].
//! * `LargeRequest`/`FreeHeap` → the big-payload staging handshake.
//!
//! A dedicated progress thread per PE polls the Lamellae and flushes
//! aggregation buffers when the wire goes idle. Barriers and `wait_all`
//! also pump progress, so a PE blocked in a collective keeps executing AMs
//! sent to it.

use crate::am::{am_id, lookup_am, register_am, AmError, AmHandle, LamellarAm, MultiAmHandle};
use crate::lamellae::{CommError, Lamellae};
use crate::proto::{self, frame, Envelope, EnvelopeView};
use crate::world::WorldShared;
use lamellar_codec::Codec;
use lamellar_executor::{oneshot, Backoff, JoinHandle, ThreadPool};
use lamellar_metrics::{AmMetrics, RuntimeStats};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::future::Future;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Completion callback for one pending request: decodes the reply payload
/// (or carries the failure — remote panic or comm breakdown) and resolves
/// the typed handle. The payload is a slice borrowed from the transport's
/// receive buffer — the callback deserializes in place, the only copy on
/// the reply path being the typed decode itself.
type PendingReply = Box<dyn for<'a> FnOnce(Result<&'a [u8], AmError>) + Send>;

/// One in-flight remote request: its destination (so comm failures toward
/// that PE can fail it) and the completion callback.
struct Pending {
    dst: usize,
    reply: PendingReply,
}

/// Adapter that converts a panicking future into `Err(panic message)`, so
/// a crashed AM produces an error reply instead of stranding its caller.
struct CatchPanic<F>(F);

impl<F: Future> Future for CatchPanic<F> {
    type Output = Result<F::Output, String>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        // SAFETY: structural pinning of the sole field.
        let inner = unsafe { self.map_unchecked_mut(|s| &mut s.0) };
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inner.poll(cx))) {
            Ok(std::task::Poll::Ready(v)) => std::task::Poll::Ready(Ok(v)),
            Ok(std::task::Poll::Pending) => std::task::Poll::Pending,
            Err(payload) => std::task::Poll::Ready(Err(panic_message(&*payload))),
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-PE runtime state.
pub struct RuntimeInner {
    pe: usize,
    num_pes: usize,
    lamellae: Arc<dyn Lamellae>,
    pool: ThreadPool,
    shared: Arc<WorldShared>,
    pending: Mutex<HashMap<u64, Pending>>,
    next_req: AtomicU64,
    /// AMs this PE has launched that have not yet completed (drives
    /// `wait_all`, which "blocks the calling PE until all of the AMs it
    /// launched have completed").
    my_pending: AtomicUsize,
    /// Signals the progress thread to exit.
    pub(crate) shutdown: AtomicBool,
    /// Payload size above which requests take the heap-staging path.
    large_threshold: usize,
    /// AM-layer observability: directional AM counts, replies, batch
    /// fan-out, Darc lifecycle events.
    am_metrics: Arc<AmMetrics>,
}

thread_local! {
    static CURRENT_RT: RefCell<Vec<Arc<RuntimeInner>>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with `rt` installed as the thread's current runtime — the decode
/// context Darcs and memory regions need to resolve their registry entries.
pub(crate) fn with_rt_context<R>(rt: &Arc<RuntimeInner>, f: impl FnOnce() -> R) -> R {
    CURRENT_RT.with(|c| c.borrow_mut().push(Arc::clone(rt)));
    // Pop even on panic so a panicking AM doesn't poison the stack.
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            CURRENT_RT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
    let _guard = PopGuard;
    f()
}

/// The runtime a (de)serialization is currently executing under, if any.
pub(crate) fn current_rt() -> Option<Arc<RuntimeInner>> {
    CURRENT_RT.with(|c| c.borrow().last().cloned())
}

impl RuntimeInner {
    pub(crate) fn new(
        lamellae: Arc<dyn Lamellae>,
        pool: ThreadPool,
        shared: Arc<WorldShared>,
        large_threshold: usize,
        metrics: bool,
    ) -> Arc<Self> {
        Arc::new(RuntimeInner {
            pe: lamellae.my_pe(),
            num_pes: lamellae.num_pes(),
            lamellae,
            pool,
            shared,
            pending: Mutex::new(HashMap::new()),
            next_req: AtomicU64::new(1),
            my_pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            large_threshold,
            am_metrics: Arc::new(AmMetrics::new(metrics)),
        })
    }

    /// This PE's id.
    pub fn pe(&self) -> usize {
        self.pe
    }

    /// World size.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// The Lamellae backing this PE.
    pub fn lamellae(&self) -> &Arc<dyn Lamellae> {
        &self.lamellae
    }

    /// The PE's thread pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Cross-PE shared world state.
    pub(crate) fn shared(&self) -> &Arc<WorldShared> {
        &self.shared
    }

    /// The live AM-layer metrics registry (the Darc and array layers record
    /// their lifecycle/fan-out events here).
    pub fn am_metrics(&self) -> &Arc<AmMetrics> {
        &self.am_metrics
    }

    /// Assemble a typed snapshot across every runtime layer this PE can
    /// observe. Fabric counters are fabric-global (shared across PEs);
    /// lamellae, executor, and AM counters are per-PE.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            fabric: self.lamellae.fabric_stats(),
            lamellae: self.lamellae.lamellae_stats(),
            executor: self.pool.stats(),
            am: self.am_metrics.snapshot(),
            fault: self.lamellae.fault_stats(),
        }
    }

    /// Launch `am` on `dst`, returning a typed handle to its output.
    pub fn exec_am_pe<T: LamellarAm>(self: &Arc<Self>, dst: usize, am: T) -> AmHandle<T::Output> {
        assert!(dst < self.num_pes, "PE {dst} out of range (world has {})", self.num_pes);
        register_am::<T>();
        self.my_pending.fetch_add(1, Ordering::AcqRel);
        let (tx, rx) = oneshot::<Result<T::Output, AmError>>();
        if dst == self.pe {
            // Local fast path: no serialization (as in the paper — local AMs
            // are placed directly into the thread pool).
            self.am_metrics.record_local();
            let ctx = AmContext { rt: Arc::clone(self), src_pe: self.pe };
            let rt = Arc::clone(self);
            drop(self.pool.spawn(async move {
                let out = CatchPanic(am.exec(ctx)).await.map_err(AmError::RemotePanic);
                tx.send(out);
                rt.my_pending.fetch_sub(1, Ordering::AcqRel);
            }));
        } else {
            let req_id = self.next_req.fetch_add(1, Ordering::Relaxed);
            let rt = Arc::clone(self);
            self.pending.insert_reply(
                req_id,
                dst,
                Box::new(move |result| {
                    let out = result.map(|bytes| {
                        with_rt_context(&rt, || {
                            T::Output::from_bytes(bytes).expect("AM reply decode")
                        })
                    });
                    tx.send(out);
                    rt.my_pending.fetch_sub(1, Ordering::AcqRel);
                }),
            );
            // `encoded_len` is side-effect free (no Darc/region pinning), so
            // it is safe to size the wire frame before encoding.
            let payload_len = with_rt_context(self, || am.encoded_len());
            self.am_metrics.record_sent();
            if payload_len > self.large_threshold {
                // Stage the payload in the one-sided heap; the receiver
                // RDMA-gets it and sends FreeHeap back.
                let payload = with_rt_context(self, || am.to_bytes());
                debug_assert_eq!(payload.len(), payload_len, "encoded_len disagrees with encode");
                let off = match self.lamellae.try_alloc_heap(payload.len(), 8) {
                    Ok(off) => off,
                    Err(e) => {
                        // Exhausted (or injected-failure) heap: the request
                        // never leaves this PE. Fail the future, don't hang.
                        self.fail_pending(req_id, AmError::Comm(e));
                        return AmHandle { rx };
                    }
                };
                // SAFETY: freshly allocated, private until the receiver is
                // told about it, freed only on FreeHeap.
                unsafe { self.lamellae.put(self.pe, off, &payload) };
                let env = Envelope::LargeRequest(
                    am_id::<T>(),
                    req_id,
                    self.pe as u64,
                    off as u64,
                    payload.len() as u64,
                );
                if let Err(e) =
                    self.lamellae
                        .try_send_with(dst, proto::framed_len(&env), &mut |buf| frame(&env, buf))
                {
                    self.lamellae.free_heap(self.pe, off);
                    self.fail_pending(req_id, AmError::Comm(e));
                }
            } else {
                // Zero-copy send: the AM encodes straight into the
                // aggregation buffer, no intermediate payload or frame Vec.
                let mut am = Some(am);
                let sent = self.lamellae.try_send_with(
                    dst,
                    proto::framed_request_len(payload_len),
                    &mut |buf| {
                        let am = am.take().expect("send_with fill called once");
                        proto::frame_request_with(
                            buf,
                            am_id::<T>(),
                            req_id,
                            self.pe as u64,
                            payload_len,
                            |b| with_rt_context(self, || am.encode(b)),
                        );
                    },
                );
                if let Err(e) = sent {
                    self.fail_pending(req_id, AmError::Comm(e));
                }
            }
        }
        AmHandle { rx }
    }

    /// Resolve a pending request to `Err` (delivery failed before or after
    /// the wire). No-op if a reply beat the failure to it.
    fn fail_pending(&self, req_id: u64, err: AmError) {
        if let Some(p) = self.pending.lock().remove(&req_id) {
            (p.reply)(Err(err));
        }
    }

    /// Fail every pending request addressed to a PE in `dead` — called when
    /// the reliable-delivery layer reports exhausted retries. The futures
    /// resolve to [`CommError::PeerUnreachable`] instead of hanging.
    fn fail_pes(&self, dead: &[usize]) {
        let victims: Vec<Pending> = {
            let mut pending = self.pending.lock();
            let ids: Vec<u64> =
                pending.iter().filter(|(_, p)| dead.contains(&p.dst)).map(|(&id, _)| id).collect();
            ids.iter().map(|id| pending.remove(id).expect("just listed")).collect()
        };
        // Callbacks run outside the lock: they complete oneshots and may
        // wake arbitrary user code.
        for p in victims {
            (p.reply)(Err(AmError::Comm(CommError::PeerUnreachable { pe: p.dst })));
        }
    }

    /// Launch `am` on every PE in the world (including this one).
    pub fn exec_am_all<T: LamellarAm + Clone>(self: &Arc<Self>, am: T) -> MultiAmHandle<T::Output> {
        let handles =
            (0..self.num_pes).map(|dst| Some(self.exec_am_pe(dst, am.clone()))).collect::<Vec<_>>();
        let results = (0..self.num_pes).map(|_| None).collect();
        MultiAmHandle { handles, results }
    }

    /// Spawn a plain user future on the PE's thread pool; tracked by
    /// `wait_all` like an AM.
    pub fn spawn<F>(self: &Arc<Self>, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        self.my_pending.fetch_add(1, Ordering::AcqRel);
        let rt = Arc::clone(self);
        self.pool.spawn(async move {
            let out = fut.await;
            rt.my_pending.fetch_sub(1, Ordering::AcqRel);
            out
        })
    }

    /// Drive a future to completion on the calling thread, helping the
    /// thread pool while blocked. Only blocks this PE.
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        self.pool.block_on(fut)
    }

    /// Block until every AM and task launched by this PE has completed.
    pub fn wait_all(self: &Arc<Self>) {
        let mut backoff = Backoff::new();
        loop {
            self.lamellae.flush();
            if self.my_pending.load(Ordering::Acquire) == 0 {
                return;
            }
            if self.tick() {
                backoff.reset();
            } else {
                backoff.snooze();
            }
        }
    }

    /// Global synchronization across all PEs. Keeps servicing progress (and
    /// therefore incoming AMs) while waiting.
    pub fn barrier(self: &Arc<Self>) {
        self.lamellae.flush();
        let rt = Arc::clone(self);
        self.lamellae.barrier_with(&mut || {
            rt.tick();
        });
    }

    /// One progress tick: drain incoming chunks, parsing each envelope in
    /// place out of the transport's pooled receive buffer. Returns true if
    /// any message was handled.
    pub(crate) fn tick(self: &Arc<Self>) -> bool {
        let rt = Arc::clone(self);
        let any = self.lamellae.progress(&mut |src, chunk| {
            for body in proto::deframe_raw(chunk) {
                let view = EnvelopeView::parse(body).expect("envelope decode");
                rt.handle(src, view);
            }
        });
        // Surface reliable-delivery breakdowns: every future addressed to a
        // newly dead PE resolves to Err right here, on the progress path.
        let dead = self.lamellae.take_comm_failures();
        if !dead.is_empty() {
            self.fail_pes(&dead);
            return true;
        }
        any
    }

    /// Dispatch one incoming envelope. The view borrows from the receive
    /// buffer; data that must outlive this call (the AM future's state, the
    /// typed reply value) is produced by the typed decode, not by copying
    /// the raw bytes first.
    fn handle(self: &Arc<Self>, _wire_src: usize, env: EnvelopeView<'_>) {
        match env {
            EnvelopeView::Request { am_id, req_id, src_pe, payload } => {
                self.dispatch_request(am_id, req_id, src_pe as usize, payload);
            }
            EnvelopeView::LargeRequest { am_id, req_id, src_pe, heap_offset, len } => {
                let src_pe = src_pe as usize;
                let mut payload = vec![0u8; len as usize];
                // SAFETY: the sender staged [off, off+len) for us and will
                // not touch it until our FreeHeap arrives.
                unsafe { self.lamellae.get(src_pe, heap_offset as usize, &mut payload) };
                let env = Envelope::FreeHeap(heap_offset);
                self.lamellae
                    .send_with(src_pe, proto::framed_len(&env), &mut |buf| frame(&env, buf));
                self.dispatch_request(am_id, req_id, src_pe, &payload);
            }
            EnvelopeView::Reply { req_id, payload } => {
                // An absent entry is legal under faults: the request was
                // already failed as PeerUnreachable (one direction died) and
                // the reply limped home anyway. Drop it — the future has
                // resolved.
                let Some(p) = self.pending.lock().remove(&req_id) else { return };
                self.am_metrics.record_reply_received();
                (p.reply)(Ok(payload));
            }
            EnvelopeView::ReplyErr { req_id, msg } => {
                let Some(p) = self.pending.lock().remove(&req_id) else { return };
                self.am_metrics.record_reply_received();
                (p.reply)(Err(AmError::RemotePanic(msg.to_string())));
            }
            EnvelopeView::FreeHeap { offset } => {
                self.lamellae.free_heap(self.pe, offset as usize);
            }
        }
    }

    fn dispatch_request(self: &Arc<Self>, am_id: u64, req_id: u64, src_pe: usize, payload: &[u8]) {
        self.am_metrics.record_received();
        let vtable = lookup_am(am_id).unwrap_or_else(|| {
            panic!("incoming AM with unregistered id {am_id:#x} — register_am on every PE")
        });
        let ctx = AmContext { rt: Arc::clone(self), src_pe };
        // Deserialization runs under this runtime's context so Darcs inside
        // the payload can resolve. This typed decode is the first (and only)
        // point the payload bytes leave the receive buffer.
        let fut = with_rt_context(self, || (vtable.exec)(payload, ctx))
            .unwrap_or_else(|e| panic!("AM payload decode failed for {}: {e}", vtable.name));
        let rt = Arc::clone(self);
        drop(self.pool.spawn(async move {
            let out = CatchPanic(fut).await;
            rt.am_metrics.record_reply_sent();
            match out {
                Ok(out_bytes) => {
                    rt.lamellae.send_with(
                        src_pe,
                        proto::framed_reply_len(out_bytes.len()),
                        &mut |buf| proto::frame_reply(buf, req_id, &out_bytes),
                    );
                }
                Err(msg) => {
                    let env = Envelope::ReplyErr(req_id, msg);
                    rt.lamellae
                        .send_with(src_pe, proto::framed_len(&env), &mut |buf| frame(&env, buf));
                }
            }
        }));
    }

    /// Payload size (bytes) above which AM payloads take the heap-staging
    /// path — also the runtime's aggregation threshold (the two coincide,
    /// as in the paper's Fig. 2 discussion).
    pub fn large_threshold(&self) -> usize {
        self.large_threshold
    }

    /// Number of AMs/tasks this PE has launched and not yet completed.
    pub fn pending_count(&self) -> usize {
        self.my_pending.load(Ordering::Acquire)
    }

    /// The progress engine: runs on a dedicated thread until shutdown.
    /// When the wire is idle it flushes partial aggregation buffers, so
    /// sub-threshold batches (e.g. AM replies) never stall.
    pub(crate) fn progress_loop(self: &Arc<Self>) {
        while !self.shutdown.load(Ordering::Acquire) {
            let any = self.tick();
            if !any {
                self.lamellae.flush();
                std::thread::sleep(std::time::Duration::from_micros(20));
            }
        }
    }
}

/// Small extension so `exec_am_pe` can insert while documenting intent.
trait PendingMap {
    fn insert_reply(&self, req_id: u64, dst: usize, cb: PendingReply);
}

impl PendingMap for Mutex<HashMap<u64, Pending>> {
    fn insert_reply(&self, req_id: u64, dst: usize, cb: PendingReply) {
        let prev = self.lock().insert(req_id, Pending { dst, reply: cb });
        debug_assert!(prev.is_none(), "req_id collision");
    }
}

impl std::fmt::Debug for RuntimeInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeInner")
            .field("pe", &self.pe)
            .field("num_pes", &self.num_pes)
            .field("pending", &self.pending_count())
            .finish()
    }
}

/// Execution context handed to every AM's `exec` (the paper exposes the
/// same information through `lamellar::current_pe`, `lamellar::num_pes`,
/// `lamellar::world`, and `lamellar::team`).
#[derive(Clone)]
pub struct AmContext {
    pub(crate) rt: Arc<RuntimeInner>,
    pub(crate) src_pe: usize,
}

impl AmContext {
    /// The PE this AM is executing on (`lamellar::current_pe`).
    pub fn current_pe(&self) -> usize {
        self.rt.pe()
    }

    /// Total PEs in the world (`lamellar::num_pes`).
    pub fn num_pes(&self) -> usize {
        self.rt.num_pes()
    }

    /// The PE that launched this AM.
    pub fn src_pe(&self) -> usize {
        self.src_pe
    }

    /// A world handle for launching nested AMs (`lamellar::world`) — "both
    /// Lamellar::world and Lamellar::team can be used to launch new AMs
    /// from within a currently executing AM".
    pub fn world(&self) -> crate::world::LamellarWorld {
        crate::world::LamellarWorld::from_rt(Arc::clone(&self.rt))
    }
}

impl std::fmt::Debug for AmContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AmContext")
            .field("current_pe", &self.current_pe())
            .field("src_pe", &self.src_pe)
            .finish()
    }
}
