//! Low-level PGAS abstractions: memory regions (paper Sec. III-D).
//!
//! These are the *unsafe* tier of Lamellar's two-level PGAS design:
//! "Low-level abstractions are designed for internal use by the runtime
//! itself. They provide fewer safeguards, and their use by end users is
//! discouraged." The safe tier (LamellarArrays) is built on top of these in
//! the `lamellar-array` crate.
//!
//! * [`SharedMemoryRegion`] — collectively allocated, same-size block on
//!   every team PE; put/get address any member's block.
//! * [`OneSidedMemoryRegion`] — allocated by one PE from its dynamic heap;
//!   put/get always address the constructing PE.
//!
//! Both are "specialized types of distributed atomically reference counted
//! objects (Darcs)": they can be sent in AMs, and their RDMA memory is
//! released only when the last handle anywhere (or in flight) drops.

use crate::lamellae::CommError;
use crate::runtime::{current_rt, RuntimeInner};
use crate::team::LamellarTeam;
use crate::world::WorldShared;
use lamellar_codec::{Codec, CodecError, Reader};
use std::any::Any;
use std::marker::PhantomData;
use std::sync::{Arc, Weak};

/// Element types that may live in RDMA memory and cross PEs as raw bytes.
///
/// # Safety
/// Implementors must be plain-old-data: every bit pattern the type's
/// `put`/`get` peers can produce must be a valid value, and the type must
/// contain no pointers/references/padding whose reinterpretation across PEs
/// would be unsound. The provided impls cover the primitive numeric types.
pub unsafe trait Dist: Copy + Send + Sync + 'static {}

macro_rules! impl_dist {
    ($($t:ty),*) => {
        $(
            // SAFETY: primitive numeric types are valid for every bit
            // pattern and contain no indirection.
            unsafe impl Dist for $t {}
        )*
    };
}

impl_dist!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

// SAFETY: arrays of POD are POD.
unsafe impl<T: Dist, const N: usize> Dist for [T; N] {}

/// Backing state for a shared region; dropping the last handle releases the
/// symmetric allocation on every PE.
struct SharedRegionState {
    id: u64,
    offset: usize,
    /// Block size per PE (kept for diagnostics/Debug).
    #[allow(dead_code)]
    bytes_per_pe: usize,
    shared: Weak<WorldShared>,
    /// Any member's runtime works for freeing symmetric memory (the
    /// allocator is shared); we keep rank 0's.
    rt: Arc<RuntimeInner>,
    team_pes: Vec<usize>,
}

impl Drop for SharedRegionState {
    fn drop(&mut self) {
        self.rt.lamellae().free_symmetric(self.offset);
        if let Some(shared) = self.shared.upgrade() {
            shared.unregister_trackable(self.id);
        }
    }
}

/// A same-size RDMA block on every PE of a team (paper Sec. III-D.1).
///
/// "Although creating a new SharedMemoryRegion is a collective blocking
/// call it only blocks the calling thread, allowing the thread pool to
/// execute other tasks."
pub struct SharedMemoryRegion<T: Dist> {
    state: Arc<SharedRegionState>,
    /// The holder's runtime (put/get issue from here, so transfer charging
    /// and local access use the right PE).
    rt: Arc<RuntimeInner>,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: Dist> SharedMemoryRegion<T> {
    /// Collectively allocate `len` elements per PE over `team`.
    pub(crate) fn new(team: LamellarTeam, len: usize) -> Self {
        let rt = Arc::clone(team.rt());
        let bytes = (len * std::mem::size_of::<T>()).max(1);
        let align = std::mem::align_of::<T>().max(8);
        // Root allocates from the shared symmetric allocator ("the
        // allocation occurs directly from the underlying network fabric")
        // and publishes the state.
        let shared = Arc::clone(rt.shared());
        let root_rt = Arc::clone(&rt);
        let team_pes = team.pes().to_vec();
        let state = team.exchange_object(0, move || {
            // Collective construction cannot propagate a Result (every
            // member is already committed to the exchange), so exhaustion
            // panics — but through the typed error, not a bare expect.
            let offset = root_rt
                .lamellae()
                .try_alloc_symmetric(bytes, align)
                .unwrap_or_else(|e| panic!("shared region allocation: {e}"));
            let id = shared.new_trackable_id();
            SharedRegionState {
                id,
                offset,
                bytes_per_pe: bytes,
                shared: Arc::downgrade(&shared),
                rt: root_rt,
                team_pes,
            }
        });
        if team.my_rank() == 0 {
            rt.shared().register_trackable(
                state.id,
                Arc::downgrade(&state) as Weak<dyn Any + Send + Sync>,
            );
        }
        team.barrier();
        SharedMemoryRegion { state, rt, len, _marker: PhantomData }
    }

    /// Elements per PE.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the region holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// World PE ids of the owning team.
    pub fn team_pes(&self) -> &[usize] {
        &self.state.team_pes
    }

    /// Arena byte offset of element `index` (identical on every member PE).
    #[doc(hidden)]
    pub fn raw_offset(&self, index: usize) -> usize {
        assert!(index <= self.len, "index {index} out of bounds (len {})", self.len);
        self.state.offset + index * std::mem::size_of::<T>()
    }

    fn check_range(&self, index: usize, n: usize) {
        assert!(
            index + n <= self.len,
            "range [{index}, {}) out of bounds (len {})",
            index + n,
            self.len
        );
    }

    /// Write `src` into `dst_pe`'s block starting at element `index` —
    /// `fn put(dest_pe, index, src_buf)` from the paper.
    ///
    /// # Safety
    /// No PE may concurrently access the destination elements ("there are
    /// no protections against remote PEs writing to local data").
    pub unsafe fn put(&self, dst_pe: usize, index: usize, src: &[T]) {
        self.check_range(index, src.len());
        let bytes = unsafe {
            std::slice::from_raw_parts(src.as_ptr() as *const u8, std::mem::size_of_val(src))
        };
        // SAFETY: bounds checked against the allocation; data-race freedom
        // is the caller's contract.
        unsafe { self.rt.lamellae().put(dst_pe, self.raw_offset(index), bytes) };
    }

    /// Read from `src_pe`'s block starting at element `index` into `dst` —
    /// `fn get(src_pe, index, dst_buf)` from the paper.
    ///
    /// # Safety
    /// No PE may concurrently write the source elements.
    pub unsafe fn get(&self, src_pe: usize, index: usize, dst: &mut [T]) {
        self.check_range(index, dst.len());
        let bytes = unsafe {
            std::slice::from_raw_parts_mut(dst.as_mut_ptr() as *mut u8, std::mem::size_of_val(dst))
        };
        // SAFETY: bounds checked; no-concurrent-writer is the caller's
        // contract.
        unsafe { self.rt.lamellae().get(src_pe, self.raw_offset(index), bytes) };
    }

    /// Borrow the local PE's block.
    ///
    /// # Safety
    /// No PE may write the block for the returned lifetime.
    pub unsafe fn as_slice(&self) -> &[T] {
        let base = self.rt.lamellae().base_ptr(self.rt.pe());
        // SAFETY: the allocation is live (we hold the state) and in bounds.
        unsafe { std::slice::from_raw_parts(base.add(self.state.offset) as *const T, self.len) }
    }

    /// Mutably borrow the local PE's block.
    ///
    /// # Safety
    /// No PE may access the block for the returned lifetime.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn as_mut_slice(&self) -> &mut [T] {
        let base = self.rt.lamellae().base_ptr(self.rt.pe());
        // SAFETY: as above, with exclusivity from the caller's contract.
        unsafe { std::slice::from_raw_parts_mut(base.add(self.state.offset) as *mut T, self.len) }
    }

    /// The holder's runtime (array layer plumbing).
    #[doc(hidden)]
    pub fn rt(&self) -> &Arc<RuntimeInner> {
        &self.rt
    }

    /// Number of live handles (plus in-flight serialized references) across
    /// *all* PEs. The array layer's type conversions use this to implement
    /// the paper's rule that conversion "only succeeds when there is
    /// precisely one reference to the array on each PE".
    pub fn handle_count(&self) -> usize {
        // The registry holds only a Weak; every clone holds one strong ref.
        Arc::strong_count(&self.state)
    }
}

impl<T: Dist> Clone for SharedMemoryRegion<T> {
    fn clone(&self) -> Self {
        SharedMemoryRegion {
            state: Arc::clone(&self.state),
            rt: Arc::clone(&self.rt),
            len: self.len,
            _marker: PhantomData,
        }
    }
}

impl<T: Dist> Codec for SharedMemoryRegion<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        if let Some(shared) = self.state.shared.upgrade() {
            shared.pin_trackable(
                self.state.id,
                Arc::clone(&self.state) as Arc<dyn Any + Send + Sync>,
            );
        }
        self.state.id.encode(buf);
        self.len.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        // Pure arithmetic: `encode` pins the region (side effect), so the
        // encode-and-measure default must not run for sizing. u64 id + len.
        8 + 8
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let id = u64::decode(r)?;
        let len = usize::decode(r)?;
        let rt = current_rt().expect("SharedMemoryRegion decoded outside a runtime context");
        let state = rt
            .shared()
            .lookup_trackable(id)
            .ok_or(CodecError::UnknownTypeHash(id))?
            .downcast::<SharedRegionState>()
            .map_err(|_| CodecError::UnknownTypeHash(id))?;
        rt.shared().unpin_trackable(id);
        Ok(SharedMemoryRegion { state, rt, len, _marker: PhantomData })
    }
}

impl<T: Dist> std::fmt::Debug for SharedMemoryRegion<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedMemoryRegion")
            .field("id", &self.state.id)
            .field("len", &self.len)
            .field("offset", &self.state.offset)
            .finish()
    }
}

/// Backing state for a one-sided region.
struct OneSidedState {
    id: u64,
    origin_pe: usize,
    offset: usize,
    shared: Weak<WorldShared>,
    rt: Arc<RuntimeInner>,
}

impl Drop for OneSidedState {
    fn drop(&mut self) {
        self.rt.lamellae().free_heap(self.origin_pe, self.offset);
        if let Some(shared) = self.shared.upgrade() {
            shared.unregister_trackable(self.id);
        }
    }
}

/// An RDMA block allocated by (and addressing) a single PE (paper
/// Sec. III-D.2): "only the calling PE is involved in the allocation ...
/// The put/get will always refer to the original constructing PE."
pub struct OneSidedMemoryRegion<T: Dist> {
    state: Arc<OneSidedState>,
    rt: Arc<RuntimeInner>,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: Dist> OneSidedMemoryRegion<T> {
    /// Allocate `len` elements on the calling PE's dynamic heap ("the
    /// runtime can often allocate the memory directly from its internal
    /// RDMA memory heap"). Panics with the typed allocation error on heap
    /// exhaustion; use [`OneSidedMemoryRegion::try_new`] to handle it.
    pub(crate) fn new(rt: Arc<RuntimeInner>, len: usize) -> Self {
        Self::try_new(rt, len).unwrap_or_else(|e| panic!("one-sided region allocation: {e}"))
    }

    /// Fallible [`OneSidedMemoryRegion::new`]: surfaces heap exhaustion
    /// (genuine, or injected by an armed fault plane) instead of panicking.
    ///
    /// # Errors
    /// [`CommError::AllocFailed`] when the PE's one-sided heap cannot fit
    /// `len` elements.
    pub(crate) fn try_new(rt: Arc<RuntimeInner>, len: usize) -> Result<Self, CommError> {
        let bytes = (len * std::mem::size_of::<T>()).max(1);
        let align = std::mem::align_of::<T>().max(8);
        let offset = rt.lamellae().try_alloc_heap(bytes, align)?;
        let shared = rt.shared();
        let id = shared.new_trackable_id();
        let state = Arc::new(OneSidedState {
            id,
            origin_pe: rt.pe(),
            offset,
            shared: Arc::downgrade(shared),
            rt: Arc::clone(&rt),
        });
        shared.register_trackable(id, Arc::downgrade(&state) as Weak<dyn Any + Send + Sync>);
        Ok(OneSidedMemoryRegion { state, rt, len, _marker: PhantomData })
    }

    /// Elements in the region.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the region holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The PE whose memory this region occupies.
    pub fn origin_pe(&self) -> usize {
        self.state.origin_pe
    }

    fn check_range(&self, index: usize, n: usize) {
        assert!(
            index + n <= self.len,
            "range [{index}, {}) out of bounds (len {})",
            index + n,
            self.len
        );
    }

    /// Write `src` at element `index` of the origin PE's block (no
    /// destination PE argument — one-sided).
    ///
    /// # Safety
    /// No PE may concurrently access the destination elements.
    pub unsafe fn put(&self, index: usize, src: &[T]) {
        self.check_range(index, src.len());
        let bytes = unsafe {
            std::slice::from_raw_parts(src.as_ptr() as *const u8, std::mem::size_of_val(src))
        };
        let off = self.state.offset + index * std::mem::size_of::<T>();
        // SAFETY: bounds checked; race freedom is the caller's contract.
        unsafe { self.rt.lamellae().put(self.state.origin_pe, off, bytes) };
    }

    /// Read from element `index` of the origin PE's block into `dst`.
    ///
    /// # Safety
    /// No PE may concurrently write the source elements.
    pub unsafe fn get(&self, index: usize, dst: &mut [T]) {
        self.check_range(index, dst.len());
        let bytes = unsafe {
            std::slice::from_raw_parts_mut(dst.as_mut_ptr() as *mut u8, std::mem::size_of_val(dst))
        };
        let off = self.state.offset + index * std::mem::size_of::<T>();
        // SAFETY: bounds checked; no-concurrent-writer is the caller's
        // contract.
        unsafe { self.rt.lamellae().get(self.state.origin_pe, off, bytes) };
    }

    /// Borrow the block directly (only on the origin PE).
    ///
    /// # Safety
    /// No PE may write the block for the returned lifetime.
    pub unsafe fn as_slice(&self) -> &[T] {
        assert_eq!(
            self.rt.pe(),
            self.state.origin_pe,
            "direct access only on the origin PE; use get() remotely"
        );
        let base = self.rt.lamellae().base_ptr(self.state.origin_pe);
        // SAFETY: live allocation, in bounds; immutability from the
        // caller's contract.
        unsafe { std::slice::from_raw_parts(base.add(self.state.offset) as *const T, self.len) }
    }

    /// Mutably borrow the block (only on the origin PE).
    ///
    /// # Safety
    /// No PE may access the block for the returned lifetime.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn as_mut_slice(&self) -> &mut [T] {
        assert_eq!(
            self.rt.pe(),
            self.state.origin_pe,
            "direct access only on the origin PE; use put()/get() remotely"
        );
        let base = self.rt.lamellae().base_ptr(self.state.origin_pe);
        // SAFETY: as above with exclusivity from the caller.
        unsafe { std::slice::from_raw_parts_mut(base.add(self.state.offset) as *mut T, self.len) }
    }
}

impl<T: Dist> Clone for OneSidedMemoryRegion<T> {
    fn clone(&self) -> Self {
        OneSidedMemoryRegion {
            state: Arc::clone(&self.state),
            rt: Arc::clone(&self.rt),
            len: self.len,
            _marker: PhantomData,
        }
    }
}

impl<T: Dist> Codec for OneSidedMemoryRegion<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        if let Some(shared) = self.state.shared.upgrade() {
            shared.pin_trackable(
                self.state.id,
                Arc::clone(&self.state) as Arc<dyn Any + Send + Sync>,
            );
        }
        self.state.id.encode(buf);
        self.len.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        // Pure arithmetic — see `SharedMemoryRegion::encoded_len`.
        8 + 8
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let id = u64::decode(r)?;
        let len = usize::decode(r)?;
        let rt = current_rt().expect("OneSidedMemoryRegion decoded outside a runtime context");
        let state = rt
            .shared()
            .lookup_trackable(id)
            .ok_or(CodecError::UnknownTypeHash(id))?
            .downcast::<OneSidedState>()
            .map_err(|_| CodecError::UnknownTypeHash(id))?;
        rt.shared().unpin_trackable(id);
        Ok(OneSidedMemoryRegion { state, rt, len, _marker: PhantomData })
    }
}

impl<T: Dist> std::fmt::Debug for OneSidedMemoryRegion<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OneSidedMemoryRegion")
            .field("id", &self.state.id)
            .field("origin_pe", &self.state.origin_pe)
            .field("len", &self.len)
            .finish()
    }
}
