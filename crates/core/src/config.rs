//! Runtime configuration: backend selection and tunables.

use rofi_sim::FaultConfig;
use std::time::Duration;

/// Which Lamellae implementation backs a world (paper Sec. III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Distributed simulation: full (de)serialization, flag-based message
    /// queues, and the network cost model. The stand-in for ROFI/libfabric.
    Rofi,
    /// Same machinery over plain shared memory — no cost model. "The key
    /// difference is that instead of creating RDMA Memory Regions it simply
    /// allocates shared memory segments" (Sec. III-A.2).
    Shmem,
    /// Single-process, single-PE: no data transfer, no (de)serialization
    /// (Sec. III-A.3). Only valid for 1-PE worlds.
    Smp,
}

/// Tunable parameters of a Lamellar world.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of PEs ("controlled through the system's launcher" in the
    /// paper; here through [`crate::world::launch`]).
    pub num_pes: usize,
    /// Lamellae backend.
    pub backend: Backend,
    /// Worker threads per PE (the paper's best configuration used 4
    /// threads per PE).
    pub threads_per_pe: usize,
    /// Aggregation threshold in bytes: outgoing AMs destined to the same PE
    /// are batched until their combined size reaches this, then pushed to
    /// the wire. Paper: "the runtime performs aggregation for message sizes
    /// smaller than 100K (this threshold is configurable; 100KB is the
    /// default)".
    pub agg_threshold: usize,
    /// Size of each wire buffer in the double-buffered per-PE-pair message
    /// queues. Must be at least `agg_threshold` plus framing slack.
    pub buffer_size: usize,
    /// Symmetric region bytes per PE (runtime queues + collective user
    /// allocations such as arrays).
    pub sym_len: usize,
    /// One-sided dynamic heap bytes per PE.
    pub heap_len: usize,
    /// Enable the runtime-wide observability layer: lock-free counters and
    /// histograms in every layer (fabric, lamellae, executor, AM), read
    /// back through [`crate::world::LamellarWorld::stats`]. When false the
    /// registries still exist but every record is a single predictable
    /// branch — effectively free.
    pub metrics: bool,
    /// Fault-injection plane (DESIGN.md §4b): a seeded, deterministic
    /// injector that drops/duplicates/delays/truncates/bit-flips wire
    /// chunks and fails allocations. Its presence switches the transport
    /// into reliable-delivery mode (sequence numbers, acks, retransmits).
    /// `None` (the default) runs the loss-free fast path with zero
    /// overhead. The plane is armed only after world bootstrap, so runtime
    /// construction itself is never faulted.
    pub fault: Option<FaultConfig>,
    /// Reliable-delivery retransmit timeout (only meaningful when `fault`
    /// is set): how long the oldest unacked wire chunk may wait before a
    /// go-back-N round fires. The default
    /// ([`crate::lamellae::queue::RETRANSMIT_TIMEOUT`], 1 ms) recovers
    /// fast; raise it when seeded-counter reproducibility must survive OS
    /// scheduling stalls (a stall longer than the timeout fires a spurious
    /// retransmit, which bumps attempt numbers and thus re-rolls fault
    /// verdicts).
    pub retransmit_timeout: Duration,
    /// Default per-attempt response deadline applied to every *remote* AM
    /// launched through `exec_am_pe` (per-call
    /// [`AmOpts`](crate::am::AmOpts) overrides it). `None` (the default)
    /// means requests wait indefinitely for their reply. Local AMs are
    /// never timed out: a deadline guards against lost replies and silent
    /// peers, not slow local code.
    pub am_deadline: Option<Duration>,
    /// Liveness watchdog (off by default): a per-PE thread that flags
    /// zero-progress intervals while this PE is blocked in
    /// `wait_all`/`barrier`, dumps a one-shot diagnostic (in-flight AM
    /// count, per-pair unacked sequence windows, executor queue depths),
    /// and — in [`WatchdogConfig::fail`] mode — resolves the stalled
    /// in-flight AMs to `Err(AmError::Stalled)` so the wait terminates.
    pub watchdog: Option<WatchdogConfig>,
    /// Fire-and-forget fast path for unit-output AMs (DESIGN.md §4d, on by
    /// default): `exec_unit_am_pe` launches skip the pending table and the
    /// per-op `Reply` envelope; completion is conveyed in bulk by
    /// cumulative `AckCount` credits. Disable to force every unit AM onto
    /// the tracked reply path — the `ablation_reply_elision` baseline.
    pub reply_elision: bool,
}

/// Configuration of the per-PE liveness watchdog (DESIGN.md §4c).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Zero-progress window: the watchdog declares a stall once this PE has
    /// been blocked in `wait_all`/`barrier` for `interval` with in-flight
    /// work and no runtime progress (no message handled, no task retired).
    pub interval: Duration,
    /// `true`: on a stall verdict, fail every pending remote AM with
    /// `AmError::Stalled` so the wait terminates (observable through
    /// fallible handles and `try_wait_all`). `false`: dump diagnostics and
    /// keep waiting (warn-only).
    pub fail: bool,
}

impl WatchdogConfig {
    /// Warn-only watchdog: dump diagnostics on stall, never fail the wait.
    pub fn warn(interval: Duration) -> Self {
        WatchdogConfig { interval, fail: false }
    }

    /// Failing watchdog: dump diagnostics, then resolve stalled in-flight
    /// AMs to `Err(AmError::Stalled)` so waits terminate.
    pub fn fail(interval: Duration) -> Self {
        WatchdogConfig { interval, fail: true }
    }
}

/// A [`WorldConfig`] rejected at build time (see [`WorldConfig::validate`]).
///
/// Duration knobs get typed validation instead of silent misbehavior: a
/// zero retransmit timeout would spin the go-back-N timer, a zero deadline
/// would fail every AM before its first reply could arrive, and an absurdly
/// large value means the mechanism effectively never fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A duration knob was set to zero.
    ZeroDuration {
        /// The offending `WorldConfig` field.
        field: &'static str,
    },
    /// A duration knob was short enough to busy-spin the mechanism it
    /// paces.
    TooShort {
        /// The offending `WorldConfig` field.
        field: &'static str,
        /// The rejected value.
        value: Duration,
        /// The smallest accepted value.
        min: Duration,
    },
    /// A duration knob was so large the mechanism would effectively never
    /// fire.
    TooLong {
        /// The offending `WorldConfig` field.
        field: &'static str,
        /// The rejected value.
        value: Duration,
        /// The largest accepted value.
        max: Duration,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroDuration { field } => {
                write!(f, "WorldConfig::{field} must be positive (zero would never fire)")
            }
            ConfigError::TooShort { field, value, min } => {
                write!(
                    f,
                    "WorldConfig::{field} of {value:?} is below the {min:?} minimum \
                     (it would busy-spin)"
                )
            }
            ConfigError::TooLong { field, value, max } => {
                write!(
                    f,
                    "WorldConfig::{field} of {value:?} exceeds the {max:?} maximum \
                     (it would effectively never fire)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The paper's default aggregation threshold (100 KiB).
pub const DEFAULT_AGG_THRESHOLD: usize = 100 * 1024;

impl WorldConfig {
    /// Defaults for `num_pes` PEs with the Rofi backend (Shmem if you want
    /// no cost model — but the model is off by default anyway). Environment
    /// overrides, mirroring the real runtime's env-driven builder:
    /// `LAMELLAR_THREADS` (worker threads per PE),
    /// `LAMELLAR_OP_BATCH` / `LAMELLAR_AGG_THRESHOLD` (bytes), and
    /// `LAMELLAR_METRICS` (`0` disables the observability counters).
    pub fn new(num_pes: usize) -> Self {
        let env = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<usize>().ok());
        let threads = env("LAMELLAR_THREADS").unwrap_or(2);
        let agg = env("LAMELLAR_AGG_THRESHOLD").unwrap_or(DEFAULT_AGG_THRESHOLD);
        let metrics = std::env::var("LAMELLAR_METRICS").map(|v| v != "0").unwrap_or(true);
        WorldConfig {
            num_pes,
            backend: if num_pes == 1 { Backend::Smp } else { Backend::Rofi },
            threads_per_pe: threads,
            agg_threshold: agg,
            buffer_size: agg * 2,
            sym_len: 0, // resolved by `resolve`
            heap_len: 32 << 20,
            metrics,
            fault: None,
            retransmit_timeout: crate::lamellae::queue::RETRANSMIT_TIMEOUT,
            am_deadline: None,
            watchdog: None,
            reply_elision: true,
        }
    }

    /// Check every duration knob against its sane range, returning a typed
    /// [`ConfigError`] instead of silently building a world whose timers
    /// spin or never fire. Called by [`WorldConfig::resolve`]; use
    /// [`WorldConfig::try_resolve`] to handle rejection gracefully.
    pub fn validate(&self) -> Result<(), ConfigError> {
        const RETRANSMIT_MAX: Duration = Duration::from_secs(60);
        const DEADLINE_MAX: Duration = Duration::from_secs(3600);
        const WATCHDOG_MIN: Duration = Duration::from_millis(1);
        const WATCHDOG_MAX: Duration = Duration::from_secs(600);

        if self.retransmit_timeout.is_zero() {
            return Err(ConfigError::ZeroDuration { field: "retransmit_timeout" });
        }
        if self.retransmit_timeout > RETRANSMIT_MAX {
            return Err(ConfigError::TooLong {
                field: "retransmit_timeout",
                value: self.retransmit_timeout,
                max: RETRANSMIT_MAX,
            });
        }
        if let Some(d) = self.am_deadline {
            if d.is_zero() {
                return Err(ConfigError::ZeroDuration { field: "am_deadline" });
            }
            if d > DEADLINE_MAX {
                return Err(ConfigError::TooLong {
                    field: "am_deadline",
                    value: d,
                    max: DEADLINE_MAX,
                });
            }
        }
        if let Some(w) = self.watchdog {
            if w.interval.is_zero() {
                return Err(ConfigError::ZeroDuration { field: "watchdog.interval" });
            }
            if w.interval < WATCHDOG_MIN {
                return Err(ConfigError::TooShort {
                    field: "watchdog.interval",
                    value: w.interval,
                    min: WATCHDOG_MIN,
                });
            }
            if w.interval > WATCHDOG_MAX {
                return Err(ConfigError::TooLong {
                    field: "watchdog.interval",
                    value: w.interval,
                    max: WATCHDOG_MAX,
                });
            }
        }
        Ok(())
    }

    /// [`WorldConfig::resolve`] that reports invalid duration knobs as a
    /// typed [`ConfigError`] instead of panicking.
    pub fn try_resolve(self) -> Result<Self, ConfigError> {
        self.validate()?;
        Ok(self.resolve())
    }

    /// Fill in derived defaults (symmetric size depends on PE count and
    /// buffer size: the internal queue footprint "scales in size with the
    /// number of PEs", Sec. III-A).
    pub fn resolve(mut self) -> Self {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
        assert!(self.num_pes > 0, "world needs at least one PE");
        if self.backend == Backend::Smp {
            assert_eq!(self.num_pes, 1, "the SMP lamellae supports exactly one PE");
        }
        self.threads_per_pe = self.threads_per_pe.max(1);
        self.buffer_size = self.buffer_size.max(self.agg_threshold + 4096).max(16 * 1024);
        if self.sym_len == 0 {
            let queues = crate::lamellae::queue::queue_footprint(self.num_pes, self.buffer_size);
            // Queue footprint plus generous room for user collectives.
            self.sym_len = queues + (64 << 20);
        }
        self
    }

    /// Builder-style setters.
    pub fn backend(mut self, b: Backend) -> Self {
        self.backend = b;
        self
    }

    /// Set worker threads per PE.
    pub fn threads_per_pe(mut self, t: usize) -> Self {
        self.threads_per_pe = t;
        self
    }

    /// Set the aggregation threshold (bytes).
    pub fn agg_threshold(mut self, t: usize) -> Self {
        self.agg_threshold = t;
        self
    }

    /// Set the symmetric region size per PE (bytes).
    pub fn sym_len(mut self, s: usize) -> Self {
        self.sym_len = s;
        self
    }

    /// Set the one-sided heap size per PE (bytes).
    pub fn heap_len(mut self, s: usize) -> Self {
        self.heap_len = s;
        self
    }

    /// Enable or disable the observability counters
    /// ([`crate::world::LamellarWorld::stats`]).
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Attach a fault-injection plane (and thereby enable reliable
    /// delivery). Only meaningful on the Rofi/Shmem backends — the SMP
    /// loopback has no wire to fault.
    pub fn faults(mut self, cfg: FaultConfig) -> Self {
        self.fault = Some(cfg);
        self
    }

    /// Set the reliable-delivery retransmit timeout (see the field doc for
    /// the latency/determinism trade-off). Only meaningful together with
    /// [`WorldConfig::faults`].
    pub fn retransmit_timeout(mut self, t: Duration) -> Self {
        self.retransmit_timeout = t;
        self
    }

    /// Set the world-default per-attempt AM response deadline (see the
    /// field doc; per-call [`AmOpts`](crate::am::AmOpts) overrides it).
    pub fn am_deadline(mut self, d: Duration) -> Self {
        self.am_deadline = Some(d);
        self
    }

    /// Enable the liveness watchdog (DESIGN.md §4c).
    pub fn watchdog(mut self, cfg: WatchdogConfig) -> Self {
        self.watchdog = Some(cfg);
        self
    }

    /// Enable or disable the fire-and-forget unit-AM fast path (reply
    /// elision with counted completions, DESIGN.md §4d). On by default;
    /// turn off to measure the tracked-reply baseline.
    pub fn reply_elision(mut self, on: bool) -> Self {
        self.reply_elision = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_fills_sym_len() {
        let cfg = WorldConfig::new(4).resolve();
        assert!(cfg.sym_len > 0);
        assert!(cfg.buffer_size >= cfg.agg_threshold);
    }

    #[test]
    fn single_pe_defaults_to_smp() {
        assert_eq!(WorldConfig::new(1).backend, Backend::Smp);
        assert_eq!(WorldConfig::new(2).backend, Backend::Rofi);
    }

    #[test]
    #[should_panic(expected = "exactly one PE")]
    fn smp_with_multiple_pes_rejected() {
        let _ = WorldConfig::new(2).backend(Backend::Smp).resolve();
    }

    #[test]
    fn zero_retransmit_timeout_rejected() {
        let err = WorldConfig::new(2).retransmit_timeout(Duration::ZERO).try_resolve().unwrap_err();
        assert_eq!(err, ConfigError::ZeroDuration { field: "retransmit_timeout" });
    }

    #[test]
    fn absurd_retransmit_timeout_rejected() {
        let err = WorldConfig::new(2)
            .retransmit_timeout(Duration::from_secs(3600))
            .try_resolve()
            .unwrap_err();
        assert!(matches!(err, ConfigError::TooLong { field: "retransmit_timeout", .. }));
    }

    #[test]
    fn zero_am_deadline_rejected() {
        let err = WorldConfig::new(2).am_deadline(Duration::ZERO).try_resolve().unwrap_err();
        assert_eq!(err, ConfigError::ZeroDuration { field: "am_deadline" });
        assert!(err.to_string().contains("am_deadline"));
    }

    #[test]
    fn absurd_am_deadline_rejected() {
        let err =
            WorldConfig::new(2).am_deadline(Duration::from_secs(7200)).try_resolve().unwrap_err();
        assert!(matches!(err, ConfigError::TooLong { field: "am_deadline", .. }));
    }

    #[test]
    fn watchdog_interval_bounds_enforced() {
        let err = WorldConfig::new(2)
            .watchdog(WatchdogConfig::warn(Duration::from_micros(10)))
            .try_resolve()
            .unwrap_err();
        assert!(matches!(err, ConfigError::TooShort { field: "watchdog.interval", .. }));

        let err = WorldConfig::new(2)
            .watchdog(WatchdogConfig::fail(Duration::from_secs(1000)))
            .try_resolve()
            .unwrap_err();
        assert!(matches!(err, ConfigError::TooLong { field: "watchdog.interval", .. }));

        let err = WorldConfig::new(2)
            .watchdog(WatchdogConfig::warn(Duration::ZERO))
            .try_resolve()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroDuration { field: "watchdog.interval" });
    }

    #[test]
    #[should_panic(expected = "am_deadline")]
    fn resolve_panics_on_invalid_deadline() {
        let _ = WorldConfig::new(2).am_deadline(Duration::ZERO).resolve();
    }

    #[test]
    fn valid_resilience_config_passes() {
        let cfg = WorldConfig::new(2)
            .am_deadline(Duration::from_millis(250))
            .watchdog(WatchdogConfig::fail(Duration::from_millis(100)))
            .try_resolve()
            .unwrap();
        assert_eq!(cfg.am_deadline, Some(Duration::from_millis(250)));
        assert!(cfg.watchdog.unwrap().fail);
    }
}
