//! Wire protocol: the envelopes that travel between PEs.
//!
//! Every runtime message is one [`Envelope`], framed with a varint length so
//! that many envelopes can be packed back-to-back into an aggregation buffer
//! (paper Sec. III-A: "Lamellar employs a double buffering message queue to
//! ... allow for more efficient use of network resources by transferring
//! larger messages").
//!
//! Two representations exist for the same wire bytes:
//!
//! * [`Envelope`] — owned; used when a message must outlive the buffer it
//!   arrived in (large-request staging, tests).
//! * [`EnvelopeView`] — borrowed; payload bytes stay inside the receive
//!   buffer until the AM registry's typed decode. The hot receive path is
//!   view-only, so an aggregated buffer of N envelopes is parsed with zero
//!   payload copies.
//!
//! The hot *send* path never materializes an `Envelope` either: the
//! [`frame_request_with`]/[`frame_reply`] helpers write the frame prefix and
//! envelope header straight into the destination aggregation buffer and let
//! the caller encode the payload in place. [`Codec::encoded_len`] supplies
//! the exact sizes up front so the varint prefixes can be written first.

use lamellar_codec::{impl_codec_enum, varint, Codec, CodecError, Reader};

/// One runtime-level message.
#[derive(Debug, Clone, PartialEq)]
pub enum Envelope {
    /// Execute a registered AM and send back its output.
    ///
    /// `am_id` keys the runtime lookup table (Sec. III-C); `req_id`
    /// correlates the eventual [`Envelope::Reply`] with the caller's
    /// pending-request table; `src_pe` is where the reply goes.
    Request(u64, u64, u64, Vec<u8>),
    /// The encoded `Output` of a completed AM.
    Reply(u64, Vec<u8>),
    /// A request whose payload was too large for the message queue and was
    /// parked in the sender's one-sided heap instead: fields are
    /// `(am_id, req_id, src_pe, heap_offset, len)`. The receiver RDMA-gets
    /// the payload, then sends [`Envelope::FreeHeap`] so the sender can
    /// release the staging buffer — the "flag ... lets it know it is now
    /// free to release any resources associated with the transferred data"
    /// handshake of Sec. III-A.
    LargeRequest(u64, u64, u64, u64, u64),
    /// Release a staged large-payload buffer at the given heap offset.
    FreeHeap(u64),
    /// The AM panicked on the destination PE; carries the panic message so
    /// the caller's await can re-panic with a useful diagnostic instead of
    /// hanging on a reply that will never come.
    ReplyErr(u64, String),
    /// Fire-and-forget request for a unit-output AM (DESIGN.md §4d): no
    /// `req_id`, no pending-table slot, and no [`Envelope::Reply`] comes
    /// back. Fields are `(am_id, src_pe, payload)`. Completion is conveyed
    /// in bulk by [`Envelope::AckCount`].
    RequestUnit(u64, u64, Vec<u8>),
    /// Cumulative count of unit-AM requests from the receiving PE that this
    /// sender has finished executing — the counted-completion half of reply
    /// elision. Piggybacked onto whatever aggregation buffer next flushes
    /// toward the origin; the origin decrements `my_pending` by the delta
    /// against the last count it saw.
    AckCount(u64),
}

impl_codec_enum!(Envelope {
    Request(am_id, req_id, src_pe, payload),
    Reply(req_id, payload),
    LargeRequest(am_id, req_id, src_pe, heap_offset, len),
    FreeHeap(offset),
    ReplyErr(req_id, msg),
    RequestUnit(am_id, src_pe, payload),
    AckCount(n),
});

// Wire discriminants as assigned by `impl_codec_enum!` (declaration order).
// `EnvelopeView` and the in-place framing helpers must stay in lockstep with
// the owned encode; the golden-bytes test pins the original five and the
// unit-path additions are append-only (discs 5 and 6) so a pre-elision peer
// still decodes everything it knew about.
const DISC_REQUEST: u64 = 0;
const DISC_REPLY: u64 = 1;
const DISC_LARGE_REQUEST: u64 = 2;
const DISC_FREE_HEAP: u64 = 3;
const DISC_REPLY_ERR: u64 = 4;
const DISC_REQUEST_UNIT: u64 = 5;
const DISC_ACK_COUNT: u64 = 6;

/// A borrowed decode of one envelope: payload bytes reference the receive
/// buffer instead of being copied out. Byte-compatible with [`Envelope`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EnvelopeView<'a> {
    Request { am_id: u64, req_id: u64, src_pe: u64, payload: &'a [u8] },
    Reply { req_id: u64, payload: &'a [u8] },
    LargeRequest { am_id: u64, req_id: u64, src_pe: u64, heap_offset: u64, len: u64 },
    FreeHeap { offset: u64 },
    ReplyErr { req_id: u64, msg: &'a str },
    RequestUnit { am_id: u64, src_pe: u64, payload: &'a [u8] },
    AckCount { n: u64 },
}

impl<'a> EnvelopeView<'a> {
    /// Parse one envelope body (the bytes between frame prefixes) without
    /// copying the payload. Requires the body to be fully consumed, exactly
    /// like `Envelope::from_bytes`.
    pub fn parse(body: &'a [u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(body);
        let view = Self::decode_view(&mut r)?;
        r.finish()?;
        Ok(view)
    }

    fn decode_view(r: &mut Reader<'a>) -> Result<Self, CodecError> {
        let disc = varint::read_u64(r)?;
        match disc {
            DISC_REQUEST => {
                let am_id = u64::decode(r)?;
                let req_id = u64::decode(r)?;
                let src_pe = u64::decode(r)?;
                let payload = take_bytes(r)?;
                Ok(EnvelopeView::Request { am_id, req_id, src_pe, payload })
            }
            DISC_REPLY => {
                let req_id = u64::decode(r)?;
                let payload = take_bytes(r)?;
                Ok(EnvelopeView::Reply { req_id, payload })
            }
            DISC_LARGE_REQUEST => {
                let am_id = u64::decode(r)?;
                let req_id = u64::decode(r)?;
                let src_pe = u64::decode(r)?;
                let heap_offset = u64::decode(r)?;
                let len = u64::decode(r)?;
                Ok(EnvelopeView::LargeRequest { am_id, req_id, src_pe, heap_offset, len })
            }
            DISC_FREE_HEAP => Ok(EnvelopeView::FreeHeap { offset: u64::decode(r)? }),
            DISC_REPLY_ERR => {
                let req_id = u64::decode(r)?;
                let bytes = take_bytes(r)?;
                let msg = std::str::from_utf8(bytes).map_err(|_| CodecError::InvalidUtf8)?;
                Ok(EnvelopeView::ReplyErr { req_id, msg })
            }
            DISC_REQUEST_UNIT => {
                let am_id = u64::decode(r)?;
                let src_pe = u64::decode(r)?;
                let payload = take_bytes(r)?;
                Ok(EnvelopeView::RequestUnit { am_id, src_pe, payload })
            }
            DISC_ACK_COUNT => Ok(EnvelopeView::AckCount { n: u64::decode(r)? }),
            value => Err(CodecError::InvalidDiscriminant { type_name: "Envelope", value }),
        }
    }

    /// Copy into an owned [`Envelope`] (large-request staging, tests).
    pub fn to_owned(&self) -> Envelope {
        match *self {
            EnvelopeView::Request { am_id, req_id, src_pe, payload } => {
                Envelope::Request(am_id, req_id, src_pe, payload.to_vec())
            }
            EnvelopeView::Reply { req_id, payload } => Envelope::Reply(req_id, payload.to_vec()),
            EnvelopeView::LargeRequest { am_id, req_id, src_pe, heap_offset, len } => {
                Envelope::LargeRequest(am_id, req_id, src_pe, heap_offset, len)
            }
            EnvelopeView::FreeHeap { offset } => Envelope::FreeHeap(offset),
            EnvelopeView::ReplyErr { req_id, msg } => Envelope::ReplyErr(req_id, msg.to_string()),
            EnvelopeView::RequestUnit { am_id, src_pe, payload } => {
                Envelope::RequestUnit(am_id, src_pe, payload.to_vec())
            }
            EnvelopeView::AckCount { n } => Envelope::AckCount(n),
        }
    }
}

/// Borrow a length-prefixed byte run (the wire shape of `Vec<u8>`/`String`)
/// directly out of the reader.
fn take_bytes<'a>(r: &mut Reader<'a>) -> Result<&'a [u8], CodecError> {
    let len = varint::read_len(r, varint::DEFAULT_MAX_LEN)?;
    r.take(len)
}

/// Append `envelope` to `buf` with a varint length prefix — a single encode
/// pass straight into the destination buffer (no intermediate `Vec`).
pub fn frame(envelope: &Envelope, buf: &mut Vec<u8>) {
    let body_len = envelope.encoded_len();
    buf.reserve(varint::len_u64(body_len as u64) + body_len);
    varint::write_len(buf, body_len);
    envelope.encode(buf);
}

/// Serialized size of a framed envelope (used against the aggregation
/// threshold before paying for the real encode). Pure arithmetic via
/// [`Codec::encoded_len`]; nothing is encoded.
pub fn framed_len(envelope: &Envelope) -> usize {
    let body_len = envelope.encoded_len();
    varint::len_u64(body_len as u64) + body_len
}

fn request_body_len(payload_len: usize) -> usize {
    varint::len_u64(DISC_REQUEST) + 24 + varint::len_u64(payload_len as u64) + payload_len
}

/// Framed size of an [`Envelope::Request`] carrying `payload_len` encoded
/// payload bytes — lets the sender pick small-vs-staged routing and check
/// aggregation thresholds before serializing the AM at all.
pub fn framed_request_len(payload_len: usize) -> usize {
    let body = request_body_len(payload_len);
    varint::len_u64(body as u64) + body
}

/// Frame an [`Envelope::Request`] directly into `buf`: prefix and header are
/// written first, then `fill` encodes exactly `payload_len` payload bytes in
/// place. Byte-identical to `frame(&Envelope::Request(..))` without ever
/// materializing the payload separately.
pub fn frame_request_with(
    buf: &mut Vec<u8>,
    am_id: u64,
    req_id: u64,
    src_pe: u64,
    payload_len: usize,
    fill: impl FnOnce(&mut Vec<u8>),
) {
    let body_len = request_body_len(payload_len);
    buf.reserve(varint::len_u64(body_len as u64) + body_len);
    varint::write_len(buf, body_len);
    varint::write_u64(buf, DISC_REQUEST);
    am_id.encode(buf);
    req_id.encode(buf);
    src_pe.encode(buf);
    varint::write_len(buf, payload_len);
    let start = buf.len();
    fill(buf);
    debug_assert_eq!(
        buf.len() - start,
        payload_len,
        "frame_request_with: fill wrote a different length than encoded_len promised"
    );
}

fn request_unit_body_len(payload_len: usize) -> usize {
    varint::len_u64(DISC_REQUEST_UNIT) + 16 + varint::len_u64(payload_len as u64) + payload_len
}

/// Framed size of an [`Envelope::RequestUnit`] carrying `payload_len`
/// encoded payload bytes.
pub fn framed_request_unit_len(payload_len: usize) -> usize {
    let body = request_unit_body_len(payload_len);
    varint::len_u64(body as u64) + body
}

/// Frame an [`Envelope::RequestUnit`] directly into `buf` — the unit-AM
/// analogue of [`frame_request_with`]: two fixed header words (no `req_id`),
/// then `fill` encodes exactly `payload_len` payload bytes in place.
pub fn frame_request_unit_with(
    buf: &mut Vec<u8>,
    am_id: u64,
    src_pe: u64,
    payload_len: usize,
    fill: impl FnOnce(&mut Vec<u8>),
) {
    let body_len = request_unit_body_len(payload_len);
    buf.reserve(varint::len_u64(body_len as u64) + body_len);
    varint::write_len(buf, body_len);
    varint::write_u64(buf, DISC_REQUEST_UNIT);
    am_id.encode(buf);
    src_pe.encode(buf);
    varint::write_len(buf, payload_len);
    let start = buf.len();
    fill(buf);
    debug_assert_eq!(
        buf.len() - start,
        payload_len,
        "frame_request_unit_with: fill wrote a different length than encoded_len promised"
    );
}

/// Framed size of an [`Envelope::AckCount`] carrying count `n`.
pub fn framed_ack_count_len(n: u64) -> usize {
    let body = varint::len_u64(DISC_ACK_COUNT) + n.encoded_len();
    varint::len_u64(body as u64) + body
}

/// Frame an [`Envelope::AckCount`] directly into `buf`.
pub fn frame_ack_count(buf: &mut Vec<u8>, n: u64) {
    let body_len = varint::len_u64(DISC_ACK_COUNT) + n.encoded_len();
    buf.reserve(varint::len_u64(body_len as u64) + body_len);
    varint::write_len(buf, body_len);
    varint::write_u64(buf, DISC_ACK_COUNT);
    n.encode(buf);
}

fn reply_body_len(payload_len: usize) -> usize {
    varint::len_u64(DISC_REPLY) + 8 + varint::len_u64(payload_len as u64) + payload_len
}

/// Framed size of an [`Envelope::Reply`] carrying `payload_len` bytes.
pub fn framed_reply_len(payload_len: usize) -> usize {
    let body = reply_body_len(payload_len);
    varint::len_u64(body as u64) + body
}

/// Frame an [`Envelope::Reply`] directly into `buf`: one copy of the encoded
/// output, straight into the aggregation buffer.
pub fn frame_reply(buf: &mut Vec<u8>, req_id: u64, payload: &[u8]) {
    let body_len = reply_body_len(payload.len());
    buf.reserve(varint::len_u64(body_len as u64) + body_len);
    varint::write_len(buf, body_len);
    varint::write_u64(buf, DISC_REPLY);
    req_id.encode(buf);
    varint::write_len(buf, payload.len());
    buf.extend_from_slice(payload);
}

/// Iterate the envelope *bodies* packed into one wire buffer without
/// decoding them — the receive path hands these slices to
/// [`EnvelopeView::parse`] one at a time. Panics on a corrupt frame header
/// (in-process wire corruption is a runtime bug, not recoverable input).
pub fn deframe_raw(mut bytes: &[u8]) -> impl Iterator<Item = &[u8]> + '_ {
    std::iter::from_fn(move || {
        if bytes.is_empty() {
            return None;
        }
        let mut r = Reader::new(bytes);
        let len = varint::read_len(&mut r, varint::DEFAULT_MAX_LEN).expect("corrupt frame header");
        let start = r.position();
        let body = &bytes[start..start + len];
        bytes = &bytes[start + len..];
        Some(body)
    })
}

/// Iterate borrowed envelope views packed into one wire buffer.
pub fn deframe_views(bytes: &[u8]) -> impl Iterator<Item = EnvelopeView<'_>> + '_ {
    deframe_raw(bytes).map(|body| EnvelopeView::parse(body).expect("corrupt envelope"))
}

/// Iterate owned envelopes packed into one wire buffer (tests and staging
/// paths that must outlive the buffer).
pub fn deframe(bytes: &[u8]) -> impl Iterator<Item = Envelope> + '_ {
    deframe_raw(bytes).map(|body| Envelope::from_bytes(body).expect("corrupt envelope"))
}

/// Fallible deframe for robustness testing and defensive consumers: yields
/// `Err` (and then stops) instead of panicking on truncated or corrupt
/// input.
pub fn try_deframe_views(
    mut bytes: &[u8],
) -> impl Iterator<Item = Result<EnvelopeView<'_>, CodecError>> + '_ {
    let mut dead = false;
    std::iter::from_fn(move || {
        if dead || bytes.is_empty() {
            return None;
        }
        let step = (|| {
            let mut r = Reader::new(bytes);
            let len = varint::read_len(&mut r, varint::DEFAULT_MAX_LEN)?;
            let start = r.position();
            if bytes.len() - start < len {
                return Err(CodecError::UnexpectedEof {
                    needed: len,
                    available: bytes.len() - start,
                });
            }
            let body = &bytes[start..start + len];
            let view = EnvelopeView::parse(body)?;
            Ok((view, start + len))
        })();
        match step {
            Ok((view, consumed)) => {
                bytes = &bytes[consumed..];
                Some(Ok(view))
            }
            Err(e) => {
                dead = true;
                Some(Err(e))
            }
        }
    })
}

// ---------------------------------------------------------------------------
// Reliable-delivery chunk header (see DESIGN.md §4b).
// ---------------------------------------------------------------------------

/// Bytes of chunk header the reliable-delivery layer prepends to every wire
/// chunk: sequence number (u64 LE) + FNV-1a checksum (u64 LE) over the
/// sequence number and the payload.
pub const CHUNK_HDR_LEN: usize = 16;

/// FNV-1a over the sequence number's LE bytes followed by the payload.
/// Covering the sequence number means a bit flip anywhere in the chunk —
/// header or payload — fails validation, so corruption is never misread as
/// a duplicate or a reordering.
fn chunk_checksum(seq: u64, payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in seq.to_le_bytes().iter().chain(payload) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Stamp sequence number `seq` and the matching checksum into the first
/// [`CHUNK_HDR_LEN`] bytes of `chunk` (which the sender reserved when it
/// opened the aggregation buffer). Everything after the header is payload.
///
/// # Panics
/// If `chunk` is shorter than the header.
pub fn write_chunk_header(chunk: &mut [u8], seq: u64) {
    assert!(chunk.len() >= CHUNK_HDR_LEN, "chunk too short for a header");
    let sum = chunk_checksum(seq, &chunk[CHUNK_HDR_LEN..]);
    chunk[..8].copy_from_slice(&seq.to_le_bytes());
    chunk[8..16].copy_from_slice(&sum.to_le_bytes());
}

/// Validate a received chunk's header; `Some((seq, payload))` when intact,
/// `None` when the chunk is too short for a header or its checksum does not
/// match (truncated or corrupted in flight — the receiver must discard it
/// without delivery and let the sender's retransmit timer recover).
pub fn read_chunk_header(chunk: &[u8]) -> Option<(u64, &[u8])> {
    if chunk.len() < CHUNK_HDR_LEN {
        return None;
    }
    let seq = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"));
    let sum = u64::from_le_bytes(chunk[8..16].try_into().expect("8 bytes"));
    let payload = &chunk[CHUNK_HDR_LEN..];
    (chunk_checksum(seq, payload) == sum).then_some((seq, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Envelope> {
        vec![
            Envelope::Request(1, 2, 3, vec![9, 9, 9]),
            Envelope::Reply(2, vec![]),
            Envelope::LargeRequest(4, 5, 6, 7, 8),
            Envelope::FreeHeap(1024),
            Envelope::ReplyErr(9, "remote AM panicked".to_string()),
            Envelope::RequestUnit(10, 11, vec![1, 2]),
            Envelope::AckCount(12),
        ]
    }

    #[test]
    fn envelope_roundtrip() {
        for e in &samples() {
            assert_eq!(Envelope::from_bytes(&e.to_bytes()).unwrap(), *e);
        }
    }

    #[test]
    fn frame_deframe_many() {
        let envs = vec![
            Envelope::Request(1, 1, 0, vec![1; 100]),
            Envelope::Reply(1, vec![2; 3]),
            Envelope::FreeHeap(0),
        ];
        let mut buf = Vec::new();
        for e in &envs {
            frame(e, &mut buf);
        }
        let out: Vec<_> = deframe(&buf).collect();
        assert_eq!(out, envs);
        let views: Vec<_> = deframe_views(&buf).map(|v| v.to_owned()).collect();
        assert_eq!(views, envs);
    }

    #[test]
    fn framed_len_is_exact() {
        for e in &samples() {
            let mut buf = Vec::new();
            frame(e, &mut buf);
            assert_eq!(buf.len(), framed_len(e), "framed_len mismatch for {e:?}");
        }
    }

    #[test]
    fn view_parse_matches_owned_decode() {
        for e in &samples() {
            let bytes = e.to_bytes();
            let view = EnvelopeView::parse(&bytes).unwrap();
            assert_eq!(view.to_owned(), *e);
        }
    }

    #[test]
    fn in_place_request_framing_is_byte_identical() {
        let payload = vec![7u8, 8, 9, 10];
        let mut owned = Vec::new();
        frame(&Envelope::Request(11, 22, 33, payload.clone()), &mut owned);
        let mut inplace = Vec::new();
        frame_request_with(&mut inplace, 11, 22, 33, payload.len(), |buf| {
            buf.extend_from_slice(&payload)
        });
        assert_eq!(owned, inplace);
        assert_eq!(owned.len(), framed_request_len(payload.len()));
    }

    #[test]
    fn in_place_reply_framing_is_byte_identical() {
        for payload in [vec![], vec![5u8; 300]] {
            let mut owned = Vec::new();
            frame(&Envelope::Reply(42, payload.clone()), &mut owned);
            let mut inplace = Vec::new();
            frame_reply(&mut inplace, 42, &payload);
            assert_eq!(owned, inplace);
            assert_eq!(owned.len(), framed_reply_len(payload.len()));
        }
    }

    /// Pins the wire format: these bytes must never change (they are what a
    /// pre-refactor peer would produce and expect).
    #[test]
    fn golden_framed_bytes() {
        let cases: Vec<(Envelope, Vec<u8>)> = vec![
            (
                Envelope::Request(1, 2, 3, vec![9, 9, 9]),
                vec![
                    29, // frame len
                    0,  // disc Request
                    1, 0, 0, 0, 0, 0, 0, 0, // am_id
                    2, 0, 0, 0, 0, 0, 0, 0, // req_id
                    3, 0, 0, 0, 0, 0, 0, 0, // src_pe
                    3, 9, 9, 9, // payload
                ],
            ),
            (Envelope::Reply(2, vec![0xAB]), vec![11, 1, 2, 0, 0, 0, 0, 0, 0, 0, 1, 0xAB]),
            (
                Envelope::LargeRequest(4, 5, 6, 7, 8),
                vec![
                    41, // frame len
                    2,  // disc LargeRequest
                    4, 0, 0, 0, 0, 0, 0, 0, // am_id
                    5, 0, 0, 0, 0, 0, 0, 0, // req_id
                    6, 0, 0, 0, 0, 0, 0, 0, // src_pe
                    7, 0, 0, 0, 0, 0, 0, 0, // heap_offset
                    8, 0, 0, 0, 0, 0, 0, 0, // len
                ],
            ),
            (Envelope::FreeHeap(1024), vec![9, 3, 0, 4, 0, 0, 0, 0, 0, 0]),
            (
                Envelope::ReplyErr(9, "hi".to_string()),
                vec![12, 4, 9, 0, 0, 0, 0, 0, 0, 0, 2, b'h', b'i'],
            ),
        ];
        for (env, golden) in &cases {
            let mut buf = Vec::new();
            frame(env, &mut buf);
            assert_eq!(&buf, golden, "wire bytes drifted for {env:?}");
        }
    }

    /// Pins the unit-path additions (discs 5 and 6) separately so the
    /// original golden test stays untouched — append-only evolution.
    #[test]
    fn golden_framed_bytes_unit_envelopes() {
        let cases: Vec<(Envelope, Vec<u8>)> = vec![
            (
                Envelope::RequestUnit(1, 3, vec![9, 9, 9]),
                vec![
                    21, // frame len
                    5,  // disc RequestUnit
                    1, 0, 0, 0, 0, 0, 0, 0, // am_id
                    3, 0, 0, 0, 0, 0, 0, 0, // src_pe
                    3, 9, 9, 9, // payload
                ],
            ),
            (Envelope::AckCount(7), vec![9, 6, 7, 0, 0, 0, 0, 0, 0, 0]),
        ];
        for (env, golden) in &cases {
            let mut buf = Vec::new();
            frame(env, &mut buf);
            assert_eq!(&buf, golden, "wire bytes drifted for {env:?}");
        }
    }

    #[test]
    fn in_place_unit_framing_is_byte_identical() {
        let payload = vec![4u8, 5, 6];
        let mut owned = Vec::new();
        frame(&Envelope::RequestUnit(17, 2, payload.clone()), &mut owned);
        let mut inplace = Vec::new();
        frame_request_unit_with(&mut inplace, 17, 2, payload.len(), |buf| {
            buf.extend_from_slice(&payload)
        });
        assert_eq!(owned, inplace);
        assert_eq!(owned.len(), framed_request_unit_len(payload.len()));

        let mut owned_ack = Vec::new();
        frame(&Envelope::AckCount(900), &mut owned_ack);
        let mut inplace_ack = Vec::new();
        frame_ack_count(&mut inplace_ack, 900);
        assert_eq!(owned_ack, inplace_ack);
        assert_eq!(owned_ack.len(), framed_ack_count_len(900));
    }

    #[test]
    fn try_deframe_reports_truncation() {
        let mut buf = Vec::new();
        frame(&Envelope::FreeHeap(7), &mut buf);
        frame(&Envelope::Reply(1, vec![1, 2, 3]), &mut buf);
        // Cut into the middle of the second frame's body.
        let cut = &buf[..buf.len() - 2];
        let items: Vec<_> = try_deframe_views(cut).collect();
        assert_eq!(items.len(), 2);
        assert!(items[0].is_ok());
        assert!(items[1].is_err());
    }

    #[test]
    fn empty_buffer_deframes_to_nothing() {
        assert_eq!(deframe(&[]).count(), 0);
        assert_eq!(try_deframe_views(&[]).count(), 0);
    }
}

#[cfg(test)]
mod chunk_header_tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_seq_and_payload() {
        let mut chunk = vec![0u8; CHUNK_HDR_LEN];
        chunk.extend_from_slice(b"framed envelope bytes");
        write_chunk_header(&mut chunk, 42);
        let (seq, payload) = read_chunk_header(&chunk).expect("intact chunk validates");
        assert_eq!(seq, 42);
        assert_eq!(payload, b"framed envelope bytes");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let mut chunk = vec![0u8; CHUNK_HDR_LEN];
        write_chunk_header(&mut chunk, 7);
        assert_eq!(read_chunk_header(&chunk), Some((7, &[][..])));
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let mut chunk = vec![0u8; CHUNK_HDR_LEN];
        chunk.extend_from_slice(&[0xa5; 24]);
        write_chunk_header(&mut chunk, 3);
        for byte in 0..chunk.len() {
            for bit in 0..8 {
                let mut damaged = chunk.clone();
                damaged[byte] ^= 1 << bit;
                assert_eq!(
                    read_chunk_header(&damaged),
                    None,
                    "flip of bit {bit} in byte {byte} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let mut chunk = vec![0u8; CHUNK_HDR_LEN];
        chunk.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        write_chunk_header(&mut chunk, 9);
        for new_len in 0..chunk.len() {
            assert_eq!(read_chunk_header(&chunk[..new_len]), None, "truncation to {new_len}");
        }
    }
}
