//! Wire protocol: the envelopes that travel between PEs.
//!
//! Every runtime message is one [`Envelope`], framed with a varint length so
//! that many envelopes can be packed back-to-back into an aggregation buffer
//! (paper Sec. III-A: "Lamellar employs a double buffering message queue to
//! ... allow for more efficient use of network resources by transferring
//! larger messages").

use lamellar_codec::{impl_codec_enum, varint, Codec, Reader};

/// One runtime-level message.
#[derive(Debug, Clone, PartialEq)]
pub enum Envelope {
    /// Execute a registered AM and send back its output.
    ///
    /// `am_id` keys the runtime lookup table (Sec. III-C); `req_id`
    /// correlates the eventual [`Envelope::Reply`] with the caller's
    /// pending-request table; `src_pe` is where the reply goes.
    Request(u64, u64, u64, Vec<u8>),
    /// The encoded `Output` of a completed AM.
    Reply(u64, Vec<u8>),
    /// A request whose payload was too large for the message queue and was
    /// parked in the sender's one-sided heap instead: fields are
    /// `(am_id, req_id, src_pe, heap_offset, len)`. The receiver RDMA-gets
    /// the payload, then sends [`Envelope::FreeHeap`] so the sender can
    /// release the staging buffer — the "flag ... lets it know it is now
    /// free to release any resources associated with the transferred data"
    /// handshake of Sec. III-A.
    LargeRequest(u64, u64, u64, u64, u64),
    /// Release a staged large-payload buffer at the given heap offset.
    FreeHeap(u64),
    /// The AM panicked on the destination PE; carries the panic message so
    /// the caller's await can re-panic with a useful diagnostic instead of
    /// hanging on a reply that will never come.
    ReplyErr(u64, String),
}

impl_codec_enum!(Envelope {
    Request(am_id, req_id, src_pe, payload),
    Reply(req_id, payload),
    LargeRequest(am_id, req_id, src_pe, heap_offset, len),
    FreeHeap(offset),
    ReplyErr(req_id, msg),
});

/// Append `envelope` to `buf` with a varint length prefix.
pub fn frame(envelope: &Envelope, buf: &mut Vec<u8>) {
    let body = envelope.to_bytes();
    varint::write_len(buf, body.len());
    buf.extend_from_slice(&body);
}

/// Serialized size of a framed envelope (used against the aggregation
/// threshold before paying for the real encode).
pub fn framed_len(envelope: &Envelope) -> usize {
    // Encode is cheap relative to transfer; measure exactly.
    let body = envelope.to_bytes();
    let mut prefix = Vec::with_capacity(varint::MAX_VARINT_LEN);
    varint::write_len(&mut prefix, body.len());
    prefix.len() + body.len()
}

/// Iterate the envelopes packed into one wire buffer.
pub fn deframe(mut bytes: &[u8]) -> impl Iterator<Item = Envelope> + '_ {
    std::iter::from_fn(move || {
        if bytes.is_empty() {
            return None;
        }
        let mut r = Reader::new(bytes);
        let len = varint::read_len(&mut r, varint::DEFAULT_MAX_LEN).expect("corrupt frame header");
        let start = r.position();
        let body = &bytes[start..start + len];
        bytes = &bytes[start + len..];
        Some(Envelope::from_bytes(body).expect("corrupt envelope"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrip() {
        let envs = vec![
            Envelope::Request(1, 2, 3, vec![9, 9, 9]),
            Envelope::Reply(2, vec![]),
            Envelope::LargeRequest(4, 5, 6, 7, 8),
            Envelope::FreeHeap(1024),
            Envelope::ReplyErr(9, "remote AM panicked".to_string()),
        ];
        for e in &envs {
            assert_eq!(Envelope::from_bytes(&e.to_bytes()).unwrap(), *e);
        }
    }

    #[test]
    fn frame_deframe_many() {
        let envs = vec![
            Envelope::Request(1, 1, 0, vec![1; 100]),
            Envelope::Reply(1, vec![2; 3]),
            Envelope::FreeHeap(0),
        ];
        let mut buf = Vec::new();
        for e in &envs {
            frame(e, &mut buf);
        }
        let out: Vec<_> = deframe(&buf).collect();
        assert_eq!(out, envs);
    }

    #[test]
    fn framed_len_is_exact() {
        let e = Envelope::Request(7, 8, 9, vec![0; 321]);
        let mut buf = Vec::new();
        frame(&e, &mut buf);
        assert_eq!(buf.len(), framed_len(&e));
    }

    #[test]
    fn empty_buffer_deframes_to_nothing() {
        assert_eq!(deframe(&[]).count(), 0);
    }
}
