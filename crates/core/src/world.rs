//! Worlds: SPMD launch, the `LamellarWorld` handle, and cross-PE shared
//! state.
//!
//! The paper launches one OS process per PE through SLURM; this
//! reproduction launches one *thread group* per PE through [`launch`]
//! (DESIGN.md §1). Each PE gets a [`LamellarWorld`] — the entry point for
//! Active Messages, collectives, memory regions, Darcs, and teams.
//!
//! World teardown follows the paper's Listing 1 semantics: there is no
//! explicit finalize; when the last handle on a PE drops, that PE waits for
//! its launched AMs (`wait_all`), then joins a global barrier — "Each PE
//! remains active until all other PEs are ready to deinitialize" — and only
//! then stops its progress engine.

use crate::am::{AmError, AmHandle, AmOpts, IdempotentAm, LamellarAm, MultiAmHandle};
use crate::config::{Backend, WorldConfig};
use crate::lamellae::{queue::queue_footprint, FabricLamellae, Lamellae, SmpLamellae};
use crate::runtime::RuntimeInner;
use crate::team::LamellarTeam;
use lamellar_executor::{JoinHandle, PoolConfig, ThreadPool};
use lamellar_metrics::RuntimeStats;
use parking_lot::Mutex;
use rofi_sim::fabric::{Fabric, FabricConfig};
use rofi_sim::{NetConfig, SenseBarrier};
use std::any::Any;
use std::collections::HashMap;
use std::future::Future;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// One deposit slot per member of a collective all-deposit exchange.
type DepositSlots = Vec<Option<Box<dyn Any + Send>>>;

/// Process-wide state shared by all PEs of one world: the Darc/memregion
/// trackable registry, collective-construction exchanges, and team
/// barriers. In the real (multi-process) system the equivalents live in
/// symmetric RDMA memory; here a shared structure keeps the same semantics
/// observable (see DESIGN.md §1).
pub struct WorldShared {
    /// Unique id of this world (distinguishes OOB tags across worlds).
    pub(crate) world_id: u64,
    /// Next id for trackable distributed objects (Darcs, memory regions).
    next_trackable: AtomicU64,
    /// id → (weak state, in-flight serialization pins).
    trackables: Mutex<HashMap<u64, TrackableEntry>>,
    /// Collective object exchange: root deposits, members fetch.
    exchange: Mutex<HashMap<u64, Arc<dyn Any + Send + Sync>>>,
    /// Collective all-deposit exchange (Darc construction: every PE
    /// contributes its instance).
    deposits: Mutex<HashMap<u64, DepositSlots>>,
    /// Team barriers keyed by team id.
    team_barriers: Mutex<HashMap<u64, Arc<SenseBarrier>>>,
    /// Next team id (roots draw from here and broadcast).
    next_team: AtomicU64,
    /// Collective-call kinds by tag: the runtime analysis of paper
    /// Sec. III-A.3 ("we perform some limited runtime analysis to warn
    /// users" about mismatched distributed synchronization calls). The
    /// first PE to reach a collective records its kind; any PE arriving at
    /// the same sequence point with a different kind has diverged from
    /// SPMD order, which is reported instead of deadlocking.
    collective_kinds: Mutex<HashMap<u64, &'static str>>,
    /// Set when a collective mismatch is detected; PEs blocked in team
    /// barriers observe it and panic too, so the error surfaces on every
    /// PE instead of deadlocking the world.
    poison: Mutex<Option<String>>,
}

struct TrackableEntry {
    state: Weak<dyn Any + Send + Sync>,
    /// Strong refs parked while a serialized reference is in flight — the
    /// object must stay alive between encode (source PE) and decode
    /// (destination PE).
    pins: Vec<Arc<dyn Any + Send + Sync>>,
}

static NEXT_WORLD_ID: AtomicU64 = AtomicU64::new(1);

impl WorldShared {
    fn new() -> Arc<Self> {
        Arc::new(WorldShared {
            world_id: NEXT_WORLD_ID.fetch_add(1, Ordering::Relaxed),
            next_trackable: AtomicU64::new(1),
            trackables: Mutex::new(HashMap::new()),
            exchange: Mutex::new(HashMap::new()),
            deposits: Mutex::new(HashMap::new()),
            team_barriers: Mutex::new(HashMap::new()),
            next_team: AtomicU64::new(1),
            collective_kinds: Mutex::new(HashMap::new()),
            poison: Mutex::new(None),
        })
    }

    /// Draw a fresh trackable-object id.
    pub(crate) fn new_trackable_id(&self) -> u64 {
        self.next_trackable.fetch_add(1, Ordering::Relaxed)
    }

    /// Register a distributed object's state under `id`.
    pub(crate) fn register_trackable(&self, id: u64, state: Weak<dyn Any + Send + Sync>) {
        let prev = self.trackables.lock().insert(id, TrackableEntry { state, pins: Vec::new() });
        debug_assert!(prev.is_none(), "trackable id collision");
    }

    /// Remove a trackable entry (when its object is fully dropped).
    pub(crate) fn unregister_trackable(&self, id: u64) {
        self.trackables.lock().remove(&id);
    }

    /// Park a strong reference while a serialized handle is in flight.
    pub(crate) fn pin_trackable(&self, id: u64, strong: Arc<dyn Any + Send + Sync>) {
        self.trackables
            .lock()
            .get_mut(&id)
            .expect("pin of unregistered trackable")
            .pins
            .push(strong);
    }

    /// Release one in-flight pin (at decode).
    pub(crate) fn unpin_trackable(&self, id: u64) {
        self.trackables
            .lock()
            .get_mut(&id)
            .expect("unpin of unregistered trackable")
            .pins
            .pop()
            .expect("unpin without matching pin");
    }

    /// Resolve a trackable id to its state.
    pub(crate) fn lookup_trackable(&self, id: u64) -> Option<Arc<dyn Any + Send + Sync>> {
        self.trackables.lock().get(&id).and_then(|e| e.state.upgrade())
    }

    /// Number of live in-flight pins for `id` (diagnostics/tests).
    #[allow(dead_code)]
    pub(crate) fn pin_count(&self, id: u64) -> usize {
        self.trackables.lock().get(&id).map(|e| e.pins.len()).unwrap_or(0)
    }

    pub(crate) fn exchange_put(&self, tag: u64, obj: Arc<dyn Any + Send + Sync>) {
        self.exchange.lock().insert(tag, obj);
    }

    pub(crate) fn exchange_get(&self, tag: u64) -> Option<Arc<dyn Any + Send + Sync>> {
        self.exchange.lock().get(&tag).cloned()
    }

    pub(crate) fn exchange_remove(&self, tag: u64) {
        self.exchange.lock().remove(&tag);
    }

    /// Deposit `obj` as team-rank `rank` of `team_size` under `tag`;
    /// returns the complete deposit vector once all ranks have deposited
    /// (only for the caller that completes it — others get `None`).
    pub(crate) fn deposit(
        &self,
        tag: u64,
        rank: usize,
        team_size: usize,
        obj: Box<dyn Any + Send>,
    ) -> Option<DepositSlots> {
        let mut map = self.deposits.lock();
        let slots = map.entry(tag).or_insert_with(|| (0..team_size).map(|_| None).collect());
        debug_assert!(slots[rank].is_none(), "duplicate deposit for rank {rank}");
        slots[rank] = Some(obj);
        if slots.iter().all(|s| s.is_some()) {
            map.remove(&tag)
        } else {
            None
        }
    }

    /// Get or create the barrier for team `team_id` with `n` participants.
    pub(crate) fn team_barrier(&self, team_id: u64, n: usize) -> Arc<SenseBarrier> {
        let mut map = self.team_barriers.lock();
        let b = map.entry(team_id).or_insert_with(|| Arc::new(SenseBarrier::new(n)));
        assert_eq!(b.participants(), n, "team barrier size mismatch");
        Arc::clone(b)
    }

    /// Draw a fresh team id (roots broadcast it to members).
    pub(crate) fn new_team_id(&self) -> u64 {
        self.next_team.fetch_add(1, Ordering::Relaxed)
    }

    /// Record/verify the kind of the collective running under `tag`.
    /// Panics with a diagnostic (and poisons the world, so blocked PEs
    /// panic too) when two PEs reach the same team-collective sequence
    /// point with different operations — a mismatched-collective bug in
    /// the application.
    pub(crate) fn check_collective(&self, tag: u64, kind: &'static str) {
        let mut kinds = self.collective_kinds.lock();
        match kinds.get(&tag) {
            Some(&prev) if prev != kind => {
                let msg = format!(
                    "mismatched collectives: this PE issued `{kind}` where another PE issued \
                     `{prev}` at the same team sequence point — collective calls must run in \
                     the same order on every member PE"
                );
                drop(kinds);
                eprintln!("lamellar: {msg}");
                *self.poison.lock() = Some(msg.clone());
                panic!("{msg}");
            }
            Some(_) => {}
            None => {
                kinds.insert(tag, kind);
            }
        }
    }

    /// Panic if the world has been poisoned by a collective mismatch
    /// (checked by PEs spinning in team barriers).
    pub(crate) fn check_poison(&self) {
        if let Some(msg) = self.poison.lock().clone() {
            panic!("world poisoned by a collective mismatch on another PE: {msg}");
        }
    }

    /// Drop the record once a collective completes.
    pub(crate) fn finish_collective(&self, tag: u64) {
        self.collective_kinds.lock().remove(&tag);
    }
}

/// Teardown driver: the last world handle on a PE drops this, which runs
/// the deinitialization protocol.
pub(crate) struct WorldGuard {
    rt: Arc<RuntimeInner>,
    progress: Mutex<Option<std::thread::JoinHandle<()>>>,
    watchdog: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Drop for WorldGuard {
    fn drop(&mut self) {
        // "the world variable is automatically dropped ... which in turn
        // executes the Lamellar deinitialization process."
        self.rt.wait_all();
        self.rt.barrier();
        self.rt.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.progress.lock().take() {
            let _ = h.join();
        }
        if let Some(h) = self.watchdog.lock().take() {
            let _ = h.join();
        }
    }
}

/// A PE's handle on the Lamellar runtime — the paper's `LamellarWorld`.
#[derive(Clone)]
pub struct LamellarWorld {
    rt: Arc<RuntimeInner>,
    /// Present on user-held handles; absent on handles materialized inside
    /// executing AMs (those borrow the ambient world's lifetime).
    guard: Option<Arc<WorldGuard>>,
}

impl LamellarWorld {
    pub(crate) fn from_rt(rt: Arc<RuntimeInner>) -> Self {
        LamellarWorld { rt, guard: None }
    }

    /// This PE's id (`world.my_pe()` in Listing 1).
    pub fn my_pe(&self) -> usize {
        self.rt.pe()
    }

    /// Number of PEs in the world.
    pub fn num_pes(&self) -> usize {
        self.rt.num_pes()
    }

    /// Which Lamellae backend this world runs on.
    pub fn backend(&self) -> Backend {
        self.rt.lamellae().backend()
    }

    /// Launch `am` on PE `dst`; returns a future for its output. Remote
    /// launches honor the world-default response deadline
    /// (`WorldConfig::am_deadline`) when one is configured.
    pub fn exec_am_pe<T: LamellarAm>(&self, dst: usize, am: T) -> AmHandle<T::Output> {
        self.rt.exec_am_pe(dst, am)
    }

    /// Launch a unit-output AM fire-and-forget (DESIGN.md §4d): no handle,
    /// no per-op `Reply` envelope — completion is conveyed in bulk by the
    /// serving PE's cumulative `AckCount` credits, and
    /// [`wait_all`](LamellarWorld::wait_all) still blocks until every
    /// launch has executed remotely. The natural idiom for one-way updates
    /// (histogram increments, pushes) that used to be written
    /// `drop(world.exec_am_pe(dst, am))`. Calls that need a deadline or
    /// retry must use the tracked
    /// [`exec_am_pe_with`](LamellarWorld::exec_am_pe_with) path.
    pub fn exec_unit_am_pe<T: LamellarAm<Output = ()>>(&self, dst: usize, am: T) {
        self.rt.exec_unit_am_pe(dst, am)
    }

    /// Number of outstanding *tracked* (reply-carrying) request slots on
    /// this PE. Unit AMs never allocate one, so a pure fire-and-forget
    /// workload reads 0 here even mid-flight.
    pub fn pending_handles(&self) -> usize {
        self.rt.pending_handles()
    }

    /// [`exec_am_pe`](LamellarWorld::exec_am_pe) with per-call resilience
    /// options (DESIGN.md §4c). A deadline miss resolves the handle to
    /// `Err(AmError::Timeout)` — observe it through
    /// [`AmHandle::fallible`](crate::am::AmHandle::fallible). `opts.retry`
    /// is ignored here: a timed-out AM may already have executed remotely,
    /// so automatic re-issue requires the
    /// [`IdempotentAm`] assertion — use
    /// [`exec_idempotent_am_pe`](LamellarWorld::exec_idempotent_am_pe).
    ///
    /// ```ignore
    /// let h = world.exec_am_pe_with(1, am, AmOpts::deadline(Duration::from_millis(250)));
    /// match world.block_on(h.fallible()) {
    ///     Ok(out) => println!("{out:?}"),
    ///     Err(AmError::Timeout { pe, attempts }) => eprintln!("PE {pe} silent after {attempts} attempt(s)"),
    ///     Err(e) => eprintln!("{e}"),
    /// }
    /// ```
    pub fn exec_am_pe_with<T: LamellarAm>(
        &self,
        dst: usize,
        am: T,
        opts: AmOpts,
    ) -> AmHandle<T::Output> {
        self.rt.exec_am_pe_with(dst, am, opts)
    }

    /// Launch an [`IdempotentAm`] with deadline
    /// and retry: each deadline miss re-issues the AM (same request id —
    /// duplicate replies are dropped) with exponentially widening windows
    /// per `opts.retry`, then `Err(AmError::Timeout)` once retries are
    /// exhausted. Retried AMs execute **at least once per delivered
    /// attempt**; that is exactly the contract `IdempotentAm` asserts is
    /// safe.
    pub fn exec_idempotent_am_pe<T: IdempotentAm>(
        &self,
        dst: usize,
        am: T,
        opts: AmOpts,
    ) -> AmHandle<T::Output> {
        self.rt.exec_idempotent_am_pe(dst, am, opts)
    }

    /// Launch `am` on every PE (including this one); resolves to one output
    /// per PE, indexed by PE id.
    pub fn exec_am_all<T: LamellarAm + Clone>(&self, am: T) -> MultiAmHandle<T::Output> {
        self.rt.exec_am_all(am)
    }

    /// Submit a user future to this PE's thread pool.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        self.rt.spawn(fut)
    }

    /// Drive a future to completion; "only blocks the local PE".
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        self.rt.block_on(fut)
    }

    /// Block until every AM/task launched by this PE has completed.
    pub fn wait_all(&self) {
        self.rt.wait_all();
    }

    /// [`wait_all`](LamellarWorld::wait_all) that reports liveness-watchdog
    /// verdicts: `Err(AmError::Stalled { .. })` when a configured
    /// fail-mode watchdog (`WorldConfig::watchdog`) abandoned stalled
    /// in-flight AMs during this wait. The wait itself always terminates in
    /// that case — the stalled futures were resolved to `Err`. Without a
    /// watchdog this is exactly `wait_all` followed by `Ok(())`.
    pub fn try_wait_all(&self) -> Result<(), AmError> {
        self.rt.try_wait_all()
    }

    /// Global synchronization point across all PEs.
    pub fn barrier(&self) {
        self.rt.barrier();
    }

    /// The team containing every PE in the world.
    pub fn team(&self) -> LamellarTeam {
        LamellarTeam::world_team(Arc::clone(&self.rt), self.guard.clone())
    }

    /// Collectively create a sub-team from a list of world PE ids. Every PE
    /// in the *world* must call this with the same list; members receive
    /// `Some(team)`, non-members `None` (paper Sec. III: "Team — a subset
    /// of PEs in the world; sub-teams are supported").
    pub fn create_subteam(&self, pes: &[usize]) -> Option<LamellarTeam> {
        self.team().create_subteam(pes)
    }

    /// Allocate a [`crate::memregion::SharedMemoryRegion`] of `len`
    /// elements per PE, collectively over the whole world.
    pub fn alloc_shared_mem_region<T: crate::memregion::Dist>(
        &self,
        len: usize,
    ) -> crate::memregion::SharedMemoryRegion<T> {
        self.team().alloc_shared_mem_region(len)
    }

    /// Allocate a [`crate::memregion::OneSidedMemoryRegion`] of `len`
    /// elements on this PE only. Panics with the typed allocation error on
    /// heap exhaustion; see
    /// [`try_alloc_one_sided_mem_region`](LamellarWorld::try_alloc_one_sided_mem_region).
    pub fn alloc_one_sided_mem_region<T: crate::memregion::Dist>(
        &self,
        len: usize,
    ) -> crate::memregion::OneSidedMemoryRegion<T> {
        crate::memregion::OneSidedMemoryRegion::new(Arc::clone(&self.rt), len)
    }

    /// Fallible [`alloc_one_sided_mem_region`](LamellarWorld::alloc_one_sided_mem_region):
    /// lets the caller handle heap exhaustion — genuine, or injected by an
    /// armed fault plane (`WorldConfig::faults` with `alloc_fail_prob`).
    ///
    /// # Errors
    /// [`CommError::AllocFailed`](crate::lamellae::CommError::AllocFailed)
    /// when this PE's one-sided heap cannot fit `len` elements.
    pub fn try_alloc_one_sided_mem_region<T: crate::memregion::Dist>(
        &self,
        len: usize,
    ) -> Result<crate::memregion::OneSidedMemoryRegion<T>, crate::lamellae::CommError> {
        crate::memregion::OneSidedMemoryRegion::try_new(Arc::clone(&self.rt), len)
    }

    /// Typed snapshot of the runtime's observability counters, one section
    /// per layer: fabric (puts/gets, bytes, inject vs. rendezvous split,
    /// barrier rounds), lamellae (messages, serialized bytes, aggregation
    /// flushes, wire backpressure), executor (tasks spawned / completed /
    /// stolen, per-worker queue depth high-water marks), and AM (directional
    /// counts, replies, batch fan-out, Darc lifecycle).
    ///
    /// Fabric counters are fabric-global — they include every PE's traffic —
    /// while the other sections are local to this PE. Snapshots are cheap
    /// (relaxed atomic loads); take one before and one after a phase and
    /// subtract with [`RuntimeStats::delta`] to isolate it:
    ///
    /// ```ignore
    /// let before = world.stats();
    /// run_phase(&world);
    /// println!("{}", world.stats().delta(&before));
    /// ```
    ///
    /// Counting is on by default; disable it with
    /// [`WorldConfig::metrics`]`(false)` or `LAMELLAR_METRICS=0`, in which
    /// case every section reads zero.
    pub fn stats(&self) -> RuntimeStats {
        self.rt.stats()
    }

    /// Runtime access for sibling crates (the array layer). Not part of the
    /// user-facing API.
    #[doc(hidden)]
    pub fn rt(&self) -> &Arc<RuntimeInner> {
        &self.rt
    }
}

impl std::fmt::Debug for LamellarWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LamellarWorld")
            .field("pe", &self.my_pe())
            .field("num_pes", &self.num_pes())
            .field("backend", &self.backend())
            .finish()
    }
}

/// Builder for single-PE worlds (the SMP path of Listing 1's
/// `LamellarWorldBuilder::new().build()`). Multi-PE worlds come from
/// [`launch`], which plays the role of the cluster launcher.
///
/// This builder — and [`WorldConfig`]'s builder-style setters for multi-PE
/// launches via [`launch_with_config`] — is the canonical construction
/// path: every knob (threads, backend, metrics, aggregation threshold,
/// region sizes) flows through one `WorldConfig`, and the convenience
/// entry point [`launch`] is just `launch_with_config(WorldConfig::new(n))`.
pub struct LamellarWorldBuilder {
    threads: usize,
    backend: Backend,
    metrics: bool,
}

impl Default for LamellarWorldBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl LamellarWorldBuilder {
    /// Start building a single-PE world.
    pub fn new() -> Self {
        LamellarWorldBuilder { threads: 2, backend: Backend::Smp, metrics: true }
    }

    /// Worker threads for the PE's pool.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Backend override (Smp and Shmem are valid for one PE; Rofi works too
    /// and simply runs the full serialization path against itself).
    pub fn backend(mut self, b: Backend) -> Self {
        self.backend = b;
        self
    }

    /// Enable or disable the observability counters read through
    /// [`LamellarWorld::stats`] (on by default).
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Initialize the runtime and return the world handle.
    pub fn build(self) -> LamellarWorld {
        let cfg = WorldConfig::new(1)
            .backend(self.backend)
            .threads_per_pe(self.threads)
            .metrics(self.metrics);
        build_worlds(cfg).pop().expect("one world")
    }
}

/// Construct all PE worlds for a config (resolved internally).
pub(crate) fn build_worlds(cfg: WorldConfig) -> Vec<LamellarWorld> {
    let cfg = cfg.resolve();
    let net = match cfg.backend {
        Backend::Rofi => NetConfig::from_env(),
        Backend::Shmem | Backend::Smp => NetConfig::disabled(),
    };
    let endpoints = Fabric::launch(FabricConfig {
        num_pes: cfg.num_pes,
        sym_len: cfg.sym_len,
        heap_len: cfg.heap_len,
        net,
        metrics: cfg.metrics,
        fault: cfg.fault.clone(),
    });
    // Reserve the queue block first: symmetric offset 64-aligned, identical
    // on every PE by construction. The fault plane (if any) is still
    // disarmed here — bootstrap allocations are never failed artificially.
    let queue_base = endpoints[0]
        .fabric()
        .alloc_symmetric(queue_footprint(cfg.num_pes, cfg.buffer_size), 64)
        .expect("symmetric region too small for message queues");
    let fault_plane = endpoints[0].fabric().fault_plane().cloned();
    let shared = WorldShared::new();
    let worlds: Vec<LamellarWorld> = endpoints
        .into_iter()
        .map(|ep| {
            let lamellae: Arc<dyn Lamellae> = match cfg.backend {
                Backend::Smp => Arc::new(SmpLamellae::new(ep)),
                b => Arc::new(
                    FabricLamellae::with_metrics(
                        ep,
                        b,
                        queue_base,
                        cfg.buffer_size,
                        cfg.agg_threshold,
                        cfg.metrics,
                    )
                    .with_retransmit_timeout(cfg.retransmit_timeout),
                ),
            };
            let pe = lamellae.my_pe();
            let pool = ThreadPool::new(PoolConfig {
                workers: cfg.threads_per_pe,
                single_queue: false,
                thread_name: format!("lamellar-pe{pe}"),
                metrics: cfg.metrics,
            });
            let rt = RuntimeInner::new(
                lamellae,
                pool,
                Arc::clone(&shared),
                cfg.agg_threshold,
                cfg.metrics,
                cfg.am_deadline,
                cfg.reply_elision,
            );
            let progress = {
                let rt = Arc::clone(&rt);
                std::thread::Builder::new()
                    .name(format!("lamellar-progress-pe{pe}"))
                    .spawn(move || rt.progress_loop())
                    .expect("spawn progress thread")
            };
            let watchdog = cfg.watchdog.map(|wcfg| {
                let rt = Arc::clone(&rt);
                std::thread::Builder::new()
                    .name(format!("lamellar-watchdog-pe{pe}"))
                    .spawn(move || rt.watchdog_loop(wcfg))
                    .expect("spawn watchdog thread")
            });
            let guard = Arc::new(WorldGuard {
                rt: Arc::clone(&rt),
                progress: Mutex::new(Some(progress)),
                watchdog: Mutex::new(watchdog),
            });
            LamellarWorld { rt, guard: Some(guard) }
        })
        .collect();
    // Bootstrap is done — only now may the injector start failing
    // allocations and faulting wire chunks.
    if let Some(plane) = fault_plane {
        plane.arm();
    }
    worlds
}

/// Construct all PE worlds without spawning PE main threads — for
/// harnesses (e.g. Criterion benches) that need to place each PE's world
/// on a thread they manage themselves. Prefer [`launch`] for SPMD
/// programs.
pub fn spawn_worlds(cfg: WorldConfig) -> Vec<LamellarWorld> {
    build_worlds(cfg)
}

/// SPMD launch: run `f` once per PE (each on its own thread group), return
/// the per-PE results in PE order. This is the simulation's stand-in for
/// the cluster launcher ("The number of PEs is controlled through the
/// system's launcher (e.g. slurm)").
pub fn launch<R, F>(num_pes: usize, f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(LamellarWorld) -> R + Send + Sync + 'static,
{
    launch_with_config(WorldConfig::new(num_pes), f)
}

/// [`launch`] with explicit configuration.
pub fn launch_with_config<R, F>(cfg: WorldConfig, f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(LamellarWorld) -> R + Send + Sync + 'static,
{
    let worlds = build_worlds(cfg);
    let f = Arc::new(f);
    let handles: Vec<_> = worlds
        .into_iter()
        .enumerate()
        .map(|(pe, world)| {
            let f = Arc::clone(&f);
            std::thread::Builder::new()
                .name(format!("lamellar-main-pe{pe}"))
                .spawn(move || f(world))
                .expect("spawn PE main thread")
        })
        .collect();
    handles
        .into_iter()
        .enumerate()
        .map(|(pe, h)| match h.join() {
            Ok(r) => r,
            Err(e) => std::panic::resume_unwind(
                Box::new(format!("PE {pe} main panicked: {e:?}")) as Box<dyn Any + Send>
            ),
        })
        .collect()
}
