//! The fabric-backed Lamellae: `Rofi` (with network cost model) and
//! `Shmem` (without) share this implementation.
//!
//! The paper's Shmem lamellae "implements all the same internal data
//! structures as the ROFI Lamellae. The key difference is that instead of
//! creating RDMA Memory Regions (via libfabrics) it simply allocates shared
//! memory segments" — in our single-process simulation the two genuinely
//! coincide, differing only in whether transfers are charged modeled
//! network costs. "From a user perspective switching between the ROFI
//! Lamellae and the Shared Memory Lamellae should be transparent."

use crate::config::Backend;
use crate::lamellae::queue::QueueTransport;
use crate::lamellae::{CommError, Lamellae, PairLiveness};
use lamellar_metrics::{FabricStats, FaultStats, LamellaeStats};
use rofi_sim::{FabricError, FabricPe};

/// A Lamellae over the simulated fabric.
pub struct FabricLamellae {
    ep: FabricPe,
    queues: QueueTransport,
    backend: Backend,
}

impl FabricLamellae {
    /// Wrap a fabric endpoint. `queue_base` is the symmetric offset of the
    /// pre-allocated queue block (see
    /// [`queue_footprint`](crate::lamellae::queue::queue_footprint)).
    pub fn new(
        ep: FabricPe,
        backend: Backend,
        queue_base: usize,
        buffer_size: usize,
        agg_threshold: usize,
    ) -> Self {
        Self::with_metrics(ep, backend, queue_base, buffer_size, agg_threshold, true)
    }

    /// [`FabricLamellae::new`] with explicit control over observability
    /// counters (threaded down from `WorldConfig::metrics`).
    pub fn with_metrics(
        ep: FabricPe,
        backend: Backend,
        queue_base: usize,
        buffer_size: usize,
        agg_threshold: usize,
        metrics: bool,
    ) -> Self {
        let queues = QueueTransport::with_metrics(
            ep.clone(),
            queue_base,
            buffer_size,
            agg_threshold,
            metrics,
        );
        FabricLamellae { ep, queues, backend }
    }

    /// Override the reliable-delivery retransmit timeout (builder-style;
    /// threaded down from `WorldConfig::retransmit_timeout`). No effect
    /// without an armed fault plane.
    pub fn with_retransmit_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.queues = self.queues.with_retransmit_timeout(timeout);
        self
    }

    /// The underlying fabric endpoint (used by memregions for atomics).
    pub fn endpoint(&self) -> &FabricPe {
        &self.ep
    }
}

impl Lamellae for FabricLamellae {
    fn my_pe(&self) -> usize {
        self.ep.pe()
    }

    fn num_pes(&self) -> usize {
        self.ep.num_pes()
    }

    fn backend(&self) -> Backend {
        self.backend
    }

    fn send(&self, dst: usize, framed: &[u8]) {
        self.queues.send(dst, framed);
    }

    fn send_with(&self, dst: usize, len: usize, fill: &mut dyn FnMut(&mut Vec<u8>)) {
        self.queues.send_with(dst, len, fill);
    }

    fn flush(&self) {
        self.queues.flush();
    }

    fn progress(&self, sink: &mut dyn FnMut(usize, &[u8])) -> bool {
        self.ep.fabric().progress_delay(); // failure-injection hook
                                           // Chunks pass through untouched: the runtime deframes and parses
                                           // envelopes in place out of the pooled receive buffer.
        self.queues.progress(sink)
    }

    fn barrier_with(&self, progress: &mut dyn FnMut()) {
        self.ep.barrier_with_progress(progress);
    }

    fn alloc_symmetric(&self, size: usize, align: usize) -> usize {
        self.try_alloc_symmetric(size, align).unwrap_or_else(|e| panic!("{e}"))
    }

    fn free_symmetric(&self, offset: usize) {
        self.ep.fabric().free_symmetric(offset).expect("invalid symmetric free");
    }

    fn alloc_heap(&self, size: usize, align: usize) -> usize {
        self.try_alloc_heap(size, align).unwrap_or_else(|e| panic!("{e}"))
    }

    fn free_heap(&self, pe: usize, offset: usize) {
        self.ep.fabric().free_heap(pe, offset).expect("invalid heap free");
    }

    unsafe fn put(&self, pe: usize, offset: usize, src: &[u8]) {
        // SAFETY: contract forwarded to the caller.
        unsafe { self.ep.put(pe, offset, src).expect("rdma put") }
    }

    unsafe fn get(&self, pe: usize, offset: usize, dst: &mut [u8]) {
        // SAFETY: contract forwarded to the caller.
        unsafe { self.ep.get(pe, offset, dst).expect("rdma get") }
    }

    fn base_ptr(&self, pe: usize) -> *mut u8 {
        self.ep.fabric().arena(pe).expect("valid pe").base_ptr()
    }

    fn oob_put(&self, tag: u64, val: u64) {
        self.ep.fabric().oob_put(tag, val);
    }

    fn oob_get(&self, tag: u64) -> u64 {
        self.ep.fabric().oob_get(tag)
    }

    fn oob_remove(&self, tag: u64) {
        self.ep.fabric().oob_remove(tag);
    }

    fn inject_progress_delay(&self, ns: u64) {
        self.ep.fabric().set_progress_delay_ns(ns);
    }

    fn heap_in_use(&self) -> usize {
        self.ep.fabric().heap_in_use(self.ep.pe()).unwrap_or(0)
    }

    fn fabric_stats(&self) -> FabricStats {
        self.ep.fabric().stats()
    }

    fn lamellae_stats(&self) -> LamellaeStats {
        self.queues.stats()
    }

    fn try_send_with(
        &self,
        dst: usize,
        len: usize,
        fill: &mut dyn FnMut(&mut Vec<u8>),
    ) -> Result<(), CommError> {
        self.queues.try_send_with(dst, len, fill)
    }

    fn try_flush(&self) -> Result<(), CommError> {
        self.queues.try_flush()
    }

    fn try_alloc_heap(&self, size: usize, align: usize) -> Result<usize, CommError> {
        self.ep.fabric().alloc_heap(self.ep.pe(), size, align).map_err(map_alloc_err)
    }

    fn try_alloc_symmetric(&self, size: usize, align: usize) -> Result<usize, CommError> {
        self.ep.fabric().alloc_symmetric(size, align).map_err(map_alloc_err)
    }

    fn take_comm_failures(&self) -> Vec<usize> {
        self.queues.take_comm_failures()
    }

    fn fault_stats(&self) -> FaultStats {
        self.ep.fabric().fault_plane().map(|p| p.stats()).unwrap_or_default()
    }

    fn pair_liveness(&self) -> Vec<PairLiveness> {
        self.queues.pair_liveness()
    }
}

/// Translate a fabric allocation failure into the lamellae-level taxonomy.
pub(crate) fn map_alloc_err(e: FabricError) -> CommError {
    match e {
        FabricError::OutOfMemory { requested, available } => {
            CommError::AllocFailed { requested, available }
        }
        // Allocation paths only fail with OutOfMemory; anything else is a
        // runtime bug worth surfacing loudly.
        other => panic!("unexpected fabric allocation error: {other:?}"),
    }
}

impl std::fmt::Debug for FabricLamellae {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FabricLamellae")
            .field("backend", &self.backend)
            .field("pe", &self.my_pe())
            .field("num_pes", &self.num_pes())
            .finish()
    }
}
