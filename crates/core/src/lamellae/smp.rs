//! The SMP Lamellae: single-process, single-PE (paper Sec. III-A.3).
//!
//! "The SMP Lamellae targets single-process multi-threaded applications
//! where there is only one PE. No data transfer needs to occur, so there is
//! no (de)serialization."
//!
//! The runtime already executes PE-local AMs without serialization (the
//! fast path in [`crate::runtime`]), so this Lamellae's queue machinery is
//! nearly idle; a plain local mailbox covers the rare envelope that does go
//! through `send` (e.g. tests forcing the wire path). One deviation from
//! the paper, noted here per DESIGN.md: allocations still come from a 1-PE
//! fabric arena rather than the global allocator, so that memory regions
//! and arrays behave identically across all three backends ("applications
//! first written using only the SMP Lamellae will execute successfully on
//! both the Shmem and ROFI Lamellaes").

use crate::config::Backend;
use crate::lamellae::fabric_backend::map_alloc_err;
use crate::lamellae::{CommError, Lamellae};
use parking_lot::Mutex;
use rofi_sim::FabricPe;
use std::collections::VecDeque;

/// Single-PE loopback Lamellae.
pub struct SmpLamellae {
    ep: FabricPe,
    mailbox: Mutex<VecDeque<Vec<u8>>>,
    /// Drained mailbox buffers waiting for reuse (the SMP analogue of the
    /// queue transport's `BufferPool`).
    spare: Mutex<Vec<Vec<u8>>>,
}

impl SmpLamellae {
    /// Wrap a 1-PE fabric endpoint.
    pub fn new(ep: FabricPe) -> Self {
        assert_eq!(ep.num_pes(), 1, "the SMP lamellae supports exactly one PE");
        SmpLamellae { ep, mailbox: Mutex::new(VecDeque::new()), spare: Mutex::new(Vec::new()) }
    }
}

impl Lamellae for SmpLamellae {
    fn my_pe(&self) -> usize {
        0
    }

    fn num_pes(&self) -> usize {
        1
    }

    fn backend(&self) -> Backend {
        Backend::Smp
    }

    fn send(&self, dst: usize, framed: &[u8]) {
        self.send_with(dst, framed.len(), &mut |buf| buf.extend_from_slice(framed));
    }

    fn send_with(&self, dst: usize, len: usize, fill: &mut dyn FnMut(&mut Vec<u8>)) {
        assert_eq!(dst, 0, "SMP world has a single PE");
        // Loopback: deframe happens in progress, matching the other
        // backends' observable behavior. Buffers cycle through `spare`.
        let mut buf = self.spare.lock().pop().unwrap_or_default();
        buf.clear();
        buf.reserve(len);
        fill(&mut buf);
        self.mailbox.lock().push_back(buf);
    }

    fn flush(&self) {}

    fn progress(&self, sink: &mut dyn FnMut(usize, &[u8])) -> bool {
        let mut any = false;
        loop {
            let Some(raw) = self.mailbox.lock().pop_front() else { break };
            sink(0, &raw);
            self.spare.lock().push(raw);
            any = true;
        }
        any
    }

    fn barrier_with(&self, _progress: &mut dyn FnMut()) {
        // One PE: a barrier is a no-op.
    }

    fn alloc_symmetric(&self, size: usize, align: usize) -> usize {
        self.try_alloc_symmetric(size, align).unwrap_or_else(|e| panic!("{e}"))
    }

    fn free_symmetric(&self, offset: usize) {
        self.ep.fabric().free_symmetric(offset).expect("invalid symmetric free");
    }

    fn alloc_heap(&self, size: usize, align: usize) -> usize {
        self.try_alloc_heap(size, align).unwrap_or_else(|e| panic!("{e}"))
    }

    fn free_heap(&self, pe: usize, offset: usize) {
        self.ep.fabric().free_heap(pe, offset).expect("invalid heap free");
    }

    fn try_alloc_heap(&self, size: usize, align: usize) -> Result<usize, CommError> {
        self.ep.fabric().alloc_heap(0, size, align).map_err(map_alloc_err)
    }

    fn try_alloc_symmetric(&self, size: usize, align: usize) -> Result<usize, CommError> {
        self.ep.fabric().alloc_symmetric(size, align).map_err(map_alloc_err)
    }

    unsafe fn put(&self, pe: usize, offset: usize, src: &[u8]) {
        // SAFETY: contract forwarded to the caller.
        unsafe { self.ep.put(pe, offset, src).expect("local put") }
    }

    unsafe fn get(&self, pe: usize, offset: usize, dst: &mut [u8]) {
        // SAFETY: contract forwarded to the caller.
        unsafe { self.ep.get(pe, offset, dst).expect("local get") }
    }

    fn base_ptr(&self, pe: usize) -> *mut u8 {
        self.ep.fabric().arena(pe).expect("valid pe").base_ptr()
    }

    fn oob_put(&self, tag: u64, val: u64) {
        self.ep.fabric().oob_put(tag, val);
    }

    fn oob_get(&self, tag: u64) -> u64 {
        self.ep.fabric().oob_get(tag)
    }

    fn oob_remove(&self, tag: u64) {
        self.ep.fabric().oob_remove(tag);
    }

    fn heap_in_use(&self) -> usize {
        self.ep.fabric().heap_in_use(0).unwrap_or(0)
    }
}

impl std::fmt::Debug for SmpLamellae {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SmpLamellae")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lamellae::Lamellae;
    use crate::proto::{frame, Envelope};
    use rofi_sim::fabric::{Fabric, FabricConfig};
    use rofi_sim::NetConfig;

    fn smp() -> SmpLamellae {
        let mut eps = Fabric::launch(FabricConfig {
            num_pes: 1,
            sym_len: 1 << 16,
            heap_len: 1 << 14,
            net: NetConfig::disabled(),
            metrics: true,
            fault: None,
        });
        SmpLamellae::new(eps.pop().unwrap())
    }

    #[test]
    fn loopback_send_deframes_on_progress() {
        let lam = smp();
        let env = Envelope::Reply(7, vec![1, 2, 3]);
        let mut buf = Vec::new();
        frame(&env, &mut buf);
        frame(&Envelope::FreeHeap(9), &mut buf);
        lam.send(0, &buf);
        let mut got = Vec::new();
        assert!(lam.progress(&mut |src, chunk| {
            assert_eq!(src, 0);
            got.extend(crate::proto::deframe(chunk));
        }));
        assert_eq!(got, vec![env, Envelope::FreeHeap(9)]);
        // Drained: nothing more.
        assert!(!lam.progress(&mut |_, _| panic!("no more messages")));
    }

    #[test]
    fn loopback_recycles_mailbox_buffers() {
        let lam = smp();
        let mut buf = Vec::new();
        frame(&Envelope::FreeHeap(1), &mut buf);
        for _ in 0..10 {
            lam.send(0, &buf);
            assert!(lam.progress(&mut |_, _| {}));
        }
        // One buffer cycles send → mailbox → spare the whole time.
        assert_eq!(lam.spare.lock().len(), 1);
    }

    #[test]
    fn smp_memory_ops_are_local() {
        let lam = smp();
        let off = lam.alloc_heap(64, 8);
        // SAFETY: single PE, single thread.
        unsafe {
            lam.put(0, off, &[9, 8, 7]);
            let mut out = [0u8; 3];
            lam.get(0, off, &mut out);
            assert_eq!(out, [9, 8, 7]);
        }
        lam.free_heap(0, off);
        let s = lam.alloc_symmetric(128, 8);
        lam.free_symmetric(s);
        // Barrier is a no-op with one PE.
        lam.barrier_with(&mut || {});
        assert_eq!(lam.backend(), Backend::Smp);
    }

    #[test]
    #[should_panic(expected = "exactly one PE")]
    fn smp_rejects_multi_pe_fabric() {
        let mut eps = Fabric::launch(FabricConfig {
            num_pes: 2,
            sym_len: 1 << 12,
            heap_len: 1 << 12,
            net: NetConfig::disabled(),
            metrics: true,
            fault: None,
        });
        let _ = SmpLamellae::new(eps.pop().unwrap());
    }
}
