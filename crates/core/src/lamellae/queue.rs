//! Flag-based, double-buffered message queues over the fabric.
//!
//! This is the transfer mechanism of Sec. III-A.1:
//!
//! > "the Lamellae implements a 'flag' based transfer mechanism. Each PE is
//! > able to signal every other PE to let them know when data is to be read.
//! > Upon receiving this signal the Remote PE is then responsible for
//! > getting the data, once local buffers become available. The remote PE
//! > then signals the original PE to let it know it is now free to release
//! > any resources associated with the transferred data. Lamellar employs a
//! > double buffering message queue..."
//!
//! ## Memory layout
//!
//! Each PE's symmetric region hosts, at the same base offset everywhere:
//!
//! ```text
//! recv_signals : num_pes × NBUF u64   — written by remote *senders*:
//!                nonzero = "my buffer #idx for you holds `len` bytes"
//! send_busy    : num_pes × NBUF u64   — owned by the local sender, cleared
//!                remotely by the consumer: 0 = buffer free, 1 = in flight
//! send_bufs    : num_pes × NBUF × buffer_size bytes — outgoing wire data
//! ```
//!
//! Sender protocol (PE `s` → PE `d`, buffer `i`):
//! 1. claim `send_busy[d][i]` on `s` (CAS 0→1);
//! 2. write the aggregated bytes into `send_bufs[d][i]` on `s` (local);
//! 3. release-store `len` into `recv_signals[s][i]` on `d` (the *flag*).
//!
//! Receiver protocol (PE `d` polling):
//! 1. acquire-load `recv_signals[s][i]`; if nonzero, RDMA-get `len` bytes
//!    from `send_bufs[d][i]` on `s`;
//! 2. clear the signal;
//! 3. release-store 0 into `send_busy[d][i]` on `s` ("free to release").
//!
//! The release/acquire pairing on the flag orders the plain-data buffer
//! writes before the reads — the classic message-passing pattern.
//!
//! ## Non-blocking sends
//!
//! **No call here ever blocks on the wire.** When both buffers toward a
//! destination are in flight, ready chunks park in a local queue and are
//! retried on the next `send`/`flush`/`progress` call. Blocking instead
//! would deadlock two peers whose progress engines are each stuck flushing
//! toward the other; with parking, every `progress` tick both drains
//! incoming traffic (freeing the peer's buffers) and retries parked chunks.
//!
//! ## Reliable delivery (fault-plane worlds)
//!
//! When the fabric carries a [`FaultPlane`], chunk deliveries can be
//! dropped, duplicated, delayed, truncated, or bit-flipped, so the
//! transport switches to a go-back-N reliable layer (DESIGN.md §4b):
//!
//! * every sealed chunk gets a [`CHUNK_HDR_LEN`]-byte header — per-pair
//!   sequence number + checksum over header and payload;
//! * sent chunks are retained (pool release deferred) until the receiver's
//!   cumulative ack — an atomic word per peer in the symmetric block,
//!   written back into the *sender's* arena — covers them;
//! * the receiver delivers only the exact next sequence number, suppresses
//!   duplicates, discards gapped or corrupt chunks, and re-acks;
//! * an unacked chunk older than [`RETRANSMIT_TIMEOUT`] triggers go-back-N
//!   retransmission of everything outstanding; after [`MAX_RETRY_ROUNDS`]
//!   consecutive rounds without progress the destination is declared dead,
//!   queued traffic is discarded, and the failure surfaces through
//!   [`QueueTransport::take_comm_failures`] /
//!   [`CommError::PeerUnreachable`].
//!
//! Acks, like barriers and the out-of-band channel, are control plane and
//! never faulted. Without a fault plane none of this machinery runs: no
//! header bytes, no ack writes, byte-identical wire traffic to PR 2.
//!
//! [`CHUNK_HDR_LEN`]: crate::proto::CHUNK_HDR_LEN

use crate::lamellae::{CommError, PairLiveness};
use crate::proto::{read_chunk_header, write_chunk_header, CHUNK_HDR_LEN};
use lamellar_metrics::{LamellaeMetrics, LamellaeStats};
use parking_lot::Mutex;
use rofi_sim::{ChunkAction, FabricPe, FaultPlane};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Buffers per destination (double buffering, per the paper).
pub const NBUF: usize = 2;

/// Default for how long a transmitted chunk may sit unacknowledged before
/// the sender retransmits everything outstanding toward that destination.
/// Generous relative to the microsecond-scale ack path, so spurious
/// retransmits — which would perturb seeded-counter reproducibility —
/// essentially never happen. Override per world with
/// [`crate::config::WorldConfig::retransmit_timeout`] (e.g. a much larger
/// value makes seeded runs stall-proof under heavy CPU contention).
pub const RETRANSMIT_TIMEOUT: Duration = Duration::from_millis(1);

/// Consecutive retransmit-timeout rounds with zero forward progress (no
/// new ack collected) before a destination is declared unreachable. Each
/// healthy round delivers at least the front chunk, so at a 5% injected
/// drop rate the odds of 20 straight dead rounds are ~1e-26 — exhaustion
/// means the pair is genuinely severed (e.g. drop probability 1.0).
pub const MAX_RETRY_ROUNDS: u32 = 20;

/// Bytes of symmetric region consumed by the queue block for a world of
/// `num_pes` with the given per-buffer size.
pub fn queue_footprint(num_pes: usize, buffer_size: usize) -> usize {
    // Two tables of num_pes × NBUF u64s, one cumulative-ack word per peer,
    // plus the buffers, plus alignment.
    2 * num_pes * NBUF * 8 + num_pes * 8 + num_pes * NBUF * buffer_size + 64
}

/// A free-list of reusable byte buffers shared by the aggregation and
/// receive paths, so steady-state messaging performs no heap allocation:
/// every aggregation chunk and receive staging buffer is acquired here and
/// released back once its bytes hit the wire (or the sink returns).
///
/// The pool never shrinks; its size is bounded by the high-water mark of
/// simultaneously outstanding buffers (per destination: one open aggregation
/// buffer plus any parked sealed chunks; plus one receive buffer per
/// progress ticker), which [`LamellaeMetrics::record_pool_outstanding`]
/// tracks.
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    outstanding: AtomicU64,
    metrics: Arc<LamellaeMetrics>,
}

impl BufferPool {
    pub fn new(metrics: Arc<LamellaeMetrics>) -> Self {
        BufferPool { free: Mutex::new(Vec::new()), outstanding: AtomicU64::new(0), metrics }
    }

    /// Check out an empty buffer with at least `capacity` bytes reserved.
    pub fn acquire(&self, capacity: usize) -> Vec<u8> {
        let recycled = self.free.lock().pop();
        let out = self.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics.record_pool_outstanding(out);
        match recycled {
            Some(mut buf) => {
                self.metrics.record_pool_acquire(true);
                buf.clear();
                buf.reserve(capacity);
                buf
            }
            None => {
                self.metrics.record_pool_acquire(false);
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Return a buffer for reuse (contents are discarded on next acquire).
    pub fn release(&self, buf: Vec<u8>) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        self.free.lock().push(buf);
    }

    /// Buffers currently checked out (0 when the system is quiescent).
    pub fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::Relaxed)
    }
}

/// One sealed wire chunk and its reliable-delivery state. On the default
/// (loss-free) path only `bytes` is meaningful; the rest stays at its
/// construction value.
struct SealedChunk {
    /// Pool-backed chunk bytes (header + framed envelopes in reliable
    /// mode; framed envelopes only otherwise).
    bytes: Vec<u8>,
    /// Per-destination sequence number stamped at seal (0 when unreliable).
    seq: u64,
    /// Transmission attempts so far (bumped by go-back-N resends).
    attempt: u32,
    /// When this attempt hit the wire; `None` while queued.
    sent_at: Option<Instant>,
    /// The injector's cached verdict for this attempt, so parked retries
    /// don't redraw (decisions are one-per-(chunk, attempt)).
    fault: Option<ChunkAction>,
    /// Earliest transmit time for a delay-faulted chunk.
    not_before: Option<Instant>,
}

impl SealedChunk {
    fn new(bytes: Vec<u8>, seq: u64) -> Self {
        SealedChunk { bytes, seq, attempt: 0, sent_at: None, fault: None, not_before: None }
    }
}

/// Outgoing state for one destination: the open aggregation buffer that
/// frames encode directly into, sealed chunks waiting for a free wire
/// buffer, and (in reliable mode) the unacked in-flight window. All
/// buffers are pool-backed.
struct OutQueue {
    /// The chunk currently being filled (frames encode in place here).
    agg: Option<Vec<u8>>,
    /// Sealed chunks in FIFO order, each awaiting a wire buffer.
    sealed: VecDeque<SealedChunk>,
    /// The front sealed chunk already failed a wire attempt (park/retry
    /// accounting).
    parked: bool,
    /// Next sequence number to stamp at seal (reliable mode; starts at 1 —
    /// the ack words in the symmetric block start at 0 = "nothing acked").
    next_seq: u64,
    /// Transmitted chunks not yet covered by the destination's cumulative
    /// ack, in sequence order; their buffers return to the pool on ack.
    unacked: VecDeque<SealedChunk>,
    /// Consecutive retransmit-timeout rounds in which no new ack arrived;
    /// reset by any ack, fatal at [`MAX_RETRY_ROUNDS`].
    stalled_rounds: u32,
    /// Retries exhausted: the destination is unreachable for the rest of
    /// the world's lifetime and sends to it are discarded.
    dead: bool,
}

impl Default for OutQueue {
    fn default() -> Self {
        OutQueue {
            agg: None,
            sealed: VecDeque::new(),
            parked: false,
            next_seq: 1,
            unacked: VecDeque::new(),
            stalled_rounds: 0,
            dead: false,
        }
    }
}

/// One PE's endpoint of the world-wide queue fabric.
pub struct QueueTransport {
    ep: FabricPe,
    /// Base offset of the queue block (identical on every PE).
    base: usize,
    num_pes: usize,
    buffer_size: usize,
    /// Aggregation threshold: assemble a wire chunk once this many bytes
    /// are waiting for a destination.
    agg_threshold: usize,
    /// Per-destination aggregation queues.
    out: Vec<Mutex<OutQueue>>,
    /// Recycled aggregation/receive buffers.
    pool: BufferPool,
    /// Serializes progress ticks (one ticker at a time).
    progress_lock: Mutex<()>,
    /// Transport observability. `msgs_sent` counts individual framed
    /// messages; `msgs_received` counts aggregated wire chunks — their
    /// ratio is the aggregation factor. `flushes` counts chunks handed to
    /// the wire; parks/retries expose backpressure.
    metrics: Arc<LamellaeMetrics>,
    /// The fabric's fault injector, when it has one. Its presence switches
    /// the transport into reliable-delivery mode.
    fault: Option<Arc<FaultPlane>>,
    /// Reliable mode: next expected sequence number per source (receiver
    /// side of go-back-N; starts at 1).
    recv_next: Vec<AtomicU64>,
    /// Reliable mode: how long the oldest unacked chunk may wait before a
    /// go-back-N round fires. Defaults to [`RETRANSMIT_TIMEOUT`].
    retransmit_timeout: Duration,
    /// Destinations newly declared dead, awaiting collection by the
    /// runtime via [`QueueTransport::take_comm_failures`].
    failed: Mutex<Vec<usize>>,
}

impl QueueTransport {
    /// Build the endpoint. `base` must point at a symmetric allocation of at
    /// least [`queue_footprint`] bytes, 8-aligned, zero-initialized
    /// (arenas start zeroed; `send_busy == 0` means free).
    pub fn new(ep: FabricPe, base: usize, buffer_size: usize, agg_threshold: usize) -> Self {
        Self::with_metrics(ep, base, buffer_size, agg_threshold, true)
    }

    /// [`QueueTransport::new`] with explicit control over whether the
    /// transport records observability counters.
    pub fn with_metrics(
        ep: FabricPe,
        base: usize,
        buffer_size: usize,
        agg_threshold: usize,
        metrics: bool,
    ) -> Self {
        assert_eq!(base % 8, 0, "queue base must be 8-aligned");
        assert!(agg_threshold <= buffer_size, "threshold must fit in a buffer");
        let fault = ep.fabric().fault_plane().cloned();
        assert!(
            fault.is_none() || buffer_size > CHUNK_HDR_LEN,
            "wire buffers must fit the reliable-delivery chunk header"
        );
        let num_pes = ep.num_pes();
        let out = (0..num_pes).map(|_| Mutex::new(OutQueue::default())).collect();
        let recv_next = (0..num_pes).map(|_| AtomicU64::new(1)).collect();
        let metrics = Arc::new(LamellaeMetrics::new(metrics));
        QueueTransport {
            ep,
            base,
            num_pes,
            buffer_size,
            agg_threshold,
            out,
            pool: BufferPool::new(Arc::clone(&metrics)),
            progress_lock: Mutex::new(()),
            metrics,
            fault,
            recv_next,
            retransmit_timeout: RETRANSMIT_TIMEOUT,
            failed: Mutex::new(Vec::new()),
        }
    }

    /// Override the reliable-delivery retransmit timeout (builder-style,
    /// apply before first use). A larger value trades recovery latency for
    /// immunity to spurious timer fires under scheduling stalls — seeded
    /// determinism tests use this to keep injected-fault counters exactly
    /// reproducible regardless of machine load. No effect when the
    /// transport is not in reliable mode.
    pub fn with_retransmit_timeout(mut self, timeout: Duration) -> Self {
        assert!(timeout > Duration::ZERO, "retransmit timeout must be positive");
        self.retransmit_timeout = timeout;
        self
    }

    /// True when the transport is running the reliable-delivery layer
    /// (sequence headers, acks, retransmits) — i.e. the fabric carries a
    /// [`FaultPlane`].
    pub fn reliable(&self) -> bool {
        self.fault.is_some()
    }

    /// Per-chunk header overhead in the current mode.
    fn hdr_len(&self) -> usize {
        if self.reliable() {
            CHUNK_HDR_LEN
        } else {
            0
        }
    }

    /// The transport's buffer pool (receive staging and aggregation chunks).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The live transport metrics registry.
    pub fn metrics(&self) -> &Arc<LamellaeMetrics> {
        &self.metrics
    }

    /// Typed snapshot of the transport counters.
    pub fn stats(&self) -> LamellaeStats {
        self.metrics.snapshot()
    }

    /// Largest single framed message the wire can carry (net of the
    /// reliable-delivery chunk header, when one is in use).
    pub fn max_message(&self) -> usize {
        self.buffer_size - self.hdr_len()
    }

    fn recv_sig_off(&self, src: usize, idx: usize) -> usize {
        self.base + (src * NBUF + idx) * 8
    }

    fn send_busy_off(&self, dst: usize, idx: usize) -> usize {
        self.base + self.num_pes * NBUF * 8 + (dst * NBUF + idx) * 8
    }

    /// The cumulative-ack word for traffic *from* `peer` — lives on the
    /// receiver's side of the protocol in the *sender's* arena: PE `d`
    /// acknowledges PE `s`'s chunks by storing into `ack_off(d)` on `s`.
    fn ack_off(&self, peer: usize) -> usize {
        self.base + 2 * self.num_pes * NBUF * 8 + peer * 8
    }

    fn send_buf_off(&self, dst: usize, idx: usize) -> usize {
        self.base
            + 2 * self.num_pes * NBUF * 8
            + self.num_pes * 8
            + (dst * NBUF + idx) * self.buffer_size
    }

    /// Enqueue one framed message for `dst`; wire chunks are emitted once
    /// the aggregation threshold accumulates (never blocks).
    ///
    /// # Panics
    /// If `framed` exceeds [`QueueTransport::max_message`]. Sends to a
    /// destination declared dead by the reliable layer are silently
    /// discarded (the failure already surfaced through
    /// [`QueueTransport::take_comm_failures`]).
    pub fn send(&self, dst: usize, framed: &[u8]) {
        self.send_with(dst, framed.len(), &mut |buf| buf.extend_from_slice(framed));
    }

    /// Zero-copy send: reserves `len` bytes of the destination's open
    /// aggregation buffer and lets `fill` encode the framed message straight
    /// into it — the only copy is the encode itself. `fill` must append
    /// exactly `len` bytes. Never blocks.
    ///
    /// # Panics
    /// If `len` exceeds [`QueueTransport::max_message`] (use
    /// [`QueueTransport::try_send_with`] for a fallible variant). Sends to
    /// a dead destination are silently discarded.
    pub fn send_with(&self, dst: usize, len: usize, fill: &mut dyn FnMut(&mut Vec<u8>)) {
        match self.try_send_with(dst, len, fill) {
            Ok(()) | Err(CommError::PeerUnreachable { .. }) => {}
            Err(e) => panic!("{e} (large payloads take the heap path)"),
        }
    }

    /// Fallible [`QueueTransport::send_with`]. Never blocks.
    ///
    /// # Errors
    /// [`CommError::MessageTooLarge`] when the framed message cannot fit a
    /// wire chunk; [`CommError::PeerUnreachable`] when the reliable layer
    /// has exhausted its retries toward `dst` (the message is not queued).
    pub fn try_send_with(
        &self,
        dst: usize,
        len: usize,
        fill: &mut dyn FnMut(&mut Vec<u8>),
    ) -> Result<(), CommError> {
        let max = self.max_message();
        if len > max {
            return Err(CommError::MessageTooLarge { len, max });
        }
        let mut q = self.out[dst].lock();
        if q.dead {
            return Err(CommError::PeerUnreachable { pe: dst });
        }
        self.metrics.record_send(len as u64);
        // Seal the open buffer first if this frame would overflow it —
        // frames never straddle chunk boundaries.
        if q.agg.as_ref().is_some_and(|agg| agg.len() + len > self.buffer_size) {
            self.seal(&mut q);
        }
        if q.agg.is_none() {
            let mut fresh = self.pool.acquire(self.buffer_size);
            // Reserve room for the sequence/checksum header, stamped at seal.
            fresh.resize(self.hdr_len(), 0);
            q.agg = Some(fresh);
        }
        let agg = q.agg.as_mut().expect("just ensured");
        let before = agg.len();
        fill(agg);
        debug_assert_eq!(agg.len() - before, len, "send_with: fill appended a different length");
        if agg.len() >= self.agg_threshold {
            self.seal(&mut q);
        }
        self.pump(dst, &mut q);
        Ok(())
    }

    /// Seal the open aggregation buffer into the outgoing FIFO, stamping
    /// the sequence/checksum header in reliable mode.
    fn seal(&self, q: &mut OutQueue) {
        let Some(mut bytes) = q.agg.take() else { return };
        debug_assert!(bytes.len() > self.hdr_len(), "open buffers always hold at least one frame");
        let seq = if self.reliable() {
            let seq = q.next_seq;
            q.next_seq += 1;
            write_chunk_header(&mut bytes, seq);
            seq
        } else {
            0
        };
        q.sealed.push_back(SealedChunk::new(bytes, seq));
    }

    /// Push every waiting byte toward the wire (best effort — chunks that
    /// find no free buffer stay parked for the next call; in reliable mode
    /// this also collects acks and runs the retransmit timer).
    pub fn flush(&self) {
        for dst in 0..self.num_pes {
            let mut q = self.out[dst].lock();
            self.seal(&mut q);
            self.pump(dst, &mut q);
        }
    }

    /// Fallible [`QueueTransport::flush`].
    ///
    /// # Errors
    /// [`CommError::PeerUnreachable`] naming one dead destination when any
    /// pair has exhausted its delivery retries; live pairs are still
    /// flushed first.
    pub fn try_flush(&self) -> Result<(), CommError> {
        self.flush();
        match self.dead_pairs().first() {
            Some(&pe) => Err(CommError::PeerUnreachable { pe }),
            None => Ok(()),
        }
    }

    /// Destinations declared unreachable so far (stable once reported).
    pub fn dead_pairs(&self) -> Vec<usize> {
        (0..self.num_pes).filter(|&dst| self.out[dst].lock().dead).collect()
    }

    /// Drain the destinations newly declared unreachable since the last
    /// call (each reported exactly once, in death order).
    pub fn take_comm_failures(&self) -> Vec<usize> {
        std::mem::take(&mut *self.failed.lock())
    }

    /// Sample every destination's delivery-window state (see
    /// [`PairLiveness`]): what is queued, what is in flight unacked, and
    /// which sequence number a stalled pair is stuck on. Diagnostic only
    /// (the liveness watchdog's stall dump) — takes each out-queue lock
    /// briefly, off the fast path.
    pub fn pair_liveness(&self) -> Vec<PairLiveness> {
        let me = self.ep.pe();
        (0..self.num_pes)
            .filter(|&dst| dst != me)
            .map(|dst| {
                let q = self.out[dst].lock();
                PairLiveness {
                    dst,
                    queued: q.sealed.len() + usize::from(q.agg.is_some()),
                    unacked: q.unacked.len(),
                    oldest_unacked_seq: q.unacked.front().map(|c| c.seq),
                    next_seq: q.next_seq,
                    stalled_rounds: q.stalled_rounds,
                    dead: q.dead,
                }
            })
            .collect()
    }

    /// True when every frame and chunk for every destination has hit the
    /// wire — and, in reliable mode, been acknowledged (dead pairs are
    /// vacuously done; their traffic is discarded).
    pub fn outgoing_empty(&self) -> bool {
        self.out.iter().all(|q| {
            let q = q.lock();
            q.dead || (q.agg.is_none() && q.sealed.is_empty() && q.unacked.is_empty())
        })
    }

    /// Pop every unacked chunk now covered by `dst`'s cumulative ack,
    /// returning its buffer to the pool (reliable mode only).
    fn collect_acks(&self, dst: usize, q: &mut OutQueue) {
        if q.unacked.is_empty() {
            return;
        }
        let me = self.ep.pe();
        let acked = self
            .ep
            .atomic_u64(me, self.ack_off(dst))
            .expect("ack word in bounds")
            .load(Ordering::Acquire);
        while q.unacked.front().is_some_and(|c| c.seq <= acked) {
            let done = q.unacked.pop_front().expect("front exists");
            self.pool.release(done.bytes);
            q.stalled_rounds = 0; // forward progress
        }
    }

    /// Run the retransmit timer for `dst`. When the oldest unacked chunk
    /// has waited past the configured retransmit timeout (default
    /// [`RETRANSMIT_TIMEOUT`]), either resend everything outstanding
    /// (go-back-N, attempt bumped) or — after [`MAX_RETRY_ROUNDS`]
    /// consecutive ack-free rounds — declare the pair dead. Returns true
    /// when the pair died.
    fn check_retransmit(&self, dst: usize, q: &mut OutQueue) -> bool {
        let Some(front) = q.unacked.front() else { return false };
        let waited = front.sent_at.map(|t| t.elapsed()).unwrap_or(Duration::ZERO);
        if waited < self.retransmit_timeout {
            return false;
        }
        q.stalled_rounds += 1;
        if q.stalled_rounds >= MAX_RETRY_ROUNDS {
            self.kill_pair(dst, q);
            return true;
        }
        // Go-back-N: requeue every outstanding chunk, oldest first, for a
        // fresh attempt (each gets a fresh fault verdict).
        while let Some(mut chunk) = q.unacked.pop_back() {
            chunk.attempt += 1;
            chunk.sent_at = None;
            chunk.fault = None;
            chunk.not_before = None;
            self.metrics.record_retransmit();
            q.sealed.push_front(chunk);
        }
        false
    }

    /// Retry exhaustion: mark `dst` unreachable, discard its queued and
    /// in-flight traffic, and queue the failure for
    /// [`QueueTransport::take_comm_failures`].
    fn kill_pair(&self, dst: usize, q: &mut OutQueue) {
        q.dead = true;
        q.parked = false;
        self.metrics.record_delivery_failure();
        for c in q.unacked.drain(..) {
            self.pool.release(c.bytes);
        }
        for c in q.sealed.drain(..) {
            self.pool.release(c.bytes);
        }
        if let Some(agg) = q.agg.take() {
            self.pool.release(agg);
        }
        self.failed.lock().push(dst);
    }

    /// Emit sealed chunks for one destination in FIFO order. On the
    /// loss-free path each buffer is recycled the moment its bytes are on
    /// the wire; in reliable mode it is retained in the unacked window
    /// until the destination's cumulative ack covers it, and the injector's
    /// verdict (drop/duplicate/delay/truncate/corrupt) is applied per
    /// attempt. Chunks that find no free wire buffer stay parked for the
    /// next call.
    fn pump(&self, dst: usize, q: &mut OutQueue) {
        if q.dead {
            return;
        }
        if self.reliable() {
            self.collect_acks(dst, q);
            if self.check_retransmit(dst, q) {
                return;
            }
        }
        let me = self.ep.pe();
        loop {
            let Some(front) = q.sealed.front_mut() else { return };
            // Resolve this attempt's fault verdict exactly once; parked
            // retries reuse the cached decision. Loopback traffic and the
            // default path are never faulted.
            if front.fault.is_none() {
                front.fault = Some(match &self.fault {
                    Some(plane) if dst != me => {
                        plane.chunk_action(me, dst, front.seq, front.attempt, front.bytes.len())
                    }
                    _ => ChunkAction::Deliver,
                });
            }
            if let Some(ChunkAction::Delay { ns }) = front.fault {
                front.not_before = Some(Instant::now() + Duration::from_nanos(ns));
                // The delay is consumed; after the deadline, transmit.
                front.fault = Some(ChunkAction::Deliver);
            }
            if let Some(ready_at) = front.not_before {
                if Instant::now() < ready_at {
                    // FIFO order is part of the sequence contract: later
                    // chunks wait behind the delayed front.
                    return;
                }
                front.not_before = None;
            }
            if q.parked {
                self.metrics.record_retry();
            }
            let action = front.fault.expect("resolved above");
            let pushed = match action {
                // A dropped chunk vanishes without touching the wire; the
                // retransmit timer is what notices.
                ChunkAction::Drop => true,
                ChunkAction::Deliver | ChunkAction::Duplicate => {
                    let ok = self.try_push_to_wire(dst, &front.bytes);
                    if ok && action == ChunkAction::Duplicate {
                        // Best effort: a full wire just turns the duplicate
                        // back into a single delivery.
                        self.try_push_to_wire(dst, &front.bytes);
                    }
                    ok
                }
                ChunkAction::Truncate { new_len } => {
                    self.try_push_to_wire(dst, &front.bytes[..new_len.min(front.bytes.len())])
                }
                ChunkAction::Corrupt { byte, bit } => {
                    // Damage a scratch copy: the retained original must stay
                    // pristine for the retransmit path.
                    let mut scratch = self.pool.acquire(front.bytes.len());
                    scratch.extend_from_slice(&front.bytes);
                    if let Some(b) = scratch.get_mut(byte) {
                        *b ^= 1 << bit;
                    }
                    let ok = self.try_push_to_wire(dst, &scratch);
                    self.pool.release(scratch);
                    ok
                }
                ChunkAction::Delay { .. } => unreachable!("delays were converted to Deliver above"),
            };
            if !pushed {
                if !q.parked {
                    self.metrics.record_park();
                    q.parked = true;
                }
                return;
            }
            q.parked = false;
            self.metrics.record_flush();
            let mut done = q.sealed.pop_front().expect("front exists");
            if self.reliable() {
                done.sent_at = Some(Instant::now());
                done.fault = None;
                q.unacked.push_back(done);
            } else {
                self.pool.release(done.bytes);
            }
        }
    }

    /// One attempt to claim a free wire buffer for `dst` and transmit;
    /// false when both buffers are still in flight.
    ///
    /// This bypasses aggregation *and* the reliable-delivery layer: no
    /// sequence header is stamped and no retransmit state is kept, so in a
    /// fault-plane world the bytes will be discarded by the receiver's
    /// header validation. Intended for raw-wire benchmarking on loss-free
    /// fabrics only.
    pub fn try_send_now(&self, dst: usize, bytes: &[u8]) -> bool {
        assert!(bytes.len() <= self.buffer_size, "message exceeds wire buffer");
        self.try_push_to_wire(dst, bytes)
    }

    fn try_push_to_wire(&self, dst: usize, bytes: &[u8]) -> bool {
        debug_assert!(!bytes.is_empty());
        let me = self.ep.pe();
        for idx in 0..NBUF {
            let busy =
                self.ep.atomic_u64(me, self.send_busy_off(dst, idx)).expect("send_busy in bounds");
            if busy.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed).is_ok() {
                // SAFETY: we own this buffer (busy flag) until the
                // receiver clears it; offsets are within the queue block.
                unsafe {
                    self.ep.put(me, self.send_buf_off(dst, idx), bytes).expect("send buffer write");
                }
                // Model the tiny signalling RDMA write.
                if dst != me {
                    self.ep.fabric().model().charge(8);
                }
                self.ep
                    .atomic_u64(dst, self.recv_sig_off(me, idx))
                    .expect("recv_signal in bounds")
                    .store(bytes.len() as u64, Ordering::Release);
                return true;
            }
        }
        false
    }

    /// Drain incoming wire buffers; `sink` receives `(src, raw chunk)` as a
    /// borrowed slice of a pool-backed staging buffer (the caller deframes;
    /// bytes are only valid for the duration of the call). Returns true if
    /// anything arrived. One ticker runs at a time; concurrent callers
    /// return false immediately. Also retries parked outgoing chunks, so
    /// traffic keeps moving as long as anyone pumps progress.
    pub fn progress(&self, sink: &mut dyn FnMut(usize, &[u8])) -> bool {
        let Some(_guard) = self.progress_lock.try_lock() else {
            return false;
        };
        let me = self.ep.pe();
        let mut any = false;
        // One pooled staging buffer serves every wire chunk this tick.
        let mut data = self.pool.acquire(self.buffer_size);
        for src in 0..self.num_pes {
            for idx in 0..NBUF {
                let sig =
                    self.ep.atomic_u64(me, self.recv_sig_off(src, idx)).expect("sig in bounds");
                let len = sig.load(Ordering::Acquire) as usize;
                if len == 0 {
                    continue;
                }
                data.resize(len, 0);
                // SAFETY: the sender wrote the buffer before the release
                // store of the flag and will not touch it until we clear
                // send_busy below.
                unsafe {
                    self.ep
                        .get(src, self.send_buf_off(me, idx), &mut data)
                        .expect("wire buffer read");
                }
                sig.store(0, Ordering::Release);
                // "signals the original PE ... it is now free to release".
                self.ep
                    .atomic_u64(src, self.send_busy_off(me, idx))
                    .expect("busy in bounds")
                    .store(0, Ordering::Release);
                if self.reliable() {
                    // Validate before trusting anything — a bit flip in the
                    // seq field must read as corruption, not as a bogus
                    // duplicate/gap.
                    match read_chunk_header(&data[..len]) {
                        None => self.metrics.record_corrupt_chunk_dropped(),
                        Some((seq, payload)) => {
                            let expected = self.recv_next[src].load(Ordering::Relaxed);
                            if seq == expected {
                                self.recv_next[src].store(expected + 1, Ordering::Relaxed);
                                self.ack(src, seq);
                                self.metrics.record_recv(len as u64);
                                sink(src, payload);
                                any = true;
                            } else if seq < expected {
                                // Duplicate (retransmit raced the ack):
                                // suppress, but re-ack so the sender's
                                // window advances.
                                self.metrics.record_dup_chunk_dropped();
                                self.ack(src, expected - 1);
                            } else {
                                // A gap means an earlier chunk was dropped;
                                // go-back-N will resend everything from the
                                // gap, so discard and wait (no ack).
                                self.metrics.record_reordered_chunk_dropped();
                            }
                        }
                    }
                } else {
                    self.metrics.record_recv(len as u64);
                    sink(src, &data[..len]);
                    any = true;
                }
                data.clear();
            }
        }
        self.pool.release(data);
        // Freed buffers on our peers may unblock parked chunks of ours, and
        // the retransmit timer only runs when something pumps the queue.
        for dst in 0..self.num_pes {
            if let Some(mut q) = self.out[dst].try_lock() {
                if !q.sealed.is_empty() || (self.reliable() && !q.unacked.is_empty()) {
                    self.pump(dst, &mut q);
                }
            }
        }
        any
    }

    /// Cumulative-ack `src`'s traffic through `seq`: a release store into
    /// the *sender's* arena (control plane — never faulted).
    fn ack(&self, src: usize, seq: u64) {
        self.ep
            .atomic_u64(src, self.ack_off(self.ep.pe()))
            .expect("ack word in bounds")
            .store(seq, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rofi_sim::fabric::{Fabric, FabricConfig};
    use rofi_sim::NetConfig;
    use std::sync::Arc;

    fn make_world(n: usize, buf: usize, thresh: usize) -> Vec<Arc<QueueTransport>> {
        let foot = queue_footprint(n, buf);
        let pes = Fabric::launch(FabricConfig {
            num_pes: n,
            sym_len: foot + 4096,
            heap_len: 4096,
            net: NetConfig::disabled(),
            metrics: true,
            fault: None,
        });
        let base = pes[0].fabric().alloc_symmetric(foot, 8).unwrap();
        pes.into_iter().map(|ep| Arc::new(QueueTransport::new(ep, base, buf, thresh))).collect()
    }

    /// A faulted world: reliable delivery on, injector armed with `cfg`.
    fn make_faulted_world(
        n: usize,
        buf: usize,
        thresh: usize,
        cfg: rofi_sim::FaultConfig,
    ) -> Vec<Arc<QueueTransport>> {
        let foot = queue_footprint(n, buf);
        let pes = Fabric::launch(FabricConfig {
            num_pes: n,
            sym_len: foot + 4096,
            heap_len: 4096,
            net: NetConfig::disabled(),
            metrics: true,
            fault: Some(cfg),
        });
        let base = pes[0].fabric().alloc_symmetric(foot, 8).unwrap();
        let plane = pes[0].fabric().fault_plane().cloned().expect("fault plane present");
        let qs: Vec<_> = pes
            .into_iter()
            .map(|ep| Arc::new(QueueTransport::new(ep, base, buf, thresh)))
            .collect();
        plane.arm();
        qs
    }

    #[test]
    fn retransmit_timeout_is_configurable() {
        let cfg = rofi_sim::FaultConfig::seeded(1).drop_prob(0.5);
        let qs = make_faulted_world(2, 4096, 100, cfg);
        assert_eq!(qs[0].retransmit_timeout, RETRANSMIT_TIMEOUT, "default applies");
        let foot = queue_footprint(2, 4096);
        let pes = Fabric::launch(FabricConfig {
            num_pes: 2,
            sym_len: foot + 4096,
            heap_len: 4096,
            net: NetConfig::disabled(),
            metrics: true,
            fault: Some(rofi_sim::FaultConfig::seeded(1).drop_prob(0.5)),
        });
        let base = pes[0].fabric().alloc_symmetric(foot, 8).unwrap();
        let slow = QueueTransport::new(pes.into_iter().next().unwrap(), base, 4096, 100)
            .with_retransmit_timeout(Duration::from_millis(250));
        assert_eq!(slow.retransmit_timeout, Duration::from_millis(250));
    }

    #[test]
    fn small_sends_aggregate_until_threshold() {
        let qs = make_world(2, 4096, 100);
        // 40 bytes: below the 100-byte threshold — nothing on the wire yet.
        qs[0].send(1, &[1u8; 40]);
        let mut got = Vec::new();
        assert!(!qs[1].progress(&mut |src, data| got.push((src, data.to_vec()))));
        // Crossing the threshold emits one aggregated chunk.
        qs[0].send(1, &[2u8; 70]);
        assert!(qs[1].progress(&mut |src, data| got.push((src, data.to_vec()))));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 0);
        assert_eq!(got[0].1.len(), 110);
        assert_eq!(&got[0].1[..40], &[1u8; 40][..]);
        assert_eq!(&got[0].1[40..], &[2u8; 70][..]);
    }

    #[test]
    fn flush_pushes_partial_buffers() {
        let qs = make_world(2, 4096, 1000);
        qs[0].send(1, &[7u8; 10]);
        qs[0].flush();
        let mut got = Vec::new();
        assert!(qs[1].progress(&mut |_, data| got.push(data.to_vec())));
        assert_eq!(got, vec![vec![7u8; 10]]);
        assert!(qs[0].outgoing_empty());
    }

    #[test]
    fn backpressure_parks_and_later_flush_delivers() {
        let qs = make_world(2, 256, 64);
        // Three chunk-sized sends: two claim the wire buffers, the third
        // parks (send never blocks).
        qs[0].send(1, &[1u8; 64]);
        qs[0].send(1, &[2u8; 64]);
        qs[0].send(1, &[3u8; 64]);
        assert!(!qs[0].outgoing_empty(), "third chunk parks while wire is full");
        let mut got = Vec::new();
        while got.len() < 3 {
            qs[1].progress(&mut |_, data| got.push(data.to_vec()));
            qs[0].flush(); // retries the parked chunk
        }
        let mut firsts: Vec<u8> = got.iter().map(|d| d[0]).collect();
        firsts.sort_unstable();
        assert_eq!(firsts, vec![1, 2, 3]);
        assert!(qs[0].outgoing_empty());
    }

    #[test]
    fn bidirectional_traffic() {
        let qs = make_world(2, 4096, 1);
        for i in 0..20u8 {
            qs[0].send(1, &[i; 8]);
            qs[1].send(0, &[i + 100; 8]);
            let mut got1 = Vec::new();
            while !qs[1].progress(&mut |_, d| got1.push(d.to_vec())) {
                qs[0].flush();
            }
            let mut got0 = Vec::new();
            while !qs[0].progress(&mut |_, d| got0.push(d.to_vec())) {
                qs[1].flush();
            }
            assert_eq!(got1[0][0], i);
            assert_eq!(got0[0][0], i + 100);
        }
    }

    #[test]
    fn many_pes_all_to_all() {
        let n = 4;
        let qs = make_world(n, 4096, 1);
        for (src, q) in qs.iter().enumerate() {
            for dst in 0..n {
                if dst != src {
                    q.send(dst, &[src as u8 + 1; 16]);
                }
            }
        }
        for (me, q) in qs.iter().enumerate() {
            let mut seen = Vec::new();
            while seen.len() < n - 1 {
                q.progress(&mut |src, d| {
                    assert_eq!(d[0] as usize, src + 1);
                    seen.push(src);
                });
                for other in qs.iter() {
                    other.flush();
                }
            }
            seen.sort_unstable();
            let expect: Vec<usize> = (0..n).filter(|&p| p != me).collect();
            assert_eq!(seen, expect);
        }
    }

    #[test]
    fn chunks_split_at_frame_boundaries() {
        // Two 150-byte frames with a 256-byte wire buffer: they cannot ride
        // one chunk, so they arrive as two chunks with intact frames.
        let qs = make_world(2, 256, 200);
        qs[0].send(1, &[1u8; 150]);
        qs[0].send(1, &[2u8; 150]);
        qs[0].flush();
        let mut got = Vec::new();
        while got.len() < 2 {
            qs[1].progress(&mut |_, d| got.push(d.to_vec()));
            qs[0].flush();
        }
        assert_eq!(got[0], vec![1u8; 150]);
        assert_eq!(got[1], vec![2u8; 150]);
    }

    #[test]
    #[should_panic(expected = "exceeds wire buffer")]
    fn oversized_single_message_rejected() {
        let qs = make_world(2, 128, 64);
        qs[0].send(1, &[0u8; 256]);
    }

    /// Buffers cycle through the pool: after warm-up the transport performs
    /// no fresh allocations (high hit rate) and quiescence returns every
    /// buffer to the free list.
    #[test]
    fn buffer_pool_recycles_to_quiescence() {
        let qs = make_world(2, 4096, 1);
        for round in 0..50u8 {
            qs[0].send(1, &[round; 32]);
            let mut got = 0;
            while got == 0 {
                qs[1].progress(&mut |_, d| got += d.len() / 32);
                qs[0].flush();
            }
        }
        assert_eq!(qs[0].pool().outstanding(), 0, "sender buffers all returned");
        assert_eq!(qs[1].pool().outstanding(), 0, "receiver buffers all returned");
        let s = qs[0].stats();
        let total = s.pool_hits + s.pool_misses;
        assert!(total >= 50, "every send cycles a pool buffer (got {total})");
        // Steady state: one aggregation buffer recycled per round — only the
        // first acquire may miss.
        assert!(s.pool_misses <= 2, "pool misses stayed at warm-up level: {s:?}");
        assert!(s.pool_hwm >= 1);
    }

    /// The deadlock regression: both PEs saturate the wire toward each
    /// other and only ever pump progress (as the runtime's progress thread
    /// does). Everything must still arrive.
    #[test]
    fn mutual_saturation_never_deadlocks() {
        let qs = make_world(2, 128, 64);
        let a = Arc::clone(&qs[0]);
        let b = Arc::clone(&qs[1]);
        let run = |q: Arc<QueueTransport>, me: usize| {
            std::thread::spawn(move || {
                let peer = 1 - me;
                let mut received = 0usize;
                for i in 0..200u8 {
                    q.send(peer, &[i; 64]);
                    q.progress(&mut |_, d| received += d.len() / 64);
                    q.flush();
                }
                let mut backoff = lamellar_executor::Backoff::new();
                while received < 200 || !q.outgoing_empty() {
                    let before = received;
                    q.progress(&mut |_, d| received += d.len() / 64);
                    q.flush();
                    if received > before {
                        backoff.reset();
                    } else {
                        backoff.snooze();
                    }
                }
                received
            })
        };
        let t0 = run(a, 0);
        let t1 = run(b, 1);
        assert_eq!(t0.join().unwrap(), 200);
        assert_eq!(t1.join().unwrap(), 200);
    }

    /// Drive sender + receiver until `want` payloads arrive at `qs[1]` (or
    /// a generous iteration budget runs out), returning what arrived.
    fn drain_reliable(qs: &[Arc<QueueTransport>], want: usize) -> Vec<Vec<u8>> {
        let mut got = Vec::new();
        let mut spins = 0u32;
        while got.len() < want {
            qs[1].progress(&mut |_, d| got.push(d.to_vec()));
            qs[0].flush();
            qs[0].progress(&mut |_, _| {});
            spins += 1;
            if spins > 200_000 {
                panic!("reliable drain stalled at {}/{want} payloads", got.len());
            }
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            }
        }
        got
    }

    #[test]
    fn reliable_mode_roundtrips_without_faults() {
        // Rates all zero: the reliable layer runs (headers, acks) but the
        // injector never fires — everything arrives first try.
        let qs = make_faulted_world(2, 4096, 1, rofi_sim::FaultConfig::seeded(1));
        for i in 0..10u8 {
            qs[0].send(1, &[i; 32]);
        }
        let got = drain_reliable(&qs, 10);
        for (i, d) in got.iter().enumerate() {
            assert_eq!(d, &vec![i as u8; 32]);
        }
        // Acks eventually drain the unacked window to quiescence.
        let mut spins = 0;
        while !qs[0].outgoing_empty() {
            qs[0].flush();
            spins += 1;
            assert!(spins < 200_000, "acks never drained the window");
        }
        assert_eq!(qs[0].pool().outstanding(), 0, "all buffers returned after acks");
        assert_eq!(qs[0].stats().retransmits, 0, "no faults, no retransmits");
    }

    #[test]
    fn dropped_chunks_are_retransmitted_and_order_is_preserved() {
        let cfg = rofi_sim::FaultConfig::seeded(42).drop_prob(0.3);
        let qs = make_faulted_world(2, 4096, 1, cfg);
        for i in 0..50u8 {
            qs[0].send(1, &[i; 16]);
        }
        let got = drain_reliable(&qs, 50);
        // In-order, exactly-once delivery despite the drops.
        for (i, d) in got.iter().enumerate() {
            assert_eq!(d, &vec![i as u8; 16], "payload {i} intact and in order");
        }
        assert!(qs[0].stats().retransmits > 0, "a 30% drop rate must force retransmits");
    }

    #[test]
    fn corruption_is_detected_and_recovered() {
        let cfg = rofi_sim::FaultConfig::seeded(7).corrupt_prob(0.3).truncate_prob(0.1);
        let qs = make_faulted_world(2, 4096, 1, cfg);
        for i in 0..40u8 {
            qs[0].send(1, &[i ^ 0x5a; 24]);
        }
        let got = drain_reliable(&qs, 40);
        for (i, d) in got.iter().enumerate() {
            assert_eq!(d, &vec![i as u8 ^ 0x5a; 24], "payload {i} bit-exact");
        }
        let s = qs[1].stats();
        assert!(
            s.corrupt_chunks_dropped > 0,
            "30% corruption must trip the checksum at least once: {s:?}"
        );
    }

    #[test]
    fn duplicates_are_suppressed() {
        let cfg = rofi_sim::FaultConfig::seeded(3).dup_prob(0.5);
        let qs = make_faulted_world(2, 4096, 1, cfg);
        for i in 0..40u8 {
            qs[0].send(1, &[i; 8]);
        }
        let got = drain_reliable(&qs, 40);
        assert_eq!(got.len(), 40, "exactly-once: duplicates never reach the sink");
        for (i, d) in got.iter().enumerate() {
            assert_eq!(d[0], i as u8);
        }
        assert!(qs[1].stats().dup_chunks_dropped > 0, "50% dup rate must suppress at least one");
    }

    #[test]
    fn severed_pair_dies_with_typed_failure() {
        // Probability-1 drops: no chunk ever arrives, retries exhaust, and
        // the failure surfaces as a dead pair — not a hang or a panic.
        let cfg = rofi_sim::FaultConfig::seeded(9).drop_prob(1.0);
        let qs = make_faulted_world(2, 4096, 1, cfg);
        qs[0].send(1, &[1u8; 16]);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match qs[0].try_flush() {
                Err(CommError::PeerUnreachable { pe }) => {
                    assert_eq!(pe, 1);
                    break;
                }
                Ok(()) => assert!(Instant::now() < deadline, "pair never died"),
                Err(e) => panic!("unexpected error {e}"),
            }
            std::thread::yield_now();
        }
        assert_eq!(qs[0].take_comm_failures(), vec![1], "death reported exactly once");
        assert!(qs[0].take_comm_failures().is_empty());
        assert!(
            matches!(
                qs[0].try_send_with(1, 4, &mut |b| b.extend_from_slice(&[0; 4])),
                Err(CommError::PeerUnreachable { pe: 1 })
            ),
            "sends to a dead pair fail fast"
        );
        assert_eq!(qs[0].pool().outstanding(), 0, "dead pair's buffers all reclaimed");
        assert_eq!(qs[0].stats().delivery_failures, 1);
        assert!(qs[0].outgoing_empty(), "dead pairs are vacuously drained");
    }

    #[test]
    fn oversized_message_is_a_typed_error_in_reliable_mode() {
        let qs = make_faulted_world(2, 128, 64, rofi_sim::FaultConfig::seeded(1));
        let max = qs[0].max_message();
        assert_eq!(max, 128 - CHUNK_HDR_LEN, "header steals capacity from the wire buffer");
        let r = qs[0].try_send_with(1, max + 1, &mut |b| b.extend_from_slice(&[0; 128]));
        assert_eq!(r, Err(CommError::MessageTooLarge { len: max + 1, max }));
    }

    #[test]
    fn same_seed_same_fault_counters() {
        // Single-threaded lock-step traffic: the injected-fault counters are
        // a pure function of the seed.
        let run = |seed: u64| {
            let cfg = rofi_sim::FaultConfig::seeded(seed).drop_prob(0.2).corrupt_prob(0.1);
            let qs = make_faulted_world(2, 4096, 1, cfg);
            for i in 0..30u8 {
                qs[0].send(1, &[i; 16]);
            }
            drain_reliable(&qs, 30);
            let f = qs[0].ep.fabric().fault_plane().unwrap().stats();
            (f.drops_injected, f.corruptions_injected)
        };
        let a = run(1234);
        let b = run(1234);
        let c = run(4321);
        assert_eq!(a, b, "equal seeds reproduce identical injected-fault counts");
        assert!(a.0 > 0, "20% drops over ≥30 chunks must fire");
        assert_ne!(a, c, "different seeds should diverge (probabilistically certain here)");
    }
}
