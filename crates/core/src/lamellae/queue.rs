//! Flag-based, double-buffered message queues over the fabric.
//!
//! This is the transfer mechanism of Sec. III-A.1:
//!
//! > "the Lamellae implements a 'flag' based transfer mechanism. Each PE is
//! > able to signal every other PE to let them know when data is to be read.
//! > Upon receiving this signal the Remote PE is then responsible for
//! > getting the data, once local buffers become available. The remote PE
//! > then signals the original PE to let it know it is now free to release
//! > any resources associated with the transferred data. Lamellar employs a
//! > double buffering message queue..."
//!
//! ## Memory layout
//!
//! Each PE's symmetric region hosts, at the same base offset everywhere:
//!
//! ```text
//! recv_signals : num_pes × NBUF u64   — written by remote *senders*:
//!                nonzero = "my buffer #idx for you holds `len` bytes"
//! send_busy    : num_pes × NBUF u64   — owned by the local sender, cleared
//!                remotely by the consumer: 0 = buffer free, 1 = in flight
//! send_bufs    : num_pes × NBUF × buffer_size bytes — outgoing wire data
//! ```
//!
//! Sender protocol (PE `s` → PE `d`, buffer `i`):
//! 1. claim `send_busy[d][i]` on `s` (CAS 0→1);
//! 2. write the aggregated bytes into `send_bufs[d][i]` on `s` (local);
//! 3. release-store `len` into `recv_signals[s][i]` on `d` (the *flag*).
//!
//! Receiver protocol (PE `d` polling):
//! 1. acquire-load `recv_signals[s][i]`; if nonzero, RDMA-get `len` bytes
//!    from `send_bufs[d][i]` on `s`;
//! 2. clear the signal;
//! 3. release-store 0 into `send_busy[d][i]` on `s` ("free to release").
//!
//! The release/acquire pairing on the flag orders the plain-data buffer
//! writes before the reads — the classic message-passing pattern.
//!
//! ## Non-blocking sends
//!
//! **No call here ever blocks on the wire.** When both buffers toward a
//! destination are in flight, ready chunks park in a local queue and are
//! retried on the next `send`/`flush`/`progress` call. Blocking instead
//! would deadlock two peers whose progress engines are each stuck flushing
//! toward the other; with parking, every `progress` tick both drains
//! incoming traffic (freeing the peer's buffers) and retries parked chunks.

use lamellar_metrics::{LamellaeMetrics, LamellaeStats};
use parking_lot::Mutex;
use rofi_sim::FabricPe;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Buffers per destination (double buffering, per the paper).
pub const NBUF: usize = 2;

/// Bytes of symmetric region consumed by the queue block for a world of
/// `num_pes` with the given per-buffer size.
pub fn queue_footprint(num_pes: usize, buffer_size: usize) -> usize {
    // Two tables of num_pes × NBUF u64s, plus the buffers, plus alignment.
    2 * num_pes * NBUF * 8 + num_pes * NBUF * buffer_size + 64
}

/// A free-list of reusable byte buffers shared by the aggregation and
/// receive paths, so steady-state messaging performs no heap allocation:
/// every aggregation chunk and receive staging buffer is acquired here and
/// released back once its bytes hit the wire (or the sink returns).
///
/// The pool never shrinks; its size is bounded by the high-water mark of
/// simultaneously outstanding buffers (per destination: one open aggregation
/// buffer plus any parked sealed chunks; plus one receive buffer per
/// progress ticker), which [`LamellaeMetrics::record_pool_outstanding`]
/// tracks.
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    outstanding: AtomicU64,
    metrics: Arc<LamellaeMetrics>,
}

impl BufferPool {
    pub fn new(metrics: Arc<LamellaeMetrics>) -> Self {
        BufferPool { free: Mutex::new(Vec::new()), outstanding: AtomicU64::new(0), metrics }
    }

    /// Check out an empty buffer with at least `capacity` bytes reserved.
    pub fn acquire(&self, capacity: usize) -> Vec<u8> {
        let recycled = self.free.lock().pop();
        let out = self.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics.record_pool_outstanding(out);
        match recycled {
            Some(mut buf) => {
                self.metrics.record_pool_acquire(true);
                buf.clear();
                buf.reserve(capacity);
                buf
            }
            None => {
                self.metrics.record_pool_acquire(false);
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Return a buffer for reuse (contents are discarded on next acquire).
    pub fn release(&self, buf: Vec<u8>) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        self.free.lock().push(buf);
    }

    /// Buffers currently checked out (0 when the system is quiescent).
    pub fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::Relaxed)
    }
}

/// Outgoing state for one destination: the open aggregation buffer that
/// frames encode directly into, plus sealed chunks waiting for a free wire
/// buffer. All buffers are pool-backed.
#[derive(Default)]
struct OutQueue {
    /// The chunk currently being filled (frames encode in place here).
    agg: Option<Vec<u8>>,
    /// Sealed chunks in FIFO order, each awaiting a wire buffer.
    sealed: VecDeque<Vec<u8>>,
    /// The front sealed chunk already failed a wire attempt (park/retry
    /// accounting).
    parked: bool,
}

/// One PE's endpoint of the world-wide queue fabric.
pub struct QueueTransport {
    ep: FabricPe,
    /// Base offset of the queue block (identical on every PE).
    base: usize,
    num_pes: usize,
    buffer_size: usize,
    /// Aggregation threshold: assemble a wire chunk once this many bytes
    /// are waiting for a destination.
    agg_threshold: usize,
    /// Per-destination aggregation queues.
    out: Vec<Mutex<OutQueue>>,
    /// Recycled aggregation/receive buffers.
    pool: BufferPool,
    /// Serializes progress ticks (one ticker at a time).
    progress_lock: Mutex<()>,
    /// Transport observability. `msgs_sent` counts individual framed
    /// messages; `msgs_received` counts aggregated wire chunks — their
    /// ratio is the aggregation factor. `flushes` counts chunks handed to
    /// the wire; parks/retries expose backpressure.
    metrics: Arc<LamellaeMetrics>,
}

impl QueueTransport {
    /// Build the endpoint. `base` must point at a symmetric allocation of at
    /// least [`queue_footprint`] bytes, 8-aligned, zero-initialized
    /// (arenas start zeroed; `send_busy == 0` means free).
    pub fn new(ep: FabricPe, base: usize, buffer_size: usize, agg_threshold: usize) -> Self {
        Self::with_metrics(ep, base, buffer_size, agg_threshold, true)
    }

    /// [`QueueTransport::new`] with explicit control over whether the
    /// transport records observability counters.
    pub fn with_metrics(
        ep: FabricPe,
        base: usize,
        buffer_size: usize,
        agg_threshold: usize,
        metrics: bool,
    ) -> Self {
        assert_eq!(base % 8, 0, "queue base must be 8-aligned");
        assert!(agg_threshold <= buffer_size, "threshold must fit in a buffer");
        let num_pes = ep.num_pes();
        let out = (0..num_pes).map(|_| Mutex::new(OutQueue::default())).collect();
        let metrics = Arc::new(LamellaeMetrics::new(metrics));
        QueueTransport {
            ep,
            base,
            num_pes,
            buffer_size,
            agg_threshold,
            out,
            pool: BufferPool::new(Arc::clone(&metrics)),
            progress_lock: Mutex::new(()),
            metrics,
        }
    }

    /// The transport's buffer pool (receive staging and aggregation chunks).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The live transport metrics registry.
    pub fn metrics(&self) -> &Arc<LamellaeMetrics> {
        &self.metrics
    }

    /// Typed snapshot of the transport counters.
    pub fn stats(&self) -> LamellaeStats {
        self.metrics.snapshot()
    }

    /// Largest single framed message the wire can carry.
    pub fn max_message(&self) -> usize {
        self.buffer_size
    }

    fn recv_sig_off(&self, src: usize, idx: usize) -> usize {
        self.base + (src * NBUF + idx) * 8
    }

    fn send_busy_off(&self, dst: usize, idx: usize) -> usize {
        self.base + self.num_pes * NBUF * 8 + (dst * NBUF + idx) * 8
    }

    fn send_buf_off(&self, dst: usize, idx: usize) -> usize {
        self.base + 2 * self.num_pes * NBUF * 8 + (dst * NBUF + idx) * self.buffer_size
    }

    /// Enqueue one framed message for `dst`; wire chunks are emitted once
    /// the aggregation threshold accumulates (never blocks).
    pub fn send(&self, dst: usize, framed: &[u8]) {
        self.send_with(dst, framed.len(), &mut |buf| buf.extend_from_slice(framed));
    }

    /// Zero-copy send: reserves `len` bytes of the destination's open
    /// aggregation buffer and lets `fill` encode the framed message straight
    /// into it — the only copy is the encode itself. `fill` must append
    /// exactly `len` bytes. Never blocks.
    pub fn send_with(&self, dst: usize, len: usize, fill: &mut dyn FnMut(&mut Vec<u8>)) {
        assert!(
            len <= self.buffer_size,
            "message of {len} bytes exceeds wire buffer of {} (large payloads take the heap path)",
            self.buffer_size
        );
        self.metrics.record_send(len as u64);
        let mut q = self.out[dst].lock();
        // Seal the open buffer first if this frame would overflow it —
        // frames never straddle chunk boundaries.
        if q.agg.as_ref().is_some_and(|agg| agg.len() + len > self.buffer_size) {
            let full = q.agg.take().expect("just checked");
            q.sealed.push_back(full);
        }
        if q.agg.is_none() {
            q.agg = Some(self.pool.acquire(self.buffer_size));
        }
        let agg = q.agg.as_mut().expect("just ensured");
        let before = agg.len();
        fill(agg);
        debug_assert_eq!(agg.len() - before, len, "send_with: fill appended a different length");
        if agg.len() >= self.agg_threshold {
            let full = q.agg.take().expect("agg is some");
            q.sealed.push_back(full);
        }
        self.pump(dst, &mut q);
    }

    /// Push every waiting byte toward the wire (best effort — chunks that
    /// find no free buffer stay parked for the next call).
    pub fn flush(&self) {
        for dst in 0..self.num_pes {
            let mut q = self.out[dst].lock();
            if let Some(agg) = q.agg.take() {
                debug_assert!(!agg.is_empty(), "open buffers always hold at least one frame");
                q.sealed.push_back(agg);
            }
            self.pump(dst, &mut q);
        }
    }

    /// True when every frame and chunk for every destination has hit the
    /// wire (used by tests; the runtime just keeps flushing).
    pub fn outgoing_empty(&self) -> bool {
        self.out.iter().all(|q| {
            let q = q.lock();
            q.agg.is_none() && q.sealed.is_empty()
        })
    }

    /// Emit sealed chunks for one destination in FIFO order, recycling each
    /// buffer once its bytes are on the wire. Chunks that find no free wire
    /// buffer stay parked for the next call.
    fn pump(&self, dst: usize, q: &mut OutQueue) {
        while let Some(chunk) = q.sealed.front() {
            if q.parked {
                self.metrics.record_retry();
            }
            if !self.try_push_to_wire(dst, chunk) {
                if !q.parked {
                    self.metrics.record_park();
                    q.parked = true;
                }
                return;
            }
            q.parked = false;
            self.metrics.record_flush();
            let done = q.sealed.pop_front().expect("front exists");
            self.pool.release(done);
        }
    }

    /// One attempt to claim a free wire buffer for `dst` and transmit;
    /// false when both buffers are still in flight.
    pub fn try_send_now(&self, dst: usize, bytes: &[u8]) -> bool {
        assert!(bytes.len() <= self.buffer_size, "message exceeds wire buffer");
        self.try_push_to_wire(dst, bytes)
    }

    fn try_push_to_wire(&self, dst: usize, bytes: &[u8]) -> bool {
        debug_assert!(!bytes.is_empty());
        let me = self.ep.pe();
        for idx in 0..NBUF {
            let busy =
                self.ep.atomic_u64(me, self.send_busy_off(dst, idx)).expect("send_busy in bounds");
            if busy.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed).is_ok() {
                // SAFETY: we own this buffer (busy flag) until the
                // receiver clears it; offsets are within the queue block.
                unsafe {
                    self.ep.put(me, self.send_buf_off(dst, idx), bytes).expect("send buffer write");
                }
                // Model the tiny signalling RDMA write.
                if dst != me {
                    self.ep.fabric().model().charge(8);
                }
                self.ep
                    .atomic_u64(dst, self.recv_sig_off(me, idx))
                    .expect("recv_signal in bounds")
                    .store(bytes.len() as u64, Ordering::Release);
                return true;
            }
        }
        false
    }

    /// Drain incoming wire buffers; `sink` receives `(src, raw chunk)` as a
    /// borrowed slice of a pool-backed staging buffer (the caller deframes;
    /// bytes are only valid for the duration of the call). Returns true if
    /// anything arrived. One ticker runs at a time; concurrent callers
    /// return false immediately. Also retries parked outgoing chunks, so
    /// traffic keeps moving as long as anyone pumps progress.
    pub fn progress(&self, sink: &mut dyn FnMut(usize, &[u8])) -> bool {
        let Some(_guard) = self.progress_lock.try_lock() else {
            return false;
        };
        let me = self.ep.pe();
        let mut any = false;
        // One pooled staging buffer serves every wire chunk this tick.
        let mut data = self.pool.acquire(self.buffer_size);
        for src in 0..self.num_pes {
            for idx in 0..NBUF {
                let sig =
                    self.ep.atomic_u64(me, self.recv_sig_off(src, idx)).expect("sig in bounds");
                let len = sig.load(Ordering::Acquire) as usize;
                if len == 0 {
                    continue;
                }
                data.resize(len, 0);
                // SAFETY: the sender wrote the buffer before the release
                // store of the flag and will not touch it until we clear
                // send_busy below.
                unsafe {
                    self.ep
                        .get(src, self.send_buf_off(me, idx), &mut data)
                        .expect("wire buffer read");
                }
                sig.store(0, Ordering::Release);
                // "signals the original PE ... it is now free to release".
                self.ep
                    .atomic_u64(src, self.send_busy_off(me, idx))
                    .expect("busy in bounds")
                    .store(0, Ordering::Release);
                self.metrics.record_recv(len as u64);
                sink(src, &data[..len]);
                data.clear();
                any = true;
            }
        }
        self.pool.release(data);
        // Freed buffers on our peers may unblock parked chunks of ours.
        for dst in 0..self.num_pes {
            if let Some(mut q) = self.out[dst].try_lock() {
                if !q.sealed.is_empty() {
                    self.pump(dst, &mut q);
                }
            }
        }
        any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rofi_sim::fabric::{Fabric, FabricConfig};
    use rofi_sim::NetConfig;
    use std::sync::Arc;

    fn make_world(n: usize, buf: usize, thresh: usize) -> Vec<Arc<QueueTransport>> {
        let foot = queue_footprint(n, buf);
        let pes = Fabric::launch(FabricConfig {
            num_pes: n,
            sym_len: foot + 4096,
            heap_len: 4096,
            net: NetConfig::disabled(),
            metrics: true,
        });
        let base = pes[0].fabric().alloc_symmetric(foot, 8).unwrap();
        pes.into_iter().map(|ep| Arc::new(QueueTransport::new(ep, base, buf, thresh))).collect()
    }

    #[test]
    fn small_sends_aggregate_until_threshold() {
        let qs = make_world(2, 4096, 100);
        // 40 bytes: below the 100-byte threshold — nothing on the wire yet.
        qs[0].send(1, &[1u8; 40]);
        let mut got = Vec::new();
        assert!(!qs[1].progress(&mut |src, data| got.push((src, data.to_vec()))));
        // Crossing the threshold emits one aggregated chunk.
        qs[0].send(1, &[2u8; 70]);
        assert!(qs[1].progress(&mut |src, data| got.push((src, data.to_vec()))));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 0);
        assert_eq!(got[0].1.len(), 110);
        assert_eq!(&got[0].1[..40], &[1u8; 40][..]);
        assert_eq!(&got[0].1[40..], &[2u8; 70][..]);
    }

    #[test]
    fn flush_pushes_partial_buffers() {
        let qs = make_world(2, 4096, 1000);
        qs[0].send(1, &[7u8; 10]);
        qs[0].flush();
        let mut got = Vec::new();
        assert!(qs[1].progress(&mut |_, data| got.push(data.to_vec())));
        assert_eq!(got, vec![vec![7u8; 10]]);
        assert!(qs[0].outgoing_empty());
    }

    #[test]
    fn backpressure_parks_and_later_flush_delivers() {
        let qs = make_world(2, 256, 64);
        // Three chunk-sized sends: two claim the wire buffers, the third
        // parks (send never blocks).
        qs[0].send(1, &[1u8; 64]);
        qs[0].send(1, &[2u8; 64]);
        qs[0].send(1, &[3u8; 64]);
        assert!(!qs[0].outgoing_empty(), "third chunk parks while wire is full");
        let mut got = Vec::new();
        while got.len() < 3 {
            qs[1].progress(&mut |_, data| got.push(data.to_vec()));
            qs[0].flush(); // retries the parked chunk
        }
        let mut firsts: Vec<u8> = got.iter().map(|d| d[0]).collect();
        firsts.sort_unstable();
        assert_eq!(firsts, vec![1, 2, 3]);
        assert!(qs[0].outgoing_empty());
    }

    #[test]
    fn bidirectional_traffic() {
        let qs = make_world(2, 4096, 1);
        for i in 0..20u8 {
            qs[0].send(1, &[i; 8]);
            qs[1].send(0, &[i + 100; 8]);
            let mut got1 = Vec::new();
            while !qs[1].progress(&mut |_, d| got1.push(d.to_vec())) {
                qs[0].flush();
            }
            let mut got0 = Vec::new();
            while !qs[0].progress(&mut |_, d| got0.push(d.to_vec())) {
                qs[1].flush();
            }
            assert_eq!(got1[0][0], i);
            assert_eq!(got0[0][0], i + 100);
        }
    }

    #[test]
    fn many_pes_all_to_all() {
        let n = 4;
        let qs = make_world(n, 4096, 1);
        for (src, q) in qs.iter().enumerate() {
            for dst in 0..n {
                if dst != src {
                    q.send(dst, &[src as u8 + 1; 16]);
                }
            }
        }
        for (me, q) in qs.iter().enumerate() {
            let mut seen = Vec::new();
            while seen.len() < n - 1 {
                q.progress(&mut |src, d| {
                    assert_eq!(d[0] as usize, src + 1);
                    seen.push(src);
                });
                for other in qs.iter() {
                    other.flush();
                }
            }
            seen.sort_unstable();
            let expect: Vec<usize> = (0..n).filter(|&p| p != me).collect();
            assert_eq!(seen, expect);
        }
    }

    #[test]
    fn chunks_split_at_frame_boundaries() {
        // Two 150-byte frames with a 256-byte wire buffer: they cannot ride
        // one chunk, so they arrive as two chunks with intact frames.
        let qs = make_world(2, 256, 200);
        qs[0].send(1, &[1u8; 150]);
        qs[0].send(1, &[2u8; 150]);
        qs[0].flush();
        let mut got = Vec::new();
        while got.len() < 2 {
            qs[1].progress(&mut |_, d| got.push(d.to_vec()));
            qs[0].flush();
        }
        assert_eq!(got[0], vec![1u8; 150]);
        assert_eq!(got[1], vec![2u8; 150]);
    }

    #[test]
    #[should_panic(expected = "exceeds wire buffer")]
    fn oversized_single_message_rejected() {
        let qs = make_world(2, 128, 64);
        qs[0].send(1, &[0u8; 256]);
    }

    /// Buffers cycle through the pool: after warm-up the transport performs
    /// no fresh allocations (high hit rate) and quiescence returns every
    /// buffer to the free list.
    #[test]
    fn buffer_pool_recycles_to_quiescence() {
        let qs = make_world(2, 4096, 1);
        for round in 0..50u8 {
            qs[0].send(1, &[round; 32]);
            let mut got = 0;
            while got == 0 {
                qs[1].progress(&mut |_, d| got += d.len() / 32);
                qs[0].flush();
            }
        }
        assert_eq!(qs[0].pool().outstanding(), 0, "sender buffers all returned");
        assert_eq!(qs[1].pool().outstanding(), 0, "receiver buffers all returned");
        let s = qs[0].stats();
        let total = s.pool_hits + s.pool_misses;
        assert!(total >= 50, "every send cycles a pool buffer (got {total})");
        // Steady state: one aggregation buffer recycled per round — only the
        // first acquire may miss.
        assert!(s.pool_misses <= 2, "pool misses stayed at warm-up level: {s:?}");
        assert!(s.pool_hwm >= 1);
    }

    /// The deadlock regression: both PEs saturate the wire toward each
    /// other and only ever pump progress (as the runtime's progress thread
    /// does). Everything must still arrive.
    #[test]
    fn mutual_saturation_never_deadlocks() {
        let qs = make_world(2, 128, 64);
        let a = Arc::clone(&qs[0]);
        let b = Arc::clone(&qs[1]);
        let run = |q: Arc<QueueTransport>, me: usize| {
            std::thread::spawn(move || {
                let peer = 1 - me;
                let mut received = 0usize;
                for i in 0..200u8 {
                    q.send(peer, &[i; 64]);
                    q.progress(&mut |_, d| received += d.len() / 64);
                    q.flush();
                }
                let mut backoff = lamellar_executor::Backoff::new();
                while received < 200 || !q.outgoing_empty() {
                    let before = received;
                    q.progress(&mut |_, d| received += d.len() / 64);
                    q.flush();
                    if received > before {
                        backoff.reset();
                    } else {
                        backoff.snooze();
                    }
                }
                received
            })
        };
        let t0 = run(a, 0);
        let t1 = run(b, 1);
        assert_eq!(t0.join().unwrap(), 200);
        assert_eq!(t1.join().unwrap(), 200);
    }
}
