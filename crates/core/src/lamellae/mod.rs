//! The Lamellae layer (paper Sec. III-A).
//!
//! "At the base of the stack is the abstraction for communicating with
//! network interfaces, called the Lamellae Trait. ... The Lamellae Trait is
//! the interface between the runtime and network interfaces via functions
//! for: (de)initialization; getting PE ids and the number of PEs in the
//! world; and (de)allocating Memory Regions. The Trait defines the functions
//! for performing remote put/get transfers, and synchronization primitives."
//!
//! Three implementors mirror the paper's:
//!
//! | paper            | here                                   |
//! |------------------|----------------------------------------|
//! | `ROFI_Lamellae`  | [`FabricLamellae`] with the cost model |
//! | `Shmem` Lamellae | [`FabricLamellae`] without the model   |
//! | `SMP` Lamellae   | [`SmpLamellae`] (1 PE, loopback)       |
//!
//! The Shmem lamellae deliberately "implements all the same internal data
//! structures as the ROFI Lamellae" — in this reproduction they literally
//! share the implementation, differing only in whether transfers are charged
//! network costs.

pub mod fabric_backend;
pub mod queue;
pub mod smp;

pub use fabric_backend::FabricLamellae;
pub use smp::SmpLamellae;

use crate::config::Backend;
use lamellar_metrics::{FabricStats, FaultStats, LamellaeStats};

/// A communication failure surfaced by a fallible lamellae operation.
///
/// Infallible legacy methods ([`Lamellae::send`], [`Lamellae::alloc_heap`])
/// paper over these by dropping or panicking; the `try_*` variants return
/// them so the runtime can degrade gracefully — resolve an AM future to
/// `Err` instead of hanging, shed load instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A heap or symmetric allocation could not be satisfied (genuine
    /// exhaustion, or an armed fault plane failing it artificially).
    AllocFailed {
        /// Bytes the caller asked for.
        requested: usize,
        /// Bytes the allocator had free at the time.
        available: usize,
    },
    /// Retries toward `pe` were exhausted by the reliable-delivery layer;
    /// the pair is dead for the rest of the world's lifetime and queued
    /// traffic toward it has been discarded.
    PeerUnreachable {
        /// The unreachable destination PE.
        pe: usize,
    },
    /// A single framed message exceeded the wire-chunk capacity (large
    /// payloads must take the heap-staging path instead).
    MessageTooLarge {
        /// The framed message length.
        len: usize,
        /// The largest single message the wire can carry.
        max: usize,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::AllocFailed { requested, available } => {
                write!(f, "allocation failed: requested {requested} bytes, {available} free")
            }
            CommError::PeerUnreachable { pe } => {
                write!(f, "PE {pe} unreachable: delivery retries exhausted")
            }
            CommError::MessageTooLarge { len, max } => {
                write!(f, "message of {len} bytes exceeds wire buffer capacity of {max}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Reliable-delivery window state for one destination PE — the per-pair
/// diagnostic the liveness watchdog dumps when a wait stalls. All fields
/// are a point-in-time sample; on the loss-free fast path (no fault plane)
/// the sequence fields stay at their construction values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairLiveness {
    /// Destination PE this entry describes.
    pub dst: usize,
    /// Chunks sealed (or aggregating) but not yet on the wire.
    pub queued: usize,
    /// Chunks transmitted but not covered by the destination's cumulative
    /// ack (the go-back-N in-flight window).
    pub unacked: usize,
    /// Sequence number of the oldest unacked chunk, if any — the chunk a
    /// stalled pair is stuck on.
    pub oldest_unacked_seq: Option<u64>,
    /// Next sequence number this PE will stamp toward `dst`.
    pub next_seq: u64,
    /// Consecutive ack-free retransmit rounds (fatal at the transport's
    /// retry-round limit).
    pub stalled_rounds: u32,
    /// The pair has been declared dead (retries exhausted).
    pub dead: bool,
}

impl std::fmt::Display for PairLiveness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dst={} queued={} unacked={} oldest_seq={} next_seq={} stalled_rounds={}{}",
            self.dst,
            self.queued,
            self.unacked,
            self.oldest_unacked_seq.map(|s| s.to_string()).unwrap_or_else(|| "-".into()),
            self.next_seq,
            self.stalled_rounds,
            if self.dead { " DEAD" } else { "" }
        )
    }
}

/// The interface between the runtime and a network backend.
///
/// All message-queue operations deal in *framed envelope bytes* (see
/// [`crate::proto`]); the Lamellae neither parses nor interprets them —
/// "treating messages as a sequence of bytes, without interpreting their
/// content" (Sec. III-A.1).
pub trait Lamellae: Send + Sync + 'static {
    /// This PE's id.
    fn my_pe(&self) -> usize;

    /// Number of PEs in the world.
    fn num_pes(&self) -> usize;

    /// Which backend this is.
    fn backend(&self) -> Backend;

    /// Enqueue one framed message for `dst`, aggregating with other
    /// messages headed there until the aggregation threshold is reached.
    fn send(&self, dst: usize, framed: &[u8]);

    /// Zero-copy send: `fill` encodes exactly `len` framed bytes straight
    /// into the destination's aggregation buffer, skipping the intermediate
    /// `Vec` that [`Lamellae::send`] would copy from. The default falls back
    /// to assemble-then-send for backends without in-place aggregation.
    fn send_with(&self, dst: usize, len: usize, fill: &mut dyn FnMut(&mut Vec<u8>)) {
        let mut buf = Vec::with_capacity(len);
        fill(&mut buf);
        self.send(dst, &buf);
    }

    /// Push every partially-filled aggregation buffer to the wire.
    fn flush(&self);

    /// Drain incoming messages, handing each `(src, envelope bytes)` chunk
    /// to `sink` as a borrowed slice of a transport-owned (typically pooled)
    /// receive buffer — valid only for the duration of the call; the
    /// runtime parses envelopes in place and copies only what must outlive
    /// the tick. Returns true if any message was delivered. Reentrant calls
    /// are no-ops (one ticker at a time), so the progress thread, barrier
    /// waiters, and `block_on` helpers can all pump without coordination.
    fn progress(&self, sink: &mut dyn FnMut(usize, &[u8])) -> bool;

    /// Collective barrier over the world, servicing `progress` while
    /// waiting (a blocked PE must keep executing AMs sent to it).
    fn barrier_with(&self, progress: &mut dyn FnMut());

    /// Allocate `size` bytes in the symmetric region. The returned offset
    /// is valid on every PE. Callers coordinate collectively (root
    /// allocates, broadcasts via [`Lamellae::oob_put`]).
    fn alloc_symmetric(&self, size: usize, align: usize) -> usize;

    /// Release a symmetric allocation (exactly once per allocation,
    /// coordinated by the Darc destruction protocol).
    fn free_symmetric(&self, offset: usize);

    /// Allocate `size` bytes from this PE's one-sided dynamic heap.
    fn alloc_heap(&self, size: usize, align: usize) -> usize;

    /// Release a one-sided heap allocation on `pe`.
    fn free_heap(&self, pe: usize, offset: usize);

    /// One-sided RDMA write of `src` into `pe`'s memory at `offset`.
    ///
    /// # Safety
    /// No PE may concurrently access the destination range; the range must
    /// be a live allocation.
    unsafe fn put(&self, pe: usize, offset: usize, src: &[u8]);

    /// One-sided RDMA read from `pe`'s memory at `offset`.
    ///
    /// # Safety
    /// No PE may concurrently write the source range; the range must be a
    /// live allocation.
    unsafe fn get(&self, pe: usize, offset: usize, dst: &mut [u8]);

    /// Base pointer of `pe`'s memory region (for constructing local slices
    /// in the array layer; only the local PE's pointer may be dereferenced
    /// safely by higher layers).
    fn base_ptr(&self, pe: usize) -> *mut u8;

    /// Out-of-band bootstrap exchange (collective-allocation broadcasts).
    fn oob_put(&self, tag: u64, val: u64);

    /// Blocking out-of-band read.
    fn oob_get(&self, tag: u64) -> u64;

    /// Remove an out-of-band value.
    fn oob_remove(&self, tag: u64);

    /// Failure injection (tests): stall every progress tick by `ns`
    /// nanoseconds. Default no-op for backends without the hook.
    fn inject_progress_delay(&self, _ns: u64) {}

    /// Bytes currently allocated in this PE's one-sided heap — zero once
    /// every LargeRequest/FreeHeap staging handshake has completed.
    /// Backends without heap accounting return 0.
    fn heap_in_use(&self) -> usize {
        0
    }

    /// Typed snapshot of the fabric-layer counters (puts/gets, bytes,
    /// inject vs. rendezvous split, barrier rounds). Fabric counters are
    /// fabric-global: they include every PE's transfers. Backends without a
    /// fabric (SMP loopback) return zeros.
    fn fabric_stats(&self) -> FabricStats {
        FabricStats::default()
    }

    /// Typed snapshot of this PE's lamellae-layer counters (messages,
    /// serialized bytes, aggregation-buffer flushes, wire park/retry
    /// counts). Backends without wire queues return zeros.
    fn lamellae_stats(&self) -> LamellaeStats {
        LamellaeStats::default()
    }

    /// Fallible [`Lamellae::send_with`]: refuses oversized messages and
    /// sends toward dead destinations instead of panicking/dropping.
    ///
    /// # Errors
    /// [`CommError::MessageTooLarge`] when `len` exceeds the wire-chunk
    /// capacity; [`CommError::PeerUnreachable`] when the reliable-delivery
    /// layer has declared `dst` dead. The default implementation (backends
    /// without a fallible path) always succeeds.
    fn try_send_with(
        &self,
        dst: usize,
        len: usize,
        fill: &mut dyn FnMut(&mut Vec<u8>),
    ) -> Result<(), CommError> {
        self.send_with(dst, len, fill);
        Ok(())
    }

    /// Fallible [`Lamellae::flush`]: pushes every waiting byte toward the
    /// wire and reports destinations that have become unreachable.
    ///
    /// # Errors
    /// [`CommError::PeerUnreachable`] naming one dead destination if any
    /// pair has exhausted its delivery retries (the flush itself still runs
    /// for all live pairs). The default implementation always succeeds.
    fn try_flush(&self) -> Result<(), CommError> {
        self.flush();
        Ok(())
    }

    /// Fallible [`Lamellae::alloc_heap`]: reports exhaustion (or injected
    /// allocation failure) instead of panicking.
    ///
    /// # Errors
    /// [`CommError::AllocFailed`] when this PE's one-sided heap cannot
    /// satisfy the request. The default implementation panics on
    /// exhaustion (backends without fallible allocation).
    fn try_alloc_heap(&self, size: usize, align: usize) -> Result<usize, CommError> {
        Ok(self.alloc_heap(size, align))
    }

    /// Fallible [`Lamellae::alloc_symmetric`].
    ///
    /// # Errors
    /// [`CommError::AllocFailed`] when the symmetric region cannot satisfy
    /// the request. Note that a *collective* symmetric allocation failing on
    /// one PE but not others has no consensus protocol — callers treating
    /// this as recoverable must coordinate the outcome themselves.
    fn try_alloc_symmetric(&self, size: usize, align: usize) -> Result<usize, CommError> {
        Ok(self.alloc_symmetric(size, align))
    }

    /// Drain the list of destination PEs newly declared unreachable by the
    /// reliable-delivery layer (each PE is reported exactly once). The
    /// runtime polls this from its progress tick to fail pending AM
    /// futures. Backends without delivery tracking return an empty list.
    fn take_comm_failures(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Typed snapshot of the fault-injection counters (what the injector
    /// did to the traffic). All-zero when no fault plane is armed or the
    /// backend has none.
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    /// Per-destination delivery-window diagnostics (queued/unacked chunk
    /// counts, stuck sequence numbers, dead pairs) — consumed by the
    /// liveness watchdog's stall dump. Backends without per-pair queues
    /// (SMP loopback) return an empty list.
    fn pair_liveness(&self) -> Vec<PairLiveness> {
        Vec::new()
    }
}
