//! # lamellar-core
//!
//! The Lamellar runtime core (paper Secs. III-A through III-E):
//!
//! * **Lamellae layer** ([`lamellae`]) — the trait abstracting network
//!   interfaces, with three implementors mirroring the paper: `Rofi`
//!   (distributed simulation over [`rofi_sim`], with the network cost model
//!   and full (de)serialization), `Shmem` (identical machinery over plain
//!   shared memory), and `Smp` (single PE, no serialization).
//! * **Thread pool layer** — provided by [`lamellar_executor`]; each PE owns
//!   a work-stealing executor.
//! * **Active Message layer** ([`mod@am`]) — the [`am::LamellarAm`] trait, the
//!   AM type registry, typed request handles, and the [`am!`] macro standing
//!   in for the paper's `#[AmData]`/`#[am]` procedural macros.
//! * **World / Teams** ([`world`], [`team`]) — SPMD launch
//!   ([`world::launch`]), `exec_am_pe` / `exec_am_all`, `barrier`,
//!   `wait_all`, `block_on`, and sub-team creation.
//! * **Darc layer** ([`darc`]) — distributed atomically reference counted
//!   pointers with per-PE instances and global lifetime tracking.
//! * **PGAS low level** ([`memregion`]) — `SharedMemoryRegion` and
//!   `OneSidedMemoryRegion` with `unsafe` RDMA put/get, the building blocks
//!   for the safe LamellarArray layer in the `lamellar-array` crate.
//!
//! ## Hello world (Listing 1 of the paper)
//!
//! ```
//! use lamellar_core::active_messaging::prelude::*;
//!
//! #[derive(Clone, Debug)]
//! struct HelloWorldAm { name: String }
//! lamellar_core::impl_codec!(HelloWorldAm { name });
//!
//! impl LamellarAm for HelloWorldAm {
//!     type Output = ();
//!     fn exec(self, ctx: AmContext) -> impl std::future::Future<Output = ()> + Send {
//!         async move {
//!             let _ = format!("PE{}: hello {}!", ctx.current_pe(), self.name);
//!         }
//!     }
//! }
//!
//! let results = lamellar_core::world::launch(2, |world| {
//!     let am = HelloWorldAm { name: String::from("World") };
//!     let request = world.exec_am_all(am); // all PEs
//!     world.block_on(request);             // only blocks the local PE
//!     world.barrier();                     // global sync
//!     world.my_pe()
//! });
//! assert_eq!(results, vec![0, 1]);
//! ```

pub mod am;
pub mod config;
pub mod darc;
pub mod lamellae;
pub mod memregion;
pub mod proto;
pub mod runtime;
pub mod team;
pub mod world;

pub use lamellar_codec::{impl_codec, impl_codec_enum, Codec};

/// Re-exports for AM-based applications, mirroring
/// `lamellar::active_messaging::prelude` from the paper's Listing 1.
pub mod active_messaging {
    pub mod prelude {
        pub use crate::am::{
            AmContext, AmError, AmHandle, AmOpts, CancelOnDrop, FallibleAmHandle,
            FallibleMultiAmHandle, IdempotentAm, LamellarAm, MultiAmHandle, RetryPolicy,
        };
        pub use crate::world::{launch, launch_with_config, LamellarWorld, LamellarWorldBuilder};
        pub use crate::{am, impl_codec, impl_codec_enum};
        pub use lamellar_codec::Codec;
    }
}

/// General prelude: worlds, teams, darcs, memory regions.
pub mod prelude {
    pub use crate::active_messaging::prelude::*;
    pub use crate::config::{Backend, ConfigError, WatchdogConfig, WorldConfig};
    pub use crate::darc::Darc;
    pub use crate::lamellae::CommError;
    pub use crate::memregion::{Dist, OneSidedMemoryRegion, SharedMemoryRegion};
    pub use crate::team::LamellarTeam;
    pub use rofi_sim::{FaultConfig, FaultRates};
}
