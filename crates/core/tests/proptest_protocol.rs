//! Property tests on the wire protocol and queue transport: every framed
//! message stream deframes exactly, and random traffic patterns through
//! the flag-based queues deliver every byte exactly once, in per-pair
//! order.

use lamellar_core::lamellae::queue::{queue_footprint, QueueTransport};
use lamellar_core::proto::{deframe, frame, try_deframe_views, Envelope};
use proptest::prelude::*;
use rofi_sim::fabric::{Fabric, FabricConfig};
use rofi_sim::NetConfig;
use std::sync::Arc;

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), 0u64..64, prop::collection::vec(any::<u8>(), 0..200))
            .prop_map(|(a, r, s, p)| Envelope::Request(a, r, s, p)),
        (any::<u64>(), prop::collection::vec(any::<u8>(), 0..200))
            .prop_map(|(r, p)| Envelope::Reply(r, p)),
        (any::<u64>(), any::<u64>(), 0u64..64, any::<u64>(), any::<u64>())
            .prop_map(|(a, r, s, o, l)| Envelope::LargeRequest(a, r, s, o, l)),
        any::<u64>().prop_map(Envelope::FreeHeap),
        (any::<u64>(), ".{0,80}").prop_map(|(r, m)| Envelope::ReplyErr(r, m)),
    ]
}

proptest! {
    // World/fabric setup per case is expensive on one core; keep case
    // counts modest but inputs rich.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn frame_stream_roundtrips(envs in prop::collection::vec(arb_envelope(), 0..20)) {
        let mut buf = Vec::new();
        for e in &envs {
            frame(e, &mut buf);
        }
        let out: Vec<Envelope> = deframe(&buf).collect();
        prop_assert_eq!(out, envs);
    }

    #[test]
    fn view_stream_roundtrips(envs in prop::collection::vec(arb_envelope(), 0..20)) {
        let mut buf = Vec::new();
        for e in &envs {
            frame(e, &mut buf);
        }
        let out: Vec<Envelope> = try_deframe_views(&buf)
            .map(|v| v.expect("valid stream").to_owned())
            .collect();
        prop_assert_eq!(out, envs);
    }

    #[test]
    fn truncated_stream_errors_without_panicking(
        envs in prop::collection::vec(arb_envelope(), 1..8),
        cut_permille in 0usize..1000,
    ) {
        let mut buf = Vec::new();
        for e in &envs {
            frame(e, &mut buf);
        }
        // Cut strictly inside the stream: whatever decodes before the cut
        // must match a prefix of the input, and the first failure must be a
        // clean `Err`, never a panic or an out-of-bounds read.
        let cut = (buf.len() * cut_permille / 1000).min(buf.len().saturating_sub(1));
        let mut ok_prefix = Vec::new();
        let mut saw_err = false;
        for item in try_deframe_views(&buf[..cut]) {
            match item {
                Ok(v) => ok_prefix.push(v.to_owned()),
                Err(_) => { saw_err = true; }
            }
        }
        prop_assert!(ok_prefix.len() <= envs.len());
        prop_assert_eq!(&envs[..ok_prefix.len()], &ok_prefix[..]);
        // A cut mid-frame (not on a frame boundary) must surface an error.
        let boundary = {
            let mut offsets = vec![0usize];
            let mut b = Vec::new();
            for e in &envs {
                frame(e, &mut b);
                offsets.push(b.len());
            }
            offsets.contains(&cut)
        };
        prop_assert_eq!(saw_err, !boundary);
    }

    #[test]
    fn garbage_never_panics_or_overreads(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        // Arbitrary bytes: every yielded item is Ok or Err — the iterator
        // must terminate and must never read past the slice (checked by
        // running against an exact-length allocation under normal Rust
        // bounds checking).
        for item in try_deframe_views(&bytes) {
            let _ = item;
        }
    }

    #[test]
    fn valid_stream_with_garbage_suffix_errors(
        envs in prop::collection::vec(arb_envelope(), 1..6),
        garbage in prop::collection::vec(any::<u8>(), 1..40),
    ) {
        let mut buf = Vec::new();
        for e in &envs {
            frame(e, &mut buf);
        }
        buf.extend_from_slice(&garbage);
        let mut decoded = Vec::new();
        let mut errored = false;
        for item in try_deframe_views(&buf) {
            match item {
                Ok(v) => decoded.push(v.to_owned()),
                Err(_) => { errored = true; }
            }
        }
        // Every genuine envelope may decode, but the suffix must not be
        // silently swallowed unless it happens to parse as valid frames.
        prop_assert!(decoded.len() >= envs.len() || errored);
        prop_assert_eq!(&decoded[..envs.len().min(decoded.len())],
                        &envs[..envs.len().min(decoded.len())]);
    }

    #[test]
    fn queue_delivers_everything_exactly_once_in_pair_order(
        // (dst, payload length) per message from PE0, plus interleaved
        // drain points.
        msgs in prop::collection::vec((0usize..3, 1usize..300), 1..60),
    ) {
        let n = 3;
        let buf_size = 4096;
        let endpoints = Fabric::launch(FabricConfig {
            num_pes: n,
            sym_len: queue_footprint(n, buf_size) + 4096,
            heap_len: 4096,
            net: NetConfig::disabled(),
            metrics: true,
            fault: None,
        });
        let base = endpoints[0].fabric().alloc_symmetric(queue_footprint(n, buf_size), 64).unwrap();
        let qs: Vec<Arc<QueueTransport>> = endpoints
            .into_iter()
            .map(|ep| Arc::new(QueueTransport::new(ep, base, buf_size, 512)))
            .collect();

        // Sender thread: PE0 pushes every message (tagged with a sequence
        // number per destination), then flushes.
        let msgs2 = msgs.clone();
        let q0 = Arc::clone(&qs[0]);
        let sender = std::thread::spawn(move || {
            let mut seq = [0u32; 3];
            for (dst, len) in msgs2 {
                let mut payload = vec![(seq[dst] & 0xff) as u8; len];
                // Header: 4-byte sequence number.
                payload[..4.min(len)].copy_from_slice(&seq[dst].to_le_bytes()[..4.min(len)]);
                q0.send(dst, &payload);
                seq[dst] += 1;
            }
            // Keep flushing until every parked chunk reaches the wire —
            // the role the runtime's progress thread plays.
            while !q0.outgoing_empty() {
                q0.flush();
                std::thread::yield_now();
            }
        });

        // Receivers: drain until each PE has all its expected bytes.
        let mut expected = [0usize; 3];
        for &(dst, len) in &msgs {
            expected[dst] += len;
        }
        for (pe, q) in qs.iter().enumerate() {
            let mut got = 0usize;
            let mut spins = 0u64;
            while got < expected[pe] {
                q.progress(&mut |src, data| {
                    assert_eq!(src, 0, "only PE0 sends in this test");
                    got += data.len();
                });
                spins += 1;
                assert!(spins < 5_000_000, "queue stalled");
                std::thread::yield_now();
            }
            prop_assert_eq!(got, expected[pe]);
        }
        sender.join().unwrap();
    }
}
