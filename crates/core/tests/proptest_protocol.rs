//! Property tests on the wire protocol and queue transport: every framed
//! message stream deframes exactly, and random traffic patterns through
//! the flag-based queues deliver every byte exactly once, in per-pair
//! order.

use lamellar_core::lamellae::queue::{queue_footprint, QueueTransport};
use lamellar_core::proto::{deframe, frame, Envelope};
use proptest::prelude::*;
use rofi_sim::fabric::{Fabric, FabricConfig};
use rofi_sim::NetConfig;
use std::sync::Arc;

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), 0u64..64, prop::collection::vec(any::<u8>(), 0..200))
            .prop_map(|(a, r, s, p)| Envelope::Request(a, r, s, p)),
        (any::<u64>(), prop::collection::vec(any::<u8>(), 0..200))
            .prop_map(|(r, p)| Envelope::Reply(r, p)),
        (any::<u64>(), any::<u64>(), 0u64..64, any::<u64>(), any::<u64>())
            .prop_map(|(a, r, s, o, l)| Envelope::LargeRequest(a, r, s, o, l)),
        any::<u64>().prop_map(Envelope::FreeHeap),
    ]
}

proptest! {
    // World/fabric setup per case is expensive on one core; keep case
    // counts modest but inputs rich.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn frame_stream_roundtrips(envs in prop::collection::vec(arb_envelope(), 0..20)) {
        let mut buf = Vec::new();
        for e in &envs {
            frame(e, &mut buf);
        }
        let out: Vec<Envelope> = deframe(&buf).collect();
        prop_assert_eq!(out, envs);
    }

    #[test]
    fn queue_delivers_everything_exactly_once_in_pair_order(
        // (dst, payload length) per message from PE0, plus interleaved
        // drain points.
        msgs in prop::collection::vec((0usize..3, 1usize..300), 1..60),
    ) {
        let n = 3;
        let buf_size = 4096;
        let endpoints = Fabric::launch(FabricConfig {
            num_pes: n,
            sym_len: queue_footprint(n, buf_size) + 4096,
            heap_len: 4096,
            net: NetConfig::disabled(),
            metrics: true,
        });
        let base = endpoints[0].fabric().alloc_symmetric(queue_footprint(n, buf_size), 64).unwrap();
        let qs: Vec<Arc<QueueTransport>> = endpoints
            .into_iter()
            .map(|ep| Arc::new(QueueTransport::new(ep, base, buf_size, 512)))
            .collect();

        // Sender thread: PE0 pushes every message (tagged with a sequence
        // number per destination), then flushes.
        let msgs2 = msgs.clone();
        let q0 = Arc::clone(&qs[0]);
        let sender = std::thread::spawn(move || {
            let mut seq = [0u32; 3];
            for (dst, len) in msgs2 {
                let mut payload = vec![(seq[dst] & 0xff) as u8; len];
                // Header: 4-byte sequence number.
                payload[..4.min(len)].copy_from_slice(&seq[dst].to_le_bytes()[..4.min(len)]);
                q0.send(dst, &payload);
                seq[dst] += 1;
            }
            // Keep flushing until every parked chunk reaches the wire —
            // the role the runtime's progress thread plays.
            while !q0.outgoing_empty() {
                q0.flush();
                std::thread::yield_now();
            }
        });

        // Receivers: drain until each PE has all its expected bytes.
        let mut expected = [0usize; 3];
        for &(dst, len) in &msgs {
            expected[dst] += len;
        }
        for (pe, q) in qs.iter().enumerate() {
            let mut got = 0usize;
            let mut spins = 0u64;
            while got < expected[pe] {
                q.progress(&mut |src, data| {
                    assert_eq!(src, 0, "only PE0 sends in this test");
                    got += data.len();
                });
                spins += 1;
                assert!(spins < 5_000_000, "queue stalled");
                std::thread::yield_now();
            }
            prop_assert_eq!(got, expected[pe]);
        }
        sender.join().unwrap();
    }
}
