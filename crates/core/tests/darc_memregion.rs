//! Integration tests: Darcs, memory regions, teams.

use lamellar_core::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

lamellar_core::am! {
    /// Adds into the *destination PE's* instance of a shared counter Darc.
    pub struct DarcAdd { pub counter: Darc<AtomicUsize>, pub amount: usize }
    exec(am, _ctx) -> usize {
        am.counter.fetch_add(am.amount, Ordering::Relaxed) + am.amount
    }
}

#[test]
fn darc_deref_reads_local_instance() {
    let results = launch(3, |world| {
        let team = world.team();
        let d = Darc::new(&team, world.my_pe() * 100);
        // Each PE sees its own instance...
        assert_eq!(*d, world.my_pe() * 100);
        // ...and can inspect remote instances (in-process convenience).
        for rank in 0..3 {
            assert_eq!(*d.instance_at(rank), rank * 100);
        }
        world.barrier();
        *d
    });
    assert_eq!(results, vec![0, 100, 200]);
}

#[test]
fn darc_travels_in_ams_and_mutates_remote_instance() {
    let results =
        launch(4, |world| {
            let team = world.team();
            let counter = Darc::new(&team, AtomicUsize::new(0));
            world.barrier();
            // Every PE adds (pe+1) to every other PE's instance.
            let mut handles = Vec::new();
            for pe in 0..world.num_pes() {
                handles.push(world.exec_am_pe(
                    pe,
                    DarcAdd { counter: counter.clone(), amount: world.my_pe() + 1 },
                ));
            }
            for h in handles {
                world.block_on(h);
            }
            world.wait_all();
            world.barrier();
            // Each instance received 1+2+3+4 = 10.
            let local = counter.load(Ordering::Relaxed);
            world.barrier();
            local
        });
    assert_eq!(results, vec![10, 10, 10, 10]);
}

#[test]
fn darc_reference_counting_tracks_clones() {
    launch(2, |world| {
        let team = world.team();
        let d = Darc::new(&team, 7usize);
        let my_rank = team.my_rank();
        assert_eq!(d.local_count(my_rank), 1);
        let d2 = d.clone();
        assert_eq!(d.local_count(my_rank), 2);
        drop(d2);
        assert_eq!(d.local_count(my_rank), 1);
        world.barrier();
    });
}

#[test]
fn shared_region_put_get_roundtrip() {
    let results = launch(3, |world| {
        let region: SharedMemoryRegion<u64> = world.alloc_shared_mem_region(16);
        let me = world.my_pe() as u64;
        // Fill my own block directly.
        // SAFETY: each PE writes only its own block, between barriers.
        unsafe {
            for (i, slot) in region.as_mut_slice().iter_mut().enumerate() {
                *slot = me * 1000 + i as u64;
            }
        }
        world.barrier();
        // Read every PE's block remotely.
        let mut ok = true;
        for pe in 0..world.num_pes() {
            let mut buf = [0u64; 16];
            // SAFETY: all writers finished before the barrier.
            unsafe { region.get(pe, 0, &mut buf) };
            for (i, &v) in buf.iter().enumerate() {
                ok &= v == pe as u64 * 1000 + i as u64;
            }
        }
        world.barrier();
        ok
    });
    assert!(results.into_iter().all(|r| r));
}

#[test]
fn shared_region_remote_put_visible_after_barrier() {
    launch(2, |world| {
        let region: SharedMemoryRegion<u32> = world.alloc_shared_mem_region(8);
        if world.my_pe() == 0 {
            // SAFETY: PE1 does not touch its block until after the barrier.
            unsafe { region.put(1, 2, &[11, 22, 33]) };
        }
        world.barrier();
        if world.my_pe() == 1 {
            // SAFETY: no more writers after the barrier.
            let local = unsafe { region.as_slice() };
            assert_eq!(&local[2..5], &[11, 22, 33]);
            assert_eq!(local[0], 0); // untouched, arenas start zeroed
        }
        world.barrier();
    });
}

#[test]
fn one_sided_region_always_addresses_origin() {
    launch(2, |world| {
        let mine: OneSidedMemoryRegion<f64> = world.alloc_one_sided_mem_region(4);
        assert_eq!(mine.origin_pe(), world.my_pe());
        // SAFETY: only this PE accesses the region here.
        unsafe {
            mine.put(0, &[1.5, 2.5, 3.5, 4.5]);
            let mut buf = [0.0; 2];
            mine.get(1, &mut buf);
            assert_eq!(buf, [2.5, 3.5]);
            assert_eq!(mine.as_slice()[3], 4.5);
        }
        world.barrier();
    });
}

lamellar_core::am! {
    /// Reads from a OneSidedMemoryRegion that was sent to us in an AM —
    /// the region still addresses the *origin* PE's memory.
    pub struct ReadRegion { pub region: OneSidedMemoryRegion<u64>, pub index: usize }
    exec(am, _ctx) -> u64 {
        let mut buf = [0u64; 1];
        // SAFETY: the origin PE wrote before sending and does not write
        // concurrently.
        unsafe { am.region.get(am.index, &mut buf) };
        buf[0]
    }
}

#[test]
fn one_sided_region_usable_from_remote_pe_via_am() {
    launch(2, |world| {
        if world.my_pe() == 0 {
            let region: OneSidedMemoryRegion<u64> = world.alloc_one_sided_mem_region(8);
            // SAFETY: sole accessor until the AM reads it (happens-after).
            unsafe { region.put(0, &[10, 20, 30, 40, 50, 60, 70, 80]) };
            let v = world.block_on(world.exec_am_pe(1, ReadRegion { region, index: 5 }));
            assert_eq!(v, 60);
        }
        world.barrier();
    });
}

#[test]
fn subteam_collectives_are_scoped() {
    let results = launch(4, |world| {
        // Even PEs form a sub-team.
        let sub = world.create_subteam(&[0, 2]);
        match (world.my_pe() % 2, &sub) {
            (0, Some(team)) => {
                assert_eq!(team.num_pes(), 2);
                assert_eq!(team.pes(), &[0, 2]);
                assert_eq!(team.my_rank(), world.my_pe() / 2);
                // Team-scoped region: only 2 blocks exist logically.
                let region: SharedMemoryRegion<u32> = team.alloc_shared_mem_region(4);
                // SAFETY: each member writes its own block.
                unsafe { region.as_mut_slice()[0] = world.my_pe() as u32 + 1 };
                team.barrier();
                let mut buf = [0u32; 1];
                let other = if world.my_pe() == 0 { 2 } else { 0 };
                // SAFETY: writers done before team barrier.
                unsafe { region.get(other, 0, &mut buf) };
                assert_eq!(buf[0], other as u32 + 1);
                team.barrier();
                true
            }
            (1, None) => true,
            _ => false,
        }
    });
    assert!(results.into_iter().all(|r| r));
}

#[test]
fn darc_on_subteam_only_members_hold_instances() {
    let results = launch(4, |world| {
        let sub = world.create_subteam(&[1, 3]);
        let out = if let Some(team) = &sub {
            let d = Darc::new(team, world.my_pe() * 2);
            assert_eq!(*d, world.my_pe() * 2);
            assert_eq!(d.team_pes(), &[1, 3]);
            *d
        } else {
            usize::MAX
        };
        world.barrier();
        out
    });
    assert_eq!(results, vec![usize::MAX, 2, usize::MAX, 6]);
}

#[test]
fn region_memory_is_reclaimed_after_drop() {
    launch(2, |world| {
        let rt = world.rt().clone();
        let lam = rt.lamellae();
        // Probe the heap allocator's next first-fit offset.
        let probe = |lam: &std::sync::Arc<dyn lamellar_core::lamellae::Lamellae>| {
            let off = lam.alloc_heap(64, 8);
            lam.free_heap(rt.pe(), off);
            off
        };
        let before = probe(lam);
        let r1: OneSidedMemoryRegion<u64> = world.alloc_one_sided_mem_region(1024);
        let during = probe(lam);
        assert_ne!(before, during, "region occupies heap space while alive");
        drop(r1);
        let after = probe(lam);
        assert_eq!(before, after, "dropping the region releases its heap block");
        world.barrier();
    });
}
