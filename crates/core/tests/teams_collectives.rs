//! Integration tests: team-scoped AMs, the collective-mismatch runtime
//! analysis, and returned-AM patterns.

use lamellar_core::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

lamellar_core::am! {
    /// Reports the executing PE's id times ten.
    pub struct TenX {}
    exec(_am, ctx) -> usize { ctx.current_pe() * 10 }
}

#[test]
fn team_scoped_am_launches() {
    let results = launch(4, |world| {
        let sub = world.create_subteam(&[1, 3]);
        let out = if let Some(team) = &sub {
            // exec_am_rank addresses by *team rank*.
            let v0 = world.block_on(team.exec_am_rank(0, TenX {}));
            let v1 = world.block_on(team.exec_am_rank(1, TenX {}));
            assert_eq!((v0, v1), (10, 30));
            // exec_am_team fans out to members only, in rank order.
            let all = world.block_on(team.exec_am_team(TenX {}));
            assert_eq!(all, vec![10, 30]);
            all.len()
        } else {
            0
        };
        world.barrier();
        out
    });
    assert_eq!(results, vec![0, 2, 0, 2]);
}

/// The paper (Sec. III-A.3): "Given that it is currently hard to reason
/// about these calls at compile time, we perform some limited runtime
/// analysis to warn users" about mismatched collectives. Two PEs issuing
/// *different* collectives at the same team sequence point must be
/// reported, not deadlock.
#[test]
fn mismatched_collectives_are_detected() {
    let caught = std::thread::spawn(|| {
        // Run in a sacrificial thread: the detection panics on one PE.
        let result = std::panic::catch_unwind(|| {
            launch(2, |world| {
                let team = world.team();
                if world.my_pe() == 0 {
                    // PE0 performs a deposit_all…
                    let _ = team.deposit_all(1usize);
                } else {
                    // …while PE1 performs an exchange_object at the same
                    // sequence point.
                    let _ = team.exchange_object(0, || 2usize);
                }
            });
        });
        result.is_err()
    });
    assert!(caught.join().unwrap(), "mismatch must be reported");
}

lamellar_core::am! {
    /// An AM whose *output is another AM* — the paper: "Lamellar supports
    /// returning both 'normal' data ... and AMs". The returned AM is then
    /// launched by the receiving side.
    pub struct FollowUpAm { pub bump: usize }
    exec(am, ctx) -> BumpAm {
        BumpAm { amount: am.bump + ctx.current_pe() }
    }
}

lamellar_core::am! {
    /// The follow-up work.
    pub struct BumpAm { pub amount: usize }
    exec(am, ctx) -> usize { am.amount * 100 + ctx.current_pe() }
}

#[test]
fn ams_can_return_ams() {
    launch(3, |world| {
        if world.my_pe() == 0 {
            // Ask PE2 for a follow-up AM, then run it on PE1.
            let follow_up: BumpAm = world.block_on(world.exec_am_pe(2, FollowUpAm { bump: 5 }));
            assert_eq!(follow_up.amount, 7); // 5 + PE2
            let v = world.block_on(world.exec_am_pe(1, follow_up));
            assert_eq!(v, 701); // 7*100 + PE1
        }
        world.barrier();
    });
}

lamellar_core::am! {
    /// Spawns follow-on work on the destination's pool from inside exec
    /// ("AM dependency chains").
    pub struct SpawnerAm { pub counter: Darc<AtomicUsize>, pub n: usize }
    exec(am, ctx) -> () {
        let world = ctx.world();
        for _ in 0..am.n {
            let c = am.counter.clone();
            drop(world.spawn(async move {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
    }
}

#[test]
fn ams_spawn_local_tasks_on_destination_pool() {
    launch(2, |world| {
        let team = world.team();
        let counter = Darc::new(&team, AtomicUsize::new(0));
        world.barrier();
        if world.my_pe() == 0 {
            world.block_on(world.exec_am_pe(1, SpawnerAm { counter: counter.clone(), n: 32 }));
        }
        world.barrier();
        // The spawned tasks count into PE1's wait_all.
        world.wait_all();
        world.barrier();
        if world.my_pe() == 1 {
            assert_eq!(counter.load(Ordering::Relaxed), 32);
        }
        world.barrier();
    });
}

#[test]
fn nested_subteams() {
    // Sub-teams of sub-teams (paper: "sub-teams are supported").
    let results = launch(4, |world| {
        let evens = world.create_subteam(&[0, 2]);
        let out = match (&evens, world.my_pe()) {
            (Some(team), pe) => {
                // A singleton sub-team of the even team.
                let solo = team.create_subteam(&[2]);
                match (solo, pe) {
                    (Some(s), 2) => {
                        assert_eq!(s.num_pes(), 1);
                        assert_eq!(s.my_rank(), 0);
                        s.barrier(); // trivially passes
                        2
                    }
                    (None, 0) => 0,
                    _ => usize::MAX,
                }
            }
            (None, pe) => pe,
        };
        world.barrier();
        out
    });
    assert_eq!(results, vec![0, 1, 2, 3]);
}
