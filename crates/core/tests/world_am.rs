//! Integration tests: worlds, Active Messages, wait_all/barrier semantics.

use lamellar_core::active_messaging::prelude::*;
use lamellar_core::config::{Backend, WorldConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

lamellar_core::am! {
    /// Returns the executing PE id — the canonical "hello world" AM.
    pub struct WhoAmI {}
    exec(_am, ctx) -> usize {
        ctx.current_pe()
    }
}

lamellar_core::am! {
    /// Echoes its payload with the executing PE mixed in.
    pub struct Echo { pub text: String }
    exec(am, ctx) -> String {
        format!("PE{}: hello {}!", ctx.current_pe(), am.text)
    }
}

lamellar_core::am! {
    /// Recursively hops around the ring `hops` times, accumulating PE ids.
    pub struct RingHop { pub hops: usize, pub trail: Vec<usize> }
    exec(am, ctx) -> Vec<usize> {
        let mut trail = am.trail;
        trail.push(ctx.current_pe());
        if am.hops == 0 {
            trail
        } else {
            let next = (ctx.current_pe() + 1) % ctx.num_pes();
            let world = ctx.world();
            world.exec_am_pe(next, RingHop { hops: am.hops - 1, trail }).await
        }
    }
}

#[test]
fn exec_am_pe_returns_typed_output() {
    let results = launch(4, |world| {
        let target = (world.my_pe() + 1) % world.num_pes();
        let out = world.block_on(world.exec_am_pe(target, WhoAmI {}));
        assert_eq!(out, target);
        out
    });
    assert_eq!(results, vec![1, 2, 3, 0]);
}

#[test]
fn exec_am_all_reaches_every_pe() {
    let results = launch(3, |world| {
        let outs = world.block_on(world.exec_am_all(WhoAmI {}));
        assert_eq!(outs, vec![0, 1, 2]);
        world.barrier();
        outs.len()
    });
    assert_eq!(results, vec![3, 3, 3]);
}

#[test]
fn hello_world_listing1_shape() {
    let outs = launch(2, |world| {
        let am = Echo { text: String::from("World") };
        let request = world.exec_am_all(am);
        let replies = world.block_on(request);
        world.barrier();
        if world.my_pe() != 0 {
            let am = Echo { text: String::from("World2") };
            let _detached = world.exec_am_pe(0, am);
            world.wait_all(); // only blocks the local PE
        }
        replies
    });
    assert_eq!(outs[0], vec!["PE0: hello World!", "PE1: hello World!"]);
    assert_eq!(outs[1], outs[0]);
}

#[test]
fn nested_ams_build_dependency_chains() {
    let results = launch(3, |world| {
        if world.my_pe() == 0 {
            let trail = world.block_on(world.exec_am_pe(1, RingHop { hops: 4, trail: vec![] }));
            assert_eq!(trail, vec![1, 2, 0, 1, 2]);
        }
        world.barrier();
        true
    });
    assert!(results.into_iter().all(|r| r));
}

#[test]
fn wait_all_blocks_until_detached_ams_complete() {
    // Each PE sends one AM per remote PE without keeping handles; wait_all
    // must cover them all.
    lamellar_core::am! {
        pub struct Bump {}
        exec(_am, ctx) -> usize { ctx.current_pe() }
    }
    let results = launch(4, |world| {
        for pe in 0..world.num_pes() {
            drop(world.exec_am_pe(pe, Bump {}));
        }
        world.wait_all();
        world.barrier();
        world.my_pe()
    });
    assert_eq!(results, vec![0, 1, 2, 3]);
}

#[test]
fn wait_all_blocks_until_unit_ams_complete() {
    // The fire-and-forget path has no handles at all: completion is
    // conveyed by counted acks, and the side effects must all be visible
    // once every PE passes wait_all + barrier. Self-sends exercise the
    // local pool-spawn branch.
    use lamellar_core::darc::Darc;
    lamellar_core::am! {
        pub struct UnitBump { pub counter: Darc<AtomicUsize> }
        exec(am, _ctx) -> () {
            am.counter.fetch_add(1, Ordering::Relaxed);
        }
    }
    let results = launch(4, |world| {
        let counter = Darc::new(&world.team(), AtomicUsize::new(0));
        world.barrier();
        for pe in 0..world.num_pes() {
            world.exec_unit_am_pe(pe, UnitBump { counter: counter.clone() });
        }
        world.wait_all();
        world.barrier();
        counter.load(Ordering::Relaxed)
    });
    assert_eq!(results, vec![4, 4, 4, 4]);
}

#[test]
fn spawned_futures_run_on_the_pool() {
    let results = launch(2, |world| {
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..32)
            .map(|i| {
                let c = Arc::clone(&counter);
                world.spawn(async move {
                    c.fetch_add(i, Ordering::Relaxed);
                    i
                })
            })
            .collect();
        let sum: usize = handles.into_iter().map(|h| world.block_on(h)).sum();
        assert_eq!(sum, (0..32).sum());
        assert_eq!(counter.load(Ordering::Relaxed), (0..32).sum());
        world.wait_all();
        true
    });
    assert_eq!(results.len(), 2);
}

#[test]
fn large_payload_takes_heap_path_and_roundtrips() {
    lamellar_core::am! {
        /// Carries a payload far above the aggregation threshold.
        pub struct BigBlob { pub data: Vec<u8> }
        exec(am, _ctx) -> u64 {
            am.data.iter().map(|&b| b as u64).sum()
        }
    }
    let cfg = WorldConfig::new(2).agg_threshold(4 * 1024);
    let results = launch_with_config(cfg, |world| {
        // 1 MiB payload: far above the 4 KiB threshold → LargeRequest path.
        let data: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        let expect: u64 = data.iter().map(|&b| b as u64).sum();
        let dst = (world.my_pe() + 1) % world.num_pes();
        let got = world.block_on(world.exec_am_pe(dst, BigBlob { data }));
        assert_eq!(got, expect);
        world.barrier();
        true
    });
    assert_eq!(results.len(), 2);
}

#[test]
fn heap_staging_stress_returns_to_baseline() {
    // Hammer the LargeRequest/FreeHeap handshake from every PE to every
    // other PE over many rounds, then check that every staged payload was
    // freed: the one-sided heap must return to its pre-stress level, or the
    // staging path leaks under load.
    lamellar_core::am! {
        pub struct Chunky { pub data: Vec<u8> }
        exec(am, _ctx) -> usize {
            am.data.len()
        }
    }
    let cfg = WorldConfig::new(3).agg_threshold(1024);
    let results = launch_with_config(cfg, |world| {
        let lamellae = std::sync::Arc::clone(world.rt().lamellae());
        world.barrier();
        let baseline = lamellae.heap_in_use();
        // 8 KiB payloads: far above the 1 KiB threshold → every remote AM
        // stages through the heap.
        let payload: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        assert!(payload.len() > world.rt().large_threshold());
        for _round in 0..25 {
            let handles: Vec<_> = (0..world.num_pes())
                .filter(|&pe| pe != world.my_pe())
                .map(|pe| world.exec_am_pe(pe, Chunky { data: payload.clone() }))
                .collect();
            for h in handles {
                assert_eq!(world.block_on(h), payload.len());
            }
        }
        world.wait_all();
        // Two barriers: the first guarantees every peer has finished
        // sending (so all FreeHeaps are at least enqueued), the second that
        // every PE has pumped progress past them.
        world.barrier();
        world.barrier();
        let after = lamellae.heap_in_use();
        assert_eq!(
            after,
            baseline,
            "heap staging leaked {} bytes under stress",
            after.saturating_sub(baseline)
        );
        true
    });
    assert_eq!(results.len(), 3);
}

#[test]
fn shmem_backend_behaves_identically() {
    let cfg = WorldConfig::new(3).backend(Backend::Shmem);
    let results = launch_with_config(cfg, |world| {
        assert_eq!(world.backend(), Backend::Shmem);
        world.block_on(world.exec_am_all(WhoAmI {}))
    });
    for r in results {
        assert_eq!(r, vec![0, 1, 2]);
    }
}

#[test]
fn smp_single_pe_world_via_builder() {
    let world = LamellarWorldBuilder::new().threads(2).build();
    assert_eq!(world.num_pes(), 1);
    assert_eq!(world.my_pe(), 0);
    let out = world.block_on(world.exec_am_pe(0, Echo { text: "smp".into() }));
    assert_eq!(out, "PE0: hello smp!");
    let all = world.block_on(world.exec_am_all(WhoAmI {}));
    assert_eq!(all, vec![0]);
    world.barrier();
    world.wait_all();
}

#[test]
fn many_small_ams_aggregate_correctly() {
    // Thousands of tiny AMs exercise the aggregation/flush machinery.
    lamellar_core::am! {
        pub struct TinyAdd { pub x: u32 }
        exec(am, _ctx) -> u32 { am.x + 1 }
    }
    let results = launch(2, |world| {
        let dst = 1 - world.my_pe();
        let handles: Vec<_> = (0..5000u32).map(|x| world.exec_am_pe(dst, TinyAdd { x })).collect();
        let mut ok = true;
        for (x, h) in handles.into_iter().enumerate() {
            ok &= world.block_on(h) == x as u32 + 1;
        }
        world.barrier();
        ok
    });
    assert!(results.into_iter().all(|r| r));
}

#[test]
fn pe0_can_exit_while_others_send_to_it() {
    // Paper: "PE0 exits its main function before every other PE, but
    // because it is still alive, its thread pool is still able to process
    // AMs sent to it by other PEs."
    let results = launch(3, |world| {
        if world.my_pe() == 0 {
            // Return immediately: the guard-drop teardown keeps PE0 alive
            // until everyone deinitializes.
            0
        } else {
            let mut total = 0;
            for _ in 0..100 {
                total += world.block_on(world.exec_am_pe(0, WhoAmI {}));
            }
            assert_eq!(total, 0);
            world.my_pe()
        }
    });
    assert_eq!(results, vec![0, 1, 2]);
}

lamellar_core::am! {
    /// Always panics on its destination.
    pub struct PanickyAm {}
    exec(_am, _ctx) -> () {
        panic!("intentional kaboom");
    }
}

#[test]
fn remote_am_panic_surfaces_at_the_caller() {
    // A panicking AM must fail the *awaiting* side with the remote message
    // — never strand it waiting for a reply.
    let results = launch(2, |world| {
        let mut caught = None;
        if world.my_pe() == 0 {
            let h = world.exec_am_pe(1, PanickyAm {});
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                world.block_on(h);
            }));
            let err = res.expect_err("await must re-panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("intentional kaboom"), "got: {msg}");
            caught = Some(msg);
        }
        world.wait_all();
        world.barrier();
        caught.is_some()
    });
    assert_eq!(results, vec![true, false]);
}

#[test]
fn local_am_panic_surfaces_at_the_caller() {
    launch(1, |world| {
        let h = world.exec_am_pe(0, PanickyAm {});
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            world.block_on(h);
        }));
        assert!(res.is_err());
        world.wait_all();
    });
}
