//! `macro_rules!` stand-ins for the paper's `#[AmData]` procedural macro.
//!
//! The real Lamellar uses attribute proc-macros to implement serialization
//! for user structs at compile time. Proc-macros need `syn`/`quote` (outside
//! this reproduction's dependency policy), so we provide declarative macros
//! that implement [`Codec`](crate::Codec) for named-field structs and
//! C-style/newtype enums. A compile error is produced if a field type does
//! not implement `Codec` — the same failure mode the paper describes for
//! `#[AmData]` ("if this fails, a compile-time error is produced").

/// Implement [`Codec`](crate::Codec) for a struct with named fields.
///
/// ```
/// use lamellar_codec::{impl_codec, Codec};
///
/// #[derive(Debug, PartialEq)]
/// struct Point { x: f64, y: f64, tag: String }
/// impl_codec!(Point { x, y, tag });
///
/// let p = Point { x: 1.0, y: -2.0, tag: "origin-ish".into() };
/// assert_eq!(Point::from_bytes(&p.to_bytes()).unwrap(), p);
/// ```
#[macro_export]
macro_rules! impl_codec {
    // Named-field struct.
    ($name:ident { $($field:ident),* $(,)? }) => {
        impl $crate::Codec for $name {
            fn encode(&self, buf: &mut Vec<u8>) {
                $( $crate::Codec::encode(&self.$field, buf); )*
            }
            fn decode(r: &mut $crate::Reader<'_>) -> $crate::Result<Self> {
                Ok($name {
                    $( $field: $crate::Codec::decode(r)?, )*
                })
            }
            fn encoded_len(&self) -> usize {
                0 $( + $crate::Codec::encoded_len(&self.$field) )*
            }
        }
    };
    // Generic named-field struct: impl_codec!(Pair<T> { a, b });
    ($name:ident < $($gen:ident),+ > { $($field:ident),* $(,)? }) => {
        impl<$($gen: $crate::Codec),+> $crate::Codec for $name<$($gen),+> {
            fn encode(&self, buf: &mut Vec<u8>) {
                $( $crate::Codec::encode(&self.$field, buf); )*
            }
            fn decode(r: &mut $crate::Reader<'_>) -> $crate::Result<Self> {
                Ok($name {
                    $( $field: $crate::Codec::decode(r)?, )*
                })
            }
            fn encoded_len(&self) -> usize {
                0 $( + $crate::Codec::encoded_len(&self.$field) )*
            }
        }
    };
    // Tuple struct: impl_codec!(Wrapper(0, 1));
    ($name:ident ( $($idx:tt),* $(,)? )) => {
        impl $crate::Codec for $name {
            fn encode(&self, buf: &mut Vec<u8>) {
                $( $crate::Codec::encode(&self.$idx, buf); )*
            }
            fn decode(r: &mut $crate::Reader<'_>) -> $crate::Result<Self> {
                Ok($name (
                    $( { let _ = $idx; $crate::Codec::decode(r)? }, )*
                ))
            }
            fn encoded_len(&self) -> usize {
                0 $( + $crate::Codec::encoded_len(&self.$idx) )*
            }
        }
    };
}

/// Implement [`Codec`](crate::Codec) for an enum whose variants are either
/// unit variants or carry a list of unnamed `Codec` payloads.
///
/// ```
/// use lamellar_codec::{impl_codec_enum, Codec};
///
/// #[derive(Debug, PartialEq)]
/// enum Op { Add(u64), Store(u64, u64), Flush }
/// impl_codec_enum!(Op { Add(a), Store(a, b), Flush });
///
/// let op = Op::Store(3, 4);
/// assert_eq!(Op::from_bytes(&op.to_bytes()).unwrap(), op);
/// ```
#[macro_export]
macro_rules! impl_codec_enum {
    ($name:ident { $($variant:ident $( ( $($field:ident),* ) )?),* $(,)? }) => {
        impl $crate::Codec for $name {
            fn encode(&self, buf: &mut Vec<u8>) {
                #[allow(unused_mut, unused_variables, unused_assignments)]
                {
                    let mut disc: u64 = 0;
                    $(
                        #[allow(unreachable_patterns)]
                        if let $name::$variant $( ( $(ref $field),* ) )? = self {
                            $crate::varint::write_u64(buf, disc);
                            $( $( $crate::Codec::encode($field, buf); )* )?
                            return;
                        }
                        disc += 1;
                    )*
                }
            }
            fn decode(r: &mut $crate::Reader<'_>) -> $crate::Result<Self> {
                let disc = $crate::varint::read_u64(r)?;
                #[allow(unused_mut, unused_assignments)]
                let mut next: u64 = 0;
                $(
                    if disc == next {
                        return Ok($name::$variant $( ( $( { let _ = stringify!($field); $crate::Codec::decode(r)? } ),* ) )? );
                    }
                    #[allow(unused_assignments)]
                    { next += 1; }
                )*
                Err($crate::CodecError::InvalidDiscriminant {
                    type_name: stringify!($name),
                    value: disc,
                })
            }
            fn encoded_len(&self) -> usize {
                #[allow(unused_mut, unused_variables, unused_assignments)]
                {
                    let mut disc: u64 = 0;
                    $(
                        #[allow(unreachable_patterns)]
                        if let $name::$variant $( ( $(ref $field),* ) )? = self {
                            return $crate::varint::len_u64(disc)
                                $( $( + $crate::Codec::encoded_len($field) )* )?;
                        }
                        disc += 1;
                    )*
                }
                unreachable!("enum value matched no variant")
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::Codec;

    #[derive(Debug, PartialEq)]
    struct Plain {
        a: u32,
        b: String,
        c: Vec<i64>,
    }
    impl_codec!(Plain { a, b, c });

    #[derive(Debug, PartialEq)]
    struct Pair<T> {
        left: T,
        right: T,
    }
    impl_codec!(Pair<T> { left, right });

    #[derive(Debug, PartialEq)]
    struct Wrap(u8, u64);
    impl_codec!(Wrap(0, 1));

    #[derive(Debug, PartialEq)]
    enum Cmd {
        Nop,
        Add(u64),
        Exchange(u64, u64),
    }
    impl_codec_enum!(Cmd { Nop, Add(a), Exchange(a, b) });

    #[test]
    fn struct_roundtrip() {
        let v = Plain { a: 9, b: "abc".into(), c: vec![-5, 0, 5] };
        assert_eq!(Plain::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn generic_struct_roundtrip() {
        let v = Pair { left: vec![1u8], right: vec![2u8, 3] };
        assert_eq!(Pair::<Vec<u8>>::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn tuple_struct_roundtrip() {
        let v = Wrap(3, 1 << 40);
        assert_eq!(Wrap::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn enum_roundtrip_all_variants() {
        for v in [Cmd::Nop, Cmd::Add(7), Cmd::Exchange(1, 2)] {
            let bytes = v.to_bytes();
            assert_eq!(Cmd::from_bytes(&bytes).unwrap(), v);
        }
    }

    #[test]
    fn macro_encoded_len_is_exact() {
        let s = Plain { a: 9, b: "abc".into(), c: vec![-5, 0, 5] };
        assert_eq!(s.encoded_len(), s.to_bytes().len());
        let p = Pair { left: vec![1u8], right: vec![2u8, 3] };
        assert_eq!(p.encoded_len(), p.to_bytes().len());
        let w = Wrap(3, 1 << 40);
        assert_eq!(w.encoded_len(), w.to_bytes().len());
        for v in [Cmd::Nop, Cmd::Add(7), Cmd::Exchange(1, 2)] {
            assert_eq!(v.encoded_len(), v.to_bytes().len());
        }
    }

    #[test]
    fn enum_rejects_unknown_discriminant() {
        let mut bytes = Vec::new();
        crate::varint::write_u64(&mut bytes, 99);
        assert!(Cmd::from_bytes(&bytes).is_err());
    }
}
