//! Stable 64-bit type identifiers for the AM registry.
//!
//! The paper's `#[am]` procedural macro "assigns each AM a unique identifier
//! which is registered in a runtime lookup table, enabling AMs to properly
//! deserialize and execute on remote PEs" (Sec. III-C). We derive that
//! identifier from the type's fully-qualified name with FNV-1a: it is stable
//! across PEs (they run the same binary) and across runs, and collisions are
//! checked at registration time.

/// A 64-bit identifier naming a registered wire type.
pub type TypeId64 = u64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hash of a type name.
///
/// `const fn` so identifiers can live in statics.
pub const fn type_hash(name: &str) -> TypeId64 {
    let bytes = name.as_bytes();
    let mut hash = FNV_OFFSET;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
        i += 1;
    }
    hash
}

/// Hash of a concrete Rust type via [`std::any::type_name`].
pub fn type_hash_of<T: ?Sized>() -> TypeId64 {
    type_hash(std::any::type_name::<T>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(type_hash("HelloWorldAM"), type_hash("HelloWorldAM"));
    }

    #[test]
    fn distinct_names_distinct_hashes() {
        assert_ne!(type_hash("HistoAM"), type_hash("IndexGatherAM"));
        assert_ne!(type_hash("a"), type_hash("b"));
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("") is the offset basis.
        assert_eq!(type_hash(""), FNV_OFFSET);
        // FNV-1a("a") from the reference implementation.
        assert_eq!(type_hash("a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn type_hash_of_monomorphizes() {
        assert_ne!(type_hash_of::<u8>(), type_hash_of::<u16>());
        assert_ne!(type_hash_of::<Vec<u8>>(), type_hash_of::<Vec<u16>>());
        assert_eq!(type_hash_of::<String>(), type_hash_of::<String>());
    }
}
