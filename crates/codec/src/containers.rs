//! [`Codec`] implementations for containers and compound types.

use crate::error::{CodecError, Result};
use crate::reader::Reader;
use crate::varint;
use crate::Codec;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

impl Codec for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::write_len(buf, self.len());
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = varint::read_len(r, varint::DEFAULT_MAX_LEN)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::InvalidUtf8)
    }
    fn encoded_len(&self) -> usize {
        varint::len_u64(self.len() as u64) + self.len()
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::write_len(buf, self.len());
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = varint::read_len(r, varint::DEFAULT_MAX_LEN)?;
        // Reserve conservatively: a corrupt length prefix must not allocate
        // more than the bytes actually present can justify.
        let mut out = Vec::with_capacity(len.min(r.remaining().max(1)));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
    fn encoded_len(&self) -> usize {
        varint::len_u64(self.len() as u64) + self.iter().map(Codec::encoded_len).sum::<usize>()
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.take_byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            v => Err(CodecError::InvalidDiscriminant { type_name: "Option", value: v as u64 }),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Codec::encoded_len)
    }
}

impl<T: Codec, E: Codec> Codec for std::result::Result<T, E> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Ok(v) => {
                buf.push(0);
                v.encode(buf);
            }
            Err(e) => {
                buf.push(1);
                e.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.take_byte()? {
            0 => Ok(Ok(T::decode(r)?)),
            1 => Ok(Err(E::decode(r)?)),
            v => Err(CodecError::InvalidDiscriminant { type_name: "Result", value: v as u64 }),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            Ok(v) => v.encoded_len(),
            Err(e) => e.encoded_len(),
        }
    }
}

impl<T: Codec> Codec for Box<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (**self).encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Box::new(T::decode(r)?))
    }
    fn encoded_len(&self) -> usize {
        (**self).encoded_len()
    }
}

impl<T: Codec, const N: usize> Codec for [T; N] {
    fn encode(&self, buf: &mut Vec<u8>) {
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        // Decode into a Vec first; N is typically tiny for AM payloads.
        let mut v = Vec::with_capacity(N);
        for _ in 0..N {
            v.push(T::decode(r)?);
        }
        v.try_into().map_err(|_| CodecError::UnexpectedEof { needed: N, available: 0 })
    }
    fn encoded_len(&self) -> usize {
        self.iter().map(Codec::encoded_len).sum()
    }
}

impl<K: Codec + Eq + Hash, V: Codec> Codec for HashMap<K, V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::write_len(buf, self.len());
        for (k, v) in self {
            k.encode(buf);
            v.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = varint::read_len(r, varint::DEFAULT_MAX_LEN)?;
        let mut out = HashMap::with_capacity(len.min(r.remaining().max(1)));
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
    fn encoded_len(&self) -> usize {
        varint::len_u64(self.len() as u64)
            + self.iter().map(|(k, v)| k.encoded_len() + v.encoded_len()).sum::<usize>()
    }
}

impl<K: Codec + Ord, V: Codec> Codec for BTreeMap<K, V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::write_len(buf, self.len());
        for (k, v) in self {
            k.encode(buf);
            v.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = varint::read_len(r, varint::DEFAULT_MAX_LEN)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
    fn encoded_len(&self) -> usize {
        varint::len_u64(self.len() as u64)
            + self.iter().map(|(k, v)| k.encoded_len() + v.encoded_len()).sum::<usize>()
    }
}

macro_rules! impl_codec_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Codec),+> Codec for ($($name,)+) {
            fn encode(&self, buf: &mut Vec<u8>) {
                $(self.$idx.encode(buf);)+
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self> {
                Ok(($($name::decode(r)?,)+))
            }
            fn encoded_len(&self) -> usize {
                0 $(+ self.$idx.encoded_len())+
            }
        }
    };
}

impl_codec_tuple!(A: 0);
impl_codec_tuple!(A: 0, B: 1);
impl_codec_tuple!(A: 0, B: 1, C: 2);
impl_codec_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_codec_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_codec_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_codec_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_codec_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

#[cfg(test)]
mod tests {
    use super::*;

    fn rt<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn strings_roundtrip() {
        rt(String::new());
        rt("ascii".to_string());
        rt("ünïcødé λ ∀x".to_string());
    }

    #[test]
    fn string_rejects_bad_utf8() {
        let mut buf = Vec::new();
        varint::write_len(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(String::from_bytes(&buf), Err(CodecError::InvalidUtf8));
    }

    #[test]
    fn vec_roundtrips() {
        rt(Vec::<u64>::new());
        rt(vec![1u8, 2, 3]);
        rt(vec!["a".to_string(), "b".to_string()]);
        rt(vec![vec![1i32, -2], vec![], vec![3]]);
    }

    #[test]
    fn vec_truncated_payload_errors_not_panics() {
        let mut buf = Vec::new();
        varint::write_len(&mut buf, 1000); // claims 1000 u64s, provides none
        assert!(matches!(Vec::<u64>::from_bytes(&buf), Err(CodecError::UnexpectedEof { .. })));
    }

    #[test]
    fn option_result_roundtrip() {
        rt(Option::<u32>::None);
        rt(Some(99u32));
        rt(std::result::Result::<u8, String>::Ok(7));
        rt(std::result::Result::<u8, String>::Err("bad".into()));
    }

    #[test]
    fn boxes_arrays_tuples_roundtrip() {
        rt(Box::new(42u64));
        rt([1u16, 2, 3, 4]);
        rt((1u8, "x".to_string(), vec![2.5f64]));
        rt((1u8, 2u16, 3u32, 4u64, 5i8, 6i16, 7i32, 8i64));
    }

    #[test]
    fn maps_roundtrip() {
        let mut hm = HashMap::new();
        hm.insert("k".to_string(), 1u32);
        hm.insert("j".to_string(), 2u32);
        rt(hm);
        let mut bt = BTreeMap::new();
        bt.insert(3u64, vec![1u8]);
        bt.insert(1u64, vec![]);
        rt(bt);
    }

    #[test]
    fn encoded_len_is_exact() {
        fn check<T: Codec>(v: T) {
            assert_eq!(v.encoded_len(), v.to_bytes().len());
        }
        check(String::new());
        check("ünïcødé λ".to_string());
        check(vec![1u8, 2, 3]);
        check(vec!["a".to_string(), "bb".to_string()]);
        check(Option::<u32>::None);
        check(Some(99u32));
        check(std::result::Result::<u8, String>::Err("bad".into()));
        check(Box::new(42u64));
        check([1u16, 2, 3, 4]);
        check((1u8, "x".to_string(), vec![2.5f64]));
        let mut hm = HashMap::new();
        hm.insert("k".to_string(), 1u32);
        check(hm);
        let mut bt = BTreeMap::new();
        bt.insert(3u64, vec![1u8]);
        check(bt);
        check(std::time::Duration::new(5, 7));
        check(());
        check(true);
        check('λ');
        check(usize::MAX);
        check(-3isize);
    }

    #[test]
    fn option_bad_discriminant() {
        assert!(matches!(
            Option::<u8>::from_bytes(&[7]),
            Err(CodecError::InvalidDiscriminant { type_name: "Option", .. })
        ));
    }
}
