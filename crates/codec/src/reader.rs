//! Cursor over an immutable byte slice used by [`Codec::decode`](crate::Codec::decode).

use crate::error::{CodecError, Result};

/// A non-owning cursor over a byte buffer.
///
/// All decode operations consume from the front. The reader tracks its
/// position so callers can decode a sequence of values packed back-to-back in
/// one message buffer (how the Lamellae batches AMs).
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Create a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current offset from the start of the underlying buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Consume and return the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { needed: n, available: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consume a single byte.
    pub fn take_byte(&mut self) -> Result<u8> {
        if self.remaining() < 1 {
            return Err(CodecError::UnexpectedEof { needed: 1, available: 0 });
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// Consume exactly `N` bytes into a fixed array (used for fixed-width
    /// primitives).
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Peek at the remaining bytes without consuming them.
    pub fn peek(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// Assert the reader is fully consumed (used by
    /// [`Codec::from_bytes`](crate::Codec::from_bytes)).
    pub fn finish(&self) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes { remaining: self.remaining() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_advances_and_errors_at_eof() {
        let data = [1u8, 2, 3, 4];
        let mut r = Reader::new(&data);
        assert_eq!(r.take(2).unwrap(), &[1, 2]);
        assert_eq!(r.position(), 2);
        assert_eq!(r.take_byte().unwrap(), 3);
        assert_eq!(r.remaining(), 1);
        assert!(r.take(2).is_err());
        assert_eq!(r.take_byte().unwrap(), 4);
        assert!(r.finish().is_ok());
        assert!(r.take_byte().is_err());
    }

    #[test]
    fn take_array_reads_fixed_width() {
        let data = 0x0102_0304u32.to_le_bytes();
        let mut r = Reader::new(&data);
        let arr: [u8; 4] = r.take_array().unwrap();
        assert_eq!(u32::from_le_bytes(arr), 0x0102_0304);
    }

    #[test]
    fn finish_reports_trailing() {
        let data = [0u8; 3];
        let r = Reader::new(&data);
        assert_eq!(r.finish(), Err(CodecError::TrailingBytes { remaining: 3 }));
    }
}
