//! # lamellar-codec
//!
//! A compact, self-contained binary serialization layer used for every byte
//! that crosses the simulated network fabric in this Lamellar reproduction.
//!
//! The paper's runtime (Sec. III-C) serializes Active Messages before handing
//! them to the Lamellae for transfer and deserializes them on the destination
//! PE. The real system uses `serde` + a binary format; to keep the whole wire
//! path in-repo (and independently testable) we implement the format from
//! scratch:
//!
//! * little-endian fixed-width primitives,
//! * LEB128 varints for lengths and discriminants,
//! * length-prefixed containers,
//! * a stable 64-bit FNV-1a type identifier used by the AM registry
//!   (Sec. III-C: "the macro assigns each AM a unique identifier which is
//!   registered in a runtime lookup table").
//!
//! The [`Codec`] trait plays the role the paper assigns to the
//! `#[AmData]`-generated serde impls; the [`impl_codec!`] macro is the
//! `macro_rules!` stand-in for the procedural macro (proc-macro crates would
//! require `syn`/`quote`, which are outside this reproduction's dependency
//! policy — see DESIGN.md §5).

pub mod containers;
pub mod error;
pub mod primitives;
pub mod reader;
pub mod typeid;
pub mod varint;
#[macro_use]
pub mod macros;

pub use error::{CodecError, Result};
pub use reader::Reader;
pub use typeid::{type_hash, TypeId64};

/// Binary (de)serialization of a value.
///
/// Implementations must be *round-trip exact*: `decode(encode(x)) == x` for
/// every representable value, and `decode` must consume exactly the bytes
/// `encode` produced (so values can be concatenated into message buffers).
pub trait Codec: Sized {
    /// Append the binary representation of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decode a value from the front of `r`, consuming exactly the bytes
    /// that [`Codec::encode`] wrote.
    fn decode(r: &mut Reader<'_>) -> Result<Self>;

    /// Exact number of bytes [`Codec::encode`] will append for `self`.
    ///
    /// The message path uses this to reserve frame prefixes and pick the
    /// small-vs-staged send route *before* serializing, so implementations
    /// must agree with `encode` byte-for-byte and must be side-effect free
    /// (notably: no Darc/region pinning). The default encodes into a scratch
    /// buffer and measures — correct but allocating; every in-repo impl
    /// overrides it with an arithmetic computation.
    fn encoded_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }

    /// Serialize into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Deserialize from a complete buffer, requiring that every byte is
    /// consumed.
    fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_bytes_roundtrip() {
        let v: (u32, String, Vec<i16>) = (7, "hello".into(), vec![-1, 2, -3]);
        let bytes = v.to_bytes();
        let back = <(u32, String, Vec<i16>)>::from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let mut bytes = 5u8.to_bytes();
        bytes.push(0xff);
        assert!(u8::from_bytes(&bytes).is_err());
    }
}
