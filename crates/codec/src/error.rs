//! Error type for decode failures.
//!
//! Encoding is infallible (it only appends to a `Vec<u8>`); decoding can fail
//! when a buffer is truncated, contains an invalid discriminant, or carries a
//! type hash that does not match the expected AM type.

use std::fmt;

/// Result alias used throughout the codec.
pub type Result<T> = std::result::Result<T, CodecError>;

/// Reasons a decode can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The reader ran out of bytes: `needed` more were required but only
    /// `available` remained.
    UnexpectedEof { needed: usize, available: usize },
    /// A varint ran past its maximum encoded width (corrupt stream).
    VarintOverflow,
    /// An enum discriminant was outside the valid range for the type.
    InvalidDiscriminant { type_name: &'static str, value: u64 },
    /// A `char` payload was not a valid Unicode scalar value.
    InvalidChar(u32),
    /// A string payload was not valid UTF-8.
    InvalidUtf8,
    /// `from_bytes` finished decoding with bytes left over.
    TrailingBytes { remaining: usize },
    /// A registered-type hash did not match any known type (AM registry).
    UnknownTypeHash(u64),
    /// A length prefix exceeded a sanity limit (guards against corrupt
    /// streams allocating absurd buffers).
    LengthOutOfRange { len: u64, max: u64 },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, available } => {
                write!(f, "unexpected end of buffer: needed {needed} bytes, {available} available")
            }
            CodecError::VarintOverflow => write!(f, "varint exceeded maximum width"),
            CodecError::InvalidDiscriminant { type_name, value } => {
                write!(f, "invalid discriminant {value} for {type_name}")
            }
            CodecError::InvalidChar(v) => write!(f, "invalid char scalar {v:#x}"),
            CodecError::InvalidUtf8 => write!(f, "string payload is not valid UTF-8"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decode")
            }
            CodecError::UnknownTypeHash(h) => write!(f, "unknown registered type hash {h:#x}"),
            CodecError::LengthOutOfRange { len, max } => {
                write!(f, "length prefix {len} exceeds limit {max}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CodecError::UnexpectedEof { needed: 4, available: 1 };
        assert!(e.to_string().contains("needed 4"));
        let e = CodecError::UnknownTypeHash(0xabcd);
        assert!(e.to_string().contains("abcd"));
    }
}
