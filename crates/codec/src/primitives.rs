//! [`Codec`] implementations for primitive types.
//!
//! Fixed-width little-endian encodings are used for every numeric type.
//! Array element payloads dominate Lamellar's wire traffic, and fixed-width
//! lets the runtime compute exact buffer sizes up front (the Lamellae
//! pre-allocates RDMA message buffers, Sec. III-A).

use crate::error::{CodecError, Result};
use crate::reader::Reader;
use crate::Codec;

macro_rules! impl_codec_int {
    ($($t:ty),*) => {
        $(
            impl Codec for $t {
                fn encode(&self, buf: &mut Vec<u8>) {
                    buf.extend_from_slice(&self.to_le_bytes());
                }
                fn decode(r: &mut Reader<'_>) -> Result<Self> {
                    Ok(<$t>::from_le_bytes(r.take_array()?))
                }
                fn encoded_len(&self) -> usize {
                    std::mem::size_of::<$t>()
                }
            }
        )*
    };
}

impl_codec_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

// usize/isize travel as u64/i64 so the wire format is architecture
// independent (PEs on different word sizes must interoperate).
impl Codec for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(u64::decode(r)? as usize)
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Codec for isize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as i64).encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(i64::decode(r)? as isize)
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Codec for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.take_byte()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(CodecError::InvalidDiscriminant { type_name: "bool", value: v as u64 }),
        }
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Codec for char {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u32).encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let v = u32::decode(r)?;
        char::from_u32(v).ok_or(CodecError::InvalidChar(v))
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl Codec for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_r: &mut Reader<'_>) -> Result<Self> {
        Ok(())
    }
    fn encoded_len(&self) -> usize {
        0
    }
}

impl Codec for std::time::Duration {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_secs().encode(buf);
        self.subsec_nanos().encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let secs = u64::decode(r)?;
        let nanos = u32::decode(r)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
    fn encoded_len(&self) -> usize {
        12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn integers_roundtrip() {
        rt(0u8);
        rt(255u8);
        rt(u16::MAX);
        rt(u32::MAX);
        rt(u64::MAX);
        rt(u128::MAX);
        rt(i8::MIN);
        rt(i16::MIN);
        rt(i32::MIN);
        rt(i64::MIN);
        rt(i128::MIN);
        rt(usize::MAX);
        rt(isize::MIN);
    }

    #[test]
    fn floats_roundtrip() {
        rt(0.0f32);
        rt(-1.5f32);
        rt(f32::INFINITY);
        rt(std::f64::consts::PI);
        rt(f64::NEG_INFINITY);
        // NaN is not PartialEq to itself; check bit pattern instead.
        let bytes = f64::NAN.to_bytes();
        assert!(f64::from_bytes(&bytes).unwrap().is_nan());
    }

    #[test]
    fn bool_char_unit_roundtrip() {
        rt(true);
        rt(false);
        rt('λ');
        rt('\0');
        rt(());
    }

    #[test]
    fn bool_rejects_bad_byte() {
        assert!(matches!(
            bool::from_bytes(&[2]),
            Err(CodecError::InvalidDiscriminant { type_name: "bool", value: 2 })
        ));
    }

    #[test]
    fn char_rejects_surrogate() {
        let bytes = 0xD800u32.to_bytes();
        assert_eq!(char::from_bytes(&bytes), Err(CodecError::InvalidChar(0xD800)));
    }

    #[test]
    fn duration_roundtrips() {
        rt(std::time::Duration::new(12345, 678_910_111));
        rt(std::time::Duration::ZERO);
    }

    #[test]
    fn usize_is_word_size_independent() {
        // A usize always occupies 8 bytes on the wire.
        assert_eq!(42usize.to_bytes().len(), 8);
    }
}
