//! LEB128 variable-length integers.
//!
//! Lengths and enum discriminants are almost always small, so varints keep
//! AM headers compact — the paper's evaluation (Fig. 3–5) lives in the
//! small-message regime where every header byte shows up in throughput.

use crate::error::{CodecError, Result};
use crate::reader::Reader;

/// Maximum encoded width of a `u64` varint (ceil(64 / 7) bytes).
pub const MAX_VARINT_LEN: usize = 10;

/// Append the LEB128 encoding of `v` to `buf`.
pub fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decode a LEB128 `u64` from the reader.
pub fn read_u64(r: &mut Reader<'_>) -> Result<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for _ in 0..MAX_VARINT_LEN {
        let byte = r.take_byte()?;
        let low = (byte & 0x7f) as u64;
        // The final (10th) byte may only contribute the single remaining bit.
        if shift == 63 && low > 1 {
            return Err(CodecError::VarintOverflow);
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
    Err(CodecError::VarintOverflow)
}

/// Encoded width of `v` in bytes, without encoding (1 ..= [`MAX_VARINT_LEN`]).
pub fn len_u64(v: u64) -> usize {
    // ceil(bits / 7), with 0 occupying one byte.
    (64 - (v | 1).leading_zeros() as usize).div_ceil(7)
}

/// Encoded width of a ZigZag + LEB128 signed integer.
pub fn len_i64(v: i64) -> usize {
    len_u64(zigzag(v))
}

/// ZigZag-encode a signed value so small magnitudes stay small.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append a ZigZag + LEB128 encoded signed integer.
pub fn write_i64(buf: &mut Vec<u8>, v: i64) {
    write_u64(buf, zigzag(v));
}

/// Decode a ZigZag + LEB128 signed integer.
pub fn read_i64(r: &mut Reader<'_>) -> Result<i64> {
    Ok(unzigzag(read_u64(r)?))
}

/// Encode a container length, bounded by a sanity limit to avoid attacker- or
/// corruption-driven huge allocations during decode.
pub fn write_len(buf: &mut Vec<u8>, len: usize) {
    write_u64(buf, len as u64);
}

/// Decode a container length, enforcing `max`.
pub fn read_len(r: &mut Reader<'_>, max: u64) -> Result<usize> {
    let len = read_u64(r)?;
    if len > max {
        return Err(CodecError::LengthOutOfRange { len, max });
    }
    Ok(len as usize)
}

/// Default sanity limit for decoded container lengths (1 GiB of elements).
pub const DEFAULT_MAX_LEN: u64 = 1 << 30;

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u(v: u64) {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        let mut r = Reader::new(&buf);
        assert_eq!(read_u64(&mut r).unwrap(), v);
        assert!(r.is_empty());
    }

    #[test]
    fn u64_roundtrips_boundaries() {
        for v in [0, 1, 127, 128, 255, 256, 16383, 16384, u32::MAX as u64, u64::MAX] {
            roundtrip_u(v);
        }
    }

    #[test]
    fn len_u64_matches_encoded_width() {
        for v in [
            0,
            1,
            127,
            128,
            255,
            256,
            16383,
            16384,
            (1 << 21) - 1,
            1 << 21,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(len_u64(v), buf.len(), "width mismatch for {v}");
        }
    }

    #[test]
    fn len_i64_matches_encoded_width() {
        for v in [0i64, 1, -1, 63, -64, 64, -65, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            assert_eq!(len_i64(v), buf.len(), "width mismatch for {v}");
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 100);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn zigzag_roundtrips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 1234567, -1234567] {
            assert_eq!(unzigzag(zigzag(v)), v);
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(read_i64(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        assert!(zigzag(-1) < 8);
        assert!(zigzag(3) < 8);
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes can never terminate within MAX_VARINT_LEN.
        let buf = [0x80u8; 11];
        let mut r = Reader::new(&buf);
        assert_eq!(read_u64(&mut r), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn tenth_byte_overflow_rejected() {
        // 9 continuation bytes then a final byte with more than 1 bit set.
        let mut buf = vec![0xffu8; 9];
        buf.push(0x02);
        let mut r = Reader::new(&buf);
        assert_eq!(read_u64(&mut r), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn len_limit_enforced() {
        let mut buf = Vec::new();
        write_len(&mut buf, 1000);
        let mut r = Reader::new(&buf);
        assert!(matches!(read_len(&mut r, 10), Err(CodecError::LengthOutOfRange { .. })));
    }

    #[test]
    fn truncated_varint_is_eof() {
        let buf = [0x80u8]; // continuation bit set, then nothing
        let mut r = Reader::new(&buf);
        assert!(matches!(read_u64(&mut r), Err(CodecError::UnexpectedEof { .. })));
    }
}
