//! Property-based tests: every Codec impl must round-trip exactly and
//! consume exactly the bytes it produced (so values can be packed
//! back-to-back in AM message buffers).

use lamellar_codec::{impl_codec, impl_codec_enum, Codec, Reader};
use proptest::prelude::*;

fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: &T) {
    let bytes = v.to_bytes();
    let back = T::from_bytes(&bytes).expect("decode");
    assert_eq!(&back, v);
}

/// Values packed back-to-back must decode independently — this is exactly how
/// the Lamellae batches multiple AMs into one message buffer.
fn packs<T: Codec + PartialEq + std::fmt::Debug>(a: &T, b: &T) {
    let mut buf = Vec::new();
    a.encode(&mut buf);
    let first_len = buf.len();
    b.encode(&mut buf);
    let mut r = Reader::new(&buf);
    assert_eq!(&T::decode(&mut r).unwrap(), a);
    assert_eq!(r.position(), first_len);
    assert_eq!(&T::decode(&mut r).unwrap(), b);
    assert!(r.is_empty());
}

proptest! {
    #[test]
    fn u64_roundtrip(v: u64) { roundtrip(&v); }

    #[test]
    fn i64_roundtrip(v: i64) { roundtrip(&v); }

    #[test]
    fn f64_roundtrip(v in proptest::num::f64::NORMAL | proptest::num::f64::ZERO) {
        roundtrip(&v);
    }

    #[test]
    fn string_roundtrip(v in ".*") { roundtrip(&v.to_string()); }

    #[test]
    fn vec_u8_roundtrip(v: Vec<u8>) { roundtrip(&v); }

    #[test]
    fn vec_usize_roundtrip(v: Vec<usize>) { roundtrip(&v); }

    #[test]
    fn nested_roundtrip(v: Vec<(u32, String, Option<i16>)>) { roundtrip(&v); }

    #[test]
    fn packing_u64(a: u64, b: u64) { packs(&a, &b); }

    #[test]
    fn packing_strings(a in ".*", b in ".*") {
        packs(&a.to_string(), &b.to_string());
    }

    #[test]
    fn varint_roundtrip(v: u64) {
        let mut buf = Vec::new();
        lamellar_codec::varint::write_u64(&mut buf, v);
        let mut r = Reader::new(&buf);
        prop_assert_eq!(lamellar_codec::varint::read_u64(&mut r).unwrap(), v);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn varint_is_monotone_in_width(v: u32) {
        // Wider values never encode shorter than narrower ones of the same
        // prefix; sanity for header-size reasoning in the lamellae.
        let mut small = Vec::new();
        let mut big = Vec::new();
        lamellar_codec::varint::write_u64(&mut small, v as u64);
        lamellar_codec::varint::write_u64(&mut big, (v as u64) << 8 | 0xff);
        prop_assert!(big.len() >= small.len());
    }

    /// Decoding arbitrary bytes must never panic — the fabric can hand the
    /// codec truncated or corrupt buffers under failure injection.
    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes: Vec<u8>) {
        let _ = String::from_bytes(&bytes);
        let _ = Vec::<u64>::from_bytes(&bytes);
        let _ = Option::<Vec<u32>>::from_bytes(&bytes);
        let _ = <(u8, String)>::from_bytes(&bytes);
    }
}

#[derive(Debug, PartialEq, Clone)]
struct AmLike {
    dest: usize,
    indices: Vec<usize>,
    payload: Vec<u64>,
    label: String,
}
impl_codec!(AmLike { dest, indices, payload, label });

#[derive(Debug, PartialEq, Clone)]
enum OpLike {
    Add(u64),
    Cas(u64, u64),
    Barrier,
}
impl_codec_enum!(OpLike { Add(a), Cas(a, b), Barrier });

proptest! {
    #[test]
    fn am_like_struct_roundtrip(
        dest in 0usize..4096,
        indices: Vec<usize>,
        payload: Vec<u64>,
        label in ".*",
    ) {
        let am = AmLike { dest, indices, payload, label: label.to_string() };
        roundtrip(&am);
    }

    #[test]
    fn op_enum_roundtrip(sel in 0u8..3, a: u64, b: u64) {
        let op = match sel {
            0 => OpLike::Add(a),
            1 => OpLike::Cas(a, b),
            _ => OpLike::Barrier,
        };
        roundtrip(&op);
    }
}
