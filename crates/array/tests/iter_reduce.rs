//! Integration tests: the three iterator families and reductions.

use lamellar_array::iter::DistIterExt;
use lamellar_array::prelude::*;
use lamellar_core::world::launch;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn filled_atomic(world: &lamellar_core::world::LamellarWorld, n: usize) -> AtomicArray<u64> {
    let arr = AtomicArray::<u64>::new(world, n, Distribution::Block);
    world.barrier();
    if world.my_pe() == 0 {
        let idxs: Vec<usize> = (0..n).collect();
        let vals: Vec<u64> = (0..n as u64).collect();
        world.block_on(arr.batch_store(idxs, vals));
    }
    world.wait_all();
    world.barrier();
    arr
}

#[test]
fn dist_iter_for_each_touches_local_elements_once() {
    launch(3, |world| {
        let arr = filled_atomic(&world, 30);
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        world.block_on(arr.dist_iter().for_each(move |_v| {
            c.fetch_add(1, Ordering::Relaxed);
        }));
        // Each PE iterates only its own block (30 / 3 PEs).
        assert_eq!(count.load(Ordering::Relaxed), 10);
        world.barrier();
    });
}

#[test]
fn dist_iter_enumerate_yields_global_indices() {
    launch(2, |world| {
        let arr = filled_atomic(&world, 16);
        let pairs = world.block_on(arr.dist_iter().enumerate().collect_local());
        // Values were set to their index, so enumerate must agree.
        for (idx, v) in &pairs {
            assert_eq!(*idx as u64, *v);
        }
        // PE0 owns 0..8, PE1 owns 8..16 (Block).
        let min = pairs.iter().map(|(i, _)| *i).min().unwrap();
        assert_eq!(min, world.my_pe() * 8);
        world.barrier();
    });
}

#[test]
fn dist_iter_map_filter_chain() {
    launch(2, |world| {
        let arr = filled_atomic(&world, 20);
        let odds_doubled =
            world.block_on(arr.dist_iter().filter(|v| v % 2 == 1).map(|v| v * 2).collect_local());
        for v in &odds_doubled {
            assert_eq!((v / 2) % 2, 1);
        }
        assert_eq!(odds_doubled.len(), 5); // half of this PE's 10 elements
        world.barrier();
    });
}

#[test]
fn dist_iter_skip_step_take_select_by_position() {
    launch(2, |world| {
        let arr = filled_atomic(&world, 20);
        // Positions 4, 8, 12, 16 (skip 4, every 4th, below 18).
        let selected: usize =
            world.block_on(arr.dist_iter().skip(4).step_by(4).take(18).count_local());
        world.barrier();
        // Summed across both PEs: indices {4,8,12,16} → 4 total.
        let total = world.team().deposit_all(selected).iter().sum::<usize>();
        assert_eq!(total, 4);
        world.barrier();
    });
}

#[test]
fn dist_iter_collect_array_concatenates_in_rank_order() {
    launch(3, |world| {
        let arr = filled_atomic(&world, 30);
        // Keep elements < 25 (drops the tail of rank 2's block).
        let collected = arr.dist_iter().filter(|v| *v < 25).collect_array(Distribution::Block);
        assert_eq!(collected.len(), 25);
        let mut buf = vec![0u64; 25];
        // SAFETY: collect_array barriers before returning; read-only now.
        unsafe { collected.get_unchecked(0, &mut buf) };
        assert_eq!(buf, (0..25).collect::<Vec<u64>>());
        world.barrier();
    });
}

#[test]
fn local_iter_sees_only_local_data() {
    launch(2, |world| {
        use lamellar_array::iter::LocalIterExt;
        let arr = filled_atomic(&world, 12);
        let local = world.block_on(arr.local_iter().collect());
        let expect: Vec<u64> = (0..6).map(|i| (world.my_pe() * 6 + i) as u64).collect();
        assert_eq!(local, expect);
        // Enumerate yields *local* indices.
        let pairs = world.block_on(arr.local_iter().enumerate().collect());
        for (i, (idx, _)) in pairs.iter().enumerate() {
            assert_eq!(i, *idx);
        }
        world.barrier();
    });
}

#[test]
fn local_iter_zip_pairs_two_arrays() {
    launch(2, |world| {
        use lamellar_array::iter::LocalIterExt;
        let a = filled_atomic(&world, 10);
        let b = AtomicArray::<u64>::new(&world, 10, Distribution::Block);
        world.barrier();
        if world.my_pe() == 0 {
            world.block_on(
                b.batch_store((0..10).collect(), (0..10).map(|i| i * 100).collect::<Vec<u64>>()),
            );
        }
        world.wait_all();
        world.barrier();
        let pairs = world.block_on(a.local_iter().zip(&b.local_iter()).collect());
        for (x, y) in pairs {
            assert_eq!(y, x * 100);
        }
        world.barrier();
    });
}

#[test]
fn local_iter_chunks_snapshot_in_order() {
    launch(1, |world| {
        use lamellar_array::iter::LocalIterExt;
        let arr = filled_atomic(&world, 10);
        let chunks: Vec<Vec<u64>> = arr.local_iter().chunks(4).collect();
        assert_eq!(chunks, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]);
    });
}

#[test]
fn onesided_iter_walks_whole_array_in_global_order() {
    launch(3, |world| {
        let arr = filled_atomic(&world, 25);
        if world.my_pe() == 1 {
            // Small buffer forces multiple remote fetches.
            let all: Vec<u64> = arr.onesided_iter().chunks(4).into_iter().collect();
            assert_eq!(all, (0..25).collect::<Vec<u64>>());
            // Standard iterator adaptors compose after into_iter().
            let evens: Vec<u64> = arr.onesided_iter().into_iter().filter(|v| v % 2 == 0).collect();
            assert_eq!(evens.len(), 13);
        }
        world.barrier();
    });
}

#[test]
fn onesided_iter_cyclic_layout() {
    launch(2, |world| {
        let arr = AtomicArray::<u64>::new(&world, 9, Distribution::Cyclic);
        world.barrier();
        if world.my_pe() == 0 {
            world.block_on(arr.batch_store((0..9).collect(), (10..19).collect::<Vec<u64>>()));
            let all: Vec<u64> = arr.onesided_iter().chunks(2).into_iter().collect();
            assert_eq!(all, (10..19).collect::<Vec<u64>>());
        }
        world.wait_all();
        world.barrier();
    });
}

#[test]
fn reduce_on_sub_array_and_readonly() {
    launch(2, |world| {
        let arr = filled_atomic(&world, 10); // values 0..10
        let sub_sum = world.block_on(arr.sub_array(2..5).sum());
        assert_eq!(sub_sum, 2 + 3 + 4);
        world.barrier();
        let ro = arr.into_read_only();
        assert_eq!(world.block_on(ro.sum()), 45);
        assert_eq!(world.block_on(ro.max()), Some(9));
        world.barrier();
    });
}
