//! The full conversion matrix between array types: every path preserves
//! contents, and the resulting type's ops behave.

use lamellar_array::prelude::*;
use lamellar_core::world::launch;

fn filled(world: &lamellar_core::world::LamellarWorld) -> UnsafeArray<u64> {
    let arr = UnsafeArray::<u64>::new(world, 12, Distribution::Block);
    world.barrier();
    if world.my_pe() == 0 {
        // SAFETY: sole writer; barrier below synchronizes.
        unsafe { arr.put_unchecked(0, &(0..12).map(|i| i * 7).collect::<Vec<_>>()) };
    }
    world.barrier();
    arr
}

fn assert_contents(world: &lamellar_core::world::LamellarWorld, got: Vec<u64>) {
    assert_eq!(got, (0..12).map(|i| i * 7).collect::<Vec<u64>>());
    world.barrier();
}

#[test]
fn unsafe_to_each_type_and_back() {
    launch(2, |world| {
        // Unsafe -> Atomic -> Unsafe
        let a = filled(&world).into_atomic();
        assert_contents(&world, world.block_on(a.get(0, 12)));
        let u = a.into_unsafe();
        // Unsafe -> LocalLock -> Unsafe
        let l = u.into_local_lock();
        assert_contents(&world, world.block_on(l.get(0, 12)));
        let u = l.into_unsafe();
        // Unsafe -> ReadOnly (terminal read checks)
        let r = u.into_read_only();
        let mut direct = vec![0u64; 12];
        r.get_direct(0, &mut direct);
        assert_contents(&world, direct);
        world.barrier();
    });
}

#[test]
fn atomic_to_local_lock_to_read_only() {
    launch(2, |world| {
        let a = filled(&world).into_atomic();
        // Mutate through the atomic API first.
        if world.my_pe() == 0 {
            world.block_on(a.add(0, 1));
        }
        world.wait_all();
        world.barrier();
        let l = a.into_local_lock();
        if world.my_pe() == 1 {
            world.block_on(l.sub(0, 1));
        }
        world.wait_all();
        world.barrier();
        let r = l.into_read_only();
        assert_contents(&world, {
            let mut out = vec![0u64; 12];
            r.get_direct(0, &mut out);
            out
        });
    });
}

#[test]
fn read_only_back_to_atomic_is_writable_again() {
    launch(2, |world| {
        let r = filled(&world).into_read_only();
        let a = r.into_atomic();
        if world.my_pe() == 0 {
            world.block_on(a.store(5, 999));
        }
        world.wait_all();
        world.barrier();
        assert_eq!(world.block_on(a.load(5)), 999);
        world.barrier();
    });
}

#[test]
fn conversions_preserve_sum_across_types() {
    launch(3, |world| {
        let expect: u64 = (0..12).map(|i| i * 7).sum();
        let a = filled(&world).into_atomic();
        assert_eq!(world.block_on(a.sum()), expect);
        let l = a.into_local_lock();
        assert_eq!(world.block_on(l.sum()), expect);
        let r = l.into_read_only();
        assert_eq!(world.block_on(r.sum()), expect);
        world.barrier();
    });
}
