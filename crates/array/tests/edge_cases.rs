//! Edge cases across the array layer: tiny arrays, more PEs than
//! elements, sub-array extremes, empty batches, conversion uniqueness.

use lamellar_array::iter::DistIterExt;
use lamellar_array::prelude::*;
use lamellar_core::world::launch;

#[test]
fn array_smaller_than_world() {
    // 2 elements over 4 PEs: two ranks own data, two own nothing.
    launch(4, |world| {
        let arr = AtomicArray::<u64>::new(&world, 2, Distribution::Block);
        world.barrier();
        if world.my_pe() == 0 {
            world.block_on(arr.batch_store(vec![0, 1], vec![7u64, 8]));
            assert_eq!(world.block_on(arr.batch_load(vec![0, 1])), vec![7, 8]);
        }
        world.wait_all();
        world.barrier();
        assert_eq!(world.block_on(arr.sum()), 15);
        // Local iteration on the empty ranks yields nothing.
        let locally = arr.num_elems_local();
        if world.my_pe() >= 2 {
            assert_eq!(locally, 0);
        }
        world.barrier();
    });
}

#[test]
fn single_element_array() {
    launch(3, |world| {
        let arr = AtomicArray::<u64>::new(&world, 1, Distribution::Cyclic);
        world.barrier();
        world.block_on(arr.add(0, 1));
        world.wait_all();
        world.barrier();
        assert_eq!(world.block_on(arr.load(0)), 3);
        world.barrier();
    });
}

#[test]
fn empty_batch_is_a_noop() {
    launch(2, |world| {
        let arr = AtomicArray::<u64>::new(&world, 8, Distribution::Block);
        world.barrier();
        world.block_on(arr.batch_add(vec![], 1u64));
        let out = world.block_on(arr.batch_load(vec![]));
        assert!(out.is_empty());
        world.wait_all();
        world.barrier();
        assert_eq!(world.block_on(arr.sum()), 0);
        world.barrier();
    });
}

#[test]
fn sub_array_of_sub_array() {
    launch(2, |world| {
        let arr = AtomicArray::<u64>::new(&world, 20, Distribution::Block);
        world.barrier();
        let outer = arr.sub_array(4..16); // global 4..16
        let inner = outer.sub_array(2..8); // global 6..12
        assert_eq!(inner.len(), 6);
        if world.my_pe() == 0 {
            world.block_on(inner.store(0, 42)); // global 6
            assert_eq!(world.block_on(arr.load(6)), 42);
            world.block_on(inner.store(5, 43)); // global 11 (on PE1)
            assert_eq!(world.block_on(arr.load(11)), 43);
        }
        world.wait_all();
        world.barrier();
    });
}

#[test]
fn empty_and_full_sub_arrays() {
    launch(2, |world| {
        let arr = AtomicArray::<u64>::new(&world, 10, Distribution::Block);
        world.barrier();
        let empty = arr.sub_array(5..5);
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
        let full = arr.sub_array(0..10);
        assert_eq!(full.len(), 10);
        world.barrier();
    });
}

#[test]
#[should_panic(expected = "out of bounds")]
fn out_of_bounds_single_op_panics() {
    let world = lamellar_core::world::LamellarWorldBuilder::new().build();
    let arr = AtomicArray::<u64>::new(&world, 4, Distribution::Block);
    drop(arr.load(4)); // index == len; panics before a future exists
}

#[test]
fn conversion_waits_for_extra_handles() {
    // A clone held elsewhere delays conversion until dropped — the paper's
    // "only succeeds when there is precisely one reference on each PE".
    launch(2, |world| {
        let arr = AtomicArray::<u64>::new(&world, 8, Distribution::Block);
        world.barrier();
        if world.my_pe() == 0 {
            let extra = arr.clone();
            // Drop the extra handle from another thread after a delay; the
            // conversion below must block until then.
            let t = std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(100));
                drop(extra);
            });
            let started = std::time::Instant::now();
            let ro = arr.into_read_only();
            assert!(
                started.elapsed() >= std::time::Duration::from_millis(80),
                "conversion should have waited for the extra handle"
            );
            t.join().unwrap();
            drop(ro);
        } else {
            let _ro = arr.into_read_only();
        }
        world.barrier();
    });
}

#[test]
fn dist_iter_on_empty_view() {
    launch(2, |world| {
        let arr = AtomicArray::<u64>::new(&world, 10, Distribution::Block);
        world.barrier();
        let empty = arr.sub_array(3..3);
        let n = world.block_on(empty.dist_iter().count_local());
        assert_eq!(n, 0);
        world.barrier();
    });
}

#[test]
fn u8_and_i64_element_types() {
    launch(2, |world| {
        let bytes = AtomicArray::<u8>::new(&world, 6, Distribution::Cyclic);
        let ints = AtomicArray::<i64>::new(&world, 6, Distribution::Block);
        world.barrier();
        if world.my_pe() == 0 {
            world.block_on(bytes.batch_add((0..6).collect(), 20u8));
            world.block_on(bytes.batch_add((0..6).collect(), 24u8));
            assert_eq!(world.block_on(bytes.load(3)), 44);
            world.block_on(ints.store(0, -5));
            world.block_on(ints.sub(0, 10));
            assert_eq!(world.block_on(ints.load(0)), -15);
        }
        world.wait_all();
        world.barrier();
    });
}

#[test]
fn readonly_get_direct_spans_blocks() {
    launch(3, |world| {
        let arr = UnsafeArray::<u32>::new(&world, 30, Distribution::Block);
        world.barrier();
        if world.my_pe() == 0 {
            // SAFETY: sole writer before conversion.
            unsafe { arr.put_unchecked(0, &(0..30).collect::<Vec<u32>>()) };
        }
        world.barrier();
        let ro = arr.into_read_only();
        let mut out = vec![0u32; 17];
        ro.get_direct(7, &mut out);
        assert_eq!(out, (7..24).collect::<Vec<u32>>());
        world.barrier();
    });
}
