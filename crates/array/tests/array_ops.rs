//! Integration tests: array construction, element/batch ops, conversions.

use lamellar_array::prelude::*;
use lamellar_core::world::launch;

#[test]
fn atomic_array_listing2_histogram_shape() {
    // Listing 2 of the paper, scaled down: batch_add random indices, then
    // sum-reduce to verify no updates were lost.
    const T_LEN: usize = 1_000;
    const L_UPDATES: usize = 20_000;
    let results = launch(4, move |world| {
        let table = AtomicArray::<usize>::new(&world, T_LEN, Distribution::Block);
        // Deterministic per-PE "random" indices.
        let rnd_i: Vec<usize> =
            (0..L_UPDATES).map(|i| (i * 2654435761 + world.my_pe() * 97) % T_LEN).collect();
        world.barrier();
        world.block_on(table.batch_add(rnd_i, 1));
        world.wait_all();
        world.barrier();
        let sum = world.block_on(table.sum());
        assert_eq!(sum, L_UPDATES * world.num_pes());
        world.barrier();
        sum
    });
    assert!(results.iter().all(|&s| s == L_UPDATES * 4));
}

#[test]
fn single_element_ops_route_to_owner() {
    launch(3, |world| {
        let arr = AtomicArray::<u64>::new(&world, 30, Distribution::Block);
        world.barrier();
        if world.my_pe() == 0 {
            // Touch an element on every PE's block (block size 10).
            for i in [0usize, 5, 10, 15, 20, 29] {
                world.block_on(arr.add(i, i as u64 + 1));
            }
            assert_eq!(world.block_on(arr.fetch_add(5, 100)), 6);
            assert_eq!(world.block_on(arr.load(5)), 106);
            assert_eq!(world.block_on(arr.swap(29, 7)), 30);
            world.block_on(arr.store(20, 555));
            assert_eq!(world.block_on(arr.load(20)), 555);
        }
        world.wait_all();
        world.barrier();
    });
}

#[test]
fn arith_and_bit_ops_match_scalar_semantics() {
    launch(2, |world| {
        let arr = AtomicArray::<u64>::new(&world, 8, Distribution::Cyclic);
        world.barrier();
        if world.my_pe() == 0 {
            world.block_on(arr.store(3, 100));
            world.block_on(arr.sub(3, 30));
            assert_eq!(world.block_on(arr.load(3)), 70);
            world.block_on(arr.mul(3, 2));
            assert_eq!(world.block_on(arr.load(3)), 140);
            world.block_on(arr.div(3, 7));
            assert_eq!(world.block_on(arr.load(3)), 20);
            world.block_on(arr.rem(3, 6));
            assert_eq!(world.block_on(arr.load(3)), 2);
            // Bit ops, including the paper's example:
            // batch_bit_or([0, 5, 6], [127, 0, 64]).
            world.block_on(arr.batch_store(vec![0, 5, 6], vec![0u64, 105, 0]));
            world.block_on(arr.batch_bit_or(vec![0, 5, 6], vec![127u64, 0, 64]));
            assert_eq!(world.block_on(arr.batch_load(vec![0, 5, 6])), vec![127, 105, 64]);
            world.block_on(arr.bit_and(0, 0b1010));
            assert_eq!(world.block_on(arr.load(0)), 0b1010);
            world.block_on(arr.bit_xor(0, 0b0110));
            assert_eq!(world.block_on(arr.load(0)), 0b1100);
            world.block_on(arr.shl(0, 2));
            assert_eq!(world.block_on(arr.load(0)), 0b110000);
            world.block_on(arr.shr(0, 4));
            assert_eq!(world.block_on(arr.load(0)), 0b11);
        }
        world.wait_all();
        world.barrier();
    });
}

#[test]
fn batch_forms_many_one_and_one_many_and_many_many() {
    launch(2, |world| {
        let arr = AtomicArray::<u64>::new(&world, 16, Distribution::Block);
        world.barrier();
        if world.my_pe() == 0 {
            // Many indices - one value (paper: batch_store([20, 2], 10)).
            world.block_on(arr.batch_store(vec![12, 2], 10u64));
            assert_eq!(world.block_on(arr.batch_load(vec![2, 12])), vec![10, 10]);
            // One index - many values (paper: batch_mul(20, [2, 10]):
            // multiply by 2 then by 10).
            world.block_on(arr.batch_mul(vec![12], vec![2u64, 10]));
            assert_eq!(world.block_on(arr.load(12)), 200);
            // Many-many, with fetch: previous values in input order.
            let prev = world.block_on(arr.batch_fetch_add(vec![2, 12, 2], vec![1u64, 2, 3]));
            assert_eq!(prev, vec![10, 200, 11]);
        }
        world.wait_all();
        world.barrier();
    });
}

#[test]
fn batch_ops_from_all_pes_are_atomic() {
    // All PEs hammer the same few elements; total must be exact.
    launch(4, |world| {
        let arr = AtomicArray::<usize>::new(&world, 4, Distribution::Cyclic);
        world.barrier();
        let indices: Vec<usize> = (0..4000).map(|i| i % 4).collect();
        world.block_on(arr.batch_add(indices, 1));
        world.wait_all();
        world.barrier();
        let sum = world.block_on(arr.sum());
        assert_eq!(sum, 4000 * world.num_pes());
        world.barrier();
    });
}

#[test]
fn generic_atomic_array_is_also_exact() {
    // Force the 1-byte-lock (GenericAtomicArray) path on a native type.
    launch(2, |world| {
        let arr = AtomicArray::<usize>::new_generic(&world, 8, Distribution::Block);
        assert!(!arr.is_native());
        world.barrier();
        let indices: Vec<usize> = (0..2000).map(|i| i % 8).collect();
        world.block_on(arr.batch_add(indices, 1));
        world.wait_all();
        world.barrier();
        assert_eq!(world.block_on(arr.sum()), 2000 * 2);
        world.barrier();
    });
}

#[test]
fn f64_arrays_use_generic_path() {
    launch(2, |world| {
        let arr = AtomicArray::<f64>::new(&world, 4, Distribution::Block);
        assert!(!arr.is_native(), "f64 has no native atomics");
        world.barrier();
        world.block_on(arr.batch_add(vec![world.my_pe()], 1.5f64));
        world.wait_all();
        world.barrier();
        let sum = world.block_on(arr.sum());
        assert!((sum - 3.0).abs() < 1e-9);
        world.barrier();
    });
}

#[test]
fn compare_exchange_single_and_batch() {
    launch(2, |world| {
        let arr = AtomicArray::<u64>::new(&world, 10, Distribution::Block);
        world.barrier();
        if world.my_pe() == 0 {
            assert_eq!(world.block_on(arr.compare_exchange(7, 0, 42)), Ok(0));
            assert_eq!(world.block_on(arr.compare_exchange(7, 0, 43)), Err(42));
            // Batch: darts at slots 1,7,9 expecting empty (0).
            let res = world.block_on(arr.batch_compare_exchange(
                vec![1, 7, 9],
                0u64,
                vec![11u64, 12, 13],
            ));
            assert_eq!(res, vec![Ok(0), Err(42), Ok(0)]);
            assert_eq!(world.block_on(arr.batch_load(vec![1, 7, 9])), vec![11, 42, 13]);
        }
        world.wait_all();
        world.barrier();
    });
}

#[test]
fn local_lock_array_ops_and_guards() {
    launch(2, |world| {
        let arr = LocalLockArray::<u64>::new(&world, 8, Distribution::Block);
        world.barrier();
        // Fill my local block through the write guard.
        {
            let mut guard = arr.write_local_data();
            for (i, v) in guard.iter_mut().enumerate() {
                *v = (world.my_pe() * 100 + i) as u64;
            }
        }
        world.barrier();
        // Remote reads through ops see the writes.
        let other = 1 - world.my_pe();
        let remote_first = world.block_on(arr.load(other * 4));
        assert_eq!(remote_first, other as u64 * 100);
        // Read guard sees my own data.
        let guard = arr.read_local_data();
        assert_eq!(guard[1], world.my_pe() as u64 * 100 + 1);
        drop(guard);
        world.wait_all();
        world.barrier();
    });
}

#[test]
fn unsafe_array_direct_rdma_and_conversion_chain() {
    launch(2, |world| {
        let arr = UnsafeArray::<u32>::new(&world, 12, Distribution::Block);
        world.barrier();
        if world.my_pe() == 0 {
            // SAFETY: PE1 does not touch the array until the barrier.
            unsafe { arr.put_unchecked(0, &(0..12).map(|i| i * 3).collect::<Vec<_>>()) };
        }
        world.barrier();
        // Everyone reads it back directly.
        let mut buf = vec![0u32; 12];
        // SAFETY: writes finished before the barrier.
        unsafe { arr.get_unchecked(0, &mut buf) };
        assert_eq!(buf, (0..12).map(|i| i * 3).collect::<Vec<_>>());
        world.barrier();
        // Convert: Unsafe -> ReadOnly -> Atomic -> LocalLock -> Unsafe.
        let ro = arr.into_read_only();
        let mut buf2 = vec![0u32; 12];
        ro.get_direct(0, &mut buf2);
        assert_eq!(buf2, buf);
        let atomic = ro.into_atomic();
        world.block_on(atomic.add(0, 1));
        world.wait_all();
        world.barrier();
        let ll = atomic.into_local_lock();
        let expected0 = world.block_on(ll.load(0));
        assert_eq!(expected0, 2); // both PEs added 1
        world.barrier();
        let us = ll.into_unsafe();
        assert_eq!(us.len(), 12);
        world.barrier();
    });
}

#[test]
fn sub_arrays_share_storage_with_offset_indexing() {
    launch(2, |world| {
        let arr = AtomicArray::<u64>::new(&world, 20, Distribution::Block);
        world.barrier();
        let sub = arr.sub_array(5..15);
        assert_eq!(sub.len(), 10);
        if world.my_pe() == 0 {
            world.block_on(sub.store(0, 99)); // parent index 5
            assert_eq!(world.block_on(arr.load(5)), 99);
            world.block_on(arr.store(14, 44));
            assert_eq!(world.block_on(sub.load(9)), 44);
        }
        world.wait_all();
        world.barrier();
        // Reductions over the sub-view only see its elements.
        if world.my_pe() == 0 {
            let total: u64 = world.block_on(sub.sum());
            assert_eq!(total, 99 + 44);
        }
        world.barrier();
    });
}

#[test]
fn array_rdma_like_put_get_span_pes() {
    launch(3, |world| {
        let arr = AtomicArray::<u64>::new(&world, 30, Distribution::Block);
        world.barrier();
        if world.my_pe() == 0 {
            // Write a range spanning all three PEs' blocks (block size 10).
            let vals: Vec<u64> = (0..25).map(|i| 1000 + i).collect();
            world.block_on(arr.put(3, vals.clone()));
            let back = world.block_on(arr.get(3, 25));
            assert_eq!(back, vals);
        }
        world.wait_all();
        world.barrier();
    });
}

#[test]
fn cyclic_distribution_ops_are_correct() {
    launch(3, |world| {
        let arr = AtomicArray::<usize>::new(&world, 30, Distribution::Cyclic);
        world.barrier();
        if world.my_pe() == 0 {
            // store i at index i for all i; each lands on rank i % 3.
            let idxs: Vec<usize> = (0..30).collect();
            let vals: Vec<usize> = (0..30).collect();
            world.block_on(arr.batch_store(idxs.clone(), vals));
            assert_eq!(world.block_on(arr.batch_load(idxs)), (0..30).collect::<Vec<_>>());
        }
        world.wait_all();
        world.barrier();
        // Each PE's local data: elements ≡ rank (mod 3).
        let n_local = arr.num_elems_local();
        assert_eq!(n_local, 10);
        world.barrier();
    });
}

#[test]
fn reductions_all_ops() {
    launch(2, |world| {
        let arr = AtomicArray::<u64>::new(&world, 6, Distribution::Block);
        world.barrier();
        if world.my_pe() == 0 {
            world.block_on(arr.batch_store((0..6).collect(), vec![4u64, 2, 9, 1, 7, 5]));
        }
        world.wait_all();
        world.barrier();
        assert_eq!(world.block_on(arr.sum()), 28);
        assert_eq!(world.block_on(arr.min()), Some(1));
        assert_eq!(world.block_on(arr.max()), Some(9));
        let prod = world.block_on(arr.prod());
        assert_eq!(prod, 4 * 2 * 9 * 7 * 5);
        world.barrier();
    });
}

#[test]
fn readonly_batch_load_index_gather_shape() {
    // The IndexGather core: target = table.batch_load(rnd_idxs).
    launch(2, |world| {
        let arr = UnsafeArray::<u64>::new(&world, 64, Distribution::Block);
        world.barrier();
        if world.my_pe() == 0 {
            // SAFETY: only writer, before the barrier.
            unsafe {
                arr.put_unchecked(0, &(0..64).map(|i| i * i).collect::<Vec<u64>>());
            }
        }
        world.barrier();
        let table = arr.into_read_only();
        let rnd: Vec<usize> = (0..500).map(|i| (i * 31) % 64).collect();
        let target = world.block_on(table.batch_load(rnd.clone()));
        for (i, &idx) in rnd.iter().enumerate() {
            assert_eq!(target[i], (idx * idx) as u64);
        }
        world.wait_all();
        world.barrier();
    });
}
