//! Property tests: batch operations agree with a sequential oracle, and
//! layouts/batches behave identically across distributions and array types.

use lamellar_array::prelude::*;
use lamellar_core::world::launch;
use proptest::prelude::*;

/// Apply a random op sequence through batch ops and through a plain Vec;
/// the final array contents must match.
fn run_oracle(dist: Distribution, len: usize, ops: Vec<(usize, u64)>, use_local_lock: bool) {
    let ops2 = ops.clone();
    let outcome = launch(2, move |world| {
        let idxs: Vec<usize> = ops2.iter().map(|&(i, _)| i % len).collect();
        let vals: Vec<u64> = ops2.iter().map(|&(_, v)| v % 1000).collect();

        if use_local_lock {
            let arr = LocalLockArray::<u64>::new(&world, len, dist);
            world.barrier();
            if world.my_pe() == 0 {
                world.block_on(arr.batch_add(idxs.clone(), vals.clone()));
            }
            world.wait_all();
            world.barrier();
            let out = world.block_on(arr.get(0, len));
            world.barrier();
            out
        } else {
            let arr = AtomicArray::<u64>::new(&world, len, dist);
            world.barrier();
            if world.my_pe() == 0 {
                world.block_on(arr.batch_add(idxs.clone(), vals.clone()));
            }
            world.wait_all();
            world.barrier();
            let out = world.block_on(arr.get(0, len));
            world.barrier();
            out
        }
    });
    // Sequential oracle.
    let mut oracle = vec![0u64; len];
    for &(i, v) in &ops {
        oracle[i % len] += v % 1000;
    }
    assert_eq!(outcome[0], oracle);
    assert_eq!(outcome[1], oracle);
}

proptest! {
    // World setup is expensive (threads per case); keep case counts low
    // but inputs rich.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn batch_add_matches_oracle_block(
        len in 1usize..40,
        ops in prop::collection::vec((0usize..1000, 0u64..10_000), 1..100),
    ) {
        run_oracle(Distribution::Block, len, ops, false);
    }

    #[test]
    fn batch_add_matches_oracle_cyclic(
        len in 1usize..40,
        ops in prop::collection::vec((0usize..1000, 0u64..10_000), 1..100),
    ) {
        run_oracle(Distribution::Cyclic, len, ops, false);
    }

    #[test]
    fn batch_add_matches_oracle_local_lock(
        len in 1usize..40,
        ops in prop::collection::vec((0usize..1000, 0u64..10_000), 1..60),
    ) {
        run_oracle(Distribution::Block, len, ops, true);
    }

    #[test]
    fn batch_fetch_results_match_loads(
        len in 1usize..30,
        idxs in prop::collection::vec(0usize..1000, 1..50),
    ) {
        let outcome = launch(2, move |world| {
            let arr = AtomicArray::<u64>::new(&world, len, Distribution::Block);
            world.barrier();
            let mut ok = true;
            if world.my_pe() == 0 {
                let idxs: Vec<usize> = idxs.iter().map(|&i| i % len).collect();
                // fetch_add returns the running per-slot prefix counts.
                let prev = world.block_on(arr.batch_fetch_add(idxs.clone(), 1u64));
                let mut counts = vec![0u64; len];
                for (k, &i) in idxs.iter().enumerate() {
                    ok &= prev[k] == counts[i];
                    counts[i] += 1;
                }
                let finals = world.block_on(arr.batch_load((0..len).collect()));
                ok &= finals == counts;
            }
            world.wait_all();
            world.barrier();
            ok
        });
        prop_assert!(outcome.into_iter().all(|b| b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Small-batch sub-batching: any batch limit produces the same result.
    #[test]
    fn batch_limit_is_semantically_invisible(limit in 1usize..20) {
        let outcome = launch(2, move |world| {
            let mut arr = AtomicArray::<u64>::new(&world, 10, Distribution::Block);
            arr.set_batch_limit(limit);
            world.barrier();
            let idxs: Vec<usize> = (0..50).map(|i| i % 10).collect();
            world.block_on(arr.batch_add(idxs, 1u64));
            world.wait_all();
            world.barrier();
            let sum = world.block_on(arr.sum());
            world.barrier();
            sum
        });
        prop_assert_eq!(outcome, vec![100, 100]);
    }
}
