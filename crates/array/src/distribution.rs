//! Block and Cyclic data layouts (paper Sec. III-F: "Block or Cyclic data
//! layouts") and the 0-based global↔(rank, local) index math.

use lamellar_codec::impl_codec_enum;

/// How global indices map onto team ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Contiguous chunks of `ceil(len / num_pes)` elements per rank.
    Block,
    /// Element `i` lives on rank `i % num_pes`.
    Cyclic,
}

impl_codec_enum!(Distribution { Block, Cyclic });

/// The index-mapping core shared by every array type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Global element count.
    pub glen: usize,
    /// Number of team ranks the array spans.
    pub num_ranks: usize,
    /// The distribution scheme.
    pub dist: Distribution,
}

impl Layout {
    /// Build a layout; arrays of zero length are allowed (all maps empty).
    pub fn new(glen: usize, num_ranks: usize, dist: Distribution) -> Self {
        assert!(num_ranks > 0, "layout needs at least one rank");
        Layout { glen, num_ranks, dist }
    }

    /// Elements per rank in the Block scheme (the chunk size).
    pub fn block_size(&self) -> usize {
        self.glen.div_ceil(self.num_ranks).max(1)
    }

    /// The team rank owning global index `i`.
    pub fn rank_of(&self, i: usize) -> usize {
        debug_assert!(i < self.glen, "index {i} out of bounds (len {})", self.glen);
        match self.dist {
            Distribution::Block => (i / self.block_size()).min(self.num_ranks - 1),
            Distribution::Cyclic => i % self.num_ranks,
        }
    }

    /// The local offset of global index `i` within its owner's block.
    pub fn local_of(&self, i: usize) -> usize {
        match self.dist {
            Distribution::Block => i - self.rank_of(i) * self.block_size(),
            Distribution::Cyclic => i / self.num_ranks,
        }
    }

    /// Owner and local offset in one call.
    pub fn locate(&self, i: usize) -> (usize, usize) {
        (self.rank_of(i), self.local_of(i))
    }

    /// The global index of `(rank, local)`.
    pub fn global_of(&self, rank: usize, local: usize) -> usize {
        match self.dist {
            Distribution::Block => rank * self.block_size() + local,
            Distribution::Cyclic => local * self.num_ranks + rank,
        }
    }

    /// Number of elements stored on `rank`.
    pub fn local_len(&self, rank: usize) -> usize {
        debug_assert!(rank < self.num_ranks);
        match self.dist {
            Distribution::Block => {
                let start = rank * self.block_size();
                self.glen.saturating_sub(start).min(self.block_size())
            }
            // Full rounds, plus one more element for ranks inside the
            // final partial round.
            Distribution::Cyclic => (self.glen + self.num_ranks - 1 - rank) / self.num_ranks,
        }
    }

    /// The largest local block over all ranks — what the backing
    /// SharedMemoryRegion allocates per PE (regions are same-size on every
    /// PE).
    pub fn max_local_len(&self) -> usize {
        (0..self.num_ranks).map(|r| self.local_len(r)).max().unwrap_or(0)
    }
}

impl lamellar_codec::Codec for Layout {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.glen.encode(buf);
        self.num_ranks.encode(buf);
        self.dist.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        8 + 8 + self.dist.encoded_len()
    }
    fn decode(r: &mut lamellar_codec::Reader<'_>) -> lamellar_codec::Result<Self> {
        Ok(Layout {
            glen: usize::decode(r)?,
            num_ranks: usize::decode(r)?,
            dist: Distribution::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bijection(layout: Layout) {
        let mut seen = vec![false; layout.glen];
        for rank in 0..layout.num_ranks {
            for local in 0..layout.local_len(rank) {
                let g = layout.global_of(rank, local);
                assert!(g < layout.glen, "global {g} out of bounds");
                assert!(!seen[g], "global {g} mapped twice");
                seen[g] = true;
                assert_eq!(layout.locate(g), (rank, local), "roundtrip for {g}");
            }
        }
        assert!(seen.into_iter().all(|s| s), "every global index covered");
    }

    #[test]
    fn block_bijection_various_shapes() {
        for (glen, n) in [(10, 3), (9, 3), (1, 4), (16, 4), (17, 4), (100, 7), (0, 2)] {
            check_bijection(Layout::new(glen, n, Distribution::Block));
        }
    }

    #[test]
    fn cyclic_bijection_various_shapes() {
        for (glen, n) in [(10, 3), (9, 3), (1, 4), (16, 4), (17, 4), (100, 7), (0, 2)] {
            check_bijection(Layout::new(glen, n, Distribution::Cyclic));
        }
    }

    #[test]
    fn block_is_contiguous() {
        let l = Layout::new(10, 3, Distribution::Block);
        // ceil(10/3) = 4: ranks own [0..4), [4..8), [8..10).
        assert_eq!(l.rank_of(0), 0);
        assert_eq!(l.rank_of(3), 0);
        assert_eq!(l.rank_of(4), 1);
        assert_eq!(l.rank_of(9), 2);
        assert_eq!(l.local_len(0), 4);
        assert_eq!(l.local_len(1), 4);
        assert_eq!(l.local_len(2), 2);
    }

    #[test]
    fn cyclic_strides_by_rank_count() {
        let l = Layout::new(10, 3, Distribution::Cyclic);
        assert_eq!(l.rank_of(0), 0);
        assert_eq!(l.rank_of(1), 1);
        assert_eq!(l.rank_of(2), 2);
        assert_eq!(l.rank_of(3), 0);
        assert_eq!(l.local_of(3), 1);
        assert_eq!(l.local_len(0), 4); // 0,3,6,9
        assert_eq!(l.local_len(1), 3); // 1,4,7
        assert_eq!(l.local_len(2), 3); // 2,5,8
    }

    #[test]
    fn max_local_len_covers_all_ranks() {
        for dist in [Distribution::Block, Distribution::Cyclic] {
            let l = Layout::new(17, 4, dist);
            let m = l.max_local_len();
            for r in 0..4 {
                assert!(l.local_len(r) <= m);
            }
        }
    }

    #[test]
    fn layout_codec_roundtrip() {
        use lamellar_codec::Codec;
        let l = Layout::new(123, 7, Distribution::Cyclic);
        assert_eq!(Layout::from_bytes(&l.to_bytes()).unwrap(), l);
    }
}
