//! AtomicArray: "Access to each element is an atomic (either intrinsically
//! or enforced via the runtime)" (paper Sec. III-F.1), with the two
//! sub-types realized as execution paths:
//!
//! * **NativeAtomicArray** — the element type has a matching
//!   `std::sync::atomic` type ([`crate::elem::ArrayElem::NATIVE_ATOMIC`]);
//!   every access is a real atomic instruction (CAS loop for arbitrary
//!   read-modify-write operators).
//! * **GenericAtomicArray** — "Elements are protected by a 1-byte Mutex": a
//!   parallel byte region holds one spinlock per element.
//!
//! [`AtomicArray::new`] picks the path from the element type;
//! [`AtomicArray::new_generic`] forces the 1-byte-lock path (used by the
//! `ablation_atomic_kind` bench to measure the difference).

use crate::distribution::Distribution;
use crate::elem::ArrayElem;
use crate::inner::{Access, RawArray};
use crate::ops::batch;
use crate::unsafe_array::UnsafeArray;
use crate::IntoTeam;
use lamellar_core::team::LamellarTeam;

/// The element-wise-atomic distributed array (Listing 2's
/// `AtomicArray::<usize>::new(&world, T_LEN, Distribution::Block)`).
pub struct AtomicArray<T: ArrayElem> {
    pub(crate) raw: RawArray<T>,
    pub(crate) team: LamellarTeam,
    pub(crate) batch_limit: usize,
}

crate::ops::impl_array_common!(AtomicArray);
crate::ops::impl_element_ops!(AtomicArray);

impl<T: ArrayElem> AtomicArray<T> {
    /// Collectively construct a zero-initialized atomic array of `len`
    /// elements over `team`.
    pub fn new(team: &impl IntoTeam, len: usize, dist: Distribution) -> Self {
        let team = team.to_team();
        let raw = RawArray::new(&team, len, dist, Access::Atomic, false);
        AtomicArray { raw, team, batch_limit: batch::DEFAULT_BATCH_LIMIT }
    }

    /// Construct with the generic (1-byte-lock) path even for natively
    /// atomic element types — the GenericAtomicArray sub-type, exposed for
    /// ablation.
    pub fn new_generic(team: &impl IntoTeam, len: usize, dist: Distribution) -> Self {
        let team = team.to_team();
        let raw = RawArray::new(&team, len, dist, Access::Atomic, true);
        AtomicArray { raw, team, batch_limit: batch::DEFAULT_BATCH_LIMIT }
    }

    pub(crate) fn from_parts(raw: RawArray<T>, team: LamellarTeam, batch_limit: usize) -> Self {
        AtomicArray { raw, team, batch_limit }
    }

    /// Whether this instance runs on native atomics (NativeAtomicArray) or
    /// 1-byte locks (GenericAtomicArray).
    pub fn is_native(&self) -> bool {
        self.raw.atomic_is_native()
    }

    /// Snapshot the calling PE's local block (element-wise atomic loads).
    pub fn local_snapshot(&self) -> Vec<T> {
        let n = self.raw.layout.local_len(self.raw.my_rank());
        crate::ops::apply::apply_range_get(&self.raw, 0, n)
    }

    /// Collective conversion back to an [`UnsafeArray`].
    pub fn into_unsafe(self) -> UnsafeArray<T> {
        let AtomicArray { mut raw, team, batch_limit } = self;
        team.barrier();
        raw.wait_unique(&team);
        raw.access = Access::Unsafe;
        team.barrier();
        UnsafeArray::from_parts(raw, team, batch_limit)
    }

    /// Collective conversion to a [`crate::read_only::ReadOnlyArray`].
    pub fn into_read_only(self) -> crate::read_only::ReadOnlyArray<T> {
        self.into_unsafe().into_read_only()
    }

    /// Collective conversion to a [`crate::local_lock::LocalLockArray`].
    pub fn into_local_lock(self) -> crate::local_lock::LocalLockArray<T> {
        self.into_unsafe().into_local_lock()
    }
}
