//! Array iteration (paper Sec. III-F.4): `DistributedIterator`,
//! `LocalIterator`, and `OneSidedIterator`.
//!
//! Design note: the adapter chain here is *index-driven* — each element is
//! evaluated independently as `(index, value) → Option<item>`, which is
//! what lets `for_each`/`collect` run the chain in parallel chunks on the
//! PE's thread pool (and is how the real runtime schedules distributed
//! iteration). Consequently `skip`, `step_by`, and `take` select by
//! *element position in the array*, not by position in the post-filter
//! stream.
//!
//! * [`DistIter`] — collective; every PE processes its own local block in
//!   parallel; `enumerate` yields **global** indices; `collect_array`
//!   gathers into a fresh distributed array (the Randperm "Collect" step).
//! * [`LocalIter`] — one-sided; the calling PE processes only its local
//!   block; `enumerate` yields **local** indices; supports `zip`.
//! * [`OneSidedIter`] — serial over the *whole* array on the calling PE;
//!   the runtime fetches remote blocks in buffered chunks (`chunks`
//!   controls the buffer).

use crate::distribution::Distribution;
use crate::elem::ArrayElem;
use crate::inner::RawArray;
use crate::ops::apply;
use crate::unsafe_array::UnsafeArray;
use lamellar_core::team::LamellarTeam;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;

/// One stage of an iterator chain: evaluate element `(index, value)` to
/// `Some(item)` (kept) or `None` (filtered out).
pub trait ItemFn<In>: Clone + Send + Sync + 'static {
    /// The produced item type.
    type Out: Send + 'static;
    /// Evaluate one element.
    fn apply(&self, index: usize, v: In) -> Option<Self::Out>;
}

/// The identity stage at the base of every chain.
#[derive(Clone, Copy, Debug, Default)]
pub struct Identity;

impl<T: Send + 'static> ItemFn<T> for Identity {
    type Out = T;
    fn apply(&self, _index: usize, v: T) -> Option<T> {
        Some(v)
    }
}

macro_rules! adapter {
    ($name:ident<$($g:ident),*> { $($field:ident : $fty:ty),* $(,)? }) => {
        /// Iterator chain adapter (see module docs).
        pub struct $name<$($g),*> {
            $(pub(crate) $field: $fty,)*
        }

        impl<$($g: Clone),*> Clone for $name<$($g),*> {
            fn clone(&self) -> Self {
                $name { $($field: self.$field.clone(),)* }
            }
        }
    };
}

adapter!(MapFn<I, F> { inner: I, f: F });
adapter!(FilterFn<I, F> { inner: I, f: F });
adapter!(FilterMapFn<I, F> { inner: I, f: F });
adapter!(EnumerateFn<I> { inner: I });
adapter!(SkipFn<I> { inner: I, n: usize });
adapter!(StepByFn<I> { inner: I, step: usize });
adapter!(TakeFn<I> { inner: I, n: usize });

impl<In, I, F, U> ItemFn<In> for MapFn<I, F>
where
    I: ItemFn<In>,
    F: Fn(I::Out) -> U + Clone + Send + Sync + 'static,
    U: Send + 'static,
{
    type Out = U;
    fn apply(&self, index: usize, v: In) -> Option<U> {
        self.inner.apply(index, v).map(&self.f)
    }
}

impl<In, I, F> ItemFn<In> for FilterFn<I, F>
where
    I: ItemFn<In>,
    F: Fn(&I::Out) -> bool + Clone + Send + Sync + 'static,
{
    type Out = I::Out;
    fn apply(&self, index: usize, v: In) -> Option<I::Out> {
        self.inner.apply(index, v).filter(|x| (self.f)(x))
    }
}

impl<In, I, F, U> ItemFn<In> for FilterMapFn<I, F>
where
    I: ItemFn<In>,
    F: Fn(I::Out) -> Option<U> + Clone + Send + Sync + 'static,
    U: Send + 'static,
{
    type Out = U;
    fn apply(&self, index: usize, v: In) -> Option<U> {
        self.inner.apply(index, v).and_then(&self.f)
    }
}

impl<In, I: ItemFn<In>> ItemFn<In> for EnumerateFn<I> {
    type Out = (usize, I::Out);
    fn apply(&self, index: usize, v: In) -> Option<(usize, I::Out)> {
        self.inner.apply(index, v).map(|x| (index, x))
    }
}

impl<In, I: ItemFn<In>> ItemFn<In> for SkipFn<I> {
    type Out = I::Out;
    fn apply(&self, index: usize, v: In) -> Option<I::Out> {
        (index >= self.n).then(|| self.inner.apply(index, v)).flatten()
    }
}

impl<In, I: ItemFn<In>> ItemFn<In> for StepByFn<I> {
    type Out = I::Out;
    fn apply(&self, index: usize, v: In) -> Option<I::Out> {
        index.is_multiple_of(self.step).then(|| self.inner.apply(index, v)).flatten()
    }
}

impl<In, I: ItemFn<In>> ItemFn<In> for TakeFn<I> {
    type Out = I::Out;
    fn apply(&self, index: usize, v: In) -> Option<I::Out> {
        (index < self.n).then(|| self.inner.apply(index, v)).flatten()
    }
}

/// Zip with a second array of the same layout: evaluates the second
/// array's element at the same local index.
pub struct ZipFn<I, T2: ArrayElem> {
    pub(crate) inner: I,
    pub(crate) other: RawArray<T2>,
}

impl<I: Clone, T2: ArrayElem> Clone for ZipFn<I, T2> {
    fn clone(&self) -> Self {
        ZipFn { inner: self.inner.clone(), other: self.other.clone() }
    }
}

/// Shared adapter-constructor surface for [`DistIter`] and [`LocalIter`].
macro_rules! iter_adapters {
    ($iter:ident) => {
        impl<T: ArrayElem, F: ItemFn<T>> $iter<T, F> {
            /// Transform each item.
            pub fn map<U: Send + 'static>(
                self,
                f: impl Fn(F::Out) -> U + Clone + Send + Sync + 'static,
            ) -> $iter<T, MapFn<F, impl Fn(F::Out) -> U + Clone + Send + Sync + 'static>> {
                $iter { raw: self.raw, team: self.team, f: MapFn { inner: self.f, f } }
            }

            /// Keep items satisfying the predicate.
            pub fn filter(
                self,
                f: impl Fn(&F::Out) -> bool + Clone + Send + Sync + 'static,
            ) -> $iter<T, FilterFn<F, impl Fn(&F::Out) -> bool + Clone + Send + Sync + 'static>>
            {
                $iter { raw: self.raw, team: self.team, f: FilterFn { inner: self.f, f } }
            }

            /// Transform-and-filter in one step.
            pub fn filter_map<U: Send + 'static>(
                self,
                f: impl Fn(F::Out) -> Option<U> + Clone + Send + Sync + 'static,
            ) -> $iter<
                T,
                FilterMapFn<F, impl Fn(F::Out) -> Option<U> + Clone + Send + Sync + 'static>,
            > {
                $iter { raw: self.raw, team: self.team, f: FilterMapFn { inner: self.f, f } }
            }

            /// Pair each item with its element index (global for
            /// `DistIter`, local for `LocalIter`).
            pub fn enumerate(self) -> $iter<T, EnumerateFn<F>> {
                $iter { raw: self.raw, team: self.team, f: EnumerateFn { inner: self.f } }
            }

            /// Select element positions `>= n`.
            pub fn skip(self, n: usize) -> $iter<T, SkipFn<F>> {
                $iter { raw: self.raw, team: self.team, f: SkipFn { inner: self.f, n } }
            }

            /// Select every `step`-th element position.
            pub fn step_by(self, step: usize) -> $iter<T, StepByFn<F>> {
                assert!(step > 0, "step_by(0)");
                $iter { raw: self.raw, team: self.team, f: StepByFn { inner: self.f, step } }
            }

            /// Select element positions `< n`.
            pub fn take(self, n: usize) -> $iter<T, TakeFn<F>> {
                $iter { raw: self.raw, team: self.team, f: TakeFn { inner: self.f, n } }
            }
        }
    };
}

/// Collective parallel iteration over the whole array; each PE handles its
/// local block ("the runtime tries to have PEs only iterate over their own
/// data").
pub struct DistIter<T: ArrayElem, F: ItemFn<T>> {
    pub(crate) raw: RawArray<T>,
    pub(crate) team: LamellarTeam,
    pub(crate) f: F,
}

iter_adapters!(DistIter);

/// How many parallel chunks a PE splits its local block into.
fn chunk_count(team: &LamellarTeam) -> usize {
    (team.rt().pool().workers() * 4).max(1)
}

/// Evaluate the chain over a set of `(local, index)` pairs, in order.
fn eval_pairs<T: ArrayElem, F: ItemFn<T>>(
    raw: &RawArray<T>,
    f: &F,
    pairs: &[(usize, usize)],
) -> Vec<F::Out> {
    let locals: Vec<usize> = pairs.iter().map(|&(l, _)| l).collect();
    // One access-mode-respecting batch read, then pure chain evaluation.
    let values = apply::apply_load(raw, &locals);
    pairs.iter().zip(values).filter_map(|(&(_, idx), v)| f.apply(idx, v)).collect()
}

fn spawn_chunks<T: ArrayElem, F: ItemFn<T>>(
    raw: &RawArray<T>,
    team: &LamellarTeam,
    f: &F,
    pairs: Vec<(usize, usize)>,
) -> Vec<lamellar_executor::JoinHandle<Vec<F::Out>>> {
    let n_chunks = chunk_count(team);
    let chunk_len = pairs.len().div_ceil(n_chunks).max(1);
    let rt = team.rt().clone();
    pairs
        .chunks(chunk_len)
        .map(|chunk| {
            let raw = raw.clone();
            let f = f.clone();
            let chunk = chunk.to_vec();
            rt.spawn(async move { eval_pairs(&raw, &f, &chunk) })
        })
        .collect()
}

impl<T: ArrayElem, F: ItemFn<T>> DistIter<T, F> {
    /// Local `(local, global)` pairs for the calling PE.
    fn my_pairs(&self) -> Vec<(usize, usize)> {
        self.raw.local_view_indices(self.raw.my_rank()).collect()
    }

    /// Run `action` on every produced item, in parallel on the calling
    /// PE's pool. Returns a future; await it to ensure completion
    /// ("users must await this future to ensure the iteration has
    /// completed").
    pub fn for_each(
        self,
        action: impl Fn(F::Out) + Clone + Send + Sync + 'static,
    ) -> Pin<Box<dyn Future<Output = ()> + Send + 'static>> {
        let handles = spawn_chunks(&self.raw, &self.team, &self.f, self.my_pairs());
        let action = Arc::new(action);
        Box::pin(async move {
            for h in handles {
                for item in h.await {
                    action(item);
                }
            }
        })
    }

    /// Collect this PE's produced items (ascending global index).
    pub fn collect_local(self) -> Pin<Box<dyn Future<Output = Vec<F::Out>> + Send + 'static>> {
        let handles = spawn_chunks(&self.raw, &self.team, &self.f, self.my_pairs());
        Box::pin(async move {
            let mut out = Vec::new();
            for h in handles {
                out.extend(h.await);
            }
            out
        })
    }

    /// Collective collect into a fresh distributed [`UnsafeArray`] in
    /// global-index order — the Randperm kernel's final gather ("the
    /// target array iterates to collect darts in the order they appear").
    pub fn collect_array(self, dist: Distribution) -> UnsafeArray<F::Out>
    where
        F::Out: ArrayElem,
    {
        let team = self.team.clone();
        let rt = team.rt().clone();
        let local: Vec<F::Out> = rt.block_on(self.collect_local());
        // Exchange counts to compute each PE's global write offset.
        let counts = team.deposit_all(local.len());
        let my_rank = team.my_rank();
        let start: usize = counts[..my_rank].iter().sum();
        let total: usize = counts.iter().sum();
        let out = UnsafeArray::<F::Out>::new(&team, total, dist);
        // SAFETY: disjoint ranges per PE (prefix offsets), barrier below
        // orders writes before any reads.
        unsafe { out.put_unchecked(start, &local) };
        team.barrier();
        out
    }

    /// Count produced items across *this PE's* portion.
    pub fn count_local(self) -> Pin<Box<dyn Future<Output = usize> + Send + 'static>> {
        let handles = spawn_chunks(&self.raw, &self.team, &self.f, self.my_pairs());
        Box::pin(async move {
            let mut n = 0;
            for h in handles {
                n += h.await.len();
            }
            n
        })
    }
}

/// One-sided parallel iteration over the calling PE's local block
/// ("completely unaware that it exists within a distributed context").
pub struct LocalIter<T: ArrayElem, F: ItemFn<T>> {
    pub(crate) raw: RawArray<T>,
    pub(crate) team: LamellarTeam,
    pub(crate) f: F,
}

iter_adapters!(LocalIter);

impl<T: ArrayElem, F: ItemFn<T>> LocalIter<T, F> {
    /// Local `(local, local)` pairs — indices are local for LocalIter.
    fn my_pairs(&self) -> Vec<(usize, usize)> {
        self.raw
            .local_view_indices(self.raw.my_rank())
            .map(|(local, _global)| (local, local))
            .collect()
    }

    /// Zip with another array's local block (same team and layout).
    pub fn zip<T2: ArrayElem>(self, other: &LocalIter<T2, Identity>) -> LocalIter<T, ZipFn<F, T2>> {
        assert_eq!(self.raw.layout, other.raw.layout, "zip requires identical layouts");
        LocalIter {
            raw: self.raw,
            team: self.team,
            f: ZipFn { inner: self.f, other: other.raw.clone() },
        }
    }

    /// Run `action` on every produced item, in parallel.
    pub fn for_each(
        self,
        action: impl Fn(F::Out) + Clone + Send + Sync + 'static,
    ) -> Pin<Box<dyn Future<Output = ()> + Send + 'static>> {
        let handles = spawn_chunks(&self.raw, &self.team, &self.f, self.my_pairs());
        let action = Arc::new(action);
        Box::pin(async move {
            for h in handles {
                for item in h.await {
                    action(item);
                }
            }
        })
    }

    /// Collect produced items into a `Vec` (ascending local index).
    pub fn collect(self) -> Pin<Box<dyn Future<Output = Vec<F::Out>> + Send + 'static>> {
        let handles = spawn_chunks(&self.raw, &self.team, &self.f, self.my_pairs());
        Box::pin(async move {
            let mut out = Vec::new();
            for h in handles {
                out.extend(h.await);
            }
            out
        })
    }

    /// Serial iteration over the local block in fixed-size chunks
    /// (snapshots).
    pub fn chunks(self, n: usize) -> impl Iterator<Item = Vec<F::Out>> {
        assert!(n > 0, "chunks(0)");
        let pairs = self.my_pairs();
        let raw = self.raw;
        let f = self.f;
        let mut start = 0;
        std::iter::from_fn(move || {
            if start >= pairs.len() {
                return None;
            }
            let end = (start + n).min(pairs.len());
            let out = eval_pairs(&raw, &f, &pairs[start..end]);
            start = end;
            Some(out)
        })
    }
}

impl<In: ArrayElem, I, T2: ArrayElem> ItemFn<In> for ZipFn<I, T2>
where
    I: ItemFn<In>,
{
    type Out = (I::Out, T2);
    fn apply(&self, index: usize, v: In) -> Option<(I::Out, T2)> {
        let a = self.inner.apply(index, v)?;
        let b = apply::apply_load(&self.other, &[index])[0];
        Some((a, b))
    }
}

/// Serial iteration over the entire array on the calling PE, with
/// runtime-managed transfers in buffered chunks (paper: "OneSidedIterator
/// implements chunks, skip, step_by, zip to reduce data movement, but
/// otherwise can be used with any iterator methods supported by the Rust
/// standard library").
pub struct OneSidedIter<T: ArrayElem> {
    raw: RawArray<T>,
    team: LamellarTeam,
    buffer_elems: usize,
    buf: std::vec::IntoIter<T>,
    next_global: usize,
    /// Stride between fetched elements (`step_by`).
    stride: usize,
}

impl<T: ArrayElem> OneSidedIter<T> {
    pub(crate) fn new(raw: RawArray<T>, team: LamellarTeam, buffer_elems: usize) -> Self {
        OneSidedIter {
            raw,
            team,
            buffer_elems: buffer_elems.max(1),
            buf: Vec::new().into_iter(),
            next_global: 0,
            stride: 1,
        }
    }

    /// Set the transfer buffer size (elements per fetch).
    pub fn chunks(mut self, n: usize) -> Self {
        self.buffer_elems = n.max(1);
        self
    }

    /// Skip the first `n` elements *without transferring them* (paper:
    /// OneSidedIterator implements skip "to reduce data movement").
    pub fn skip(mut self, n: usize) -> Self {
        assert!(self.next_global == 0 && self.buf.len() == 0, "skip before iterating");
        self.next_global = n.min(self.raw.len());
        self
    }

    /// Yield every `step`-th element, fetching only those elements.
    pub fn step_by(mut self, step: usize) -> Self {
        assert!(step > 0, "step_by(0)");
        assert!(self.buf.len() == 0, "step_by before iterating");
        self.stride = step;
        self
    }

    /// Convert into a standard boxed iterator (`into_iter()` in the paper).
    /// The paper spells this as an inherent method, hence the trait-shadowing
    /// name; the type is also an [`Iterator`] itself.
    #[allow(clippy::should_implement_trait)]
    pub fn into_iter(self) -> impl Iterator<Item = T> {
        self
    }
}

impl<T: ArrayElem> Iterator for OneSidedIter<T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if let Some(v) = self.buf.next() {
            return Some(v);
        }
        if self.next_global >= self.raw.len() {
            return None;
        }
        let rt = self.team.rt().clone();
        let fetched = if self.stride == 1 {
            let n = self.buffer_elems.min(self.raw.len() - self.next_global);
            let out = rt.block_on(crate::ops::batch::range_get(&self.raw, self.next_global, n));
            self.next_global += n;
            out
        } else {
            // Strided: fetch only the selected elements (buffered).
            let idxs: Vec<usize> = (0..self.buffer_elems)
                .map(|k| self.next_global + k * self.stride)
                .take_while(|&g| g < self.raw.len())
                .collect();
            self.next_global = idxs.last().map(|&g| g + self.stride).unwrap_or(self.raw.len());
            rt.block_on(crate::ops::batch::batch_access(
                &self.raw,
                idxs.len().max(1),
                crate::ops::AccessOp::Load,
                idxs,
                None,
                true,
            ))
        };
        self.buf = fetched.into_iter();
        self.buf.next()
    }
}

/// Constructor extension: `dist_iter`/`local_iter`/`onesided_iter` on the
/// safe array types.
pub trait DistIterExt<T: ArrayElem> {
    /// The distributed (collective, parallel) iterator.
    fn dist_iter(&self) -> DistIter<T, Identity>;
    /// The serial whole-array iterator.
    fn onesided_iter(&self) -> OneSidedIter<T>;
}

/// Constructor extension for the local (one-sided, parallel) iterator.
pub trait LocalIterExt<T: ArrayElem> {
    /// The local-block iterator.
    fn local_iter(&self) -> LocalIter<T, Identity>;
}

macro_rules! impl_iter_ext {
    ($arr:ident) => {
        impl<T: ArrayElem> DistIterExt<T> for crate::$arr<T> {
            fn dist_iter(&self) -> DistIter<T, Identity> {
                DistIter { raw: self.raw.clone(), team: self.team.clone(), f: Identity }
            }
            fn onesided_iter(&self) -> OneSidedIter<T> {
                OneSidedIter::new(self.raw.clone(), self.team.clone(), 1024)
            }
        }
        impl<T: ArrayElem> LocalIterExt<T> for crate::$arr<T> {
            fn local_iter(&self) -> LocalIter<T, Identity> {
                LocalIter { raw: self.raw.clone(), team: self.team.clone(), f: Identity }
            }
        }
    };
}

impl_iter_ext!(AtomicArray);
impl_iter_ext!(LocalLockArray);
impl_iter_ext!(ReadOnlyArray);
