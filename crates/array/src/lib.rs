//! # lamellar-array
//!
//! The LamellarArray layer (paper Sec. III-F): *safe* PGAS distributed
//! arrays built on the runtime's Darcs and SharedMemoryRegions.
//!
//! "While SharedMemoryRegions explicitly require users to calculate a
//! PE-specific offset, LamellarArrays use 0-based indexing, with offsets
//! calculated automatically by the runtime."
//!
//! ## The four array types (Sec. III-F.1)
//!
//! | type | guarantee |
//! |------|-----------|
//! | [`UnsafeArray`] | none — direct RDMA, `unsafe` API, internal use |
//! | [`ReadOnlyArray`] | no writes possible — direct RDMA *get* is safe |
//! | [`AtomicArray`] | element-wise atomicity (native atomics where the type has them, 1-byte lock otherwise) |
//! | [`LocalLockArray`] | whole-PE-block RwLock |
//!
//! Arrays convert between types collectively ([`UnsafeArray::into_atomic`]
//! etc.), succeeding only when each PE holds exactly one reference, so "the
//! underlying data is only ever pointed-to by one array type at any time".
//!
//! ## Element-wise & batch operations (Sec. III-F.3)
//!
//! `array.add(5, 100)` adds 100 to global element 5 on whichever PE owns
//! it; `array.batch_add(indices, 1)` aggregates thousands of such updates
//! into per-destination-PE AMs, sub-batched at a configurable limit (the
//! paper's evaluation used 10,000 ops per buffer). Safe array types "utilize
//! AMs to emulate the behavior of direct RDMA operations, so all access to
//! a remote PE's data is actually managed on that PE".
//!
//! ## Iteration (Sec. III-F.4)
//!
//! [`iter::DistIter`] (collective, parallel, global), [`iter::LocalIter`]
//! (one-sided, parallel, local), and [`iter::OneSidedIter`] (serial, whole
//! array, runtime-managed transfers).

pub mod atomic;
pub mod distribution;
pub mod elem;
pub mod inner;
pub mod iter;
pub mod local_lock;
pub mod ops;
pub mod read_only;
pub mod reduce;
pub mod unsafe_array;

pub use atomic::AtomicArray;
pub use distribution::Distribution;
pub use elem::ArrayElem;
pub use local_lock::LocalLockArray;
pub use read_only::ReadOnlyArray;
pub use unsafe_array::UnsafeArray;

use lamellar_core::team::LamellarTeam;

/// Anything that names a team for collective array construction: a
/// [`lamellar_core::world::LamellarWorld`] (whole-world team) or a
/// [`LamellarTeam`].
pub trait IntoTeam {
    /// The team the array will be distributed over.
    fn to_team(&self) -> LamellarTeam;
}

impl IntoTeam for lamellar_core::world::LamellarWorld {
    fn to_team(&self) -> LamellarTeam {
        self.team()
    }
}

impl IntoTeam for LamellarTeam {
    fn to_team(&self) -> LamellarTeam {
        self.clone()
    }
}

/// Re-exports mirroring `lamellar::array::prelude` from the paper's
/// Listing 2.
pub mod prelude {
    pub use crate::atomic::AtomicArray;
    pub use crate::distribution::Distribution;
    pub use crate::elem::ArrayElem;
    pub use crate::iter::{DistIterExt, LocalIterExt};
    pub use crate::local_lock::LocalLockArray;
    pub use crate::ops::BatchValues;
    pub use crate::read_only::ReadOnlyArray;
    pub use crate::reduce::ReduceOp;
    pub use crate::unsafe_array::UnsafeArray;
    pub use crate::IntoTeam;
}
