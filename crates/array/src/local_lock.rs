//! LocalLockArray: "The entire data region on each PE is protected by a
//! single locally constructed RwLock." (paper Sec. III-F.1)
//!
//! Element-wise and batch operations acquire the destination PE's write
//! lock once per batch; the local-data guards below give safe direct
//! access to the calling PE's block under the same lock.

use crate::distribution::Distribution;
use crate::elem::ArrayElem;
use crate::inner::{Access, RawArray};
use crate::ops::batch;
use crate::unsafe_array::UnsafeArray;
use crate::IntoTeam;
use lamellar_core::team::LamellarTeam;
use parking_lot::{RwLockReadGuard, RwLockWriteGuard};

/// The whole-block-locked distributed array.
pub struct LocalLockArray<T: ArrayElem> {
    pub(crate) raw: RawArray<T>,
    pub(crate) team: LamellarTeam,
    pub(crate) batch_limit: usize,
}

crate::ops::impl_array_common!(LocalLockArray);
crate::ops::impl_element_ops!(LocalLockArray);

/// Shared (read) access to the calling PE's block.
pub struct LocalReadGuard<'a, T: ArrayElem> {
    _guard: RwLockReadGuard<'a, ()>,
    slice: &'a [T],
}

impl<T: ArrayElem> std::ops::Deref for LocalReadGuard<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.slice
    }
}

/// Exclusive (write) access to the calling PE's block.
pub struct LocalWriteGuard<'a, T: ArrayElem> {
    _guard: RwLockWriteGuard<'a, ()>,
    slice: &'a mut [T],
}

impl<T: ArrayElem> std::ops::Deref for LocalWriteGuard<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.slice
    }
}

impl<T: ArrayElem> std::ops::DerefMut for LocalWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.slice
    }
}

impl<T: ArrayElem> LocalLockArray<T> {
    /// Collectively construct a zero-initialized array of `len` elements
    /// over `team`.
    pub fn new(team: &impl IntoTeam, len: usize, dist: Distribution) -> Self {
        let team = team.to_team();
        let raw = RawArray::new(&team, len, dist, Access::LocalLock, false);
        LocalLockArray { raw, team, batch_limit: batch::DEFAULT_BATCH_LIMIT }
    }

    pub(crate) fn from_parts(raw: RawArray<T>, team: LamellarTeam, batch_limit: usize) -> Self {
        LocalLockArray { raw, team, batch_limit }
    }

    /// Lock the calling PE's block for shared reading.
    pub fn read_local_data(&self) -> LocalReadGuard<'_, T> {
        let lock = self.raw.local_lock.as_ref().expect("local lock present");
        let guard = lock.read();
        // SAFETY: the read lock excludes every writer (ops acquire the
        // write lock before mutating this PE's block).
        let full = unsafe { self.raw.region.as_slice() };
        let n = self.raw.layout.local_len(self.raw.my_rank());
        LocalReadGuard { _guard: guard, slice: &full[..n] }
    }

    /// Lock the calling PE's block for exclusive writing.
    pub fn write_local_data(&self) -> LocalWriteGuard<'_, T> {
        let lock = self.raw.local_lock.as_ref().expect("local lock present");
        let guard = lock.write();
        // SAFETY: the write lock excludes every other accessor.
        let full = unsafe { self.raw.region.as_mut_slice() };
        let n = self.raw.layout.local_len(self.raw.my_rank());
        LocalWriteGuard { _guard: guard, slice: &mut full[..n] }
    }

    /// Collective conversion back to an [`UnsafeArray`].
    pub fn into_unsafe(self) -> UnsafeArray<T> {
        let LocalLockArray { mut raw, team, batch_limit } = self;
        team.barrier();
        raw.wait_unique(&team);
        raw.access = Access::Unsafe;
        team.barrier();
        UnsafeArray::from_parts(raw, team, batch_limit)
    }

    /// Collective conversion to an [`crate::atomic::AtomicArray`].
    pub fn into_atomic(self) -> crate::atomic::AtomicArray<T> {
        self.into_unsafe().into_atomic()
    }

    /// Collective conversion to a [`crate::read_only::ReadOnlyArray`].
    pub fn into_read_only(self) -> crate::read_only::ReadOnlyArray<T> {
        self.into_unsafe().into_read_only()
    }
}
