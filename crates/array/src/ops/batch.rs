//! Batch planning, dispatch, and the op-handle futures.
//!
//! "The runtime calculates the correct PEs and offsets for each array
//! index, batching operations by destination PE within a single message.
//! ... the runtime automatically splits batch_add into sub-batches"
//! (Sec. III-F.3 / IV-B.1).

use crate::elem::{ArithElem, ArrayElem, BitElem};
use crate::inner::RawArray;
use crate::ops::am::{AccessBatchAm, ArithBatchAm, BitBatchAm, CasBatchAm, RangeGetAm, RangePutAm};
use crate::ops::{AccessOp, ArithOp, BatchValues, BitOp};
use lamellar_core::am::{AmHandle, LamellarAm, UnitAm};
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Default sub-batch limit — the paper's evaluation "limited aggregations
/// to 10,000 operations per buffer".
pub const DEFAULT_BATCH_LIMIT: usize = 10_000;

type BoxFut<T> = Pin<Box<dyn Future<Output = T> + Send + 'static>>;

macro_rules! handle_type {
    ($(#[$meta:meta])* $name:ident, $out:ty) => {
        $(#[$meta])*
        pub struct $name<T: Send + 'static> {
            fut: BoxFut<$out>,
            _marker: std::marker::PhantomData<fn() -> T>,
        }

        impl<T: Send + 'static> $name<T> {
            fn wrap(fut: BoxFut<$out>) -> Self {
                $name { fut, _marker: std::marker::PhantomData }
            }
        }

        impl<T: Send + 'static> Future for $name<T> {
            type Output = $out;
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
                self.fut.as_mut().poll(cx)
            }
        }

        impl<T: Send + 'static> std::fmt::Debug for $name<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(stringify!($name))
            }
        }
    };
}

handle_type!(
    /// Future of a non-fetching element/batch op; resolves when every
    /// destination PE has applied it.
    ArrayOpHandle, ());
handle_type!(
    /// Future of a single fetching op (`fetch_add`, `load`, `swap`, …).
    FetchOpHandle, T);
handle_type!(
    /// Future of a fetching batch op; values in input order.
    BatchFetchHandle, Vec<T>);
handle_type!(
    /// Future of a single compare-exchange.
    CasHandle, Result<T, T>);
handle_type!(
    /// Future of a batch compare-exchange; results in input order.
    BatchCasHandle, Vec<Result<T, T>>);

/// Where each input position landed: destination rank and position within
/// that rank's (concatenated) result stream.
struct Plan {
    /// Per-rank local indices, in arrival order.
    bins: Vec<Vec<usize>>,
    /// Per-rank input positions (for slicing `Many` values).
    input_pos: Vec<Vec<usize>>,
    /// `(rank, pos)` for every input position.
    positions: Vec<(u32, u32)>,
}

fn plan<T: ArrayElem>(raw: &RawArray<T>, indices: &[usize]) -> Plan {
    let n_ranks = raw.layout.num_ranks;
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); n_ranks];
    let mut input_pos: Vec<Vec<usize>> = vec![Vec::new(); n_ranks];
    let mut positions = Vec::with_capacity(indices.len());
    for (i, &g) in indices.iter().enumerate() {
        let (rank, local) = raw.locate(g);
        positions.push((rank as u32, bins[rank].len() as u32));
        bins[rank].push(local);
        input_pos[rank].push(i);
    }
    Plan { bins, input_pos, positions }
}

/// Slice values for one sub-batch out of the full `BatchValues`.
fn chunk_values<T: ArrayElem>(values: &BatchValues<T>, pos: &[usize]) -> BatchValues<T> {
    match values {
        BatchValues::One(v) => BatchValues::One(*v),
        BatchValues::Many(vs) => BatchValues::Many(pos.iter().map(|&i| vs[i]).collect()),
    }
}

/// Generic fan-out: bin by rank, sub-batch, launch one AM per sub-batch,
/// and reassemble results in input order.
fn launch<T, R, A>(
    raw: &RawArray<T>,
    indices: Vec<usize>,
    limit: usize,
    fetch: bool,
    make: impl Fn(Vec<usize>, &[usize]) -> A,
) -> BoxFut<Vec<R>>
where
    T: ArrayElem,
    R: Send + 'static,
    A: LamellarAm<Output = Vec<R>>,
{
    let limit = limit.max(1);
    let Plan { bins, input_pos, positions } = plan(raw, &indices);
    let rt = raw.region.rt().clone();
    // One handle list per rank, each holding that rank's sub-batches in
    // order so concatenation preserves per-rank positions.
    let mut handles: Vec<Vec<AmHandle<Vec<R>>>> = Vec::with_capacity(bins.len());
    let mut sub_batches = 0u64;
    for (rank, (bin, pos)) in bins.into_iter().zip(&input_pos).enumerate() {
        let mut rank_handles = Vec::new();
        if !bin.is_empty() {
            let pe = raw.pe_of_rank(rank);
            let mut start = 0;
            while start < bin.len() {
                let end = (start + limit).min(bin.len());
                let am = make(bin[start..end].to_vec(), &pos[start..end]);
                rank_handles.push(rt.exec_am_pe(pe, am));
                sub_batches += 1;
                start = end;
            }
        }
        handles.push(rank_handles);
    }
    rt.am_metrics().record_sub_batches(sub_batches);
    Box::pin(async move {
        let mut per_rank: Vec<Vec<R>> = Vec::with_capacity(handles.len());
        for rank_handles in handles {
            let mut results = Vec::new();
            for h in rank_handles {
                results.extend(h.await);
            }
            per_rank.push(results);
        }
        if !fetch {
            return Vec::new();
        }
        let mut iters: Vec<std::vec::IntoIter<R>> =
            per_rank.into_iter().map(|v| v.into_iter()).collect();
        // Results within a rank come back in submission order, so walking
        // the recorded positions in input order drains each rank's stream
        // in order.
        positions
            .into_iter()
            .map(|(rank, _pos)| iters[rank as usize].next().expect("result per input"))
            .collect()
    })
}

/// Fire-and-forget fan-out: like [`launch`] but for non-fetching batches
/// whose completion the caller awaits in bulk via `wait_all` — each
/// sub-batch ships through the unit-AM path (reply elision + counted acks,
/// DESIGN.md §4d), so there are no handles, no per-sub-batch `Reply`
/// envelopes, and nothing to reassemble.
fn launch_unit<T, R, A>(
    raw: &RawArray<T>,
    indices: Vec<usize>,
    limit: usize,
    make: impl Fn(Vec<usize>, &[usize]) -> A,
) where
    T: ArrayElem,
    R: Send + 'static,
    A: LamellarAm<Output = Vec<R>>,
{
    let limit = limit.max(1);
    let Plan { bins, input_pos, .. } = plan(raw, &indices);
    let rt = raw.region.rt().clone();
    let mut sub_batches = 0u64;
    for (rank, (bin, pos)) in bins.into_iter().zip(&input_pos).enumerate() {
        if bin.is_empty() {
            continue;
        }
        let pe = raw.pe_of_rank(rank);
        let mut start = 0;
        while start < bin.len() {
            let end = (start + limit).min(bin.len());
            rt.exec_unit_am_pe(pe, UnitAm(make(bin[start..end].to_vec(), &pos[start..end])));
            sub_batches += 1;
            start = end;
        }
    }
    rt.am_metrics().record_sub_batches(sub_batches);
}

/// Fire-and-forget batched arithmetic op (completion via `wait_all`).
pub(crate) fn batch_arith_unit<T: ArithElem>(
    raw: &RawArray<T>,
    limit: usize,
    op: ArithOp,
    indices: Vec<usize>,
    values: BatchValues<T>,
) {
    let (indices, values) = crate::ops::normalize_batch(indices, values);
    let raw2 = raw.clone();
    launch_unit(raw, indices, limit, move |idxs, pos| ArithBatchAm {
        raw: raw2.clone(),
        op,
        idxs,
        vals: chunk_values(&values, pos),
        fetch: false,
    });
}

/// Fire-and-forget batched bit-wise op (completion via `wait_all`).
pub(crate) fn batch_bit_unit<T: BitElem>(
    raw: &RawArray<T>,
    limit: usize,
    op: BitOp,
    indices: Vec<usize>,
    values: BatchValues<T>,
) {
    let (indices, values) = crate::ops::normalize_batch(indices, values);
    let raw2 = raw.clone();
    launch_unit(raw, indices, limit, move |idxs, pos| BitBatchAm {
        raw: raw2.clone(),
        op,
        idxs,
        vals: chunk_values(&values, pos),
        fetch: false,
    });
}

/// Fire-and-forget batched store (completion via `wait_all`).
pub(crate) fn batch_store_unit<T: ArrayElem>(
    raw: &RawArray<T>,
    limit: usize,
    indices: Vec<usize>,
    values: BatchValues<T>,
) {
    let (indices, values) = crate::ops::normalize_batch(indices, values);
    let raw2 = raw.clone();
    launch_unit(raw, indices, limit, move |idxs, pos| AccessBatchAm {
        raw: raw2.clone(),
        op: AccessOp::Store,
        idxs,
        vals: Some(chunk_values(&values, pos)),
        fetch: false,
    });
}

/// Batched arithmetic op.
pub(crate) fn batch_arith<T: ArithElem>(
    raw: &RawArray<T>,
    limit: usize,
    op: ArithOp,
    indices: Vec<usize>,
    values: BatchValues<T>,
    fetch: bool,
) -> BatchFetchHandle<T> {
    let (indices, values) = crate::ops::normalize_batch(indices, values);
    let raw2 = raw.clone();
    let fut = launch(raw, indices, limit, fetch, move |idxs, pos| ArithBatchAm {
        raw: raw2.clone(),
        op,
        idxs,
        vals: chunk_values(&values, pos),
        fetch,
    });
    BatchFetchHandle::wrap(fut)
}

/// Batched bit-wise op.
pub(crate) fn batch_bit<T: BitElem>(
    raw: &RawArray<T>,
    limit: usize,
    op: BitOp,
    indices: Vec<usize>,
    values: BatchValues<T>,
    fetch: bool,
) -> BatchFetchHandle<T> {
    let (indices, values) = crate::ops::normalize_batch(indices, values);
    let raw2 = raw.clone();
    let fut = launch(raw, indices, limit, fetch, move |idxs, pos| BitBatchAm {
        raw: raw2.clone(),
        op,
        idxs,
        vals: chunk_values(&values, pos),
        fetch,
    });
    BatchFetchHandle::wrap(fut)
}

/// Batched load/store/swap.
pub(crate) fn batch_access<T: ArrayElem>(
    raw: &RawArray<T>,
    limit: usize,
    op: AccessOp,
    indices: Vec<usize>,
    values: Option<BatchValues<T>>,
    fetch: bool,
) -> BatchFetchHandle<T> {
    let (indices, values) = match values {
        Some(v) => {
            let (i, v) = crate::ops::normalize_batch(indices, v);
            (i, Some(v))
        }
        None => (indices, None),
    };
    let want_results = fetch || op == AccessOp::Load || op == AccessOp::Swap;
    let raw2 = raw.clone();
    let fut = launch(raw, indices, limit, want_results, move |idxs, pos| AccessBatchAm {
        raw: raw2.clone(),
        op,
        idxs,
        vals: values.as_ref().map(|v| chunk_values(v, pos)),
        fetch,
    });
    BatchFetchHandle::wrap(fut)
}

/// Batched compare-exchange.
pub(crate) fn batch_cas<T: ArrayElem>(
    raw: &RawArray<T>,
    limit: usize,
    indices: Vec<usize>,
    current: BatchValues<T>,
    new: BatchValues<T>,
) -> BatchCasHandle<T> {
    let (indices, new) = crate::ops::normalize_batch(indices, new);
    let raw2 = raw.clone();
    let fut = launch(raw, indices, limit, true, move |idxs, pos| {
        let pairs = pos.iter().map(|&i| (current.value_at(i), new.value_at(i))).collect::<Vec<_>>();
        CasBatchAm { raw: raw2.clone(), idxs, pairs }
    });
    BatchCasHandle::wrap(fut)
}

/// An already-completed `()` handle (used when a transfer completed
/// synchronously via direct RDMA).
pub(crate) fn noop_handle<T: ArrayElem>() -> ArrayOpHandle<T> {
    ArrayOpHandle::wrap(Box::pin(async {}))
}

/// Wrap a batch future into the non-fetching `()` handle.
pub(crate) fn discard<T: ArrayElem>(h: BatchFetchHandle<T>) -> ArrayOpHandle<T> {
    ArrayOpHandle::wrap(Box::pin(async move {
        h.await;
    }))
}

/// Wrap a 1-element fetch batch into a scalar handle.
pub(crate) fn scalar<T: ArrayElem>(h: BatchFetchHandle<T>) -> FetchOpHandle<T> {
    FetchOpHandle::wrap(Box::pin(async move {
        let mut v = h.await;
        debug_assert_eq!(v.len(), 1);
        v.pop().expect("single result")
    }))
}

/// Wrap a 1-element CAS batch into a scalar handle.
pub(crate) fn scalar_cas<T: ArrayElem>(h: BatchCasHandle<T>) -> CasHandle<T> {
    CasHandle::wrap(Box::pin(async move {
        let mut v = h.await;
        debug_assert_eq!(v.len(), 1);
        v.pop().expect("single result")
    }))
}

/// Array-level RDMA-like `put`: write `vals` at global indices
/// `start..start + vals.len()`, split by owning PE (Sec. III-F.2).
pub(crate) fn range_put<T: ArrayElem>(
    raw: &RawArray<T>,
    start: usize,
    vals: Vec<T>,
) -> ArrayOpHandle<T> {
    assert!(
        start + vals.len() <= raw.len(),
        "put range [{start}, {}) out of bounds (len {})",
        start + vals.len(),
        raw.len()
    );
    let rt = raw.region.rt().clone();
    let mut handles = Vec::new();
    // Split the global range into per-owner contiguous local runs.
    let mut i = 0;
    for (rank, local, run) in raw.runs(start, vals.len()) {
        let am = RangePutAm { raw: raw.clone(), start: local, vals: vals[i..i + run].to_vec() };
        handles.push(rt.exec_am_pe(raw.pe_of_rank(rank), am));
        i += run;
    }
    ArrayOpHandle::wrap(Box::pin(async move {
        for h in handles {
            h.await;
        }
    }))
}

/// Array-level RDMA-like `get`: read `n` elements starting at global index
/// `start`, in order.
pub(crate) fn range_get<T: ArrayElem>(
    raw: &RawArray<T>,
    start: usize,
    n: usize,
) -> BatchFetchHandle<T> {
    assert!(
        start + n <= raw.len(),
        "get range [{start}, {}) out of bounds (len {})",
        start + n,
        raw.len()
    );
    let rt = raw.region.rt().clone();
    let mut handles = Vec::new();
    for (rank, local, run) in raw.runs(start, n) {
        let am = RangeGetAm { raw: raw.clone(), start: local, n: run };
        handles.push(rt.exec_am_pe(raw.pe_of_rank(rank), am));
    }
    BatchFetchHandle::wrap(Box::pin(async move {
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.await);
        }
        out
    }))
}
