//! Element-wise and batch operations (paper Sec. III-F.3).
//!
//! Safe array types route every remote element access through an internal
//! AM executed on the owning PE; the batch API "aggregates multiple
//! operations in to a single request", binned by destination PE and split
//! into sub-batches (10,000 ops per buffer in the paper's evaluation).

pub mod am;
pub mod apply;
pub mod batch;

pub use batch::{ArrayOpHandle, BatchCasHandle, BatchFetchHandle, CasHandle, FetchOpHandle};

use crate::elem::{ArithElem, ArrayElem, BitElem};
use lamellar_codec::{impl_codec_enum, Codec, CodecError, Reader};

/// Arithmetic read-modify-write operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `slot += v`
    Add,
    /// `slot -= v`
    Sub,
    /// `slot *= v`
    Mul,
    /// `slot /= v`
    Div,
    /// `slot %= v`
    Rem,
}

impl_codec_enum!(ArithOp { Add, Sub, Mul, Div, Rem });

impl ArithOp {
    /// The scalar combine function.
    pub fn apply<T: ArithElem>(self, cur: T, v: T) -> T {
        match self {
            ArithOp::Add => cur + v,
            ArithOp::Sub => cur - v,
            ArithOp::Mul => cur * v,
            ArithOp::Div => cur / v,
            ArithOp::Rem => cur % v,
        }
    }
}

/// Bit-wise and shift read-modify-write operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitOp {
    /// `slot &= v`
    And,
    /// `slot |= v`
    Or,
    /// `slot ^= v`
    Xor,
    /// `slot <<= v`
    Shl,
    /// `slot >>= v`
    Shr,
}

impl_codec_enum!(BitOp { And, Or, Xor, Shl, Shr });

impl BitOp {
    /// The scalar combine function.
    pub fn apply<T: BitElem>(self, cur: T, v: T) -> T {
        match self {
            BitOp::And => cur & v,
            BitOp::Or => cur | v,
            BitOp::Xor => cur ^ v,
            BitOp::Shl => cur << v,
            BitOp::Shr => cur >> v,
        }
    }
}

/// Plain access operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOp {
    /// Read the element.
    Load,
    /// Overwrite the element.
    Store,
    /// Overwrite and return the previous value.
    Swap,
}

impl_codec_enum!(AccessOp { Load, Store, Swap });

/// The value side of a batch call (paper: *Many Indices - One value*,
/// *One Index - Many values*, *Many Indices - Many values*).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchValues<T> {
    /// One value applied at every index.
    One(T),
    /// One value per index (equal lengths), or many values at a single
    /// index.
    Many(Vec<T>),
}

impl<T: Clone> BatchValues<T> {
    /// The value paired with input position `i`.
    pub fn value_at(&self, i: usize) -> T {
        match self {
            BatchValues::One(v) => v.clone(),
            BatchValues::Many(vs) => vs[i].clone(),
        }
    }

    /// Number of explicit values (`None` for the broadcast form).
    pub fn explicit_len(&self) -> Option<usize> {
        match self {
            BatchValues::One(_) => None,
            BatchValues::Many(vs) => Some(vs.len()),
        }
    }
}

impl<T> From<T> for BatchValues<T> {
    fn from(v: T) -> Self {
        BatchValues::One(v)
    }
}

impl<T> From<Vec<T>> for BatchValues<T> {
    fn from(vs: Vec<T>) -> Self {
        BatchValues::Many(vs)
    }
}

impl<T: Codec> Codec for BatchValues<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            BatchValues::One(v) => {
                buf.push(0);
                v.encode(buf);
            }
            BatchValues::Many(vs) => {
                buf.push(1);
                vs.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            BatchValues::One(v) => v.encoded_len(),
            BatchValues::Many(vs) => vs.encoded_len(),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take_byte()? {
            0 => Ok(BatchValues::One(T::decode(r)?)),
            1 => Ok(BatchValues::Many(Vec::decode(r)?)),
            v => Err(CodecError::InvalidDiscriminant { type_name: "BatchValues", value: v as u64 }),
        }
    }
}

/// Normalize the three batch forms into `(indices, values)` with the
/// invariant `values is One` or `values.len() == indices.len()`:
/// a single index with many values expands to a repeated index.
pub(crate) fn normalize_batch<T: ArrayElem>(
    mut indices: Vec<usize>,
    values: BatchValues<T>,
) -> (Vec<usize>, BatchValues<T>) {
    if let Some(n) = values.explicit_len() {
        if indices.len() == 1 && n != 1 {
            // One Index - Many values: apply each value in order at the
            // same element.
            indices = vec![indices[0]; n];
        } else {
            assert_eq!(
                indices.len(),
                n,
                "many-many batch requires one value per index ({} indices, {n} values)",
                indices.len()
            );
        }
    }
    (indices, values)
}

// ---------------------------------------------------------------------------
// Method-surface macros: generate the full element-wise operator API on a
// typed array (paper Sec. III-F.3). The wrapper type must expose fields
// `raw: RawArray<T>` and `batch_limit: usize`.
// ---------------------------------------------------------------------------

macro_rules! rmw_method_group {
    ($batch_fn:path, $batch_unit_fn:path, $opty:ty, $(($name:ident, $fetch_name:ident, $batch_name:ident, $batch_fetch_name:ident, $batch_ff_name:ident, $op:expr, $doc:literal)),+ $(,)?) => {
        $(
            #[doc = concat!("Apply `", $doc, "` to the element at global `index` (one-sided; returns a future).")]
            pub fn $name(&self, index: usize, val: T) -> $crate::ops::ArrayOpHandle<T> {
                $crate::ops::batch::discard($batch_fn(&self.raw, self.batch_limit, $op, vec![index], val.into(), false))
            }

            #[doc = concat!("Apply `", $doc, "` at `index`, returning the previous value.")]
            pub fn $fetch_name(&self, index: usize, val: T) -> $crate::ops::FetchOpHandle<T> {
                $crate::ops::batch::scalar($batch_fn(&self.raw, self.batch_limit, $op, vec![index], val.into(), true))
            }

            #[doc = concat!("Batched `", $doc, "`: *many indices – one value*, *one index – many values*, or one-to-one (paper Sec. III-F.3). Sub-batched at `batch_limit` ops per AM.")]
            pub fn $batch_name(
                &self,
                indices: Vec<usize>,
                vals: impl Into<$crate::ops::BatchValues<T>>,
            ) -> $crate::ops::ArrayOpHandle<T> {
                $crate::ops::batch::discard($batch_fn(&self.raw, self.batch_limit, $op, indices, vals.into(), false))
            }

            #[doc = concat!("Batched fetching `", $doc, "`: previous values in input order.")]
            pub fn $batch_fetch_name(
                &self,
                indices: Vec<usize>,
                vals: impl Into<$crate::ops::BatchValues<T>>,
            ) -> $crate::ops::BatchFetchHandle<T> {
                $batch_fn(&self.raw, self.batch_limit, $op, indices, vals.into(), true)
            }

            #[doc = concat!("Fire-and-forget batched `", $doc, "`: no handle — each sub-batch ships through the unit-AM path (reply elision with counted completions), and `world.wait_all()` blocks until every destination PE has applied it.")]
            pub fn $batch_ff_name(
                &self,
                indices: Vec<usize>,
                vals: impl Into<$crate::ops::BatchValues<T>>,
            ) {
                $batch_unit_fn(&self.raw, self.batch_limit, $op, indices, vals.into())
            }
        )+
    };
}
pub(crate) use rmw_method_group;

/// Generate the complete safe operator surface on an array wrapper type.
macro_rules! impl_element_ops {
    ($arr:ident) => {
        impl<T: $crate::elem::ArithElem> $arr<T> {
            $crate::ops::rmw_method_group!(
                $crate::ops::batch::batch_arith,
                $crate::ops::batch::batch_arith_unit,
                $crate::ops::ArithOp,
                (
                    add,
                    fetch_add,
                    batch_add,
                    batch_fetch_add,
                    batch_add_ff,
                    $crate::ops::ArithOp::Add,
                    "+"
                ),
                (
                    sub,
                    fetch_sub,
                    batch_sub,
                    batch_fetch_sub,
                    batch_sub_ff,
                    $crate::ops::ArithOp::Sub,
                    "-"
                ),
                (
                    mul,
                    fetch_mul,
                    batch_mul,
                    batch_fetch_mul,
                    batch_mul_ff,
                    $crate::ops::ArithOp::Mul,
                    "*"
                ),
                (
                    div,
                    fetch_div,
                    batch_div,
                    batch_fetch_div,
                    batch_div_ff,
                    $crate::ops::ArithOp::Div,
                    "/"
                ),
                (
                    rem,
                    fetch_rem,
                    batch_rem,
                    batch_fetch_rem,
                    batch_rem_ff,
                    $crate::ops::ArithOp::Rem,
                    "%"
                ),
            );
        }

        impl<T: $crate::elem::BitElem> $arr<T> {
            $crate::ops::rmw_method_group!(
                $crate::ops::batch::batch_bit,
                $crate::ops::batch::batch_bit_unit,
                $crate::ops::BitOp,
                (
                    bit_and,
                    fetch_bit_and,
                    batch_bit_and,
                    batch_fetch_bit_and,
                    batch_bit_and_ff,
                    $crate::ops::BitOp::And,
                    "&"
                ),
                (
                    bit_or,
                    fetch_bit_or,
                    batch_bit_or,
                    batch_fetch_bit_or,
                    batch_bit_or_ff,
                    $crate::ops::BitOp::Or,
                    "|"
                ),
                (
                    bit_xor,
                    fetch_bit_xor,
                    batch_bit_xor,
                    batch_fetch_bit_xor,
                    batch_bit_xor_ff,
                    $crate::ops::BitOp::Xor,
                    "^"
                ),
                (
                    shl,
                    fetch_shl,
                    batch_shl,
                    batch_fetch_shl,
                    batch_shl_ff,
                    $crate::ops::BitOp::Shl,
                    "<<"
                ),
                (
                    shr,
                    fetch_shr,
                    batch_shr,
                    batch_fetch_shr,
                    batch_shr_ff,
                    $crate::ops::BitOp::Shr,
                    ">>"
                ),
            );
        }

        impl<T: $crate::elem::ArrayElem> $arr<T> {
            /// Read the element at global `index`.
            pub fn load(&self, index: usize) -> $crate::ops::FetchOpHandle<T> {
                $crate::ops::batch::scalar($crate::ops::batch::batch_access(
                    &self.raw,
                    self.batch_limit,
                    $crate::ops::AccessOp::Load,
                    vec![index],
                    None,
                    true,
                ))
            }

            /// Read many elements; results in input order (`batch_load` in
            /// the paper's IndexGather kernel).
            pub fn batch_load(&self, indices: Vec<usize>) -> $crate::ops::BatchFetchHandle<T> {
                $crate::ops::batch::batch_access(
                    &self.raw,
                    self.batch_limit,
                    $crate::ops::AccessOp::Load,
                    indices,
                    None,
                    true,
                )
            }

            /// Overwrite the element at global `index`.
            pub fn store(&self, index: usize, val: T) -> $crate::ops::ArrayOpHandle<T> {
                $crate::ops::batch::discard($crate::ops::batch::batch_access(
                    &self.raw,
                    self.batch_limit,
                    $crate::ops::AccessOp::Store,
                    vec![index],
                    Some(val.into()),
                    false,
                ))
            }

            /// Overwrite many elements (`array.batch_store([20, 2], 10)`).
            pub fn batch_store(
                &self,
                indices: Vec<usize>,
                vals: impl Into<$crate::ops::BatchValues<T>>,
            ) -> $crate::ops::ArrayOpHandle<T> {
                $crate::ops::batch::discard($crate::ops::batch::batch_access(
                    &self.raw,
                    self.batch_limit,
                    $crate::ops::AccessOp::Store,
                    indices,
                    Some(vals.into()),
                    false,
                ))
            }

            /// Fire-and-forget batched store: no handle — sub-batches ship
            /// through the unit-AM path (reply elision with counted
            /// completions); `world.wait_all()` blocks until every
            /// destination PE has applied them.
            pub fn batch_store_ff(
                &self,
                indices: Vec<usize>,
                vals: impl Into<$crate::ops::BatchValues<T>>,
            ) {
                $crate::ops::batch::batch_store_unit(
                    &self.raw,
                    self.batch_limit,
                    indices,
                    vals.into(),
                )
            }

            /// Overwrite and return the previous value.
            pub fn swap(&self, index: usize, val: T) -> $crate::ops::FetchOpHandle<T> {
                $crate::ops::batch::scalar($crate::ops::batch::batch_access(
                    &self.raw,
                    self.batch_limit,
                    $crate::ops::AccessOp::Swap,
                    vec![index],
                    Some(val.into()),
                    true,
                ))
            }

            /// Batched swap; previous values in input order.
            pub fn batch_swap(
                &self,
                indices: Vec<usize>,
                vals: impl Into<$crate::ops::BatchValues<T>>,
            ) -> $crate::ops::BatchFetchHandle<T> {
                $crate::ops::batch::batch_access(
                    &self.raw,
                    self.batch_limit,
                    $crate::ops::AccessOp::Swap,
                    indices,
                    Some(vals.into()),
                    true,
                )
            }

            /// Compare-and-exchange: if the element equals `current`, write
            /// `new`; resolves to `Ok(previous)`/`Err(actual)`.
            pub fn compare_exchange(
                &self,
                index: usize,
                current: T,
                new: T,
            ) -> $crate::ops::CasHandle<T> {
                $crate::ops::batch::scalar_cas($crate::ops::batch::batch_cas(
                    &self.raw,
                    self.batch_limit,
                    vec![index],
                    current.into(),
                    new.into(),
                ))
            }

            /// Batched compare-and-exchange (the Randperm "dart throw",
            /// Sec. IV-B.3); results in input order.
            pub fn batch_compare_exchange(
                &self,
                indices: Vec<usize>,
                current: impl Into<$crate::ops::BatchValues<T>>,
                new: impl Into<$crate::ops::BatchValues<T>>,
            ) -> $crate::ops::BatchCasHandle<T> {
                $crate::ops::batch::batch_cas(
                    &self.raw,
                    self.batch_limit,
                    indices,
                    current.into(),
                    new.into(),
                )
            }

            /// RDMA-like `put` (Sec. III-F.2): write `vals` at global
            /// indices `start..start+vals.len()`, routed through the owning
            /// PEs under this array type's safety guarantee.
            pub fn put(&self, start: usize, vals: Vec<T>) -> $crate::ops::ArrayOpHandle<T> {
                $crate::ops::batch::range_put(&self.raw, start, vals)
            }

            /// RDMA-like `get`: read `n` elements starting at `start`.
            pub fn get(&self, start: usize, n: usize) -> $crate::ops::BatchFetchHandle<T> {
                $crate::ops::batch::range_get(&self.raw, start, n)
            }
        }
    };
}
pub(crate) use impl_element_ops;

/// Shared structural accessors for every array wrapper.
macro_rules! impl_array_common {
    ($arr:ident) => {
        impl<T: $crate::elem::ArrayElem> $arr<T> {
            /// Global element count (of this view).
            pub fn len(&self) -> usize {
                self.raw.len()
            }

            /// True when the array holds no elements.
            pub fn is_empty(&self) -> bool {
                self.raw.is_empty()
            }

            /// The team this array is distributed over.
            pub fn team(&self) -> &lamellar_core::team::LamellarTeam {
                &self.team
            }

            /// Elements stored on the calling PE (within this view).
            pub fn num_elems_local(&self) -> usize {
                self.raw.local_len_of(self.raw.my_rank())
            }

            /// Global index of the first element owned by the calling PE in
            /// a Block layout (`None` if it owns none or layout is Cyclic).
            pub fn first_global_index_local(&self) -> Option<usize> {
                self.raw.local_view_indices(self.raw.my_rank()).map(|(_, g)| g).min()
            }

            /// Set the sub-batch limit for batched operations (paper
            /// default: 10,000 ops per buffer).
            pub fn set_batch_limit(&mut self, limit: usize) {
                self.batch_limit = limit.max(1);
            }

            /// Current sub-batch limit.
            pub fn batch_limit(&self) -> usize {
                self.batch_limit
            }

            /// A sub-array view of `range` (global indices); shares storage
            /// with the parent ("the ability to create sub arrays").
            pub fn sub_array(&self, range: std::ops::Range<usize>) -> Self {
                let mut out = self.clone();
                out.raw = self.raw.sub_view(range.start, range.end);
                out
            }

            /// Collective barrier over the array's team.
            pub fn barrier(&self) {
                self.team.barrier();
            }
        }

        impl<T: $crate::elem::ArrayElem> Clone for $arr<T> {
            fn clone(&self) -> Self {
                $arr {
                    raw: self.raw.clone(),
                    team: self.team.clone(),
                    batch_limit: self.batch_limit,
                }
            }
        }

        impl<T: $crate::elem::ArrayElem> std::fmt::Debug for $arr<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($arr))
                    .field("len", &self.raw.len())
                    .field("layout", &self.raw.layout)
                    .finish()
            }
        }
    };
}
pub(crate) use impl_array_common;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arith_ops_apply() {
        assert_eq!(ArithOp::Add.apply(10u64, 3), 13);
        assert_eq!(ArithOp::Sub.apply(10u64, 3), 7);
        assert_eq!(ArithOp::Mul.apply(10u64, 3), 30);
        assert_eq!(ArithOp::Div.apply(10u64, 3), 3);
        assert_eq!(ArithOp::Rem.apply(10u64, 3), 1);
        assert_eq!(ArithOp::Add.apply(1.5f64, 0.25), 1.75);
    }

    #[test]
    fn bit_ops_apply() {
        assert_eq!(BitOp::And.apply(0b1100u32, 0b1010), 0b1000);
        assert_eq!(BitOp::Or.apply(0b1100u32, 0b1010), 0b1110);
        assert_eq!(BitOp::Xor.apply(0b1100u32, 0b1010), 0b0110);
        assert_eq!(BitOp::Shl.apply(1u32, 4), 16);
        assert_eq!(BitOp::Shr.apply(16u32, 2), 4);
    }

    #[test]
    fn batch_values_forms() {
        let one: BatchValues<u32> = 5.into();
        assert_eq!(one.value_at(0), 5);
        assert_eq!(one.value_at(99), 5);
        assert_eq!(one.explicit_len(), None);
        let many: BatchValues<u32> = vec![1, 2, 3].into();
        assert_eq!(many.value_at(1), 2);
        assert_eq!(many.explicit_len(), Some(3));
    }

    #[test]
    fn normalize_one_index_many_values() {
        let (idxs, vals) = normalize_batch::<u32>(vec![7], vec![1, 2, 3].into());
        assert_eq!(idxs, vec![7, 7, 7]);
        assert_eq!(vals, BatchValues::Many(vec![1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "one value per index")]
    fn normalize_rejects_mismatched_lengths() {
        let _ = normalize_batch::<u32>(vec![1, 2, 3], vec![1, 2].into());
    }

    #[test]
    fn op_enums_roundtrip() {
        for op in [ArithOp::Add, ArithOp::Rem] {
            assert_eq!(ArithOp::from_bytes(&op.to_bytes()).unwrap(), op);
        }
        for op in [BitOp::And, BitOp::Shr] {
            assert_eq!(BitOp::from_bytes(&op.to_bytes()).unwrap(), op);
        }
        for op in [AccessOp::Load, AccessOp::Swap] {
            assert_eq!(AccessOp::from_bytes(&op.to_bytes()).unwrap(), op);
        }
        let bv: BatchValues<u64> = vec![9, 8].into();
        assert_eq!(BatchValues::from_bytes(&bv.to_bytes()).unwrap(), bv);
    }
}
