//! The internal AMs that carry batched array operations to the owning PE.
//!
//! "the safe array types utilize AMs to emulate the behavior of direct
//! RDMA operations, so all access to a remote PE's data is actually managed
//! on that PE rather than by the PE initiating the access." (Sec. III-F.2)
//!
//! All AMs here are generic over the element type; each monomorphization
//! registers itself in the AM lookup table on first launch.

use crate::elem::{ArithElem, ArrayElem, BitElem};
use crate::inner::RawArray;
use crate::ops::{apply, AccessOp, ArithOp, BatchValues, BitOp};
use lamellar_codec::{Codec, CodecError, Reader};
use lamellar_core::am::LamellarAm;
use lamellar_core::runtime::AmContext;

macro_rules! impl_am_codec {
    ($name:ident<$g:ident> { $($field:ident),+ $(,)? }) => {
        impl<$g: ArrayElem> Codec for $name<$g> {
            fn encode(&self, buf: &mut Vec<u8>) {
                $( self.$field.encode(buf); )+
            }
            fn encoded_len(&self) -> usize {
                // Field sum, no scratch encode: `raw` contains a Darc whose
                // encode pins — sizing must stay side-effect free.
                0 $( + self.$field.encoded_len() )+
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok($name { $( $field: Codec::decode(r)?, )+ })
            }
        }
    };
}

/// Batched arithmetic read-modify-write on the destination's local block.
pub(crate) struct ArithBatchAm<T: ArrayElem> {
    pub raw: RawArray<T>,
    pub op: ArithOp,
    /// Local offsets on the destination PE.
    pub idxs: Vec<usize>,
    pub vals: BatchValues<T>,
    pub fetch: bool,
}

impl_am_codec!(ArithBatchAm<T> { raw, op, idxs, vals, fetch });

impl<T: ArithElem> LamellarAm for ArithBatchAm<T> {
    type Output = Vec<T>;
    async fn exec(self, _ctx: AmContext) -> Vec<T> {
        let op = self.op;
        apply::apply_rmw(&self.raw, &self.idxs, &self.vals, self.fetch, |c, v| op.apply(c, v))
    }
}

/// Batched bit-wise read-modify-write.
pub(crate) struct BitBatchAm<T: ArrayElem> {
    pub raw: RawArray<T>,
    pub op: BitOp,
    pub idxs: Vec<usize>,
    pub vals: BatchValues<T>,
    pub fetch: bool,
}

impl_am_codec!(BitBatchAm<T> { raw, op, idxs, vals, fetch });

impl<T: BitElem> LamellarAm for BitBatchAm<T> {
    type Output = Vec<T>;
    async fn exec(self, _ctx: AmContext) -> Vec<T> {
        let op = self.op;
        apply::apply_rmw(&self.raw, &self.idxs, &self.vals, self.fetch, |c, v| op.apply(c, v))
    }
}

/// Batched load/store/swap.
pub(crate) struct AccessBatchAm<T: ArrayElem> {
    pub raw: RawArray<T>,
    pub op: AccessOp,
    pub idxs: Vec<usize>,
    /// Absent for loads.
    pub vals: Option<BatchValues<T>>,
    pub fetch: bool,
}

impl_am_codec!(AccessBatchAm<T> { raw, op, idxs, vals, fetch });

impl<T: ArrayElem> LamellarAm for AccessBatchAm<T> {
    type Output = Vec<T>;
    async fn exec(self, _ctx: AmContext) -> Vec<T> {
        match self.op {
            AccessOp::Load => apply::apply_load(&self.raw, &self.idxs),
            AccessOp::Store | AccessOp::Swap => {
                let vals = self.vals.expect("store/swap carries values");
                // Swap ≡ fetch-store.
                let fetch = self.fetch || self.op == AccessOp::Swap;
                apply::apply_rmw(&self.raw, &self.idxs, &vals, fetch, |_c, v| v)
            }
        }
    }
}

/// Batched compare-and-exchange; element-wise `(current, new)` pairs.
pub(crate) struct CasBatchAm<T: ArrayElem> {
    pub raw: RawArray<T>,
    pub idxs: Vec<usize>,
    pub pairs: Vec<(T, T)>,
}

impl_am_codec!(CasBatchAm<T> { raw, idxs, pairs });

impl<T: ArrayElem> LamellarAm for CasBatchAm<T> {
    type Output = Vec<Result<T, T>>;
    async fn exec(self, _ctx: AmContext) -> Vec<Result<T, T>> {
        apply::apply_cas(&self.raw, &self.idxs, &self.pairs)
    }
}

/// Contiguous range store (array-level RDMA-like `put`).
pub(crate) struct RangePutAm<T: ArrayElem> {
    pub raw: RawArray<T>,
    /// Local start offset on the destination PE.
    pub start: usize,
    pub vals: Vec<T>,
}

impl_am_codec!(RangePutAm<T> { raw, start, vals });

impl<T: ArrayElem> LamellarAm for RangePutAm<T> {
    type Output = ();
    async fn exec(self, _ctx: AmContext) {
        apply::apply_range_put(&self.raw, self.start, &self.vals)
    }
}

/// Contiguous range load (array-level RDMA-like `get`).
pub(crate) struct RangeGetAm<T: ArrayElem> {
    pub raw: RawArray<T>,
    pub start: usize,
    pub n: usize,
}

impl_am_codec!(RangeGetAm<T> { raw, start, n });

impl<T: ArrayElem> LamellarAm for RangeGetAm<T> {
    type Output = Vec<T>;
    async fn exec(self, _ctx: AmContext) -> Vec<T> {
        apply::apply_range_get(&self.raw, self.start, self.n)
    }
}
