//! Local application of batched operations, honoring each array type's
//! safety mode (paper Sec. III-F: "each array obeys the safety guarantee
//! corresponding to its type").
//!
//! These functions run on the PE that *owns* the data — either directly
//! (caller-local bin) or inside one of the internal AMs in
//! [`crate::ops::am`]. Indices here are *local* offsets into the PE's
//! block.

use crate::elem::ArrayElem;
use crate::inner::{Access, RawArray};
use crate::ops::BatchValues;
use std::sync::atomic::{AtomicU8, Ordering};

/// Spin-acquire a 1-byte element lock (the GenericAtomicArray mutex).
fn lock_byte(b: &AtomicU8) {
    while b.compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed).is_err() {
        std::hint::spin_loop();
    }
}

fn unlock_byte(b: &AtomicU8) {
    b.store(0, Ordering::Release);
}

/// Apply `f(current, value)` read-modify-write at each local index.
/// Returns the previous values when `fetch`.
pub(crate) fn apply_rmw<T: ArrayElem>(
    raw: &RawArray<T>,
    idxs: &[usize],
    vals: &BatchValues<T>,
    fetch: bool,
    f: impl Fn(T, T) -> T,
) -> Vec<T> {
    let base = raw.local_base();
    let mut out = Vec::with_capacity(if fetch { idxs.len() } else { 0 });
    let one = |local: usize, v: T| -> T {
        debug_assert!(local < raw.layout.max_local_len().max(1));
        // SAFETY (all arms): `local` indexes a live slot of this PE's
        // block; synchronization is provided per the array's access mode.
        unsafe {
            let p = base.add(local);
            match raw.access {
                Access::Unsafe | Access::ReadOnly => {
                    // Unsafe arrays: the caller vouched (unsafe API).
                    // ReadOnly never reaches rmw (no write ops exposed).
                    let cur = p.read();
                    p.write(f(cur, v));
                    cur
                }
                Access::Atomic => {
                    if raw.atomic_is_native() {
                        // NativeAtomicArray: CAS loop covers every operator
                        // with one mechanism.
                        loop {
                            let cur = T::atomic_load(p);
                            if T::atomic_cas_weak(p, cur, f(cur, v)).is_ok() {
                                break cur;
                            }
                        }
                    } else {
                        // GenericAtomicArray: 1-byte mutex per element.
                        let lock = raw.lock_byte(local);
                        lock_byte(lock);
                        let cur = p.read();
                        p.write(f(cur, v));
                        unlock_byte(lock);
                        cur
                    }
                }
                Access::LocalLock => {
                    // Guard acquired once for the whole batch below;
                    // here we are inside it.
                    let cur = p.read();
                    p.write(f(cur, v));
                    cur
                }
            }
        }
    };
    match raw.access {
        Access::LocalLock => {
            // "The entire data region on each PE is protected by a single
            // locally constructed RwLock": one write acquisition per batch.
            let guard = raw.local_lock.as_ref().expect("local lock present");
            let _g = guard.write();
            for (i, &local) in idxs.iter().enumerate() {
                let prev = one(local, vals.value_at(i));
                if fetch {
                    out.push(prev);
                }
            }
        }
        _ => {
            for (i, &local) in idxs.iter().enumerate() {
                let prev = one(local, vals.value_at(i));
                if fetch {
                    out.push(prev);
                }
            }
        }
    }
    out
}

/// Load each local index.
pub(crate) fn apply_load<T: ArrayElem>(raw: &RawArray<T>, idxs: &[usize]) -> Vec<T> {
    let base = raw.local_base();
    let read_one = |local: usize| -> T {
        // SAFETY: as in apply_rmw.
        unsafe {
            let p = base.add(local);
            match raw.access {
                Access::Unsafe | Access::ReadOnly | Access::LocalLock => p.read(),
                Access::Atomic => {
                    if raw.atomic_is_native() {
                        T::atomic_load(p)
                    } else {
                        let lock = raw.lock_byte(local);
                        lock_byte(lock);
                        let v = p.read();
                        unlock_byte(lock);
                        v
                    }
                }
            }
        }
    };
    match raw.access {
        Access::LocalLock => {
            let guard = raw.local_lock.as_ref().expect("local lock present");
            let _g = guard.read();
            idxs.iter().map(|&l| read_one(l)).collect()
        }
        _ => idxs.iter().map(|&l| read_one(l)).collect(),
    }
}

/// Compare-and-exchange at each local index; per element, `Ok(previous)`
/// if the slot equaled `cur`, else `Err(actual)`.
pub(crate) fn apply_cas<T: ArrayElem>(
    raw: &RawArray<T>,
    idxs: &[usize],
    pairs: &[(T, T)],
) -> Vec<Result<T, T>> {
    assert_eq!(idxs.len(), pairs.len());
    let base = raw.local_base();
    let cas_one = |local: usize, cur: T, new: T| -> Result<T, T> {
        // SAFETY: as in apply_rmw.
        unsafe {
            let p = base.add(local);
            match raw.access {
                Access::Unsafe | Access::ReadOnly | Access::LocalLock => {
                    let actual = p.read();
                    if actual == cur {
                        p.write(new);
                        Ok(actual)
                    } else {
                        Err(actual)
                    }
                }
                Access::Atomic => {
                    if raw.atomic_is_native() {
                        // Strong CAS from the weak primitive: retry only on
                        // spurious failures (actual == expected).
                        loop {
                            match T::atomic_cas_weak(p, cur, new) {
                                Ok(prev) => break Ok(prev),
                                Err(actual) if actual != cur => break Err(actual),
                                Err(_) => continue,
                            }
                        }
                    } else {
                        let lock = raw.lock_byte(local);
                        lock_byte(lock);
                        let actual = p.read();
                        let res = if actual == cur {
                            p.write(new);
                            Ok(actual)
                        } else {
                            Err(actual)
                        };
                        unlock_byte(lock);
                        res
                    }
                }
            }
        }
    };
    match raw.access {
        Access::LocalLock => {
            let guard = raw.local_lock.as_ref().expect("local lock present");
            let _g = guard.write();
            idxs.iter().zip(pairs).map(|(&l, (c, n))| cas_one(l, *c, *n)).collect()
        }
        _ => idxs.iter().zip(pairs).map(|(&l, (c, n))| cas_one(l, *c, *n)).collect(),
    }
}

/// Contiguous store of `vals` starting at local offset `start` (the AM
/// behind array-level RDMA-like `put`, Sec. III-F.2): "UnsafeArray does a
/// memcopy. LocalLockArray first grabs the local RwLock, and then performs
/// a memcopy. Finally, AtomicArray iterates through the elements ... and
/// performs an atomic store."
pub(crate) fn apply_range_put<T: ArrayElem>(raw: &RawArray<T>, start: usize, vals: &[T]) {
    let base = raw.local_base();
    // SAFETY (all arms): the range is within this PE's block; mode-specific
    // synchronization below.
    unsafe {
        match raw.access {
            Access::Unsafe | Access::ReadOnly => {
                std::ptr::copy_nonoverlapping(vals.as_ptr(), base.add(start), vals.len());
            }
            Access::LocalLock => {
                let guard = raw.local_lock.as_ref().expect("local lock present");
                let _g = guard.write();
                std::ptr::copy_nonoverlapping(vals.as_ptr(), base.add(start), vals.len());
            }
            Access::Atomic => {
                if raw.atomic_is_native() {
                    for (i, v) in vals.iter().enumerate() {
                        T::atomic_store(base.add(start + i), *v);
                    }
                } else {
                    for (i, v) in vals.iter().enumerate() {
                        let local = start + i;
                        let lock = raw.lock_byte(local);
                        lock_byte(lock);
                        base.add(local).write(*v);
                        unlock_byte(lock);
                    }
                }
            }
        }
    }
}

/// Contiguous load of `n` elements starting at local offset `start`.
pub(crate) fn apply_range_get<T: ArrayElem>(raw: &RawArray<T>, start: usize, n: usize) -> Vec<T> {
    let base = raw.local_base();
    let mut out = Vec::with_capacity(n);
    // SAFETY: as apply_range_put, reading.
    unsafe {
        match raw.access {
            Access::Unsafe | Access::ReadOnly => {
                out.extend((0..n).map(|i| base.add(start + i).read()));
            }
            Access::LocalLock => {
                let guard = raw.local_lock.as_ref().expect("local lock present");
                let _g = guard.read();
                out.extend((0..n).map(|i| base.add(start + i).read()));
            }
            Access::Atomic => {
                if raw.atomic_is_native() {
                    out.extend((0..n).map(|i| T::atomic_load(base.add(start + i))));
                } else {
                    for i in 0..n {
                        let local = start + i;
                        let lock = raw.lock_byte(local);
                        lock_byte(lock);
                        out.push(base.add(local).read());
                        unlock_byte(lock);
                    }
                }
            }
        }
    }
    out
}
