//! Array reductions (paper Sec. III-F / Listing 2: `table.sum()`).
//!
//! Reductions are one-sided: the calling PE launches one AM per team rank;
//! each AM folds that rank's local block under the array's access mode and
//! returns the partial, which the caller combines.

use crate::elem::{ArithElem, ArrayElem};
use crate::inner::RawArray;
use crate::ops::apply;
use lamellar_codec::{impl_codec_enum, Codec, CodecError, Reader};
use lamellar_core::am::LamellarAm;
use lamellar_core::runtime::AmContext;
use std::future::Future;
use std::pin::Pin;

/// The built-in reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of all elements.
    Sum,
    /// Product of all elements.
    Prod,
    /// Minimum element.
    Min,
    /// Maximum element.
    Max,
}

impl_codec_enum!(ReduceOp { Sum, Prod, Min, Max });

impl ReduceOp {
    /// Combine two partials.
    pub fn combine<T: ArithElem>(self, a: T, b: T) -> T {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Prod => a * b,
            ReduceOp::Min => {
                if b < a {
                    b
                } else {
                    a
                }
            }
            ReduceOp::Max => {
                if b > a {
                    b
                } else {
                    a
                }
            }
        }
    }
}

/// The per-rank partial-reduction AM.
pub(crate) struct ReduceAm<T: ArrayElem> {
    pub raw: RawArray<T>,
    pub op: ReduceOp,
}

impl<T: ArrayElem> Codec for ReduceAm<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.raw.encode(buf);
        self.op.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.raw.encoded_len() + self.op.encoded_len()
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ReduceAm { raw: RawArray::decode(r)?, op: ReduceOp::decode(r)? })
    }
}

impl<T: ArithElem> LamellarAm for ReduceAm<T> {
    type Output = Option<T>;
    async fn exec(self, _ctx: AmContext) -> Option<T> {
        let rank = self.raw.my_rank();
        let locals: Vec<usize> = self.raw.local_view_indices(rank).map(|(l, _)| l).collect();
        // Access-mode-respecting snapshot, then a pure fold.
        let vals = apply::apply_load(&self.raw, &locals);
        vals.into_iter().reduce(|a, b| self.op.combine(a, b))
    }
}

/// Boxed future type for reductions.
pub type ReduceHandle<T> = Pin<Box<dyn Future<Output = Option<T>> + Send + 'static>>;

pub(crate) fn launch_reduce<T: ArithElem>(raw: &RawArray<T>, op: ReduceOp) -> ReduceHandle<T> {
    let rt = raw.region.rt().clone();
    let handles: Vec<_> = (0..raw.layout.num_ranks)
        .map(|rank| rt.exec_am_pe(raw.pe_of_rank(rank), ReduceAm { raw: raw.clone(), op }))
        .collect();
    Box::pin(async move {
        let mut acc: Option<T> = None;
        for h in handles {
            if let Some(partial) = h.await {
                acc = Some(match acc {
                    None => partial,
                    Some(a) => op.combine(a, partial),
                });
            }
        }
        acc
    })
}

/// Generate the reduction surface on a safe array wrapper.
macro_rules! impl_reductions {
    ($arr:ident) => {
        impl<T: $crate::elem::ArithElem> $crate::$arr<T> {
            /// Reduce the whole array with `op`; `None` for empty arrays.
            pub fn reduce(&self, op: $crate::reduce::ReduceOp) -> $crate::reduce::ReduceHandle<T> {
                $crate::reduce::launch_reduce(&self.raw, op)
            }

            /// Sum every element (Listing 2's correctness check:
            /// `world.block_on(table.sum())`). Panics on an empty array.
            pub fn sum(&self) -> std::pin::Pin<Box<dyn std::future::Future<Output = T> + Send>> {
                let h = self.reduce($crate::reduce::ReduceOp::Sum);
                Box::pin(async move { h.await.expect("sum of empty array") })
            }

            /// Product of every element. Panics on an empty array.
            pub fn prod(&self) -> std::pin::Pin<Box<dyn std::future::Future<Output = T> + Send>> {
                let h = self.reduce($crate::reduce::ReduceOp::Prod);
                Box::pin(async move { h.await.expect("prod of empty array") })
            }

            /// Minimum element, `None` if empty.
            pub fn min(&self) -> $crate::reduce::ReduceHandle<T> {
                self.reduce($crate::reduce::ReduceOp::Min)
            }

            /// Maximum element, `None` if empty.
            pub fn max(&self) -> $crate::reduce::ReduceHandle<T> {
                self.reduce($crate::reduce::ReduceOp::Max)
            }
        }
    };
}

impl_reductions!(AtomicArray);
impl_reductions!(LocalLockArray);
impl_reductions!(ReadOnlyArray);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_semantics() {
        assert_eq!(ReduceOp::Sum.combine(2u64, 3), 5);
        assert_eq!(ReduceOp::Prod.combine(2u64, 3), 6);
        assert_eq!(ReduceOp::Min.combine(2u64, 3), 2);
        assert_eq!(ReduceOp::Max.combine(2u64, 3), 3);
        assert_eq!(ReduceOp::Min.combine(2.5f64, -1.0), -1.0);
    }
}
