//! UnsafeArray: "No Safety guarantees; PEs are free to read/write anywhere
//! in the array with no access control. Similar to Memory Regions,
//! UnsafeArrays are intended for internal use, but are exposed to users and
//! marked *unsafe*." (paper Sec. III-F.1)
//!
//! Every data-touching method here is an `unsafe fn`: nothing stops another
//! PE from racing the access. The safe array types are obtained by
//! converting ([`UnsafeArray::into_read_only`], [`UnsafeArray::into_atomic`],
//! [`UnsafeArray::into_local_lock`]).

use crate::atomic::AtomicArray;
use crate::distribution::Distribution;
use crate::elem::{ArithElem, ArrayElem};
use crate::inner::{Access, RawArray};
use crate::local_lock::LocalLockArray;
use crate::ops::batch::{self, ArrayOpHandle, BatchCasHandle, BatchFetchHandle, FetchOpHandle};
use crate::ops::{AccessOp, ArithOp, BatchValues};
use crate::read_only::ReadOnlyArray;
use crate::IntoTeam;
use lamellar_core::team::LamellarTeam;

/// The no-guarantees array type.
pub struct UnsafeArray<T: ArrayElem> {
    pub(crate) raw: RawArray<T>,
    pub(crate) team: LamellarTeam,
    pub(crate) batch_limit: usize,
}

crate::ops::impl_array_common!(UnsafeArray);

impl<T: ArrayElem> UnsafeArray<T> {
    /// Collectively construct a zero-initialized array of `len` elements
    /// distributed over `team` ("constructing an array is a blocking and
    /// collective operation with all PEs on a team").
    pub fn new(team: &impl IntoTeam, len: usize, dist: Distribution) -> Self {
        let team = team.to_team();
        let raw = RawArray::new(&team, len, dist, Access::Unsafe, false);
        UnsafeArray { raw, team, batch_limit: batch::DEFAULT_BATCH_LIMIT }
    }

    pub(crate) fn from_parts(raw: RawArray<T>, team: LamellarTeam, batch_limit: usize) -> Self {
        UnsafeArray { raw, team, batch_limit }
    }

    /// Borrow the calling PE's local block.
    ///
    /// # Safety
    /// No PE may write the block for the returned lifetime.
    pub unsafe fn local_as_slice(&self) -> &[T] {
        // SAFETY: forwarded contract; the slice covers this PE's block.
        let full = unsafe { self.raw.region.as_slice() };
        &full[..self.raw.layout.local_len(self.raw.my_rank())]
    }

    /// Mutably borrow the calling PE's local block.
    ///
    /// # Safety
    /// No PE may access the block for the returned lifetime.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn local_as_mut_slice(&self) -> &mut [T] {
        // SAFETY: forwarded contract.
        let full = unsafe { self.raw.region.as_mut_slice() };
        let n = self.raw.layout.local_len(self.raw.my_rank());
        &mut full[..n]
    }

    /// AM-routed element add (Sec. III-F.3), with no synchronization at the
    /// destination.
    ///
    /// # Safety
    /// The caller must guarantee no concurrent access to the element.
    pub unsafe fn add(&self, index: usize, val: T) -> ArrayOpHandle<T>
    where
        T: ArithElem,
    {
        batch::discard(batch::batch_arith(
            &self.raw,
            self.batch_limit,
            ArithOp::Add,
            vec![index],
            val.into(),
            false,
        ))
    }

    /// AM-routed batched add.
    ///
    /// # Safety
    /// As [`UnsafeArray::add`], for every touched element.
    pub unsafe fn batch_add(
        &self,
        indices: Vec<usize>,
        vals: impl Into<BatchValues<T>>,
    ) -> ArrayOpHandle<T>
    where
        T: ArithElem,
    {
        batch::discard(batch::batch_arith(
            &self.raw,
            self.batch_limit,
            ArithOp::Add,
            indices,
            vals.into(),
            false,
        ))
    }

    /// AM-routed element load.
    ///
    /// # Safety
    /// The caller must guarantee no concurrent writes to the element.
    pub unsafe fn load(&self, index: usize) -> FetchOpHandle<T> {
        batch::scalar(batch::batch_access(
            &self.raw,
            self.batch_limit,
            AccessOp::Load,
            vec![index],
            None,
            true,
        ))
    }

    /// AM-routed batched load.
    ///
    /// # Safety
    /// As [`UnsafeArray::load`].
    pub unsafe fn batch_load(&self, indices: Vec<usize>) -> BatchFetchHandle<T> {
        batch::batch_access(&self.raw, self.batch_limit, AccessOp::Load, indices, None, true)
    }

    /// AM-routed element store.
    ///
    /// # Safety
    /// The caller must guarantee no concurrent access to the element.
    pub unsafe fn store(&self, index: usize, val: T) -> ArrayOpHandle<T> {
        batch::discard(batch::batch_access(
            &self.raw,
            self.batch_limit,
            AccessOp::Store,
            vec![index],
            Some(val.into()),
            false,
        ))
    }

    /// AM-routed batched store.
    ///
    /// # Safety
    /// As [`UnsafeArray::store`].
    pub unsafe fn batch_store(
        &self,
        indices: Vec<usize>,
        vals: impl Into<BatchValues<T>>,
    ) -> ArrayOpHandle<T> {
        batch::discard(batch::batch_access(
            &self.raw,
            self.batch_limit,
            AccessOp::Store,
            indices,
            Some(vals.into()),
            false,
        ))
    }

    /// AM-routed batched compare-exchange.
    ///
    /// # Safety
    /// Unsynchronized at the destination — "no access control".
    pub unsafe fn batch_compare_exchange(
        &self,
        indices: Vec<usize>,
        current: impl Into<BatchValues<T>>,
        new: impl Into<BatchValues<T>>,
    ) -> BatchCasHandle<T> {
        batch::batch_cas(&self.raw, self.batch_limit, indices, current.into(), new.into())
    }

    /// RDMA-like `put` through the AM path (and, above the aggregation
    /// threshold, a direct RDMA transfer — the paper's "UnsafeArray uses
    /// the same aggregation threshold to switch transfer methods").
    ///
    /// # Safety
    /// No PE may concurrently access the destination range.
    pub unsafe fn put(&self, start: usize, vals: Vec<T>) -> ArrayOpHandle<T> {
        let bytes = std::mem::size_of::<T>() * vals.len();
        if bytes > self.raw.region.rt().large_threshold() {
            // Direct RDMA path for large transfers.
            // SAFETY: forwarded contract.
            unsafe { self.put_unchecked(start, &vals) };
            return batch::noop_handle();
        }
        batch::range_put(&self.raw, start, vals)
    }

    /// RDMA-like `get` through the AM path.
    ///
    /// # Safety
    /// No PE may concurrently write the source range.
    pub unsafe fn get(&self, start: usize, n: usize) -> BatchFetchHandle<T> {
        batch::range_get(&self.raw, start, n)
    }

    /// Direct RDMA put, bypassing the runtime entirely (the "unchecked"
    /// series of the paper's Fig. 2). Completes synchronously; the caller
    /// performs its own termination detection (e.g. pattern + barrier).
    ///
    /// # Safety
    /// No PE may concurrently access the destination range.
    pub unsafe fn put_unchecked(&self, start: usize, vals: &[T]) {
        assert!(start + vals.len() <= self.raw.len(), "put_unchecked out of bounds");
        let mut i = 0;
        for (rank, local, run) in self.raw.runs(start, vals.len()) {
            // SAFETY: forwarded contract; the run is within the owner's
            // block.
            unsafe {
                self.raw.region.put(self.raw.pe_of_rank(rank), local, &vals[i..i + run]);
            }
            i += run;
        }
    }

    /// Direct RDMA get, bypassing the runtime.
    ///
    /// # Safety
    /// No PE may concurrently write the source range.
    pub unsafe fn get_unchecked(&self, start: usize, out: &mut [T]) {
        assert!(start + out.len() <= self.raw.len(), "get_unchecked out of bounds");
        let mut i = 0;
        for (rank, local, run) in self.raw.runs(start, out.len()) {
            // SAFETY: forwarded contract.
            unsafe {
                self.raw.region.get(self.raw.pe_of_rank(rank), local, &mut out[i..i + run]);
            }
            i += run;
        }
    }

    /// Collective conversion to [`ReadOnlyArray`] — blocks until every PE
    /// holds exactly one reference, so the safety guarantees of each type
    /// are honored ("precisely one reference to the array on each PE").
    pub fn into_read_only(self) -> ReadOnlyArray<T> {
        let (raw, team, limit) = self.into_unique(Access::ReadOnly);
        ReadOnlyArray::from_parts(raw, team, limit)
    }

    /// Collective conversion to [`AtomicArray`].
    pub fn into_atomic(self) -> AtomicArray<T> {
        let (mut raw, team, limit) = self.into_unique(Access::Atomic);
        if !raw.atomic_is_native() && raw.locks.is_none() {
            raw.locks = Some(team.alloc_shared_mem_region::<u8>(raw.layout.max_local_len()));
            team.barrier();
        }
        AtomicArray::from_parts(raw, team, limit)
    }

    /// Collective conversion to [`LocalLockArray`].
    pub fn into_local_lock(self) -> LocalLockArray<T> {
        let (mut raw, team, limit) = self.into_unique(Access::LocalLock);
        if raw.local_lock.is_none() {
            raw.local_lock =
                Some(lamellar_core::darc::Darc::new(&team, parking_lot::RwLock::new(())));
            team.barrier();
        }
        LocalLockArray::from_parts(raw, team, limit)
    }

    pub(crate) fn into_unique(self, access: Access) -> (RawArray<T>, LamellarTeam, usize) {
        let UnsafeArray { mut raw, team, batch_limit } = self;
        team.barrier();
        raw.wait_unique(&team);
        raw.access = access;
        team.barrier();
        (raw, team, batch_limit)
    }
}
