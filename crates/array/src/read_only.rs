//! ReadOnlyArray: "No write access is permitted. PEs are free to read from
//! anywhere in the array with no access control." (paper Sec. III-F.1)
//!
//! Because the data cannot change, a *direct RDMA get* is safe — the one
//! safe array type where remote access bypasses the AM path ("Due to the
//! non-mutable access guarantee ... we are also able to provide a direct
//! RDMA get operation (put does not exist for ReadOnlyArrays)").

use crate::distribution::Distribution;
use crate::elem::ArrayElem;
use crate::inner::{Access, RawArray};
use crate::ops::batch::{self, BatchFetchHandle, FetchOpHandle};
use crate::ops::AccessOp;
use crate::unsafe_array::UnsafeArray;
use crate::IntoTeam;
use lamellar_core::team::LamellarTeam;

/// The immutable distributed array.
pub struct ReadOnlyArray<T: ArrayElem> {
    pub(crate) raw: RawArray<T>,
    pub(crate) team: LamellarTeam,
    pub(crate) batch_limit: usize,
}

crate::ops::impl_array_common!(ReadOnlyArray);

impl<T: ArrayElem> ReadOnlyArray<T> {
    /// Collectively construct a zero-initialized read-only array. (More
    /// commonly obtained by filling an [`UnsafeArray`] and converting.)
    pub fn new(team: &impl IntoTeam, len: usize, dist: Distribution) -> Self {
        UnsafeArray::new(team, len, dist).into_read_only()
    }

    pub(crate) fn from_parts(raw: RawArray<T>, team: LamellarTeam, batch_limit: usize) -> Self {
        ReadOnlyArray { raw, team, batch_limit }
    }

    /// Borrow the calling PE's local block. Safe: no handle anywhere can
    /// write.
    pub fn local_as_slice(&self) -> &[T] {
        // SAFETY: ReadOnly arrays are created through a conversion that
        // guaranteed unique ownership, and no API writes afterwards.
        let full = unsafe { self.raw.region.as_slice() };
        &full[..self.raw.layout.local_len(self.raw.my_rank())]
    }

    /// Read the element at global `index` (AM-routed).
    pub fn load(&self, index: usize) -> FetchOpHandle<T> {
        batch::scalar(batch::batch_access(
            &self.raw,
            self.batch_limit,
            AccessOp::Load,
            vec![index],
            None,
            true,
        ))
    }

    /// Read many elements, aggregated by owning PE — the core call of the
    /// paper's IndexGather kernel: `table.batch_load(rnd_idxs)`.
    pub fn batch_load(&self, indices: Vec<usize>) -> BatchFetchHandle<T> {
        batch::batch_access(&self.raw, self.batch_limit, AccessOp::Load, indices, None, true)
    }

    /// Bulk contiguous read via **direct RDMA** (safe because the data is
    /// immutable). Completes synchronously.
    pub fn get_direct(&self, start: usize, out: &mut [T]) {
        assert!(start + out.len() <= self.raw.len(), "get_direct out of bounds");
        let mut i = 0;
        for (rank, local, run) in self.raw.runs(start, out.len()) {
            // SAFETY: no writer can exist for a ReadOnlyArray.
            unsafe {
                self.raw.region.get(self.raw.pe_of_rank(rank), local, &mut out[i..i + run]);
            }
            i += run;
        }
    }

    /// RDMA-like async `get` through the AM path (paper Sec. III-F.2).
    pub fn get(&self, start: usize, n: usize) -> BatchFetchHandle<T> {
        batch::range_get(&self.raw, start, n)
    }

    /// Collective conversion back to an [`UnsafeArray`].
    pub fn into_unsafe(self) -> UnsafeArray<T> {
        let ReadOnlyArray { mut raw, team, batch_limit } = self;
        team.barrier();
        raw.wait_unique(&team);
        raw.access = Access::Unsafe;
        team.barrier();
        UnsafeArray::from_parts(raw, team, batch_limit)
    }

    /// Collective conversion to an [`crate::atomic::AtomicArray`].
    pub fn into_atomic(self) -> crate::atomic::AtomicArray<T> {
        self.into_unsafe().into_atomic()
    }

    /// Collective conversion to a [`crate::local_lock::LocalLockArray`].
    pub fn into_local_lock(self) -> crate::local_lock::LocalLockArray<T> {
        self.into_unsafe().into_local_lock()
    }
}
