//! Array element traits: which types can live in a LamellarArray and what
//! operations they support.
//!
//! [`ArrayElem`] also carries the *native atomic* hooks behind
//! `AtomicArray`'s two sub-types (paper Sec. III-F.1): "NativeAtomicArray —
//! Elements are Rust atomic types" vs "GenericAtomicArray — Elements are
//! protected by a 1-byte Mutex". Integer types override the hooks with real
//! `Atomic*` operations (`NATIVE_ATOMIC = true`); other types fall back to
//! the 1-byte-lock path implemented in [`crate::ops::apply`].

use lamellar_codec::Codec;
use lamellar_core::memregion::Dist;
use std::ops::{Add, BitAnd, BitOr, BitXor, Div, Mul, Rem, Shl, Shr, Sub};

/// A type that can be stored in a LamellarArray.
pub trait ArrayElem:
    Dist + Codec + PartialEq + PartialOrd + std::fmt::Debug + Send + Sync + 'static
{
    /// True when the type has a matching `std::sync::atomic` type of the
    /// same width (the NativeAtomicArray path).
    const NATIVE_ATOMIC: bool = false;

    /// Atomic load from an element slot.
    ///
    /// # Safety
    /// `ptr` must point at a live, properly-aligned element inside an
    /// array's local block. Only called when `NATIVE_ATOMIC`.
    unsafe fn atomic_load(_ptr: *mut Self) -> Self {
        unimplemented!("type has no native atomics")
    }

    /// Atomic compare-exchange (weak) on an element slot; `Ok(previous)` on
    /// success, `Err(actual)` on failure.
    ///
    /// # Safety
    /// As [`ArrayElem::atomic_load`].
    unsafe fn atomic_cas_weak(_ptr: *mut Self, _cur: Self, _new: Self) -> Result<Self, Self> {
        unimplemented!("type has no native atomics")
    }

    /// Atomic store to an element slot.
    ///
    /// # Safety
    /// As [`ArrayElem::atomic_load`].
    unsafe fn atomic_store(_ptr: *mut Self, _v: Self) {
        unimplemented!("type has no native atomics")
    }

    /// Atomic swap on an element slot, returning the previous value.
    ///
    /// # Safety
    /// As [`ArrayElem::atomic_load`].
    unsafe fn atomic_swap(_ptr: *mut Self, _v: Self) -> Self {
        unimplemented!("type has no native atomics")
    }
}

macro_rules! impl_elem_native {
    ($($t:ty => $atomic:ty),* $(,)?) => {
        $(
            impl ArrayElem for $t {
                const NATIVE_ATOMIC: bool = true;

                unsafe fn atomic_load(ptr: *mut Self) -> Self {
                    // SAFETY: caller guarantees a live aligned slot; the
                    // atomic type has the same layout as the plain type.
                    let a = unsafe { &*(ptr as *const $atomic) };
                    a.load(std::sync::atomic::Ordering::SeqCst)
                }

                unsafe fn atomic_cas_weak(ptr: *mut Self, cur: Self, new: Self) -> Result<Self, Self> {
                    // SAFETY: as above.
                    let a = unsafe { &*(ptr as *const $atomic) };
                    a.compare_exchange_weak(
                        cur,
                        new,
                        std::sync::atomic::Ordering::SeqCst,
                        std::sync::atomic::Ordering::SeqCst,
                    )
                }

                unsafe fn atomic_store(ptr: *mut Self, v: Self) {
                    // SAFETY: as above.
                    let a = unsafe { &*(ptr as *const $atomic) };
                    a.store(v, std::sync::atomic::Ordering::SeqCst)
                }

                unsafe fn atomic_swap(ptr: *mut Self, v: Self) -> Self {
                    // SAFETY: as above.
                    let a = unsafe { &*(ptr as *const $atomic) };
                    a.swap(v, std::sync::atomic::Ordering::SeqCst)
                }
            }
        )*
    };
}

impl_elem_native!(
    u8 => std::sync::atomic::AtomicU8,
    u16 => std::sync::atomic::AtomicU16,
    u32 => std::sync::atomic::AtomicU32,
    u64 => std::sync::atomic::AtomicU64,
    usize => std::sync::atomic::AtomicUsize,
    i8 => std::sync::atomic::AtomicI8,
    i16 => std::sync::atomic::AtomicI16,
    i32 => std::sync::atomic::AtomicI32,
    i64 => std::sync::atomic::AtomicI64,
    isize => std::sync::atomic::AtomicIsize,
);

macro_rules! impl_elem_plain {
    ($($t:ty),* $(,)?) => {
        $( impl ArrayElem for $t {} )*
    };
}

// No native atomic counterparts: these use the GenericAtomicArray
// (1-byte-lock) path inside AtomicArray.
impl_elem_plain!(f32, f64, u128, i128);

/// Elements supporting the arithmetic batch operators
/// (`+`, `-`, `*`, `/`, `%` — paper Sec. III-F.3).
pub trait ArithElem:
    ArrayElem
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Rem<Output = Self>
{
}

impl<T> ArithElem for T where
    T: ArrayElem
        + Add<Output = T>
        + Sub<Output = T>
        + Mul<Output = T>
        + Div<Output = T>
        + Rem<Output = T>
{
}

/// Elements supporting the bit-wise and shift batch operators
/// (`&`, `|`, `^`, `<<`, `>>`).
pub trait BitElem:
    ArrayElem
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + Shl<Output = Self>
    + Shr<Output = Self>
{
}

impl<T> BitElem for T where
    T: ArrayElem
        + BitAnd<Output = T>
        + BitOr<Output = T>
        + BitXor<Output = T>
        + Shl<Output = T>
        + Shr<Output = T>
{
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_are_native() {
        let natives = [
            ("usize", usize::NATIVE_ATOMIC),
            ("u8", u8::NATIVE_ATOMIC),
            ("i64", i64::NATIVE_ATOMIC),
        ];
        let generics = [("f64", f64::NATIVE_ATOMIC), ("u128", u128::NATIVE_ATOMIC)];
        for (name, native) in natives {
            assert!(native, "{name} should use native atomics");
        }
        for (name, native) in generics {
            assert!(!native, "{name} should fall back to the generic path");
        }
    }

    #[test]
    fn native_hooks_behave_like_atomics() {
        let mut slot = 10usize;
        let p = &mut slot as *mut usize;
        // SAFETY: slot is live and exclusively ours.
        unsafe {
            assert_eq!(usize::atomic_load(p), 10);
            usize::atomic_store(p, 42);
            assert_eq!(usize::atomic_swap(p, 7), 42);
            assert_eq!(usize::atomic_cas_weak(p, 7, 8), Ok(7));
            assert!(usize::atomic_cas_weak(p, 7, 9).is_err());
            assert_eq!(usize::atomic_load(p), 8);
        }
    }

    fn assert_arith<T: ArithElem>() {}
    fn assert_bit<T: BitElem>() {}

    #[test]
    fn trait_coverage() {
        assert_arith::<usize>();
        assert_arith::<f64>();
        assert_arith::<i32>();
        assert_bit::<usize>();
        assert_bit::<u8>();
        // f64 is deliberately not BitElem (would not compile).
    }
}
