//! The shared core of every array type: region + layout + safety mode.
//!
//! `RawArray` is what actually travels inside the runtime's internal AMs
//! (serialized as a trackable-object reference, like the Darc it builds
//! on). The typed wrappers (`UnsafeArray`, `AtomicArray`, …) add the
//! user-facing API and the team handle.

use crate::distribution::{Distribution, Layout};
use crate::elem::ArrayElem;
use lamellar_codec::{Codec, CodecError, Reader};
use lamellar_core::darc::Darc;
use lamellar_core::memregion::SharedMemoryRegion;
use lamellar_core::team::LamellarTeam;
use parking_lot::RwLock;
use std::sync::atomic::AtomicU8;

/// The data-access safety mode of an array (paper Sec. III-F.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// No guarantees; direct RDMA; `unsafe` API.
    Unsafe,
    /// No writes permitted; direct RDMA gets are safe.
    ReadOnly,
    /// Element-wise atomicity (native atomics or 1-byte locks).
    Atomic,
    /// One RwLock over each PE's whole block.
    LocalLock,
}

lamellar_codec::impl_codec_enum!(Access { Unsafe, ReadOnly, Atomic, LocalLock });

/// The untyped-safety core shared by all array types.
pub struct RawArray<T: ArrayElem> {
    pub(crate) region: SharedMemoryRegion<T>,
    pub(crate) layout: Layout,
    pub(crate) access: Access,
    /// 1-byte element locks (GenericAtomicArray path); allocated when the
    /// element type lacks native atomics or generic mode is forced.
    pub(crate) locks: Option<SharedMemoryRegion<u8>>,
    /// Per-PE whole-block lock (LocalLockArray); each PE's Darc instance is
    /// its own lock, "a single locally constructed RwLock".
    pub(crate) local_lock: Option<Darc<RwLock<()>>>,
    /// Ablation switch: use the 1-byte-lock path even for native types.
    pub(crate) force_generic: bool,
    /// Sub-array view: start offset in parent-global coordinates…
    pub(crate) view_offset: usize,
    /// …and view length.
    pub(crate) view_len: usize,
}

impl<T: ArrayElem> Clone for RawArray<T> {
    fn clone(&self) -> Self {
        RawArray {
            region: self.region.clone(),
            layout: self.layout,
            access: self.access,
            locks: self.locks.clone(),
            local_lock: self.local_lock.clone(),
            force_generic: self.force_generic,
            view_offset: self.view_offset,
            view_len: self.view_len,
        }
    }
}

impl<T: ArrayElem> RawArray<T> {
    /// Collectively construct a zero-initialized array over `team`.
    pub(crate) fn new(
        team: &LamellarTeam,
        glen: usize,
        dist: Distribution,
        access: Access,
        force_generic: bool,
    ) -> Self {
        let layout = Layout::new(glen, team.num_pes(), dist);
        // Same-size block on every PE: the max local length.
        let region = team.alloc_shared_mem_region::<T>(layout.max_local_len());
        let needs_locks = access == Access::Atomic && (!T::NATIVE_ATOMIC || force_generic);
        let locks = needs_locks.then(|| team.alloc_shared_mem_region::<u8>(layout.max_local_len()));
        let local_lock = (access == Access::LocalLock).then(|| Darc::new(team, RwLock::new(())));
        team.barrier();
        RawArray {
            region,
            layout,
            access,
            locks,
            local_lock,
            force_generic,
            view_offset: 0,
            view_len: glen,
        }
    }

    /// Elements visible through this handle (the sub-array view length).
    pub fn len(&self) -> usize {
        self.view_len
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.view_len == 0
    }

    /// Whether the atomic path uses native atomics.
    pub fn atomic_is_native(&self) -> bool {
        T::NATIVE_ATOMIC && !self.force_generic
    }

    /// Map a view-global index to `(team_rank, local_offset)`.
    pub(crate) fn locate(&self, i: usize) -> (usize, usize) {
        assert!(i < self.view_len, "index {i} out of bounds (len {})", self.view_len);
        self.layout.locate(i + self.view_offset)
    }

    /// Number of *view* elements on team rank `rank`, along with the local
    /// range they occupy. For Block views this is a contiguous local range;
    /// for Cyclic it is every local slot whose global index is in view.
    pub(crate) fn local_len_of(&self, rank: usize) -> usize {
        self.local_view_indices(rank).count()
    }

    /// Iterate `(local_offset, view_global_index)` pairs owned by `rank`
    /// within this view.
    pub(crate) fn local_view_indices(
        &self,
        rank: usize,
    ) -> impl Iterator<Item = (usize, usize)> + '_ {
        let start = self.view_offset;
        let end = self.view_offset + self.view_len;
        (0..self.layout.local_len(rank)).filter_map(move |local| {
            let g = self.layout.global_of(rank, local);
            (g >= start && g < end).then(|| (local, g - start))
        })
    }

    /// Base pointer of the *local* block (this PE's rank).
    pub(crate) fn local_base(&self) -> *mut T {
        // SAFETY: we only materialize the pointer; dereferences happen in
        // the op-application code under the array's safety mode.
        unsafe { self.region.as_mut_slice().as_mut_ptr() }
    }

    /// The 1-byte lock guarding local slot `local` (generic-atomic path).
    pub(crate) fn lock_byte(&self, local: usize) -> &AtomicU8 {
        let locks = self.locks.as_ref().expect("generic atomic array has a lock region");
        // SAFETY: the locks block is live and `local` is bounds-checked by
        // callers against local_len; AtomicU8 tolerates full aliasing.
        unsafe {
            let base = locks.as_mut_slice().as_mut_ptr();
            &*(base.add(local) as *const AtomicU8)
        }
    }

    /// The team rank of the calling PE.
    pub(crate) fn my_rank(&self) -> usize {
        // The region's team PEs are the layout's ranks in order.
        let me = self.region.rt().pe();
        self.region
            .team_pes()
            .binary_search(&me)
            .expect("array op executing on a PE outside the array's team")
    }

    /// World PE id of team rank `rank`.
    pub(crate) fn pe_of_rank(&self, rank: usize) -> usize {
        self.region.team_pes()[rank]
    }

    /// Decompose the view-range `start..start+len` into maximal
    /// owner-contiguous runs `(rank, local_start, run_len)` — O(#runs)
    /// instead of O(len) (bulk transfers of megabytes must not pay
    /// per-element index math).
    pub(crate) fn runs(&self, start: usize, len: usize) -> Vec<(usize, usize, usize)> {
        assert!(start + len <= self.view_len, "range out of bounds");
        let mut out = Vec::new();
        let mut i = 0;
        while i < len {
            let (rank, local) = self.locate(start + i);
            let run = match self.layout.dist {
                // Consecutive globals stay consecutive locals within a
                // rank's block.
                Distribution::Block => (self.layout.local_len(rank) - local).min(len - i),
                // Consecutive globals hop ranks every element.
                Distribution::Cyclic => 1,
            };
            debug_assert!(run >= 1);
            out.push((rank, local, run));
            i += run;
        }
        out
    }

    /// Narrow the view to `start..end` (view coordinates).
    pub(crate) fn sub_view(&self, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= self.view_len, "sub-array {start}..{end} out of bounds");
        let mut out = self.clone();
        out.view_offset = self.view_offset + start;
        out.view_len = end - start;
        out
    }

    /// Spin until this PE's handle is the only one anywhere (plus the other
    /// PEs' own single handles) — the paper's conversion precondition:
    /// "a blocking call that only succeeds when there is precisely one
    /// reference to the array on each PE".
    pub(crate) fn wait_unique(&self, team: &LamellarTeam) {
        let expected = team.num_pes();
        let mut backoff = lamellar_executor::Backoff::new();
        while self.region.handle_count() > expected {
            backoff.snooze();
        }
    }
}

impl<T: ArrayElem> Codec for RawArray<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.region.encode(buf);
        self.layout.encode(buf);
        self.access.encode(buf);
        self.locks.encode(buf);
        self.local_lock.encode(buf);
        self.force_generic.encode(buf);
        self.view_offset.encode(buf);
        self.view_len.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        // `region` (and the lock Darcs) pin on encode — size without
        // encoding so the hot send path can pre-reserve its frame.
        self.region.encoded_len()
            + self.layout.encoded_len()
            + self.access.encoded_len()
            + self.locks.encoded_len()
            + self.local_lock.encoded_len()
            + self.force_generic.encoded_len()
            + self.view_offset.encoded_len()
            + self.view_len.encoded_len()
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RawArray {
            region: SharedMemoryRegion::decode(r)?,
            layout: Layout::decode(r)?,
            access: Access::decode(r)?,
            locks: Option::decode(r)?,
            local_lock: Option::decode(r)?,
            force_generic: bool::decode(r)?,
            view_offset: usize::decode(r)?,
            view_len: usize::decode(r)?,
        })
    }
}

impl<T: ArrayElem> std::fmt::Debug for RawArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RawArray")
            .field("len", &self.view_len)
            .field("layout", &self.layout)
            .field("access", &self.access)
            .finish()
    }
}
