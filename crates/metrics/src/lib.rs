//! Runtime-wide observability for the Lamellar reproduction.
//!
//! The paper's evaluation (Figs. 2–5) is an exercise in attributing cycles
//! and bytes: inject-threshold dips, aggregation flushes, work stealing vs.
//! injection. This crate provides the typed counter/histogram layer that
//! every runtime tier threads through so those attributions come from the
//! runtime itself instead of hand instrumentation:
//!
//! * [`FabricMetrics`] — RDMA-level puts/gets, bytes, inject- vs.
//!   rendezvous-path splits, barrier rounds, and a put-size histogram;
//! * [`LamellaeMetrics`] — message counts, serialized bytes, aggregation
//!   buffer flushes, and wire-queue park/retry pressure;
//! * [`ExecutorMetrics`] — tasks spawned/completed/stolen and per-worker
//!   run-queue high-water marks;
//! * [`AmMetrics`] — active messages by direction, batch-op sub-batches,
//!   and darc lifecycle events.
//!
//! Each live struct is a set of relaxed atomics guarded by an `enabled`
//! flag fixed at construction: when metrics are disabled every recording
//! call is a single predictable branch on an immutable bool, so the hot
//! paths stay effectively free. Snapshots ([`RuntimeStats`] and its layer
//! structs) are plain `Clone + PartialEq` data with saturating
//! [`RuntimeStats::delta`] and a `Display` table renderer for bench
//! harnesses and the ablation binaries.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two size buckets in a [`SizeHistogram`]:
/// `[0,1], (1,2], (2,4], ... (2^14, +inf)`.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// A monotonically increasing, relaxed atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing maximum gauge (e.g. queue-depth high-water).
#[derive(Debug, Default)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    pub fn new() -> Self {
        MaxGauge(AtomicU64::new(0))
    }

    #[inline]
    pub fn record(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket power-of-two histogram for sizes or latencies.
///
/// Bucket `i` counts values in `(2^(i-1), 2^i]` (bucket 0 is `[0,1]`); the
/// last bucket absorbs everything larger. Recording is one relaxed
/// `fetch_add` on a cache-resident array — no allocation, no locks.
#[derive(Debug, Default)]
pub struct SizeHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl SizeHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record(&self, value: u64) {
        let idx =
            (64 - u64::leading_zeros(value.saturating_sub(1)) as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets }
    }
}

/// Plain-data snapshot of a [`SizeHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Saturating per-bucket difference since `earlier`.
    pub fn delta(&self, earlier: &Self) -> Self {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for ((d, now), then) in buckets.iter_mut().zip(&self.buckets).zip(&earlier.buckets) {
            *d = now.saturating_sub(*then);
        }
        HistogramSnapshot { buckets }
    }

    /// Compact one-line rendering of the non-empty buckets, e.g.
    /// `≤64:12 ≤256:3 >16Ki:1`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            if i == HISTOGRAM_BUCKETS - 1 {
                out.push_str(&format!(">{}:{n}", fmt_pow2(1 << (i - 1))));
            } else {
                out.push_str(&format!("≤{}:{n}", fmt_pow2(1 << i)));
            }
        }
        if out.is_empty() {
            out.push('-');
        }
        out
    }
}

fn fmt_pow2(v: u64) -> String {
    if v >= 1 << 20 {
        format!("{}Mi", v >> 20)
    } else if v >= 1 << 10 {
        format!("{}Ki", v >> 10)
    } else {
        format!("{v}")
    }
}

// ---------------------------------------------------------------------------
// Live per-layer metric registries (atomics, shared via Arc by the runtime).
// ---------------------------------------------------------------------------

/// Fabric-level (simulated RDMA) metrics; one instance per [fabric], shared
/// by all endpoint handles.
///
/// [fabric]: https://ofiwg.github.io/libfabric/
#[derive(Debug)]
pub struct FabricMetrics {
    enabled: bool,
    puts: Counter,
    gets: Counter,
    bytes_put: Counter,
    bytes_get: Counter,
    inject_puts: Counter,
    rendezvous_puts: Counter,
    barrier_rounds: Counter,
    put_sizes: SizeHistogram,
}

impl FabricMetrics {
    pub fn new(enabled: bool) -> Self {
        FabricMetrics {
            enabled,
            puts: Counter::new(),
            gets: Counter::new(),
            bytes_put: Counter::new(),
            bytes_get: Counter::new(),
            inject_puts: Counter::new(),
            rendezvous_puts: Counter::new(),
            barrier_rounds: Counter::new(),
            put_sizes: SizeHistogram::new(),
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record one put of `bytes`; `inject` tells whether it went down the
    /// eager `fi_inject_write`-style path or the rendezvous path.
    #[inline]
    pub fn record_put(&self, bytes: u64, inject: bool) {
        if !self.enabled {
            return;
        }
        self.puts.inc();
        self.bytes_put.add(bytes);
        if inject {
            self.inject_puts.inc();
        } else {
            self.rendezvous_puts.inc();
        }
        self.put_sizes.record(bytes);
    }

    #[inline]
    pub fn record_get(&self, bytes: u64) {
        if !self.enabled {
            return;
        }
        self.gets.inc();
        self.bytes_get.add(bytes);
    }

    #[inline]
    pub fn record_barrier_round(&self) {
        if self.enabled {
            self.barrier_rounds.inc();
        }
    }

    pub fn snapshot(&self) -> FabricStats {
        FabricStats {
            puts: self.puts.get(),
            gets: self.gets.get(),
            bytes_put: self.bytes_put.get(),
            bytes_get: self.bytes_get.get(),
            inject_puts: self.inject_puts.get(),
            rendezvous_puts: self.rendezvous_puts.get(),
            barrier_rounds: self.barrier_rounds.get(),
            put_sizes: self.put_sizes.snapshot(),
        }
    }
}

/// Lamellae-level (message transport) metrics; one instance per PE.
#[derive(Debug)]
pub struct LamellaeMetrics {
    enabled: bool,
    msgs_sent: Counter,
    msgs_received: Counter,
    bytes_sent: Counter,
    bytes_received: Counter,
    flushes: Counter,
    wire_parks: Counter,
    wire_retries: Counter,
    pool_hits: Counter,
    pool_misses: Counter,
    pool_hwm: MaxGauge,
    retransmits: Counter,
    dup_chunks_dropped: Counter,
    reordered_chunks_dropped: Counter,
    corrupt_chunks_dropped: Counter,
    delivery_failures: Counter,
}

impl LamellaeMetrics {
    pub fn new(enabled: bool) -> Self {
        LamellaeMetrics {
            enabled,
            msgs_sent: Counter::new(),
            msgs_received: Counter::new(),
            bytes_sent: Counter::new(),
            bytes_received: Counter::new(),
            flushes: Counter::new(),
            wire_parks: Counter::new(),
            wire_retries: Counter::new(),
            pool_hits: Counter::new(),
            pool_misses: Counter::new(),
            pool_hwm: MaxGauge::new(),
            retransmits: Counter::new(),
            dup_chunks_dropped: Counter::new(),
            reordered_chunks_dropped: Counter::new(),
            corrupt_chunks_dropped: Counter::new(),
            delivery_failures: Counter::new(),
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    pub fn record_send(&self, bytes: u64) {
        if self.enabled {
            self.msgs_sent.inc();
            self.bytes_sent.add(bytes);
        }
    }

    #[inline]
    pub fn record_recv(&self, bytes: u64) {
        if self.enabled {
            self.msgs_received.inc();
            self.bytes_received.add(bytes);
        }
    }

    /// An aggregation buffer was sealed and handed to the wire.
    #[inline]
    pub fn record_flush(&self) {
        if self.enabled {
            self.flushes.inc();
        }
    }

    /// A sealed buffer could not go out (peer busy) and was parked.
    #[inline]
    pub fn record_park(&self) {
        if self.enabled {
            self.wire_parks.inc();
        }
    }

    /// A parked buffer was retried by the progress engine.
    #[inline]
    pub fn record_retry(&self) {
        if self.enabled {
            self.wire_retries.inc();
        }
    }

    /// A buffer request was served from the pool (`hit`) or had to allocate
    /// fresh (`miss`). The hit ratio is the "zero allocations per envelope"
    /// acceptance signal for the aggregated message path.
    #[inline]
    pub fn record_pool_acquire(&self, hit: bool) {
        if self.enabled {
            if hit {
                self.pool_hits.inc();
            } else {
                self.pool_misses.inc();
            }
        }
    }

    /// Record `outstanding` pool buffers checked out simultaneously
    /// (high-water gauge — bounds the pool's steady-state footprint).
    #[inline]
    pub fn record_pool_outstanding(&self, outstanding: u64) {
        if self.enabled {
            self.pool_hwm.record(outstanding);
        }
    }

    /// An unacknowledged wire chunk timed out and was sent again by the
    /// reliable-delivery layer.
    #[inline]
    pub fn record_retransmit(&self) {
        if self.enabled {
            self.retransmits.inc();
        }
    }

    /// An incoming chunk carried an already-delivered sequence number and
    /// was suppressed (duplicate delivery or spurious retransmit).
    #[inline]
    pub fn record_dup_chunk_dropped(&self) {
        if self.enabled {
            self.dup_chunks_dropped.inc();
        }
    }

    /// An incoming chunk arrived ahead of a gap (a predecessor was lost)
    /// and was discarded pending the go-back-N retransmit.
    #[inline]
    pub fn record_reordered_chunk_dropped(&self) {
        if self.enabled {
            self.reordered_chunks_dropped.inc();
        }
    }

    /// An incoming chunk failed header or checksum validation (corruption
    /// or truncation on the wire) and was discarded without delivery.
    #[inline]
    pub fn record_corrupt_chunk_dropped(&self) {
        if self.enabled {
            self.corrupt_chunks_dropped.inc();
        }
    }

    /// Retries toward a destination were exhausted; the pair was declared
    /// unreachable and its queued traffic discarded.
    #[inline]
    pub fn record_delivery_failure(&self) {
        if self.enabled {
            self.delivery_failures.inc();
        }
    }

    pub fn snapshot(&self) -> LamellaeStats {
        LamellaeStats {
            msgs_sent: self.msgs_sent.get(),
            msgs_received: self.msgs_received.get(),
            bytes_sent: self.bytes_sent.get(),
            bytes_received: self.bytes_received.get(),
            flushes: self.flushes.get(),
            wire_parks: self.wire_parks.get(),
            wire_retries: self.wire_retries.get(),
            pool_hits: self.pool_hits.get(),
            pool_misses: self.pool_misses.get(),
            pool_hwm: self.pool_hwm.get(),
            retransmits: self.retransmits.get(),
            dup_chunks_dropped: self.dup_chunks_dropped.get(),
            reordered_chunks_dropped: self.reordered_chunks_dropped.get(),
            corrupt_chunks_dropped: self.corrupt_chunks_dropped.get(),
            delivery_failures: self.delivery_failures.get(),
        }
    }
}

/// Fault-injection metrics; one instance per fault plane (fabric-global).
///
/// These count what the injector *did* to the traffic, while the matching
/// [`LamellaeMetrics`] counters count how the reliable-delivery layer
/// *recovered* — e.g. `drops_injected` on this side vs. `retransmits` on
/// the transport side.
#[derive(Debug, Default)]
pub struct FaultMetrics {
    drops: Counter,
    dups: Counter,
    delays: Counter,
    truncations: Counter,
    corruptions: Counter,
    alloc_failures: Counter,
}

impl FaultMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// A chunk transmission was suppressed entirely.
    #[inline]
    pub fn record_drop(&self) {
        self.drops.inc();
    }

    /// A chunk was delivered twice.
    #[inline]
    pub fn record_dup(&self) {
        self.dups.inc();
    }

    /// A chunk was held back before delivery.
    #[inline]
    pub fn record_delay(&self) {
        self.delays.inc();
    }

    /// A chunk was delivered with bytes cut off the end.
    #[inline]
    pub fn record_truncation(&self) {
        self.truncations.inc();
    }

    /// A chunk was delivered with a bit flipped.
    #[inline]
    pub fn record_corruption(&self) {
        self.corruptions.inc();
    }

    /// A heap or symmetric allocation was failed artificially.
    #[inline]
    pub fn record_alloc_failure(&self) {
        self.alloc_failures.inc();
    }

    pub fn snapshot(&self) -> FaultStats {
        FaultStats {
            drops_injected: self.drops.get(),
            dups_injected: self.dups.get(),
            delays_injected: self.delays.get(),
            truncations_injected: self.truncations.get(),
            corruptions_injected: self.corruptions.get(),
            alloc_failures_injected: self.alloc_failures.get(),
        }
    }
}

/// Executor-level metrics; one instance per PE's thread pool.
#[derive(Debug)]
pub struct ExecutorMetrics {
    enabled: bool,
    spawned: Counter,
    completed: Counter,
    stolen: Counter,
    queue_hwm: Vec<MaxGauge>,
}

impl ExecutorMetrics {
    pub fn new(enabled: bool, workers: usize) -> Self {
        ExecutorMetrics {
            enabled,
            spawned: Counter::new(),
            completed: Counter::new(),
            stolen: Counter::new(),
            queue_hwm: (0..workers).map(|_| MaxGauge::new()).collect(),
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    pub fn record_spawn(&self) {
        if self.enabled {
            self.spawned.inc();
        }
    }

    #[inline]
    pub fn record_complete(&self) {
        if self.enabled {
            self.completed.inc();
        }
    }

    #[inline]
    pub fn record_steal(&self) {
        if self.enabled {
            self.stolen.inc();
        }
    }

    /// Record `depth` pending tasks observed on `worker`'s local queue.
    #[inline]
    pub fn record_queue_depth(&self, worker: usize, depth: u64) {
        if self.enabled {
            if let Some(g) = self.queue_hwm.get(worker) {
                g.record(depth);
            }
        }
    }

    pub fn snapshot(&self) -> ExecutorStats {
        ExecutorStats {
            spawned: self.spawned.get(),
            completed: self.completed.get(),
            stolen: self.stolen.get(),
            queue_depth_hwm: self.queue_hwm.iter().map(MaxGauge::get).collect(),
        }
    }
}

/// AM/array-layer metrics; one instance per PE's runtime.
#[derive(Debug)]
pub struct AmMetrics {
    enabled: bool,
    sent: Counter,
    received: Counter,
    local: Counter,
    replies_sent: Counter,
    replies_received: Counter,
    batch_sub_batches: Counter,
    darcs_created: Counter,
    darcs_dropped: Counter,
    panics_caught: Counter,
    timeouts: Counter,
    retries: Counter,
    cancelled: Counter,
    stalls: Counter,
    unit_sent: Counter,
    acks_received: Counter,
    inline_execs: Counter,
    spilled_execs: Counter,
}

impl AmMetrics {
    pub fn new(enabled: bool) -> Self {
        AmMetrics {
            enabled,
            sent: Counter::new(),
            received: Counter::new(),
            local: Counter::new(),
            replies_sent: Counter::new(),
            replies_received: Counter::new(),
            batch_sub_batches: Counter::new(),
            darcs_created: Counter::new(),
            darcs_dropped: Counter::new(),
            panics_caught: Counter::new(),
            timeouts: Counter::new(),
            retries: Counter::new(),
            cancelled: Counter::new(),
            stalls: Counter::new(),
            unit_sent: Counter::new(),
            acks_received: Counter::new(),
            inline_execs: Counter::new(),
            spilled_execs: Counter::new(),
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// An AM was serialized and sent to a remote PE.
    #[inline]
    pub fn record_sent(&self) {
        if self.enabled {
            self.sent.inc();
        }
    }

    /// An inbound AM was dispatched for execution on this PE.
    #[inline]
    pub fn record_received(&self) {
        if self.enabled {
            self.received.inc();
        }
    }

    /// An AM targeted this PE and ran without serialization.
    #[inline]
    pub fn record_local(&self) {
        if self.enabled {
            self.local.inc();
        }
    }

    #[inline]
    pub fn record_reply_sent(&self) {
        if self.enabled {
            self.replies_sent.inc();
        }
    }

    #[inline]
    pub fn record_reply_received(&self) {
        if self.enabled {
            self.replies_received.inc();
        }
    }

    /// A batched array op fanned out into `n` per-PE sub-batches.
    #[inline]
    pub fn record_sub_batches(&self, n: u64) {
        if self.enabled {
            self.batch_sub_batches.add(n);
        }
    }

    #[inline]
    pub fn record_darc_created(&self) {
        if self.enabled {
            self.darcs_created.inc();
        }
    }

    #[inline]
    pub fn record_darc_dropped(&self) {
        if self.enabled {
            self.darcs_dropped.inc();
        }
    }

    /// An AM handler's `exec` panicked and was caught on this (serving) PE;
    /// the caller was sent an error reply instead.
    #[inline]
    pub fn record_panic_caught(&self) {
        if self.enabled {
            self.panics_caught.inc();
        }
    }

    /// A pending AM was resolved to `Err(Timeout)` after its deadline (and
    /// any retries) expired.
    #[inline]
    pub fn record_timeout(&self) {
        if self.enabled {
            self.timeouts.inc();
        }
    }

    /// An idempotent AM was re-issued after a deadline-window expiry.
    #[inline]
    pub fn record_retry(&self) {
        if self.enabled {
            self.retries.inc();
        }
    }

    /// A pending AM was cancelled by its caller before completion.
    #[inline]
    pub fn record_cancelled(&self) {
        if self.enabled {
            self.cancelled.inc();
        }
    }

    /// The liveness watchdog declared a zero-progress stall verdict.
    #[inline]
    pub fn record_stall(&self) {
        if self.enabled {
            self.stalls.inc();
        }
    }

    /// A unit-output AM took the fire-and-forget wire path (reply elided;
    /// completion via counted acks).
    #[inline]
    pub fn record_unit_sent(&self) {
        if self.enabled {
            self.unit_sent.inc();
        }
    }

    /// A cumulative `AckCount` envelope arrived from a serving PE.
    #[inline]
    pub fn record_ack_received(&self) {
        if self.enabled {
            self.acks_received.inc();
        }
    }

    /// An inbound AM completed inline on the progress path (one poll, no
    /// pool spawn).
    #[inline]
    pub fn record_inline_exec(&self) {
        if self.enabled {
            self.inline_execs.inc();
        }
    }

    /// An inbound AM returned `Pending` (or the inline budget was spent)
    /// and spilled to the thread pool.
    #[inline]
    pub fn record_spilled_exec(&self) {
        if self.enabled {
            self.spilled_execs.inc();
        }
    }

    pub fn snapshot(&self) -> AmStats {
        AmStats {
            sent: self.sent.get(),
            received: self.received.get(),
            local: self.local.get(),
            replies_sent: self.replies_sent.get(),
            replies_received: self.replies_received.get(),
            batch_sub_batches: self.batch_sub_batches.get(),
            darcs_created: self.darcs_created.get(),
            darcs_dropped: self.darcs_dropped.get(),
            panics_caught: self.panics_caught.get(),
            timeouts: self.timeouts.get(),
            retries: self.retries.get(),
            cancelled: self.cancelled.get(),
            stalls: self.stalls.get(),
            unit_sent: self.unit_sent.get(),
            acks_received: self.acks_received.get(),
            inline_execs: self.inline_execs.get(),
            spilled_execs: self.spilled_execs.get(),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot types: plain data, Display, delta().
// ---------------------------------------------------------------------------

/// Snapshot of [`FabricMetrics`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FabricStats {
    pub puts: u64,
    pub gets: u64,
    pub bytes_put: u64,
    pub bytes_get: u64,
    pub inject_puts: u64,
    pub rendezvous_puts: u64,
    pub barrier_rounds: u64,
    pub put_sizes: HistogramSnapshot,
}

impl FabricStats {
    pub fn delta(&self, earlier: &Self) -> Self {
        FabricStats {
            puts: self.puts.saturating_sub(earlier.puts),
            gets: self.gets.saturating_sub(earlier.gets),
            bytes_put: self.bytes_put.saturating_sub(earlier.bytes_put),
            bytes_get: self.bytes_get.saturating_sub(earlier.bytes_get),
            inject_puts: self.inject_puts.saturating_sub(earlier.inject_puts),
            rendezvous_puts: self.rendezvous_puts.saturating_sub(earlier.rendezvous_puts),
            barrier_rounds: self.barrier_rounds.saturating_sub(earlier.barrier_rounds),
            put_sizes: self.put_sizes.delta(&earlier.put_sizes),
        }
    }
}

/// Snapshot of [`LamellaeMetrics`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LamellaeStats {
    pub msgs_sent: u64,
    pub msgs_received: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub flushes: u64,
    pub wire_parks: u64,
    pub wire_retries: u64,
    /// Buffer-pool acquires served by a recycled buffer.
    pub pool_hits: u64,
    /// Buffer-pool acquires that allocated fresh (pool empty).
    pub pool_misses: u64,
    /// High-water mark of simultaneously checked-out pool buffers (gauge:
    /// [`delta`](Self::delta) carries the later value through unchanged).
    pub pool_hwm: u64,
    /// Unacked chunks re-sent after a retransmit timeout.
    pub retransmits: u64,
    /// Received chunks suppressed as already-delivered duplicates.
    pub dup_chunks_dropped: u64,
    /// Received chunks discarded because a predecessor was missing
    /// (go-back-N gap; the sender will retransmit from the gap).
    pub reordered_chunks_dropped: u64,
    /// Received chunks discarded on header/checksum validation failure.
    pub corrupt_chunks_dropped: u64,
    /// Destinations declared unreachable after retry exhaustion.
    pub delivery_failures: u64,
}

impl LamellaeStats {
    pub fn delta(&self, earlier: &Self) -> Self {
        LamellaeStats {
            msgs_sent: self.msgs_sent.saturating_sub(earlier.msgs_sent),
            msgs_received: self.msgs_received.saturating_sub(earlier.msgs_received),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            wire_parks: self.wire_parks.saturating_sub(earlier.wire_parks),
            wire_retries: self.wire_retries.saturating_sub(earlier.wire_retries),
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            pool_misses: self.pool_misses.saturating_sub(earlier.pool_misses),
            pool_hwm: self.pool_hwm,
            retransmits: self.retransmits.saturating_sub(earlier.retransmits),
            dup_chunks_dropped: self.dup_chunks_dropped.saturating_sub(earlier.dup_chunks_dropped),
            reordered_chunks_dropped: self
                .reordered_chunks_dropped
                .saturating_sub(earlier.reordered_chunks_dropped),
            corrupt_chunks_dropped: self
                .corrupt_chunks_dropped
                .saturating_sub(earlier.corrupt_chunks_dropped),
            delivery_failures: self.delivery_failures.saturating_sub(earlier.delivery_failures),
        }
    }

    /// Fraction of pool acquires served without allocating, in `[0, 1]`;
    /// `None` before the first acquire.
    pub fn pool_hit_rate(&self) -> Option<f64> {
        let total = self.pool_hits + self.pool_misses;
        (total > 0).then(|| self.pool_hits as f64 / total as f64)
    }
}

/// Snapshot of [`FaultMetrics`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Chunk transmissions suppressed entirely by the injector.
    pub drops_injected: u64,
    /// Chunks delivered twice by the injector.
    pub dups_injected: u64,
    /// Chunks held back before delivery by the injector.
    pub delays_injected: u64,
    /// Chunks delivered with bytes cut off the end.
    pub truncations_injected: u64,
    /// Chunks delivered with a bit flipped.
    pub corruptions_injected: u64,
    /// Heap/symmetric allocations failed artificially.
    pub alloc_failures_injected: u64,
}

impl FaultStats {
    pub fn delta(&self, earlier: &Self) -> Self {
        FaultStats {
            drops_injected: self.drops_injected.saturating_sub(earlier.drops_injected),
            dups_injected: self.dups_injected.saturating_sub(earlier.dups_injected),
            delays_injected: self.delays_injected.saturating_sub(earlier.delays_injected),
            truncations_injected: self
                .truncations_injected
                .saturating_sub(earlier.truncations_injected),
            corruptions_injected: self
                .corruptions_injected
                .saturating_sub(earlier.corruptions_injected),
            alloc_failures_injected: self
                .alloc_failures_injected
                .saturating_sub(earlier.alloc_failures_injected),
        }
    }

    /// Total faults injected across every category.
    pub fn total(&self) -> u64 {
        self.drops_injected
            + self.dups_injected
            + self.delays_injected
            + self.truncations_injected
            + self.corruptions_injected
            + self.alloc_failures_injected
    }
}

/// Snapshot of [`ExecutorMetrics`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecutorStats {
    pub spawned: u64,
    pub completed: u64,
    pub stolen: u64,
    /// Per-worker run-queue depth high-water marks. Gauges, not counters:
    /// [`delta`](Self::delta) carries the later value through unchanged.
    pub queue_depth_hwm: Vec<u64>,
}

impl ExecutorStats {
    pub fn delta(&self, earlier: &Self) -> Self {
        ExecutorStats {
            spawned: self.spawned.saturating_sub(earlier.spawned),
            completed: self.completed.saturating_sub(earlier.completed),
            stolen: self.stolen.saturating_sub(earlier.stolen),
            queue_depth_hwm: self.queue_depth_hwm.clone(),
        }
    }
}

/// Snapshot of [`AmMetrics`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AmStats {
    pub sent: u64,
    pub received: u64,
    pub local: u64,
    pub replies_sent: u64,
    pub replies_received: u64,
    pub batch_sub_batches: u64,
    pub darcs_created: u64,
    pub darcs_dropped: u64,
    /// AM handler panics caught on this (serving) PE.
    pub panics_caught: u64,
    /// Pending AMs resolved to `Err(Timeout)` after deadline expiry.
    pub timeouts: u64,
    /// Idempotent-AM re-issues after a deadline-window expiry.
    pub retries: u64,
    /// Pending AMs cancelled by their caller.
    pub cancelled: u64,
    /// Liveness-watchdog zero-progress stall verdicts.
    pub stalls: u64,
    /// Fire-and-forget unit AMs sent (reply elided; counted-ack completion).
    pub unit_sent: u64,
    /// Cumulative `AckCount` envelopes received from serving PEs.
    pub acks_received: u64,
    /// Inbound AMs completed inline on the progress path (no pool spawn).
    pub inline_execs: u64,
    /// Inbound AMs that returned `Pending` (or exhausted the inline budget)
    /// and spilled to the thread pool.
    pub spilled_execs: u64,
}

impl AmStats {
    pub fn delta(&self, earlier: &Self) -> Self {
        AmStats {
            sent: self.sent.saturating_sub(earlier.sent),
            received: self.received.saturating_sub(earlier.received),
            local: self.local.saturating_sub(earlier.local),
            replies_sent: self.replies_sent.saturating_sub(earlier.replies_sent),
            replies_received: self.replies_received.saturating_sub(earlier.replies_received),
            batch_sub_batches: self.batch_sub_batches.saturating_sub(earlier.batch_sub_batches),
            darcs_created: self.darcs_created.saturating_sub(earlier.darcs_created),
            darcs_dropped: self.darcs_dropped.saturating_sub(earlier.darcs_dropped),
            panics_caught: self.panics_caught.saturating_sub(earlier.panics_caught),
            timeouts: self.timeouts.saturating_sub(earlier.timeouts),
            retries: self.retries.saturating_sub(earlier.retries),
            cancelled: self.cancelled.saturating_sub(earlier.cancelled),
            stalls: self.stalls.saturating_sub(earlier.stalls),
            unit_sent: self.unit_sent.saturating_sub(earlier.unit_sent),
            acks_received: self.acks_received.saturating_sub(earlier.acks_received),
            inline_execs: self.inline_execs.saturating_sub(earlier.inline_execs),
            spilled_execs: self.spilled_execs.saturating_sub(earlier.spilled_execs),
        }
    }
}

/// The layered, typed stats snapshot returned by `LamellarWorld::stats()`.
///
/// All counters are cumulative since world construction. Use
/// [`delta`](Self::delta) to isolate a phase:
///
/// ```
/// use lamellar_metrics::RuntimeStats;
/// let before = RuntimeStats::default();
/// let after = RuntimeStats::default();
/// let phase = after.delta(&before);
/// println!("{phase}");
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RuntimeStats {
    pub fabric: FabricStats,
    pub lamellae: LamellaeStats,
    pub executor: ExecutorStats,
    pub am: AmStats,
    /// Fault-injection activity; all-zero when the FaultPlane is disabled.
    pub fault: FaultStats,
}

impl RuntimeStats {
    /// Counters accumulated since `earlier` (fieldwise saturating
    /// subtraction; gauges carry the later value).
    pub fn delta(&self, earlier: &Self) -> Self {
        RuntimeStats {
            fabric: self.fabric.delta(&earlier.fabric),
            lamellae: self.lamellae.delta(&earlier.lamellae),
            executor: self.executor.delta(&earlier.executor),
            am: self.am.delta(&earlier.am),
            fault: self.fault.delta(&earlier.fault),
        }
    }
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "layer     metric                 value")?;
        writeln!(f, "--------- ---------------------- ------------")?;
        let mut row = |layer: &str, metric: &str, value: String| {
            writeln!(f, "{layer:<9} {metric:<22} {value}")
        };
        row("fabric", "puts", self.fabric.puts.to_string())?;
        row("fabric", "gets", self.fabric.gets.to_string())?;
        row("fabric", "bytes_put", self.fabric.bytes_put.to_string())?;
        row("fabric", "bytes_get", self.fabric.bytes_get.to_string())?;
        row("fabric", "inject_puts", self.fabric.inject_puts.to_string())?;
        row("fabric", "rendezvous_puts", self.fabric.rendezvous_puts.to_string())?;
        row("fabric", "barrier_rounds", self.fabric.barrier_rounds.to_string())?;
        row("fabric", "put_sizes", self.fabric.put_sizes.render())?;
        row("lamellae", "msgs_sent", self.lamellae.msgs_sent.to_string())?;
        row("lamellae", "msgs_received", self.lamellae.msgs_received.to_string())?;
        row("lamellae", "bytes_sent", self.lamellae.bytes_sent.to_string())?;
        row("lamellae", "bytes_received", self.lamellae.bytes_received.to_string())?;
        row("lamellae", "flushes", self.lamellae.flushes.to_string())?;
        row("lamellae", "wire_parks", self.lamellae.wire_parks.to_string())?;
        row("lamellae", "wire_retries", self.lamellae.wire_retries.to_string())?;
        row("lamellae", "pool_hits", self.lamellae.pool_hits.to_string())?;
        row("lamellae", "pool_misses", self.lamellae.pool_misses.to_string())?;
        row("lamellae", "pool_hwm", self.lamellae.pool_hwm.to_string())?;
        row("lamellae", "retransmits", self.lamellae.retransmits.to_string())?;
        row("lamellae", "dup_chunks_dropped", self.lamellae.dup_chunks_dropped.to_string())?;
        row("lamellae", "reordered_drops", self.lamellae.reordered_chunks_dropped.to_string())?;
        row("lamellae", "corrupt_drops", self.lamellae.corrupt_chunks_dropped.to_string())?;
        row("lamellae", "delivery_failures", self.lamellae.delivery_failures.to_string())?;
        row("executor", "spawned", self.executor.spawned.to_string())?;
        row("executor", "completed", self.executor.completed.to_string())?;
        row("executor", "stolen", self.executor.stolen.to_string())?;
        let hwm = self
            .executor
            .queue_depth_hwm
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        row("executor", "queue_depth_hwm", if hwm.is_empty() { "-".into() } else { hwm })?;
        row("am", "sent", self.am.sent.to_string())?;
        row("am", "received", self.am.received.to_string())?;
        row("am", "local", self.am.local.to_string())?;
        row("am", "replies_sent", self.am.replies_sent.to_string())?;
        row("am", "replies_received", self.am.replies_received.to_string())?;
        row("am", "batch_sub_batches", self.am.batch_sub_batches.to_string())?;
        row("am", "darcs_created", self.am.darcs_created.to_string())?;
        row("am", "darcs_dropped", self.am.darcs_dropped.to_string())?;
        row("am", "panics_caught", self.am.panics_caught.to_string())?;
        row("am", "timeouts", self.am.timeouts.to_string())?;
        row("am", "retries", self.am.retries.to_string())?;
        row("am", "cancelled", self.am.cancelled.to_string())?;
        row("am", "stalls", self.am.stalls.to_string())?;
        row("am", "unit_sent", self.am.unit_sent.to_string())?;
        row("am", "acks_received", self.am.acks_received.to_string())?;
        row("am", "inline_execs", self.am.inline_execs.to_string())?;
        row("am", "spilled_execs", self.am.spilled_execs.to_string())?;
        row("fault", "drops_injected", self.fault.drops_injected.to_string())?;
        row("fault", "dups_injected", self.fault.dups_injected.to_string())?;
        row("fault", "delays_injected", self.fault.delays_injected.to_string())?;
        row("fault", "truncations_injected", self.fault.truncations_injected.to_string())?;
        row("fault", "corruptions_injected", self.fault.corruptions_injected.to_string())?;
        row("fault", "alloc_failures", self.fault.alloc_failures_injected.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_are_monotonic_under_concurrency() {
        let m = Arc::new(FabricMetrics::new(true));
        let mut last = 0;
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        m.record_put(i % 128, i % 3 == 0);
                    }
                })
            })
            .collect();
        // Concurrent reads must never observe a decrease.
        for _ in 0..100 {
            let now = m.snapshot().puts;
            assert!(now >= last, "counter went backwards: {now} < {last}");
            last = now;
        }
        for t in threads {
            t.join().unwrap();
        }
        let s = m.snapshot();
        assert_eq!(s.puts, 4000);
        assert_eq!(s.inject_puts + s.rendezvous_puts, s.puts);
        assert_eq!(s.put_sizes.count(), 4000);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let f = FabricMetrics::new(false);
        f.record_put(100, true);
        f.record_get(100);
        f.record_barrier_round();
        assert_eq!(f.snapshot(), FabricStats::default());

        let l = LamellaeMetrics::new(false);
        l.record_send(64);
        l.record_recv(64);
        l.record_flush();
        assert_eq!(l.snapshot(), LamellaeStats::default());

        let e = ExecutorMetrics::new(false, 2);
        e.record_spawn();
        e.record_queue_depth(0, 9);
        let s = e.snapshot();
        assert_eq!(s.spawned, 0);
        assert_eq!(s.queue_depth_hwm, vec![0, 0]);

        let a = AmMetrics::new(false);
        a.record_sent();
        a.record_sub_batches(5);
        a.record_panic_caught();
        a.record_timeout();
        a.record_retry();
        a.record_cancelled();
        a.record_stall();
        a.record_unit_sent();
        a.record_ack_received();
        a.record_inline_exec();
        a.record_spilled_exec();
        assert_eq!(a.snapshot(), AmStats::default());
    }

    #[test]
    fn delta_isolates_a_phase() {
        let fabric = FabricMetrics::new(true);
        let lamellae = LamellaeMetrics::new(true);
        let executor = ExecutorMetrics::new(true, 1);
        let am = AmMetrics::new(true);

        let fault = FaultMetrics::new();

        fabric.record_put(8, true);
        lamellae.record_send(100);
        fault.record_drop();
        let before = RuntimeStats {
            fabric: fabric.snapshot(),
            lamellae: lamellae.snapshot(),
            executor: executor.snapshot(),
            am: am.snapshot(),
            fault: fault.snapshot(),
        };

        fabric.record_put(1 << 12, false);
        fabric.record_get(32);
        lamellae.record_send(50);
        lamellae.record_flush();
        executor.record_spawn();
        executor.record_complete();
        executor.record_steal();
        executor.record_queue_depth(0, 7);
        am.record_sent();
        am.record_sub_batches(3);
        am.record_darc_created();
        am.record_panic_caught();
        am.record_timeout();
        am.record_retry();
        am.record_retry();
        am.record_cancelled();
        am.record_stall();
        am.record_unit_sent();
        am.record_unit_sent();
        am.record_ack_received();
        am.record_inline_exec();
        am.record_spilled_exec();
        fault.record_drop();
        fault.record_corruption();
        lamellae.record_retransmit();
        lamellae.record_corrupt_chunk_dropped();

        let after = RuntimeStats {
            fabric: fabric.snapshot(),
            lamellae: lamellae.snapshot(),
            executor: executor.snapshot(),
            am: am.snapshot(),
            fault: fault.snapshot(),
        };
        let d = after.delta(&before);
        assert_eq!(d.fabric.puts, 1);
        assert_eq!(d.fabric.rendezvous_puts, 1);
        assert_eq!(d.fabric.inject_puts, 0);
        assert_eq!(d.fabric.gets, 1);
        assert_eq!(d.fabric.bytes_put, 1 << 12);
        assert_eq!(d.fabric.put_sizes.count(), 1);
        assert_eq!(d.lamellae.msgs_sent, 1);
        assert_eq!(d.lamellae.bytes_sent, 50);
        assert_eq!(d.lamellae.flushes, 1);
        assert_eq!(d.executor.spawned, 1);
        assert_eq!(d.executor.completed, 1);
        assert_eq!(d.executor.stolen, 1);
        assert_eq!(d.executor.queue_depth_hwm, vec![7]);
        assert_eq!(d.am.sent, 1);
        assert_eq!(d.am.batch_sub_batches, 3);
        assert_eq!(d.am.darcs_created, 1);
        assert_eq!(d.am.panics_caught, 1);
        assert_eq!(d.am.timeouts, 1);
        assert_eq!(d.am.retries, 2);
        assert_eq!(d.am.cancelled, 1);
        assert_eq!(d.am.stalls, 1);
        assert_eq!(d.am.unit_sent, 2);
        assert_eq!(d.am.acks_received, 1);
        assert_eq!(d.am.inline_execs, 1);
        assert_eq!(d.am.spilled_execs, 1);
        assert_eq!(d.fault.drops_injected, 1);
        assert_eq!(d.fault.corruptions_injected, 1);
        assert_eq!(d.fault.total(), 2);
        assert_eq!(d.lamellae.retransmits, 1);
        assert_eq!(d.lamellae.corrupt_chunks_dropped, 1);
        // delta of equal snapshots is all-zero (except gauges).
        let same = after.delta(&after);
        assert_eq!(same.fabric, FabricStats::default());
        assert_eq!(same.am, AmStats::default());
        assert_eq!(same.fault, FaultStats::default());
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        let h = SizeHistogram::new();
        h.record(0);
        h.record(1); // both land in bucket 0: [0,1]
        h.record(2); // bucket 1: (1,2]
        h.record(3); // bucket 2: (2,4]
        h.record(4); // bucket 2
        h.record(5); // bucket 3: (4,8]
        h.record(u64::MAX); // last bucket
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[3], 1);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(s.count(), 7);
    }

    #[test]
    fn display_renders_every_layer() {
        let table = RuntimeStats::default().to_string();
        for layer in ["fabric", "lamellae", "executor", "am", "fault"] {
            assert!(table.contains(layer), "missing layer {layer} in:\n{table}");
        }
        assert!(table.contains("inject_puts"));
        assert!(table.contains("wire_parks"));
        assert!(table.contains("pool_hits"));
        assert!(table.contains("pool_hwm"));
        assert!(table.contains("queue_depth_hwm"));
        assert!(table.contains("batch_sub_batches"));
        assert!(table.contains("retransmits"));
        assert!(table.contains("drops_injected"));
        assert!(table.contains("unit_sent"));
        assert!(table.contains("acks_received"));
        assert!(table.contains("inline_execs"));
        assert!(table.contains("spilled_execs"));
    }

    #[test]
    fn pool_counters_and_hit_rate() {
        let l = LamellaeMetrics::new(true);
        assert_eq!(l.snapshot().pool_hit_rate(), None);
        l.record_pool_acquire(false);
        for _ in 0..19 {
            l.record_pool_acquire(true);
        }
        l.record_pool_outstanding(3);
        l.record_pool_outstanding(2);
        let s = l.snapshot();
        assert_eq!(s.pool_hits, 19);
        assert_eq!(s.pool_misses, 1);
        assert_eq!(s.pool_hwm, 3);
        assert!((s.pool_hit_rate().unwrap() - 0.95).abs() < 1e-9);
        // Gauge semantics: delta keeps the later high-water value.
        let d = s.delta(&s);
        assert_eq!(d.pool_hits, 0);
        assert_eq!(d.pool_hwm, 3);
    }

    #[test]
    fn max_gauge_keeps_maximum() {
        let g = MaxGauge::new();
        g.record(3);
        g.record(9);
        g.record(5);
        assert_eq!(g.get(), 9);
    }
}
