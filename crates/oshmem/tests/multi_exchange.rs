//! Regression tests for multi-instance exchange patterns: a PE blocked on
//! one exchange's wire must never stop draining another's (the
//! request/response deadlock fixed by Exstack2's non-blocking sends).

use oshmem_sim::convey::Convey;
use oshmem_sim::exstack2::Exstack2;
use oshmem_sim::shmem_launch;

#[derive(Clone, Copy, Default)]
struct Req {
    src: u32,
    slot: u32,
}

#[derive(Clone, Copy, Default)]
struct Resp {
    slot: u32,
    val: u64,
}

/// Request/response over two conveyors with tiny wire buffers — the
/// pattern that used to deadlock when sends blocked.
#[test]
fn convey_request_response_under_backpressure() {
    shmem_launch(4, 16, |ctx| {
        let n = ctx.n_pes();
        let me = ctx.my_pe();
        let total = 2_000usize;
        // Small capacity forces constant wire backpressure.
        let mut reqs = Convey::<Req>::new(&ctx, 32);
        let mut reps = Convey::<Resp>::new(&ctx, 32);
        let mut got = vec![0u64; total];
        let mut pending = total;
        let mut i = 0;
        loop {
            while i < total {
                // Pseudo-random destinations, including self.
                let dst = (i.wrapping_mul(2654435761) ^ me) % n;
                reqs.push(&ctx, dst, Req { src: me as u32, slot: i as u32 });
                i += 1;
            }
            let req_more = reqs.advance(&ctx, i == total);
            while let Some(r) = reqs.pull() {
                reps.push(
                    &ctx,
                    r.src as usize,
                    Resp { slot: r.slot, val: 1000 + ctx.my_pe() as u64 },
                );
            }
            let rep_more = reps.advance(&ctx, !req_more && i == total);
            while let Some(r) = reps.pull() {
                got[r.slot as usize] = r.val;
                pending -= 1;
            }
            if !req_more && !rep_more && pending == 0 {
                break;
            }
        }
        // Every request produced exactly one response from its owner.
        for (slot, &v) in got.iter().enumerate() {
            let dst = (slot.wrapping_mul(2654435761) ^ me) % n;
            assert_eq!(v, 1000 + dst as u64, "slot {slot}");
        }
        ctx.barrier_all();
    });
}

/// Two independent exstack2 instances exchanging in opposite phases.
#[test]
fn two_exstack2_instances_interleave() {
    shmem_launch(3, 16, |ctx| {
        let n = ctx.n_pes();
        let me = ctx.my_pe();
        let mut a = Exstack2::<u64>::new(&ctx, 16);
        let mut b = Exstack2::<u64>::new(&ctx, 16);
        for k in 0..600u64 {
            a.push(&ctx, (k as usize + me) % n, k);
            b.push(&ctx, (k as usize * 3 + me) % n, 10_000 + k);
        }
        let mut got_a = 0usize;
        let mut got_b = 0usize;
        loop {
            let ma = a.advance(&ctx, true);
            while let Some((_s, v)) = a.pop() {
                assert!(v < 10_000);
                got_a += 1;
            }
            let mb = b.advance(&ctx, true);
            while let Some((_s, v)) = b.pop() {
                assert!(v >= 10_000);
                got_b += 1;
            }
            if !ma && !mb {
                break;
            }
        }
        ctx.barrier_all();
        // Conservation across the world is checked by the quiescence
        // protocol itself; locally we at least got something on 3 PEs.
        assert!(got_a + got_b > 0);
        ctx.barrier_all();
    });
}
