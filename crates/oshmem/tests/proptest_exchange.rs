//! Property tests over the aggregation libraries: arbitrary traffic
//! patterns must be delivered exactly once, whatever the buffer capacity.

use oshmem_sim::convey::Convey;
use oshmem_sim::exstack::Exstack;
use oshmem_sim::exstack2::Exstack2;
use oshmem_sim::shmem_launch;
use proptest::prelude::*;
use std::sync::Arc;

/// Run an all-to-all with a per-PE message plan; returns per-PE received
/// (src, payload) multisets, which must match what was addressed to them.
fn check_exactly_once(
    npes: usize,
    capacity: usize,
    plan: Vec<(usize, u64)>, // (dst % npes, payload-id) issued by every PE
    which: &'static str,
) {
    let plan = Arc::new(plan);
    let plan2 = Arc::clone(&plan);
    let received = shmem_launch(npes, 16, move |ctx| {
        let n = ctx.n_pes();
        let me = ctx.my_pe();
        let mut got: Vec<(usize, u64)> = Vec::new();
        match which {
            "exstack" => {
                let mut ex = Exstack::<u64>::new(&ctx, capacity);
                let mut i = 0;
                while ex.proceed(&ctx, i == plan2.len()) {
                    while i < plan2.len() {
                        let (dst, tag) = plan2[i];
                        let payload = (me as u64) << 32 | tag;
                        if !ex.push(dst % n, payload) {
                            break;
                        }
                        i += 1;
                    }
                    ex.exchange(&ctx);
                    while let Some((src, v)) = ex.pop(&ctx) {
                        assert_eq!(src as u64, v >> 32);
                        got.push((src, v & 0xffff_ffff));
                    }
                }
            }
            "exstack2" => {
                let mut ex = Exstack2::<u64>::new(&ctx, capacity);
                for &(dst, tag) in plan2.iter() {
                    ex.push(&ctx, dst % n, (me as u64) << 32 | tag);
                }
                loop {
                    let more = ex.advance(&ctx, true);
                    while let Some((src, v)) = ex.pop() {
                        assert_eq!(src as u64, v >> 32);
                        got.push((src, v & 0xffff_ffff));
                    }
                    if !more {
                        break;
                    }
                }
            }
            "convey" => {
                let mut cv = Convey::<u64>::new(&ctx, capacity);
                for &(dst, tag) in plan2.iter() {
                    cv.push(&ctx, dst % n, (me as u64) << 32 | tag);
                }
                loop {
                    let more = cv.advance(&ctx, true);
                    while let Some(v) = cv.pull() {
                        got.push(((v >> 32) as usize, v & 0xffff_ffff));
                    }
                    if !more {
                        break;
                    }
                }
            }
            _ => unreachable!(),
        }
        ctx.barrier_all();
        got
    });
    // Expected: PE d receives, from every source, exactly the tags whose
    // dst % n == d.
    for (d, got) in received.into_iter().enumerate() {
        let mut got = got;
        got.sort_unstable();
        let mut expect: Vec<(usize, u64)> = (0..npes)
            .flat_map(|src| {
                plan.iter().filter(|&&(dst, _)| dst % npes == d).map(move |&(_, tag)| (src, tag))
            })
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect, "{which}: PE {d} delivery mismatch");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn exstack_delivers_exactly_once(
        plan in prop::collection::vec((0usize..8, 0u64..10_000), 0..120),
        capacity in 1usize..64,
        npes in 2usize..5,
    ) {
        check_exactly_once(npes, capacity, plan, "exstack");
    }

    #[test]
    fn exstack2_delivers_exactly_once(
        plan in prop::collection::vec((0usize..8, 0u64..10_000), 0..120),
        capacity in 1usize..64,
        npes in 2usize..5,
    ) {
        check_exactly_once(npes, capacity, plan, "exstack2");
    }

    #[test]
    fn convey_delivers_exactly_once(
        plan in prop::collection::vec((0usize..8, 0u64..10_000), 0..120),
        capacity in 1usize..64,
        npes in 2usize..7,
    ) {
        check_exactly_once(npes, capacity, plan, "convey");
    }
}
