//! Exstack: the bulk-synchronous BALE aggregation library.
//!
//! Paper Sec. II: "Exstack performs synchronous aggregation (resembling a
//! bulk synchronous programming model)." The canonical loop is
//!
//! ```text
//! while exstack_proceed(ex, i == n) {
//!     while i < n && exstack_push(ex, pkg, pe) { i += 1 }
//!     exstack_exchange(ex)            // collective all-to-all of buffers
//!     while exstack_pop(ex, &pkg, &from) { process(pkg) }
//! }
//! ```
//!
//! Buffers live in symmetric memory: each PE hosts one inbox slot of
//! `capacity` items *per source PE*; `exchange` is a barrier-put-barrier.

use crate::shmem::{ShmemCtx, SymSlice};

/// A bulk-synchronous exchange stack for `Copy` items.
pub struct Exstack<T: Copy + Default> {
    /// Items per (src, dst) buffer.
    capacity: usize,
    /// Local staging, one buffer per destination.
    send: Vec<Vec<T>>,
    /// Symmetric inbox: `num_pes × capacity` items, segmented by source PE.
    inbox: SymSlice<T>,
    /// Symmetric inbox counts, one slot per source PE.
    counts: SymSlice<u64>,
    /// Symmetric done flags, one per PE.
    done: SymSlice<u64>,
    /// Drain cursor: (source PE, index within its segment).
    drain: (usize, usize),
    /// Snapshot of this round's inbox counts.
    drained_counts: Vec<u64>,
}

impl<T: Copy + Default> Exstack<T> {
    /// Collectively create an exstack with `capacity` items per PE pair.
    pub fn new(ctx: &ShmemCtx, capacity: usize) -> Self {
        assert!(capacity > 0);
        let n = ctx.n_pes();
        Exstack {
            capacity,
            send: vec![Vec::with_capacity(capacity); n],
            inbox: ctx.shmem_malloc::<T>(n * capacity),
            counts: ctx.shmem_malloc::<u64>(n),
            done: ctx.shmem_malloc::<u64>(n),
            drain: (0, 0),
            drained_counts: vec![0; n],
        }
    }

    /// Stage an item for `dst`. Returns false (item not taken) when the
    /// buffer for `dst` is full — time to `exchange`.
    pub fn push(&mut self, dst: usize, item: T) -> bool {
        if self.send[dst].len() >= self.capacity {
            return false;
        }
        self.send[dst].push(item);
        true
    }

    /// Collective: everyone transmits its staged buffers into the
    /// destinations' inboxes, then starts draining.
    pub fn exchange(&mut self, ctx: &ShmemCtx) {
        let me = ctx.my_pe();
        ctx.barrier_all(); // inboxes from the previous round fully drained
        for (dst, buf) in self.send.iter_mut().enumerate() {
            ctx.p(self.counts, dst, me, buf.len() as u64);
            if !buf.is_empty() {
                ctx.put(self.inbox, dst, me * self.capacity, buf);
            }
            buf.clear();
        }
        ctx.barrier_all(); // all puts complete
                           // SAFETY: between the barriers above and the next exchange's first
                           // barrier, this PE is the only accessor of its inbox.
        let counts = unsafe { ctx.local_slice(self.counts) };
        self.drained_counts.copy_from_slice(counts);
        self.drain = (0, 0);
    }

    /// Pop the next received item, with its source PE.
    pub fn pop(&mut self, ctx: &ShmemCtx) -> Option<(usize, T)> {
        let n = ctx.n_pes();
        while self.drain.0 < n {
            let (src, idx) = self.drain;
            if (idx as u64) < self.drained_counts[src] {
                // SAFETY: see exchange — inbox is quiescent between rounds.
                let inbox = unsafe { ctx.local_slice(self.inbox) };
                let item = inbox[src * self.capacity + idx];
                self.drain.1 += 1;
                return Some((src, item));
            }
            self.drain = (src + 1, 0);
        }
        None
    }

    /// Collective vote: returns true while any PE still has work
    /// (`exstack_proceed`). Pass `im_done` once this PE will push nothing
    /// more.
    pub fn proceed(&mut self, ctx: &ShmemCtx, im_done: bool) -> bool {
        let me = ctx.my_pe();
        let flag = if im_done && self.send.iter().all(|b| b.is_empty()) { 1 } else { 0 };
        for pe in 0..ctx.n_pes() {
            ctx.p(self.done, pe, me, flag);
        }
        ctx.barrier_all();
        // SAFETY: flags written before the barrier; nobody writes again
        // until the next proceed.
        let done = unsafe { ctx.local_slice(self.done) };
        let all_done = done.iter().all(|&f| f == 1);
        ctx.barrier_all();
        !all_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shmem::shmem_launch;

    /// Histogram-style all-to-all: every PE sends k items to every PE;
    /// receivers must see exactly n_pes × k items with correct payloads.
    #[test]
    fn bulk_synchronous_all_to_all() {
        let totals = shmem_launch(4, 8, |ctx| {
            let n = ctx.n_pes();
            let me = ctx.my_pe();
            let mut ex = Exstack::<u64>::new(&ctx, 16);
            let mut outgoing: Vec<(usize, u64)> =
                (0..10 * n).map(|i| (i % n, (me * 1000 + i) as u64)).collect();
            let mut received = Vec::new();
            let mut i = 0;
            while ex.proceed(&ctx, i == outgoing.len()) {
                while i < outgoing.len() {
                    let (dst, item) = outgoing[i];
                    if !ex.push(dst, item) {
                        break;
                    }
                    i += 1;
                }
                ex.exchange(&ctx);
                while let Some((src, item)) = ex.pop(&ctx) {
                    // Payload encodes its sender.
                    assert_eq!(item / 1000, src as u64);
                    received.push(item);
                }
            }
            outgoing.clear();
            received.len()
        });
        assert_eq!(totals, vec![40, 40, 40, 40]);
    }

    #[test]
    fn push_respects_capacity() {
        shmem_launch(2, 4, |ctx| {
            let mut ex = Exstack::<u64>::new(&ctx, 4);
            for i in 0..4 {
                assert!(ex.push(0, i));
            }
            assert!(!ex.push(0, 99), "5th push must be refused");
            // Drain the protocol so both PEs exit cleanly.
            let mut done = false;
            while ex.proceed(&ctx, done) {
                ex.exchange(&ctx);
                while ex.pop(&ctx).is_some() {}
                done = true;
            }
        });
    }
}
