//! Selectors: the HClib actor-model baseline (paper Sec. II / IV-B).
//!
//! "Within this library, point-to-point remote operations are represented
//! as fine-grained asynchronous actor messages, which abstracts the
//! complexities of message aggregation and termination detection from the
//! user."
//!
//! One actor per PE with `MB` typed mailboxes; the user sends fine-grained
//! messages and provides per-mailbox handlers; [`Selector::execute`] runs
//! until global quiescence (aggregation and termination detection handled
//! internally by the Exstack2 transport).

use crate::exstack2::Exstack2;
use crate::shmem::ShmemCtx;

/// A message tagged with its mailbox.
#[derive(Clone, Copy)]
struct Tagged<T: Copy> {
    mailbox: u32,
    msg: T,
}

/// A per-PE actor with `MB` mailboxes carrying `Copy` messages.
pub struct Selector<T: Copy, const MB: usize = 1> {
    ex: Exstack2<Tagged<T>>,
    done: bool,
}

impl<T: Copy, const MB: usize> Selector<T, MB> {
    /// Collectively create the actor network (`capacity` items per wire
    /// buffer; 0 = default).
    pub fn new(ctx: &ShmemCtx, capacity: usize) -> Self {
        Selector { ex: Exstack2::new(ctx, capacity), done: false }
    }

    /// Send `msg` to `dst`'s mailbox `mb` (HClib's `selector.send(mb, pkt,
    /// dst)`).
    pub fn send(&mut self, ctx: &ShmemCtx, mb: usize, dst: usize, msg: T) {
        assert!(mb < MB, "mailbox {mb} out of range");
        assert!(!self.done, "send after done");
        self.ex.push(ctx, dst, Tagged { mailbox: mb as u32, msg });
    }

    /// Declare that this PE will send no more messages (HClib's
    /// `selector.done(mb)` for all mailboxes).
    pub fn done(&mut self) {
        self.done = true;
    }

    /// Drive the actor until global quiescence, invoking
    /// `handler(mailbox, src_pe, msg)` for every delivered message.
    /// The handler may send new messages through the provided selector
    /// reference (actor chains), as long as `done` has not been called —
    /// so handlers sending replies should be structured with separate
    /// request/response mailboxes and `done` called only once requests are
    /// exhausted.
    pub fn execute(&mut self, ctx: &ShmemCtx, mut handler: impl FnMut(usize, usize, T)) {
        loop {
            let more = self.ex.advance(ctx, self.done);
            while let Some((src, tagged)) = self.ex.pop() {
                handler(tagged.mailbox as usize, src, tagged.msg);
            }
            if !more {
                break;
            }
        }
        ctx.barrier_all();
    }

    /// One cooperative step (for applications interleaving sends with
    /// handling, e.g. request/response actors): delivers pending messages,
    /// returns false once globally quiescent.
    pub fn step(&mut self, ctx: &ShmemCtx, mut handler: impl FnMut(usize, usize, T)) -> bool {
        let more = self.ex.advance(ctx, self.done);
        while let Some((src, tagged)) = self.ex.pop() {
            handler(tagged.mailbox as usize, src, tagged.msg);
        }
        more
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shmem::shmem_launch;

    #[test]
    fn actor_histogram_counts_are_exact() {
        // Each PE sends 300 increments to pseudo-random owners; handlers
        // bump a local counter; totals must be conserved.
        let totals = shmem_launch(4, 16, |ctx| {
            let n = ctx.n_pes();
            let me = ctx.my_pe();
            let mut sel = Selector::<u64, 1>::new(&ctx, 32);
            for i in 0..300 {
                let dst = (i * 13 + me * 7) % n;
                sel.send(&ctx, 0, dst, 1);
            }
            sel.done();
            let mut local = 0u64;
            sel.execute(&ctx, |mb, _src, v| {
                assert_eq!(mb, 0);
                local += v;
            });
            local
        });
        assert_eq!(totals.iter().sum::<u64>(), 1200);
    }

    #[test]
    fn two_mailboxes_are_distinguished() {
        shmem_launch(2, 16, |ctx| {
            let mut sel = Selector::<u32, 2>::new(&ctx, 8);
            let other = 1 - ctx.my_pe();
            sel.send(&ctx, 0, other, 100);
            sel.send(&ctx, 1, other, 200);
            sel.done();
            let mut got = [0u32; 2];
            sel.execute(&ctx, |mb, _src, v| {
                got[mb] += v;
            });
            assert_eq!(got, [100, 200]);
        });
    }
}
