//! The SHMEM-style substrate: symmetric heap, put/get, remote atomics.
//!
//! Mirrors the OpenSHMEM subset the BALE baselines use. Symmetric
//! allocation follows the classic SHMEM contract: every PE calls
//! `shmem_malloc` collectively in the same program order and receives the
//! same offset (enforced here with a call-sequence memo on the shared
//! allocator).

use parking_lot::Mutex;
use rofi_sim::fabric::{Fabric, FabricConfig};
use rofi_sim::{FabricPe, NetConfig};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Shared state of one SHMEM "job".
struct ShmemWorld {
    /// Memo: collective-allocation sequence number → (offset, PEs served).
    sym_calls: Mutex<HashMap<u64, (usize, usize)>>,
}

/// A PE's SHMEM context.
pub struct ShmemCtx {
    ep: FabricPe,
    world: Arc<ShmemWorld>,
    /// This PE's collective-call counter (SPMD order assumption).
    sym_seq: std::cell::Cell<u64>,
}

// The Cell is fine: a ShmemCtx belongs to exactly one PE thread.
unsafe impl Send for ShmemCtx {}

/// A typed view of a symmetric allocation: the same `offset` addresses a
/// block of `len` `T`s on every PE.
pub struct SymSlice<T> {
    offset: usize,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T> Clone for SymSlice<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SymSlice<T> {}

impl<T> SymSlice<T> {
    /// Elements per PE.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn byte_off(&self, index: usize) -> usize {
        assert!(index <= self.len, "symmetric index {index} out of bounds ({})", self.len);
        self.offset + index * std::mem::size_of::<T>()
    }
}

impl ShmemCtx {
    /// This PE's rank (`shmem_my_pe`).
    pub fn my_pe(&self) -> usize {
        self.ep.pe()
    }

    /// Number of PEs (`shmem_n_pes`).
    pub fn n_pes(&self) -> usize {
        self.ep.num_pes()
    }

    /// Collective symmetric allocation (`shmem_malloc`), zero-initialized.
    /// Every PE must call in the same order.
    pub fn shmem_malloc<T: Copy>(&self, len: usize) -> SymSlice<T> {
        let seq = self.sym_seq.get();
        self.sym_seq.set(seq + 1);
        let bytes = (len * std::mem::size_of::<T>()).max(1);
        let align = std::mem::align_of::<T>().max(8);
        let npes = self.n_pes();
        let offset = {
            let mut calls = self.world.sym_calls.lock();
            match calls.get_mut(&seq) {
                Some(entry) => {
                    entry.1 += 1;
                    let off = entry.0;
                    if entry.1 == npes {
                        calls.remove(&seq);
                    }
                    off
                }
                None => {
                    let off = self
                        .ep
                        .fabric()
                        .alloc_symmetric(bytes, align)
                        .expect("symmetric heap exhausted");
                    if npes > 1 {
                        calls.insert(seq, (off, 1));
                    }
                    off
                }
            }
        };
        self.barrier_all();
        SymSlice { offset, len, _marker: PhantomData }
    }

    /// Blocking put of `src` into `pe`'s copy of `slice` at `index`
    /// (`shmem_putmem`).
    pub fn put<T: Copy>(&self, slice: SymSlice<T>, pe: usize, index: usize, src: &[T]) {
        assert!(index + src.len() <= slice.len, "put out of bounds");
        let bytes = unsafe {
            std::slice::from_raw_parts(src.as_ptr() as *const u8, std::mem::size_of_val(src))
        };
        // SAFETY: SHMEM semantics — racing accesses are the program's
        // responsibility, as on real hardware; the BALE kernels synchronize
        // with barriers.
        unsafe { self.ep.put(pe, slice.byte_off(index), bytes).expect("shmem put") };
    }

    /// Blocking get from `pe`'s copy of `slice` (`shmem_getmem`).
    pub fn get<T: Copy>(&self, slice: SymSlice<T>, pe: usize, index: usize, dst: &mut [T]) {
        assert!(index + dst.len() <= slice.len, "get out of bounds");
        let bytes = unsafe {
            std::slice::from_raw_parts_mut(dst.as_mut_ptr() as *mut u8, std::mem::size_of_val(dst))
        };
        // SAFETY: as in put.
        unsafe { self.ep.get(pe, slice.byte_off(index), bytes).expect("shmem get") };
    }

    /// Single-element put (`shmem_p`).
    pub fn p<T: Copy>(&self, slice: SymSlice<T>, pe: usize, index: usize, v: T) {
        self.put(slice, pe, index, std::slice::from_ref(&v));
    }

    /// Single-element get (`shmem_g`).
    pub fn g<T: Copy + Default>(&self, slice: SymSlice<T>, pe: usize, index: usize) -> T {
        let mut out = [T::default(); 1];
        self.get(slice, pe, index, &mut out);
        out[0]
    }

    /// Remote atomic fetch-add on a `u64` slot (`shmem_atomic_fetch_add`).
    pub fn atomic_fetch_add(&self, slice: SymSlice<u64>, pe: usize, index: usize, v: u64) -> u64 {
        // Model the small-message round trip.
        if pe != self.my_pe() {
            self.ep.fabric().model().charge(16);
        }
        self.ep
            .atomic_u64(pe, slice.byte_off(index))
            .expect("aligned symmetric slot")
            .fetch_add(v, Ordering::AcqRel)
    }

    /// Remote atomic add without fetch (`shmem_atomic_add`).
    pub fn atomic_add(&self, slice: SymSlice<u64>, pe: usize, index: usize, v: u64) {
        if pe != self.my_pe() {
            self.ep.fabric().model().charge(8);
        }
        self.ep
            .atomic_u64(pe, slice.byte_off(index))
            .expect("aligned symmetric slot")
            .fetch_add(v, Ordering::AcqRel);
    }

    /// Remote atomic compare-and-swap (`shmem_atomic_compare_swap`);
    /// returns the previous value.
    pub fn atomic_cswap(
        &self,
        slice: SymSlice<u64>,
        pe: usize,
        index: usize,
        cond: u64,
        v: u64,
    ) -> u64 {
        if pe != self.my_pe() {
            self.ep.fabric().model().charge(24);
        }
        match self
            .ep
            .atomic_u64(pe, slice.byte_off(index))
            .expect("aligned symmetric slot")
            .compare_exchange(cond, v, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(prev) => prev,
            Err(actual) => actual,
        }
    }

    /// Direct local access to this PE's copy of a symmetric block.
    ///
    /// # Safety
    /// No PE may write the block for the returned lifetime.
    pub unsafe fn local_slice<T: Copy>(&self, slice: SymSlice<T>) -> &[T] {
        let arena = self.ep.fabric().arena(self.my_pe()).expect("own arena");
        // SAFETY: symmetric allocations are live and in bounds; caller
        // provides synchronization.
        unsafe {
            std::slice::from_raw_parts(arena.base_ptr().add(slice.offset) as *const T, slice.len)
        }
    }

    /// Mutable local access.
    ///
    /// # Safety
    /// No PE may access the block for the returned lifetime.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn local_slice_mut<T: Copy>(&self, slice: SymSlice<T>) -> &mut [T] {
        let arena = self.ep.fabric().arena(self.my_pe()).expect("own arena");
        // SAFETY: as above, with exclusivity from the caller.
        unsafe {
            std::slice::from_raw_parts_mut(arena.base_ptr().add(slice.offset) as *mut T, slice.len)
        }
    }

    /// Atomic view of a local/remote `u64` slot — used by the aggregation
    /// libraries' flag protocols.
    pub fn atomic_u64(
        &self,
        slice: SymSlice<u64>,
        pe: usize,
        index: usize,
    ) -> &std::sync::atomic::AtomicU64 {
        self.ep.atomic_u64(pe, slice.byte_off(index)).expect("aligned symmetric slot")
    }

    /// Collective barrier (`shmem_barrier_all`).
    pub fn barrier_all(&self) {
        self.ep.barrier();
    }

    /// The fabric endpoint (for libraries layering on the raw transport).
    pub fn endpoint(&self) -> &FabricPe {
        &self.ep
    }

    /// Arena byte offset of a symmetric allocation (for libraries that
    /// layer raw transports over symmetric memory).
    pub fn sym_offset_of<T>(&self, s: SymSlice<T>) -> usize {
        s.offset
    }
}

/// SPMD launch of a SHMEM job: `f` runs once per PE on its own thread.
pub fn shmem_launch<R, F>(num_pes: usize, sym_mb: usize, f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(ShmemCtx) -> R + Send + Sync + 'static,
{
    let endpoints = Fabric::launch(FabricConfig {
        num_pes,
        sym_len: sym_mb << 20,
        heap_len: 1 << 20,
        net: NetConfig::from_env(),
        metrics: true,
        fault: None,
    });
    let world = Arc::new(ShmemWorld { sym_calls: Mutex::new(HashMap::new()) });
    let f = Arc::new(f);
    let handles: Vec<_> = endpoints
        .into_iter()
        .map(|ep| {
            let world = Arc::clone(&world);
            let f = Arc::clone(&f);
            std::thread::Builder::new()
                .name(format!("shmem-pe{}", ep.pe()))
                .spawn(move || f(ShmemCtx { ep, world, sym_seq: std::cell::Cell::new(0) }))
                .expect("spawn shmem pe")
        })
        .collect();
    handles.into_iter().map(|h| h.join().expect("shmem PE panicked")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_alloc_same_offset_everywhere() {
        let offs = shmem_launch(4, 4, |ctx| {
            let a = ctx.shmem_malloc::<u64>(100);
            let b = ctx.shmem_malloc::<u64>(50);
            (a.offset, b.offset)
        });
        assert!(offs.windows(2).all(|w| w[0] == w[1]));
        assert_ne!(offs[0].0, offs[0].1);
    }

    #[test]
    fn put_get_roundtrip_across_pes() {
        shmem_launch(2, 4, |ctx| {
            let buf = ctx.shmem_malloc::<u32>(8);
            if ctx.my_pe() == 0 {
                ctx.put(buf, 1, 2, &[7, 8, 9]);
            }
            ctx.barrier_all();
            if ctx.my_pe() == 1 {
                // SAFETY: writer finished before the barrier.
                let local = unsafe { ctx.local_slice(buf) };
                assert_eq!(&local[2..5], &[7, 8, 9]);
            }
            let v = ctx.g(buf, 1, 3);
            assert_eq!(v, 8);
            ctx.barrier_all();
        });
    }

    #[test]
    fn remote_atomics_are_exact() {
        shmem_launch(4, 4, |ctx| {
            let counter = ctx.shmem_malloc::<u64>(1);
            for _ in 0..1000 {
                ctx.atomic_add(counter, 0, 0, 1);
            }
            ctx.barrier_all();
            if ctx.my_pe() == 0 {
                // SAFETY: all adders finished before the barrier.
                let local = unsafe { ctx.local_slice(counter) };
                assert_eq!(local[0], 4000);
            }
            ctx.barrier_all();
        });
    }

    #[test]
    fn cswap_semantics() {
        shmem_launch(2, 4, |ctx| {
            let slot = ctx.shmem_malloc::<u64>(2);
            if ctx.my_pe() == 1 {
                assert_eq!(ctx.atomic_cswap(slot, 0, 0, 0, 42), 0); // success
                assert_eq!(ctx.atomic_cswap(slot, 0, 0, 0, 43), 42); // fail
                assert_eq!(ctx.g(slot, 0, 0), 42);
            }
            ctx.barrier_all();
        });
    }

    #[test]
    fn fetch_add_returns_previous() {
        shmem_launch(1, 4, |ctx| {
            let slot = ctx.shmem_malloc::<u64>(1);
            assert_eq!(ctx.atomic_fetch_add(slot, 0, 0, 5), 0);
            assert_eq!(ctx.atomic_fetch_add(slot, 0, 0, 5), 5);
            assert_eq!(ctx.g(slot, 0, 0), 10);
        });
    }
}
