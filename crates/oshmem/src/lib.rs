//! # oshmem-sim
//!
//! A simulated OpenSHMEM substrate plus the C/C++ aggregation baselines the
//! paper compares against (Sec. IV-B): **Exstack** (bulk-synchronous),
//! **Exstack2** (asynchronous), **Conveyors** (multi-hop), **Selectors**
//! (HClib actor model), and a Chapel-style **CopyAggregator**.
//!
//! The real baselines run one OpenSHMEM process per core; here each SHMEM
//! PE is a thread with a symmetric heap carved out of the same simulated
//! fabric (`rofi-sim`) that backs Lamellar — so all seven series in the
//! paper's Figs. 3–5 move their bytes through the same wire and cost model
//! (DESIGN.md §1).
//!
//! Only the SHMEM subset the BALE kernels need is implemented: symmetric
//! allocation, put/get, 64-bit remote atomics, and `barrier_all`.

pub mod chapel_agg;
pub mod convey;
pub mod exstack;
pub mod exstack2;
pub mod selector;
pub mod shmem;

pub use shmem::{shmem_launch, ShmemCtx, SymSlice};
