//! Conveyors: the multi-hop BALE aggregation library.
//!
//! Paper Sec. II: "Conveyors implements a multi-hop aggregation approach to
//! reduce memory footprint and increase bandwidth utilization." PEs are
//! arranged on a `rows × cols` grid; an item for PE `d` first hops to the
//! PE in the *sender's row* that sits in `d`'s column, then down the column
//! to `d`. Each PE therefore keeps buffers for `rows + cols` neighbours
//! instead of all `n`, and messages between distant PEs ride fuller
//! buffers.
//!
//! Built on [`Exstack2`]'s asynchronous transport; forwarded items
//! re-enter the send/receive counters, so the same quiescence protocol
//! covers routed traffic.

use crate::exstack2::Exstack2;
use crate::shmem::{ShmemCtx, SymSlice};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;

/// A routed item on the wire: final destination plus payload.
#[derive(Clone, Copy)]
struct Routed<T: Copy> {
    dst: u32,
    item: T,
}

/// A multi-hop conveyor for `Copy` items.
///
/// Termination note: the hop transport's own counters cannot see an item
/// that has landed in a mid-route PE's inbox but has not been forwarded
/// yet, so the conveyor adds *end-to-end* counters — `created` at user
/// push, `retired` at final delivery — hosted on PE 0. Quiescence requires
/// both the transport and the end-to-end counts to balance.
pub struct Convey<T: Copy> {
    ex: Exstack2<Routed<T>>,
    cols: usize,
    /// Items that have reached their final destination.
    delivered: VecDeque<(usize, T)>,
    /// This PE will produce no new items (forwarding may continue).
    local_done: bool,
    /// End-to-end counters on PE 0: [0] = created, [1] = retired.
    e2e: SymSlice<u64>,
}

impl<T: Copy> Convey<T> {
    /// Collectively create a conveyor with `capacity` items per hop buffer
    /// (0 = default).
    pub fn new(ctx: &ShmemCtx, capacity: usize) -> Self {
        let cols = (ctx.n_pes() as f64).sqrt().ceil() as usize;
        Convey {
            ex: Exstack2::new(ctx, capacity),
            cols: cols.max(1),
            delivered: VecDeque::new(),
            local_done: false,
            e2e: ctx.shmem_malloc::<u64>(2),
        }
    }

    fn row(&self, pe: usize) -> usize {
        pe / self.cols
    }

    fn col(&self, pe: usize) -> usize {
        pe % self.cols
    }

    /// First hop for an item from `me` to `dst`: stay in my row, move to
    /// `dst`'s column (clamped to a valid PE on ragged grids).
    fn hop(&self, ctx: &ShmemCtx, dst: usize) -> usize {
        let me = ctx.my_pe();
        if self.row(me) == self.row(dst) || self.col(me) == self.col(dst) {
            // Same row or column: one direct hop.
            return dst;
        }
        let mid = self.row(me) * self.cols + self.col(dst);
        if mid < ctx.n_pes() {
            mid
        } else {
            // Ragged last row: route via the column's first PE.
            self.col(dst)
        }
    }

    /// Submit an item for `dst`.
    pub fn push(&mut self, ctx: &ShmemCtx, dst: usize, item: T) {
        assert!(!self.local_done, "push after done");
        let me = ctx.my_pe();
        if dst == me {
            self.delivered.push_back((me, item));
            return;
        }
        // End-to-end accounting: created strictly before the item can ever
        // be retired.
        ctx.atomic_u64(self.e2e, 0, 0).fetch_add(1, Ordering::AcqRel);
        let hop = self.hop(ctx, dst);
        self.ex.push(ctx, hop, Routed { dst: dst as u32, item });
    }

    /// Pull a delivered item (source PE is not tracked through hops; the
    /// payload carries anything the application needs).
    pub fn pull(&mut self) -> Option<T> {
        self.delivered.pop_front().map(|(_, item)| item)
    }

    /// Diagnostic snapshot of the conveyor and its transport.
    #[doc(hidden)]
    pub fn debug_state(&self, ctx: &ShmemCtx) -> String {
        let created = ctx.atomic_u64(self.e2e, 0, 0).load(Ordering::Acquire);
        let retired = ctx.atomic_u64(self.e2e, 0, 1).load(Ordering::Acquire);
        format!(
            "e2e {created}/{retired} delivered={} local_done={} ex[{}]",
            self.delivered.len(),
            self.local_done,
            self.ex.debug_state(ctx)
        )
    }

    /// Drive routing; pass `im_done` once this PE will push nothing new.
    /// Returns false when the conveyor has fully quiesced.
    pub fn advance(&mut self, ctx: &ShmemCtx, im_done: bool) -> bool {
        self.local_done |= im_done;
        let me = ctx.my_pe();
        // Drain arrivals: deliver or forward down the column.
        let more = self.ex.advance(ctx, self.local_done);
        let mut retired = 0u64;
        let mut forwards: Vec<(usize, Routed<T>)> = Vec::new();
        while let Some((_src, routed)) = self.ex.pop() {
            let dst = routed.dst as usize;
            if dst == me {
                self.delivered.push_back((me, routed.item));
                retired += 1;
            } else {
                forwards.push((dst, routed));
            }
        }
        let forwarding = !forwards.is_empty();
        for (dst, routed) in forwards {
            // Second hop: straight to the destination (same column). No
            // end-to-end accounting: the item was created at the original
            // push and retires only at final delivery.
            self.ex.push(ctx, dst, routed);
        }
        if retired > 0 {
            ctx.atomic_u64(self.e2e, 0, 1).fetch_add(retired, Ordering::AcqRel);
        }
        if more || forwarding || !self.delivered.is_empty() {
            return true;
        }
        // Transport quiet and nothing local: quiesce only when every
        // created item has been retired somewhere.
        let created = ctx.atomic_u64(self.e2e, 0, 0).load(Ordering::Acquire);
        let retired_total = ctx.atomic_u64(self.e2e, 0, 1).load(Ordering::Acquire);
        created != retired_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shmem::shmem_launch;

    #[test]
    fn routes_all_to_all_exactly_once() {
        // 6 PEs → 3-column grid with a ragged row; every PE sends k items
        // to every PE (incl. self) tagged with (src, seq).
        let results = shmem_launch(6, 16, |ctx| {
            let n = ctx.n_pes();
            let me = ctx.my_pe();
            let k = 50usize;
            let mut conv = Convey::<u64>::new(&ctx, 8);
            let mut outgoing: VecDeque<(usize, u64)> =
                (0..n * k).map(|i| (i % n, (me * 1_000_000 + i) as u64)).collect();
            let mut got: Vec<u64> = Vec::new();
            loop {
                while let Some((dst, item)) = outgoing.pop_front() {
                    conv.push(&ctx, dst, item);
                }
                let more = conv.advance(&ctx, outgoing.is_empty());
                while let Some(item) = conv.pull() {
                    got.push(item);
                }
                if !more {
                    break;
                }
            }
            ctx.barrier_all();
            got.sort_unstable();
            got.dedup();
            got.len()
        });
        // Each PE receives exactly k items from each of 6 sources.
        assert_eq!(results, vec![300; 6]);
    }

    #[test]
    fn self_sends_bypass_the_wire() {
        shmem_launch(2, 16, |ctx| {
            let mut conv = Convey::<u32>::new(&ctx, 4);
            conv.push(&ctx, ctx.my_pe(), 5);
            assert_eq!(conv.pull(), Some(5));
            while conv.advance(&ctx, true) {}
            ctx.barrier_all();
        });
    }
}
