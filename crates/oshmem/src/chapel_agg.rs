//! Chapel-style copy aggregation (paper Sec. IV-B.2).
//!
//! "Chapel achieves highest performance [on IndexGather] as internally this
//! implementation uses a specialized CopyAggregator, which is optimized for
//! simple assignment operations and allocates additional buffers for each
//! PE to communicate with one another using RDMA."
//!
//! Two aggregators, mirroring Chapel/Arkouda's `DstAggregator` and
//! `SrcAggregator`:
//!
//! * [`DstAggregator`] buffers `(remote index, value)` assignments per
//!   destination PE and flushes each buffer with one bulk transfer; the
//!   updates are applied element-wise on the destination's memory
//!   (simulating the remote-side loop of Chapel's aggregated `on` copy).
//! * [`SrcAggregator`] buffers `(local slot, remote index)` gathers per
//!   source PE; a flush ships the index list over in one transfer and the
//!   gathered values back in another — two bulk RDMA transfers per buffer,
//!   which is exactly the mechanism behind Chapel's IndexGather win.
//!
//! Update/gather application reads and writes the peer's memory directly
//! (uncharged), standing in for the peer-side loop a real `on` clause runs;
//! the charged transfers model the wire traffic.

use crate::shmem::{ShmemCtx, SymSlice};
use std::sync::atomic::Ordering;

/// Default pairs per destination buffer (Chapel's default aggregator
/// buffers are 8k elements).
const DEFAULT_BUF: usize = 8192;

/// Buffered remote assignments/increments: `dst[index] ⟵ op(value)`.
pub struct DstAggregator {
    /// The symmetric destination table.
    table: SymSlice<u64>,
    /// Per-destination (index, value) pairs.
    bufs: Vec<Vec<(u64, u64)>>,
    capacity: usize,
    /// true: `+=` (histogram); false: `=` (scatter).
    accumulate: bool,
}

impl DstAggregator {
    /// Create an aggregator over `table` (one per PE task).
    pub fn new(ctx: &ShmemCtx, table: SymSlice<u64>, capacity: usize, accumulate: bool) -> Self {
        let capacity = if capacity == 0 { DEFAULT_BUF } else { capacity };
        DstAggregator {
            table,
            bufs: vec![Vec::with_capacity(capacity); ctx.n_pes()],
            capacity,
            accumulate,
        }
    }

    /// Buffer `table[index] op= value` on PE `pe`; flushes that PE's buffer
    /// when full.
    pub fn copy(&mut self, ctx: &ShmemCtx, pe: usize, index: usize, value: u64) {
        self.bufs[pe].push((index as u64, value));
        if self.bufs[pe].len() >= self.capacity {
            self.flush_pe(ctx, pe);
        }
    }

    fn flush_pe(&mut self, ctx: &ShmemCtx, pe: usize) {
        let buf = &mut self.bufs[pe];
        if buf.is_empty() {
            return;
        }
        // One bulk transfer of the pair buffer (charged)...
        if pe != ctx.my_pe() {
            ctx.endpoint().fabric().model().charge(buf.len() * 16);
        }
        // ...then the destination-side application loop (peer memory,
        // uncharged — the remote `on` body).
        for &(idx, val) in buf.iter() {
            let slot = ctx.atomic_u64(self.table, pe, idx as usize);
            if self.accumulate {
                slot.fetch_add(val, Ordering::Relaxed);
            } else {
                slot.store(val, Ordering::Relaxed);
            }
        }
        buf.clear();
    }

    /// Flush every buffer (call before the closing barrier).
    pub fn flush_all(&mut self, ctx: &ShmemCtx) {
        for pe in 0..ctx.n_pes() {
            self.flush_pe(ctx, pe);
        }
    }
}

/// Buffered remote gathers: `local_out[slot] ⟵ table[index]@pe`.
pub struct SrcAggregator {
    table: SymSlice<u64>,
    /// Per-source (local output slot, remote index) pairs.
    bufs: Vec<Vec<(usize, u64)>>,
    capacity: usize,
}

impl SrcAggregator {
    /// Create a gather aggregator over `table`.
    pub fn new(ctx: &ShmemCtx, table: SymSlice<u64>, capacity: usize) -> Self {
        let capacity = if capacity == 0 { DEFAULT_BUF } else { capacity };
        SrcAggregator { table, bufs: vec![Vec::with_capacity(capacity); ctx.n_pes()], capacity }
    }

    /// Buffer `out[slot] = table[index]@pe`; flushes when the buffer for
    /// `pe` fills.
    pub fn copy(&mut self, ctx: &ShmemCtx, out: &mut [u64], pe: usize, slot: usize, index: usize) {
        self.bufs[pe].push((slot, index as u64));
        if self.bufs[pe].len() >= self.capacity {
            self.flush_pe(ctx, out, pe);
        }
    }

    fn flush_pe(&mut self, ctx: &ShmemCtx, out: &mut [u64], pe: usize) {
        let buf = &mut self.bufs[pe];
        if buf.is_empty() {
            return;
        }
        if pe != ctx.my_pe() {
            // Index list over (8 B each), values back (8 B each): two bulk
            // transfers per flush.
            ctx.endpoint().fabric().model().charge(buf.len() * 8);
            ctx.endpoint().fabric().model().charge(buf.len() * 8);
        }
        // Source-side gather loop (peer memory, uncharged).
        for &(slot, idx) in buf.iter() {
            out[slot] = ctx.atomic_u64(self.table, pe, idx as usize).load(Ordering::Relaxed);
        }
        buf.clear();
    }

    /// Flush every buffer into `out`.
    pub fn flush_all(&mut self, ctx: &ShmemCtx, out: &mut [u64]) {
        for pe in 0..ctx.n_pes() {
            self.flush_pe(ctx, out, pe);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shmem::shmem_launch;

    #[test]
    fn dst_aggregator_accumulates_exactly() {
        shmem_launch(3, 8, |ctx| {
            let n = ctx.n_pes();
            let table = ctx.shmem_malloc::<u64>(10);
            let mut agg = DstAggregator::new(&ctx, table, 16, true);
            for i in 0..600 {
                agg.copy(&ctx, i % n, i % 10, 1);
            }
            agg.flush_all(&ctx);
            ctx.barrier_all();
            // Each of the 3 PEs sends 600/3 = 200 increments to every PE,
            // so each PE receives 3 × 200 = 600 spread over 10 slots.
            // SAFETY: all flushes complete before the barrier.
            let local = unsafe { ctx.local_slice(table) };
            assert_eq!(local.iter().sum::<u64>(), 600);
            ctx.barrier_all();
        });
    }

    #[test]
    fn dst_aggregator_store_mode_overwrites() {
        shmem_launch(2, 8, |ctx| {
            let table = ctx.shmem_malloc::<u64>(4);
            let mut agg = DstAggregator::new(&ctx, table, 4, false);
            if ctx.my_pe() == 0 {
                agg.copy(&ctx, 1, 2, 77);
                agg.flush_all(&ctx);
            }
            ctx.barrier_all();
            if ctx.my_pe() == 1 {
                // SAFETY: writer flushed before the barrier.
                let local = unsafe { ctx.local_slice(table) };
                assert_eq!(local[2], 77);
            }
            ctx.barrier_all();
        });
    }

    #[test]
    fn src_aggregator_gathers_remote_values() {
        shmem_launch(2, 8, |ctx| {
            let table = ctx.shmem_malloc::<u64>(8);
            // Each PE fills its own copy with pe*100 + i.
            {
                // SAFETY: each PE writes only its own block before the
                // barrier.
                let local = unsafe { ctx.local_slice_mut(table) };
                for (i, v) in local.iter_mut().enumerate() {
                    *v = (ctx.my_pe() * 100 + i) as u64;
                }
            }
            ctx.barrier_all();
            let other = 1 - ctx.my_pe();
            let mut out = vec![0u64; 8];
            let mut agg = SrcAggregator::new(&ctx, table, 3);
            for slot in 0..8 {
                agg.copy(&ctx, &mut out, other, slot, 7 - slot);
            }
            agg.flush_all(&ctx, &mut out);
            for (slot, v) in out.iter().enumerate() {
                assert_eq!(*v, (other * 100 + 7 - slot) as u64);
            }
            ctx.barrier_all();
        });
    }
}
