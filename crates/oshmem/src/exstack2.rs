//! Exstack2: the asynchronous BALE aggregation library.
//!
//! Paper Sec. II: "Exstack2 is an asynchronous version of Exstack." Instead
//! of bulk-synchronous rounds, buffers fly as soon as they fill, and a
//! counting protocol detects quiescence: once every PE has declared done
//! and the globally-sent item count equals the globally-received count, the
//! exchange has drained.
//!
//! The wire is the same flag-based double-buffered queue machinery the
//! Lamellar Lamellae uses ([`lamellar_core::lamellae::queue`]), instantiated
//! over the SHMEM fabric — all baselines and Lamellar pay identical
//! transport costs.

use crate::shmem::{ShmemCtx, SymSlice};
use lamellar_core::lamellae::queue::{queue_footprint, QueueTransport};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;

/// Items per wire buffer by default.
const DEFAULT_CAP: usize = 1024;

/// An asynchronous exchange stack for `Copy` items.
///
/// Sends never block: a full wire parks the serialized batch in a local
/// `pending_wire` queue retried on every progress call. (A blocking send
/// would deadlock applications running several exchanges at once — e.g.
/// request/response over two instances — because a PE stuck sending on
/// one instance would stop draining the other.)
pub struct Exstack2<T: Copy> {
    q: QueueTransport,
    /// Per-destination staging.
    send: Vec<Vec<T>>,
    /// Serialized batches waiting for a free wire buffer, FIFO per
    /// destination.
    pending_wire: Vec<VecDeque<Vec<u8>>>,
    /// Items per staged buffer before it is pushed to the wire.
    capacity: usize,
    /// Received items awaiting `pop`.
    inbox: VecDeque<(usize, T)>,
    /// Global counters hosted on PE 0: [0] = sent, [1] = received.
    counters: SymSlice<u64>,
    /// Per-PE done flags.
    done: SymSlice<u64>,
    announced_done: bool,
    /// Diagnostics: why advance kept returning true
    /// (inbox, not-all-done, pending-wire, counters).
    #[doc(hidden)]
    pub why: (u64, u64, u64, u64),
}

impl<T: Copy> Exstack2<T> {
    /// Collectively create an async exstack with `capacity` items per
    /// buffer (0 = default).
    pub fn new(ctx: &ShmemCtx, capacity: usize) -> Self {
        let capacity = if capacity == 0 { DEFAULT_CAP } else { capacity };
        let n = ctx.n_pes();
        let item = std::mem::size_of::<T>().max(1);
        // Wire frames carry (src-implicit) raw items; size generously.
        let buf_bytes = (capacity * item + 64).next_multiple_of(8);
        let foot = queue_footprint(n, buf_bytes);
        // Symmetric block for the queue tables+buffers (same offset on all
        // PEs, zero-initialized).
        let qblock = ctx.shmem_malloc::<u8>(foot + 8);
        let base = {
            // 8-align the base offset.
            let raw = qblock_offset(ctx, qblock);
            raw.next_multiple_of(8)
        };
        let q = QueueTransport::new(ctx.endpoint().clone(), base, buf_bytes, capacity * item);
        Exstack2 {
            q,
            send: vec![Vec::with_capacity(capacity); n],
            pending_wire: vec![VecDeque::new(); n],
            capacity,
            inbox: VecDeque::new(),
            counters: ctx.shmem_malloc::<u64>(2),
            done: ctx.shmem_malloc::<u64>(n),
            announced_done: false,
            why: (0, 0, 0, 0),
        }
    }

    /// Stage an item for `dst`; transmits the buffer when full. Always
    /// succeeds (the wire applies backpressure internally).
    pub fn push(&mut self, ctx: &ShmemCtx, dst: usize, item: T) {
        self.send[dst].push(item);
        if self.send[dst].len() >= self.capacity {
            self.transmit(ctx, dst);
        }
    }

    fn transmit(&mut self, ctx: &ShmemCtx, dst: usize) {
        if self.send[dst].is_empty() {
            return;
        }
        let buf = std::mem::take(&mut self.send[dst]);
        let n = buf.len();
        // SAFETY: T: Copy plain data staged in a Vec.
        let bytes = unsafe {
            std::slice::from_raw_parts(buf.as_ptr() as *const u8, n * std::mem::size_of::<T>())
        }
        .to_vec();
        // Counted as sent the moment it leaves staging — the quiescence
        // check then keeps everyone pumping until it is actually received.
        ctx.atomic_u64(self.counters, 0, 0).fetch_add(n as u64, Ordering::AcqRel);
        self.flush_pending_dst(dst);
        if self.pending_wire[dst].is_empty() && self.q.try_send_now(dst, &bytes) {
            return;
        }
        // Wire full: park the batch; retried on every progress call. Never
        // block here — a PE blocked on one exchange instance would stop
        // draining its others, deadlocking request/response patterns.
        self.pending_wire[dst].push_back(bytes);
    }

    /// Retry parked batches for one destination, preserving FIFO order.
    fn flush_pending_dst(&mut self, dst: usize) {
        while let Some(front) = self.pending_wire[dst].front() {
            if self.q.try_send_now(dst, front) {
                self.pending_wire[dst].pop_front();
            } else {
                break;
            }
        }
    }

    /// Retry parked batches for every destination.
    fn flush_pending(&mut self) {
        for dst in 0..self.pending_wire.len() {
            self.flush_pending_dst(dst);
        }
    }

    /// Drain the wire into the inbox (also retries parked batches, so a
    /// previously-full wire keeps moving).
    fn drain(&mut self, ctx: &ShmemCtx) -> bool {
        self.flush_pending();
        let inbox = &mut self.inbox;
        let mut got = 0u64;
        self.q.progress(&mut |src, raw| {
            let size = std::mem::size_of::<T>();
            let items = raw.len() / size;
            for i in 0..items {
                // SAFETY: senders stage exactly whole T items; the pooled
                // receive buffer carries no alignment guarantee for T, so
                // read each item unaligned instead of building a &[T].
                let it = unsafe { (raw.as_ptr().add(i * size) as *const T).read_unaligned() };
                inbox.push_back((src, it));
            }
            got += items as u64;
        });
        if got > 0 {
            ctx.atomic_u64(self.counters, 0, 1).fetch_add(got, Ordering::AcqRel);
        }
        got > 0
    }

    /// Drain the wire into the inbox; returns true if anything arrived.
    pub fn progress(&mut self, ctx: &ShmemCtx) -> bool {
        self.drain(ctx)
    }

    /// Pop a received item.
    pub fn pop(&mut self) -> Option<(usize, T)> {
        self.inbox.pop_front()
    }

    /// Diagnostic snapshot: (global sent, global recv, done flags seen,
    /// inbox len, staged per-dst lens).
    #[doc(hidden)]
    pub fn debug_state(&self, ctx: &ShmemCtx) -> String {
        let sent = ctx.atomic_u64(self.counters, 0, 0).load(Ordering::Acquire);
        let recv = ctx.atomic_u64(self.counters, 0, 1).load(Ordering::Acquire);
        let done: Vec<u64> = (0..ctx.n_pes())
            .map(|pe| ctx.atomic_u64(self.done, ctx.my_pe(), pe).load(Ordering::Acquire))
            .collect();
        let staged: Vec<usize> = self.send.iter().map(|b| b.len()).collect();
        format!(
            "sent={sent} recv={recv} done={done:?} inbox={} staged={staged:?} announced={}",
            self.inbox.len(),
            self.announced_done
        )
    }

    /// Drive the exchange; pass `im_done` once this PE will push nothing
    /// more. Returns false when the whole exchange has quiesced (all PEs
    /// done, every sent item received, inbox empty).
    pub fn advance(&mut self, ctx: &ShmemCtx, im_done: bool) -> bool {
        let arrived = self.progress(ctx);
        // Transmit everything staged: advance is the application's pacing
        // point, so per-advance batching is the aggregation unit. (Gating
        // this on `im_done` would strand sub-capacity batches whose
        // recipients are waiting on them — e.g. randperm's hit/miss acks.)
        for dst in 0..ctx.n_pes() {
            self.transmit(ctx, dst);
        }
        if im_done && !self.announced_done {
            self.announced_done = true;
            for pe in 0..ctx.n_pes() {
                ctx.atomic_u64(self.done, pe, ctx.my_pe()).store(1, Ordering::Release);
            }
        }
        if !self.inbox.is_empty() {
            self.why.0 += 1;
            return true;
        }
        // SAFETY-free: flags and counters are atomics.
        let all_done = (0..ctx.n_pes())
            .all(|pe| ctx.atomic_u64(self.done, ctx.my_pe(), pe).load(Ordering::Acquire) == 1);
        if !all_done {
            self.why.1 += 1;
            std::thread::yield_now();
            return true;
        }
        if self.pending_wire.iter().any(|q| !q.is_empty()) {
            self.why.2 += 1;
            // Waiting on the peer to free wire buffers: hand over the core
            // (see the counters branch below).
            std::thread::yield_now();
            return true;
        }
        let sent = ctx.atomic_u64(self.counters, 0, 0).load(Ordering::Acquire);
        let recv = ctx.atomic_u64(self.counters, 0, 1).load(Ordering::Acquire);
        let more = sent != recv || !self.inbox.is_empty();
        if more {
            self.why.3 += 1;
        }
        if more && !arrived {
            // Waiting on peers with nothing locally to do: hand the core
            // over instead of burning the scheduler quantum (PEs share
            // cores in this simulation; busy-polling would turn peer
            // progress into context-switch latency).
            std::thread::yield_now();
        }
        more
    }
}

/// Recover the byte offset of a `SymSlice<u8>` (the queue block).
fn qblock_offset(ctx: &ShmemCtx, s: SymSlice<u8>) -> usize {
    // SymSlice is opaque; use the atomic accessor trick: offset of index 0.
    // (Provided as a helper on ShmemCtx for the aggregators.)
    ctx.sym_offset_of(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shmem::shmem_launch;

    #[test]
    fn async_all_to_all_delivers_exactly_once() {
        let results = shmem_launch(4, 16, |ctx| {
            let n = ctx.n_pes();
            let me = ctx.my_pe();
            let mut ex = Exstack2::<u64>::new(&ctx, 8);
            let total = 200usize;
            let mut sent = 0usize;
            let mut received: Vec<u64> = Vec::new();
            loop {
                while sent < total {
                    let dst = (sent * 7 + me) % n;
                    ex.push(&ctx, dst, (me * 10_000 + sent) as u64);
                    sent += 1;
                }
                let more = ex.advance(&ctx, sent == total);
                while let Some((src, item)) = ex.pop() {
                    assert_eq!(item / 10_000, src as u64);
                    received.push(item);
                }
                if !more && ex.pop().is_none() {
                    break;
                }
            }
            ctx.barrier_all();
            received.len()
        });
        // 4 PEs × 200 items total, conserved.
        assert_eq!(results.iter().sum::<usize>(), 800);
    }

    #[test]
    fn small_batches_flush_on_done() {
        shmem_launch(2, 16, |ctx| {
            let mut ex = Exstack2::<u32>::new(&ctx, 64);
            // Far fewer items than capacity: only the done-flush sends them.
            if ctx.my_pe() == 0 {
                ex.push(&ctx, 1, 42);
                ex.push(&ctx, 1, 43);
            }
            let mut got = Vec::new();
            while ex.advance(&ctx, true) {
                while let Some((_, v)) = ex.pop() {
                    got.push(v);
                }
            }
            while let Some((_, v)) = ex.pop() {
                got.push(v);
            }
            ctx.barrier_all();
            if ctx.my_pe() == 1 {
                got.sort_unstable();
                assert_eq!(got, vec![42, 43]);
            }
        });
    }
}
