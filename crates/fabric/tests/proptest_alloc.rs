//! Property tests for the arena allocator: live allocations never overlap,
//! frees coalesce, and a fully-freed allocator returns to pristine state.

use proptest::prelude::*;
use rofi_sim::alloc::FreeList;

#[derive(Debug, Clone)]
enum Op {
    Alloc { size: usize, align_pow: u8 },
    FreeNth(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..512, 0u8..7).prop_map(|(size, align_pow)| Op::Alloc { size, align_pow }),
        (0usize..64).prop_map(Op::FreeNth),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_alloc_free_sequences_hold_invariants(ops in prop::collection::vec(op_strategy(), 1..100)) {
        let mut fl = FreeList::new(0, 1 << 16);
        let mut live: Vec<(usize, usize)> = Vec::new(); // (offset, size)
        for op in ops {
            match op {
                Op::Alloc { size, align_pow } => {
                    let align = 1usize << align_pow;
                    if let Ok(off) = fl.alloc(size, align) {
                        prop_assert_eq!(off % align, 0);
                        for &(o, s) in &live {
                            prop_assert!(off + size <= o || o + s <= off,
                                "allocation [{}, {}) overlaps live [{}, {})", off, off + size, o, o + s);
                        }
                        live.push((off, size));
                    }
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let (off, _) = live.swap_remove(n % live.len());
                        fl.free(off).unwrap();
                    }
                }
            }
            prop_assert_eq!(fl.live_allocations(), live.len());
        }
        // Drain everything: allocator must return to a single free block.
        for (off, _) in live {
            fl.free(off).unwrap();
        }
        prop_assert!(fl.is_pristine());
    }

    #[test]
    fn alloc_never_exceeds_capacity(sizes in prop::collection::vec(1usize..2048, 1..128)) {
        let cap = 1 << 14;
        let mut fl = FreeList::new(0, cap);
        for size in sizes {
            if fl.alloc(size, 8).is_ok() {
                prop_assert!(fl.in_use() <= cap);
            }
        }
    }

    #[test]
    fn freed_space_is_reusable(size in 1usize..4096) {
        let mut fl = FreeList::new(0, 8192);
        let a = fl.alloc(size, 8).unwrap();
        let b = fl.alloc(8192 - fl.in_use(), 1);
        // Arena is now (nearly) full; free the first and realloc same size.
        fl.free(a).unwrap();
        let c = fl.alloc(size, 8).unwrap();
        prop_assert_eq!(c, a, "first-fit must reuse the freed block");
        if let Ok(b) = b { fl.free(b).unwrap(); }
        fl.free(c).unwrap();
        prop_assert!(fl.is_pristine());
    }
}
