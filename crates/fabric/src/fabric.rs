//! The simulated fabric: arenas + transfers + collectives + allocation.
//!
//! One [`Fabric`] models the whole interconnect; each simulated PE holds a
//! [`FabricPe`] handle. Arenas are split into two regions, mirroring the
//! paper (Sec. III-A):
//!
//! * a **symmetric region** `[0, sym_len)` — allocations here return offsets
//!   valid on *every* PE's arena (the shared free list guarantees identical
//!   layout). The runtime uses it for its internal message queues and for
//!   collectively-allocated user structures (SharedMemoryRegions, arrays).
//! * a **dynamic heap** `[sym_len, sym_len + heap_len)` — per-PE one-sided
//!   allocations with PE-private offsets (OneSidedMemoryRegions, AM
//!   payload staging).
//!
//! Bootstrap metadata (e.g. "which offset did the root allocate?") travels
//! over an **out-of-band exchange** ([`Fabric::oob_put`]/[`Fabric::oob_get`]),
//! modeling the PMI/sockets out-of-band channel real ROFI uses during
//! world setup.

use crate::alloc::FreeList;
use crate::arena::Arena;
use crate::barrier::SenseBarrier;
use crate::fault::{FaultConfig, FaultPlane};
use crate::netmodel::{NetConfig, NetModel};
use crate::{FabricError, Result};
use lamellar_metrics::{FabricMetrics, FabricStats};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Construction parameters for a [`Fabric`].
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of simulated PEs.
    pub num_pes: usize,
    /// Bytes of symmetric region per PE.
    pub sym_len: usize,
    /// Bytes of one-sided dynamic heap per PE.
    pub heap_len: usize,
    /// Network cost model.
    pub net: NetConfig,
    /// Record transfer/barrier counters ([`FabricMetrics`]). Recording is a
    /// handful of relaxed atomics per transfer; disable for overhead-critical
    /// runs.
    pub metrics: bool,
    /// Deterministic fault injection ([`FaultPlane`]); `None` (the default)
    /// leaves the fabric loss-free and the transport on its fast path.
    pub fault: Option<FaultConfig>,
}

impl FabricConfig {
    /// A reasonable default: 64 MiB symmetric + 32 MiB heap per PE, model
    /// from the environment, metrics on.
    pub fn new(num_pes: usize) -> Self {
        FabricConfig {
            num_pes,
            sym_len: 64 << 20,
            heap_len: 32 << 20,
            net: NetConfig::from_env(),
            metrics: true,
            fault: None,
        }
    }

    /// Override the symmetric region size.
    pub fn sym_len(mut self, len: usize) -> Self {
        self.sym_len = len;
        self
    }

    /// Override the heap size.
    pub fn heap_len(mut self, len: usize) -> Self {
        self.heap_len = len;
        self
    }

    /// Override the network model.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Enable or disable fabric metrics recording.
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    /// Arm deterministic fault injection with the given knobs.
    pub fn fault(mut self, cfg: FaultConfig) -> Self {
        self.fault = Some(cfg);
        self
    }
}

/// The interconnect shared by all simulated PEs.
pub struct Fabric {
    arenas: Vec<Arena>,
    barrier: SenseBarrier,
    model: NetModel,
    sym_len: usize,
    /// Shared symmetric allocator: one free list drives identical layouts on
    /// every arena.
    sym_alloc: Mutex<FreeList>,
    /// Per-PE dynamic heap allocators.
    heap_allocs: Vec<Mutex<FreeList>>,
    /// Out-of-band key/value exchange for bootstrap metadata.
    oob: Mutex<HashMap<u64, u64>>,
    oob_cv: Condvar,
    /// Failure injection: extra nanoseconds added to each progress tick.
    progress_delay_ns: AtomicU64,
    /// Fabric-layer observability: puts/gets/bytes, inject vs. rendezvous
    /// splits, barrier rounds, put-size histogram. Shared by all PE handles.
    metrics: FabricMetrics,
    /// Deterministic fault injection; `None` keeps the fabric loss-free.
    fault: Option<Arc<FaultPlane>>,
}

impl Fabric {
    /// Build a fabric and return one handle per PE.
    pub fn launch(cfg: FabricConfig) -> Vec<FabricPe> {
        assert!(cfg.num_pes > 0, "need at least one PE");
        let arena_len = cfg.sym_len + cfg.heap_len;
        assert!(arena_len > 0, "arena must be non-empty");
        let arenas = (0..cfg.num_pes).map(|_| Arena::new(arena_len)).collect();
        let heap_allocs = (0..cfg.num_pes)
            .map(|_| Mutex::new(FreeList::new(cfg.sym_len, cfg.heap_len)))
            .collect();
        let fault = cfg.fault.map(|f| Arc::new(FaultPlane::new(f, cfg.num_pes)));
        let fabric = Arc::new(Fabric {
            arenas,
            barrier: SenseBarrier::new(cfg.num_pes),
            model: NetModel::new(cfg.net),
            sym_len: cfg.sym_len,
            sym_alloc: Mutex::new(FreeList::new(0, cfg.sym_len)),
            heap_allocs,
            oob: Mutex::new(HashMap::new()),
            oob_cv: Condvar::new(),
            progress_delay_ns: AtomicU64::new(0),
            metrics: FabricMetrics::new(cfg.metrics),
            fault,
        });
        (0..cfg.num_pes).map(|pe| FabricPe { fabric: Arc::clone(&fabric), pe }).collect()
    }

    /// Number of PEs on the fabric.
    pub fn num_pes(&self) -> usize {
        self.arenas.len()
    }

    /// Size of the symmetric region (same on every PE).
    pub fn sym_len(&self) -> usize {
        self.sym_len
    }

    /// The network cost model.
    pub fn model(&self) -> &NetModel {
        &self.model
    }

    fn check_pe(&self, pe: usize) -> Result<()> {
        if pe < self.num_pes() {
            Ok(())
        } else {
            Err(FabricError::InvalidPe { pe, num_pes: self.num_pes() })
        }
    }

    /// Direct access to a PE's arena (runtime-internal).
    ///
    /// # Errors
    /// [`FabricError::InvalidPe`] for an out-of-range `pe`.
    pub fn arena(&self, pe: usize) -> Result<&Arena> {
        self.check_pe(pe)?;
        Ok(&self.arenas[pe])
    }

    /// Allocate from the symmetric region. The returned offset addresses the
    /// same-size block on **every** PE's arena.
    ///
    /// Callers must coordinate collectively (exactly one logical allocation
    /// per collective call) — the runtime does root-allocates + an OOB
    /// broadcast, exactly like ROFI's `rofi_alloc`.
    ///
    /// # Errors
    /// [`FabricError::OutOfMemory`] when the region cannot satisfy the
    /// request — or when an armed [`FaultPlane`] fails it artificially.
    pub fn alloc_symmetric(&self, size: usize, align: usize) -> Result<usize> {
        if let Some(fault) = &self.fault {
            if fault.fail_symmetric_alloc() {
                return Err(FabricError::OutOfMemory {
                    requested: size,
                    available: self.sym_available(),
                });
            }
        }
        self.sym_alloc.lock().alloc(size, align)
    }

    /// Free a symmetric allocation. Must be called exactly once per
    /// allocation (the runtime's Darc destruction protocol guarantees this).
    ///
    /// # Errors
    /// [`FabricError::InvalidFree`] when `offset` is not a live symmetric
    /// allocation.
    pub fn free_symmetric(&self, offset: usize) -> Result<()> {
        self.sym_alloc.lock().free(offset)
    }

    /// Allocate from `pe`'s one-sided dynamic heap.
    ///
    /// # Errors
    /// [`FabricError::InvalidPe`] for an out-of-range `pe`;
    /// [`FabricError::OutOfMemory`] when the heap cannot satisfy the
    /// request — or when an armed [`FaultPlane`] fails it artificially.
    pub fn alloc_heap(&self, pe: usize, size: usize, align: usize) -> Result<usize> {
        self.check_pe(pe)?;
        if let Some(fault) = &self.fault {
            if fault.fail_heap_alloc(pe) {
                return Err(FabricError::OutOfMemory {
                    requested: size,
                    available: self.heap_allocs[pe].lock().available(),
                });
            }
        }
        self.heap_allocs[pe].lock().alloc(size, align)
    }

    /// Free a one-sided heap allocation on `pe`.
    ///
    /// # Errors
    /// [`FabricError::InvalidPe`] for an out-of-range `pe`;
    /// [`FabricError::InvalidFree`] when `offset` is not live on that heap.
    pub fn free_heap(&self, pe: usize, offset: usize) -> Result<()> {
        self.check_pe(pe)?;
        self.heap_allocs[pe].lock().free(offset)
    }

    /// Bytes free in the symmetric region.
    pub fn sym_available(&self) -> usize {
        self.sym_alloc.lock().available()
    }

    /// Bytes free in `pe`'s heap.
    ///
    /// # Errors
    /// [`FabricError::InvalidPe`] for an out-of-range `pe`.
    pub fn heap_available(&self, pe: usize) -> Result<usize> {
        self.check_pe(pe)?;
        Ok(self.heap_allocs[pe].lock().available())
    }

    /// Bytes currently allocated in `pe`'s heap (staging-leak detection).
    ///
    /// # Errors
    /// [`FabricError::InvalidPe`] for an out-of-range `pe`.
    pub fn heap_in_use(&self, pe: usize) -> Result<usize> {
        self.check_pe(pe)?;
        Ok(self.heap_allocs[pe].lock().in_use())
    }

    /// Publish a bootstrap value under `tag` (out-of-band channel).
    pub fn oob_put(&self, tag: u64, val: u64) {
        self.oob.lock().insert(tag, val);
        self.oob_cv.notify_all();
    }

    /// Blocking read of a bootstrap value.
    pub fn oob_get(&self, tag: u64) -> u64 {
        let mut map = self.oob.lock();
        loop {
            if let Some(&v) = map.get(&tag) {
                return v;
            }
            self.oob_cv.wait(&mut map);
        }
    }

    /// Remove a bootstrap value once all readers are done.
    pub fn oob_remove(&self, tag: u64) {
        self.oob.lock().remove(&tag);
    }

    /// Failure injection: stall each progress tick by `ns` nanoseconds.
    pub fn set_progress_delay_ns(&self, ns: u64) {
        self.progress_delay_ns.store(ns, Ordering::Relaxed);
    }

    /// Apply the injected progress delay (called by the runtime's progress
    /// engine; no-op unless a test armed it).
    pub fn progress_delay(&self) {
        let ns = self.progress_delay_ns.load(Ordering::Relaxed);
        if ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        }
    }

    /// The fault-injection plane, if this fabric was built with one.
    pub fn fault_plane(&self) -> Option<&Arc<FaultPlane>> {
        self.fault.as_ref()
    }

    /// The live fabric-layer metrics registry.
    pub fn metrics(&self) -> &FabricMetrics {
        &self.metrics
    }

    /// Typed snapshot of the fabric-layer counters.
    pub fn stats(&self) -> FabricStats {
        self.metrics.snapshot()
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("num_pes", &self.num_pes())
            .field("sym_len", &self.sym_len)
            .finish()
    }
}

/// One PE's handle onto the fabric. Cloneable; clones refer to the same PE.
#[derive(Clone)]
pub struct FabricPe {
    fabric: Arc<Fabric>,
    pe: usize,
}

impl FabricPe {
    /// This PE's id.
    pub fn pe(&self) -> usize {
        self.pe
    }

    /// World size.
    pub fn num_pes(&self) -> usize {
        self.fabric.num_pes()
    }

    /// The shared fabric.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// RDMA put: write `src` into `dst_pe`'s arena at `offset`.
    ///
    /// # Safety
    /// The caller must guarantee no PE concurrently reads or writes the
    /// destination range (the RDMA contract — see [`Arena::write`]).
    ///
    /// # Errors
    /// [`FabricError::InvalidPe`] for an out-of-range `dst_pe`;
    /// [`FabricError::OutOfBounds`] when the range exceeds the arena.
    pub unsafe fn put(&self, dst_pe: usize, offset: usize, src: &[u8]) -> Result<()> {
        let arena = self.fabric.arena(dst_pe)?;
        if dst_pe != self.pe {
            self.fabric.model.charge(src.len());
        }
        self.fabric.metrics.record_put(src.len() as u64, self.fabric.model.inject_path(src.len()));
        // SAFETY: forwarded contract.
        unsafe { arena.write(offset, src) }
    }

    /// RDMA get: read from `src_pe`'s arena at `offset` into `dst`.
    ///
    /// # Safety
    /// The caller must guarantee no PE concurrently writes the source range.
    ///
    /// # Errors
    /// [`FabricError::InvalidPe`] for an out-of-range `src_pe`;
    /// [`FabricError::OutOfBounds`] when the range exceeds the arena.
    pub unsafe fn get(&self, src_pe: usize, offset: usize, dst: &mut [u8]) -> Result<()> {
        let arena = self.fabric.arena(src_pe)?;
        if src_pe != self.pe {
            self.fabric.model.charge(dst.len());
        }
        self.fabric.metrics.record_get(dst.len() as u64);
        // SAFETY: forwarded contract.
        unsafe { arena.read(offset, dst) }
    }

    /// Atomic view of 8 bytes in any PE's arena (safe: atomics synchronize).
    ///
    /// # Errors
    /// [`FabricError::InvalidPe`], [`FabricError::OutOfBounds`], or
    /// [`FabricError::Misaligned`] — see [`Arena::atomic_u64`].
    pub fn atomic_u64(&self, pe: usize, offset: usize) -> Result<&AtomicU64> {
        self.fabric.arena(pe)?.atomic_u64(offset)
    }

    /// Atomic view of a word in any PE's arena.
    ///
    /// # Errors
    /// As for [`FabricPe::atomic_u64`].
    pub fn atomic_usize(&self, pe: usize, offset: usize) -> Result<&AtomicUsize> {
        self.fabric.arena(pe)?.atomic_usize(offset)
    }

    /// Atomic view of one byte in any PE's arena.
    ///
    /// # Errors
    /// [`FabricError::InvalidPe`] or [`FabricError::OutOfBounds`].
    pub fn atomic_u8(&self, pe: usize, offset: usize) -> Result<&AtomicU8> {
        self.fabric.arena(pe)?.atomic_u8(offset)
    }

    /// World barrier over all PEs.
    pub fn barrier(&self) {
        self.fabric.metrics.record_barrier_round();
        self.fabric.barrier.wait();
    }

    /// World barrier that keeps running `progress` while waiting.
    pub fn barrier_with_progress(&self, progress: impl FnMut()) {
        self.fabric.metrics.record_barrier_round();
        self.fabric.barrier.wait_with_progress(progress);
    }
}

impl std::fmt::Debug for FabricPe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FabricPe").field("pe", &self.pe).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fabric(n: usize) -> Vec<FabricPe> {
        Fabric::launch(FabricConfig {
            num_pes: n,
            sym_len: 1 << 16,
            heap_len: 1 << 16,
            net: NetConfig::disabled(),
            metrics: true,
            fault: None,
        })
    }

    #[test]
    fn put_get_between_pes() {
        let pes = small_fabric(2);
        let data = vec![7u8; 128];
        unsafe { pes[0].put(1, 64, &data).unwrap() };
        let mut out = vec![0u8; 128];
        unsafe { pes[1].get(1, 64, &mut out).unwrap() };
        assert_eq!(out, data);
        // PE0 can also read it remotely.
        let mut out0 = vec![0u8; 128];
        unsafe { pes[0].get(1, 64, &mut out0).unwrap() };
        assert_eq!(out0, data);
    }

    #[test]
    fn invalid_pe_rejected() {
        let pes = small_fabric(2);
        let mut buf = [0u8; 4];
        assert!(matches!(
            unsafe { pes[0].get(5, 0, &mut buf) },
            Err(FabricError::InvalidPe { pe: 5, num_pes: 2 })
        ));
    }

    #[test]
    fn symmetric_alloc_offsets_valid_on_all_pes() {
        let pes = small_fabric(4);
        let off = pes[0].fabric().alloc_symmetric(256, 64).unwrap();
        for pe in 0..4 {
            unsafe { pes[0].put(pe, off, &[pe as u8; 256]).unwrap() };
        }
        for pe in 0..4 {
            let mut out = [0u8; 256];
            unsafe { pes[3].get(pe, off, &mut out).unwrap() };
            assert!(out.iter().all(|&b| b == pe as u8));
        }
        pes[0].fabric().free_symmetric(off).unwrap();
    }

    #[test]
    fn heap_allocs_are_per_pe() {
        let pes = small_fabric(2);
        let f = pes[0].fabric();
        let a0 = f.alloc_heap(0, 1024, 8).unwrap();
        let a1 = f.alloc_heap(1, 1024, 8).unwrap();
        // Independent allocators may hand out the same offset — that's the
        // point of one-sided heaps.
        assert!(a0 >= f.sym_len());
        assert!(a1 >= f.sym_len());
        f.free_heap(0, a0).unwrap();
        f.free_heap(1, a1).unwrap();
    }

    #[test]
    fn symmetric_and_heap_do_not_overlap() {
        let pes = small_fabric(1);
        let f = pes[0].fabric();
        let s = f.alloc_symmetric(1 << 16, 1).unwrap(); // whole symmetric region
        let h = f.alloc_heap(0, 1 << 16, 1).unwrap(); // whole heap
        assert!(s + (1 << 16) <= h || h + (1 << 16) <= s);
    }

    #[test]
    fn oob_exchange_blocks_until_put() {
        let pes = small_fabric(2);
        let f = Arc::clone(pes[0].fabric());
        let reader = std::thread::spawn(move || f.oob_get(42));
        std::thread::sleep(std::time::Duration::from_millis(10));
        pes[1].fabric().oob_put(42, 4242);
        assert_eq!(reader.join().unwrap(), 4242);
        pes[1].fabric().oob_remove(42);
    }

    #[test]
    fn barrier_synchronizes_pes() {
        let pes = small_fabric(4);
        let flag = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for pe in pes {
            let flag = Arc::clone(&flag);
            handles.push(std::thread::spawn(move || {
                flag.fetch_add(1, Ordering::SeqCst);
                pe.barrier();
                assert_eq!(flag.load(Ordering::SeqCst), 4);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn stats_count_transfers() {
        let pes = small_fabric(2);
        unsafe { pes[0].put(1, 0, &[1, 2, 3]).unwrap() };
        let mut buf = [0u8; 3];
        unsafe { pes[1].get(1, 0, &mut buf).unwrap() };
        let stats = pes[0].fabric().stats();
        assert_eq!(stats.puts, 1);
        assert_eq!(stats.gets, 1);
        assert_eq!(stats.bytes_put + stats.bytes_get, 6);
        // 3 bytes is well under any inject threshold.
        assert_eq!(stats.inject_puts, 1);
        assert_eq!(stats.rendezvous_puts, 0);
        assert_eq!(stats.put_sizes.count(), 1);
    }

    #[test]
    fn disabled_metrics_stay_zero() {
        let pes = Fabric::launch(FabricConfig {
            num_pes: 2,
            sym_len: 1 << 16,
            heap_len: 1 << 16,
            net: NetConfig::disabled(),
            metrics: false,
            fault: None,
        });
        unsafe { pes[0].put(1, 0, &[1, 2, 3]).unwrap() };
        pes[0].fabric().set_progress_delay_ns(0);
        let stats = pes[0].fabric().stats();
        assert_eq!(stats.puts, 0);
        assert_eq!(stats.bytes_put, 0);
    }

    #[test]
    fn barrier_rounds_are_counted() {
        let pes = small_fabric(2);
        let before = pes[0].fabric().stats().barrier_rounds;
        let peer = pes[1].clone();
        let t = std::thread::spawn(move || peer.barrier());
        pes[0].barrier();
        t.join().unwrap();
        // Both PEs entered one barrier episode: two recorded rounds.
        assert_eq!(pes[0].fabric().stats().barrier_rounds - before, 2);
    }

    #[test]
    fn armed_fault_plane_fails_allocations() {
        use crate::fault::FaultConfig;
        let pes = Fabric::launch(
            FabricConfig::new(1)
                .sym_len(1 << 16)
                .heap_len(1 << 16)
                .net(NetConfig::disabled())
                .fault(FaultConfig::seeded(13).alloc_fail_prob(1.0)),
        );
        let f = pes[0].fabric();
        // Disarmed during bootstrap: allocations succeed.
        let off = f.alloc_heap(0, 64, 8).unwrap();
        f.free_heap(0, off).unwrap();
        f.fault_plane().unwrap().arm();
        assert!(matches!(f.alloc_heap(0, 64, 8), Err(FabricError::OutOfMemory { .. })));
        assert!(matches!(f.alloc_symmetric(64, 8), Err(FabricError::OutOfMemory { .. })));
        assert_eq!(f.fault_plane().unwrap().stats().alloc_failures_injected, 2);
    }

    #[test]
    fn concurrent_atomic_flags_synchronize_data() {
        // The flag-based transfer pattern the Lamellae relies on:
        // writer: write data, release-store flag.
        // reader: acquire-load flag, then read data.
        let pes = small_fabric(2);
        let writer = pes[0].clone();
        let reader = pes[1].clone();
        let h = std::thread::spawn(move || {
            unsafe { writer.put(1, 64, &[0xab; 32]).unwrap() };
            writer.atomic_u64(1, 0).unwrap().store(1, Ordering::Release);
        });
        while reader.atomic_u64(1, 0).unwrap().load(Ordering::Acquire) == 0 {
            std::hint::spin_loop();
        }
        let mut out = [0u8; 32];
        unsafe { reader.get(1, 64, &mut out).unwrap() };
        assert_eq!(out, [0xab; 32]);
        h.join().unwrap();
    }
}
