//! Per-PE registered RDMA memory region.
//!
//! In the real system this memory is registered with libfabric so the NIC
//! can DMA into it. Here it is a page-aligned process allocation that other
//! simulated PEs write into directly. Safety mirrors the hardware reality:
//! raw access is `unsafe` (a remote PE can write at any time), while the
//! atomic accessors are safe (they go through `Atomic*` types, which is how
//! the runtime's flag-based transfer protocol synchronizes data access —
//! data writes happen-before the release store of the flag).

use crate::{FabricError, Result};
use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize};

/// Alignment of the arena base (a typical page).
pub const ARENA_ALIGN: usize = 4096;

/// One PE's registered memory region.
pub struct Arena {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the arena is raw shared memory by design. All plain-data access is
// gated behind `unsafe` methods whose contracts require the caller (the
// Lamellae protocol layer) to provide synchronization, exactly as for real
// RDMA-registered memory. The atomic accessors are safe because `Atomic*`
// types permit concurrent access from any thread.
unsafe impl Send for Arena {}
unsafe impl Sync for Arena {}

impl Arena {
    /// Allocate a zeroed region of `len` bytes.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "arena must be non-empty");
        let layout = Layout::from_size_align(len, ARENA_ALIGN).expect("arena layout");
        // SAFETY: layout has non-zero size (asserted above).
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "arena allocation failed");
        Arena { ptr, len }
    }

    /// Region size in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the region is empty (never true; arenas are non-empty).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base pointer of the region.
    pub fn base_ptr(&self) -> *mut u8 {
        self.ptr
    }

    fn check(&self, offset: usize, len: usize) -> Result<()> {
        if offset.checked_add(len).is_some_and(|end| end <= self.len) {
            Ok(())
        } else {
            Err(FabricError::OutOfBounds { offset, len, arena_len: self.len })
        }
    }

    /// Read `dst.len()` bytes starting at `offset`.
    ///
    /// # Safety
    /// The caller must guarantee no PE is concurrently writing the range
    /// (the RDMA contract: reads racing remote puts return torn data in the
    /// real system; here they would be UB, so the runtime's flag protocol
    /// must order them).
    pub unsafe fn read(&self, offset: usize, dst: &mut [u8]) -> Result<()> {
        self.check(offset, dst.len())?;
        // SAFETY: bounds checked; caller guarantees no concurrent writers.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.add(offset), dst.as_mut_ptr(), dst.len());
        }
        Ok(())
    }

    /// Write `src` into the region starting at `offset`.
    ///
    /// # Safety
    /// The caller must guarantee no PE is concurrently reading or writing
    /// the range (see [`Arena::read`]).
    pub unsafe fn write(&self, offset: usize, src: &[u8]) -> Result<()> {
        self.check(offset, src.len())?;
        // SAFETY: bounds checked; caller guarantees exclusive access.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.add(offset), src.len());
        }
        Ok(())
    }

    /// Borrow `len` bytes starting at `offset` as a slice.
    ///
    /// # Safety
    /// The caller must guarantee no PE writes the range for the lifetime of
    /// the returned slice.
    pub unsafe fn slice(&self, offset: usize, len: usize) -> Result<&[u8]> {
        self.check(offset, len)?;
        // SAFETY: bounds checked; caller guarantees immutability.
        Ok(unsafe { std::slice::from_raw_parts(self.ptr.add(offset), len) })
    }

    /// Borrow `len` bytes starting at `offset` as a mutable slice.
    ///
    /// # Safety
    /// The caller must guarantee exclusive access to the range for the
    /// lifetime of the returned slice.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, offset: usize, len: usize) -> Result<&mut [u8]> {
        self.check(offset, len)?;
        // SAFETY: bounds checked; caller guarantees exclusivity.
        Ok(unsafe { std::slice::from_raw_parts_mut(self.ptr.add(offset), len) })
    }

    /// View the 8 bytes at `offset` as an `AtomicU64`.
    ///
    /// Safe: atomics tolerate concurrent access from every PE. This is the
    /// primitive behind the Lamellae's flag-based transfer signalling.
    ///
    /// # Errors
    /// [`FabricError::OutOfBounds`] when `offset + 8` exceeds the arena;
    /// [`FabricError::Misaligned`] when `offset` is not 8-byte aligned.
    pub fn atomic_u64(&self, offset: usize) -> Result<&AtomicU64> {
        self.check(offset, 8)?;
        if !offset.is_multiple_of(8) {
            return Err(FabricError::Misaligned { offset, align: 8 });
        }
        // SAFETY: bounds + alignment checked; AtomicU64 allows aliasing.
        Ok(unsafe { &*(self.ptr.add(offset) as *const AtomicU64) })
    }

    /// View the 8 bytes at `offset` as an `AtomicUsize` (64-bit platforms).
    ///
    /// # Errors
    /// [`FabricError::OutOfBounds`] / [`FabricError::Misaligned`] as for
    /// [`Arena::atomic_u64`], against the platform word size.
    pub fn atomic_usize(&self, offset: usize) -> Result<&AtomicUsize> {
        self.check(offset, std::mem::size_of::<usize>())?;
        if !offset.is_multiple_of(std::mem::align_of::<usize>()) {
            return Err(FabricError::Misaligned { offset, align: std::mem::align_of::<usize>() });
        }
        // SAFETY: bounds + alignment checked; AtomicUsize allows aliasing.
        Ok(unsafe { &*(self.ptr.add(offset) as *const AtomicUsize) })
    }

    /// View the byte at `offset` as an `AtomicU8` (used by the
    /// GenericAtomicArray's 1-byte element locks).
    ///
    /// # Errors
    /// [`FabricError::OutOfBounds`] when `offset` is past the arena's end.
    pub fn atomic_u8(&self, offset: usize) -> Result<&AtomicU8> {
        self.check(offset, 1)?;
        // SAFETY: bounds checked; AtomicU8 allows aliasing, no alignment
        // requirement beyond 1.
        Ok(unsafe { &*(self.ptr.add(offset) as *const AtomicU8) })
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.len, ARENA_ALIGN).expect("arena layout");
        // SAFETY: ptr was produced by alloc_zeroed with this exact layout.
        unsafe { dealloc(self.ptr, layout) };
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena").field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn write_read_roundtrip() {
        let a = Arena::new(256);
        let data = [1u8, 2, 3, 4, 5];
        unsafe { a.write(10, &data).unwrap() };
        let mut out = [0u8; 5];
        unsafe { a.read(10, &mut out).unwrap() };
        assert_eq!(out, data);
    }

    #[test]
    fn starts_zeroed() {
        let a = Arena::new(64);
        let mut out = [1u8; 64];
        unsafe { a.read(0, &mut out).unwrap() };
        assert_eq!(out, [0u8; 64]);
    }

    #[test]
    fn bounds_are_enforced() {
        let a = Arena::new(16);
        let mut buf = [0u8; 8];
        assert!(unsafe { a.read(12, &mut buf) }.is_err());
        assert!(unsafe { a.write(16, &[0]) }.is_err());
        // Overflowing offset+len must not wrap.
        assert!(unsafe { a.read(usize::MAX, &mut buf) }.is_err());
        assert!(a.atomic_u64(16).is_err());
    }

    #[test]
    fn atomics_work_and_alias_bytes() {
        let a = Arena::new(64);
        a.atomic_u64(8).unwrap().store(0xdead_beef, Ordering::Release);
        let mut out = [0u8; 8];
        unsafe { a.read(8, &mut out).unwrap() };
        assert_eq!(u64::from_le_bytes(out), 0xdead_beef);
    }

    #[test]
    fn atomic_alignment_enforced() {
        let a = Arena::new(64);
        assert_eq!(a.atomic_u64(3).err(), Some(FabricError::Misaligned { offset: 3, align: 8 }));
        assert!(a.atomic_u8(3).is_ok());
    }

    #[test]
    fn slices_view_written_data() {
        let a = Arena::new(32);
        unsafe {
            a.write(0, &[9, 8, 7]).unwrap();
            assert_eq!(a.slice(0, 3).unwrap(), &[9, 8, 7]);
            a.slice_mut(1, 1).unwrap()[0] = 42;
            assert_eq!(a.slice(0, 3).unwrap(), &[9, 42, 7]);
        }
    }
}
