//! Collective synchronization primitives across simulated PEs.
//!
//! The Lamellae trait requires a `barrier` (paper Sec. III-A). PEs here are
//! thread groups, so a sense-reversing centralized barrier is both correct
//! and representative: its cost grows with PE count like the small-message
//! latencies a real dissemination barrier would exhibit.
//!
//! Unlike `std::sync::Barrier`, this barrier supports *subsets* of PEs
//! (teams, Sec. III: "Team — a subset of PEs in the world") by constructing
//! one instance per team, and it spins with `yield_now` so executor worker
//! threads on the same cores can continue making progress.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A reusable sense-reversing barrier for `n` participants.
#[derive(Debug)]
pub struct SenseBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SenseBarrier {
    /// Create a barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        SenseBarrier { n, count: AtomicUsize::new(0), sense: AtomicBool::new(false) }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Enter the barrier and wait until all `n` participants have entered.
    ///
    /// Returns `true` on exactly one participant per episode (the last
    /// arriver), mirroring `std::sync::Barrier`'s leader result.
    pub fn wait(&self) -> bool {
        let my_sense = !self.sense.load(Ordering::Relaxed);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.n {
            // Last arriver: reset the count and flip the sense, releasing
            // all waiters.
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            false
        }
    }

    /// Like [`SenseBarrier::wait`] but calls `progress` while spinning.
    ///
    /// A blocked PE must keep servicing incoming AMs (paper Sec. III-C:
    /// "because it is still alive, its thread pool is still able to process
    /// AMs sent to it by other PEs"). The barrier itself is the canonical
    /// place a PE blocks, so it takes a progress callback.
    pub fn wait_with_progress(&self, mut progress: impl FnMut()) -> bool {
        let my_sense = !self.sense.load(Ordering::Relaxed);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
            true
        } else {
            while self.sense.load(Ordering::Acquire) != my_sense {
                progress();
                std::thread::yield_now();
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_participant_is_leader_every_time() {
        let b = SenseBarrier::new(1);
        for _ in 0..5 {
            assert!(b.wait());
        }
    }

    #[test]
    fn all_threads_wait_for_each_other() {
        const N: usize = 8;
        const EPISODES: usize = 50;
        let barrier = Arc::new(SenseBarrier::new(N));
        let phase = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..N {
            let barrier = Arc::clone(&barrier);
            let phase = Arc::clone(&phase);
            handles.push(std::thread::spawn(move || {
                for ep in 0..EPISODES {
                    // Every thread must observe the shared phase equal to the
                    // episode number inside the episode — only possible if the
                    // barrier actually synchronizes.
                    assert_eq!(phase.load(Ordering::SeqCst), ep);
                    if barrier.wait() {
                        phase.store(ep + 1, Ordering::SeqCst);
                    }
                    barrier.wait();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(phase.load(Ordering::SeqCst), EPISODES);
    }

    #[test]
    fn exactly_one_leader_per_episode() {
        const N: usize = 6;
        let barrier = Arc::new(SenseBarrier::new(N));
        let leaders = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..N {
            let barrier = Arc::clone(&barrier);
            let leaders = Arc::clone(&leaders);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    if barrier.wait() {
                        leaders.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn progress_callback_runs_for_waiters() {
        let barrier = Arc::new(SenseBarrier::new(2));
        let ticks = Arc::new(AtomicUsize::new(0));
        let b2 = Arc::clone(&barrier);
        let t2 = Arc::clone(&ticks);
        let waiter = std::thread::spawn(move || {
            b2.wait_with_progress(|| {
                t2.fetch_add(1, Ordering::Relaxed);
            });
        });
        // Give the waiter time to spin a few progress ticks.
        while ticks.load(Ordering::Relaxed) < 3 {
            std::hint::spin_loop();
        }
        barrier.wait();
        waiter.join().unwrap();
        assert!(ticks.load(Ordering::Relaxed) >= 3);
    }
}
