//! First-fit free-list allocator with coalescing.
//!
//! Each PE's registered RDMA region is carved up by one of these (paper
//! Sec. III-A: "The Lamellae is also responsible for managing RDMA Memory
//! Regions used within an application"). The allocator hands out *offsets*
//! (not pointers) so the same bookkeeping can drive both the symmetric
//! region (offsets shared by all PEs) and each PE's private dynamic heap.

use crate::{FabricError, Result};
use std::collections::BTreeMap;

/// A free-list allocator over the abstract range `[base, base + len)`.
///
/// Invariants (checked by the property tests in `tests/proptest_alloc.rs`):
/// * live allocations never overlap;
/// * free blocks are disjoint from live allocations and from each other;
/// * `free` immediately coalesces with adjacent free blocks, so a fully
///   freed allocator always collapses back to a single block.
#[derive(Debug)]
pub struct FreeList {
    base: usize,
    len: usize,
    /// Free blocks keyed by offset → size. BTreeMap keeps them address
    /// ordered, which makes coalescing O(log n).
    free: BTreeMap<usize, usize>,
    /// Live allocations keyed by the offset handed to the caller →
    /// (block_offset, block_size). `block_offset <= offset` when alignment
    /// padding was needed.
    live: BTreeMap<usize, (usize, usize)>,
    /// Bytes currently allocated (block sizes, including alignment padding).
    in_use: usize,
}

impl FreeList {
    /// Create an allocator over `[base, base + len)`.
    pub fn new(base: usize, len: usize) -> Self {
        let mut free = BTreeMap::new();
        if len > 0 {
            free.insert(base, len);
        }
        FreeList { base, len, free, live: BTreeMap::new(), in_use: 0 }
    }

    /// Total bytes managed.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Bytes currently allocated (including alignment padding).
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Bytes currently free.
    pub fn available(&self) -> usize {
        self.len - self.in_use
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.live.len()
    }

    /// Allocate `size` bytes aligned to `align` (a power of two).
    /// Returns the aligned offset.
    ///
    /// # Errors
    /// [`FabricError::OutOfMemory`] when no free block can fit the
    /// (padded) request.
    pub fn alloc(&mut self, size: usize, align: usize) -> Result<usize> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let size = size.max(1);
        // First fit: scan address-ordered free blocks.
        let mut found = None;
        for (&off, &blen) in &self.free {
            let aligned = (off + align - 1) & !(align - 1);
            let pad = aligned - off;
            if blen >= pad + size {
                found = Some((off, blen, aligned, pad));
                break;
            }
        }
        let Some((off, blen, aligned, pad)) = found else {
            return Err(FabricError::OutOfMemory { requested: size, available: self.available() });
        };
        self.free.remove(&off);
        // The block we hand out spans [off, aligned + size): alignment
        // padding stays owned by the allocation so free() can return it.
        let block_size = pad + size;
        let tail = blen - block_size;
        if tail > 0 {
            self.free.insert(off + block_size, tail);
        }
        self.live.insert(aligned, (off, block_size));
        self.in_use += block_size;
        Ok(aligned)
    }

    /// Free the allocation previously returned at `offset`.
    ///
    /// # Errors
    /// [`FabricError::InvalidFree`] when `offset` is not a live allocation
    /// (double free, or an address this allocator never returned).
    pub fn free(&mut self, offset: usize) -> Result<()> {
        let (block_off, block_size) =
            self.live.remove(&offset).ok_or(FabricError::InvalidFree { offset })?;
        self.in_use -= block_size;
        self.insert_free(block_off, block_size);
        Ok(())
    }

    /// Size (excluding alignment padding start) of the live allocation at
    /// `offset`, if any.
    pub fn allocation_size(&self, offset: usize) -> Option<usize> {
        self.live.get(&offset).map(|&(block_off, block_size)| block_size - (offset - block_off))
    }

    fn insert_free(&mut self, mut off: usize, mut size: usize) {
        // Coalesce with the predecessor if adjacent.
        if let Some((&poff, &psize)) = self.free.range(..off).next_back() {
            debug_assert!(poff + psize <= off, "free blocks overlap");
            if poff + psize == off {
                self.free.remove(&poff);
                off = poff;
                size += psize;
            }
        }
        // Coalesce with the successor if adjacent.
        if let Some((&noff, &nsize)) = self.free.range(off + size..).next() {
            if off + size == noff {
                self.free.remove(&noff);
                size += nsize;
            }
        }
        self.free.insert(off, size);
    }

    /// True when nothing is allocated and the free list has collapsed back
    /// to one block spanning the whole range.
    pub fn is_pristine(&self) -> bool {
        self.live.is_empty()
            && self.in_use == 0
            && (self.len == 0 || self.free.get(&self.base) == Some(&self.len))
            && self.free.len() == usize::from(self.len > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip_restores_pristine() {
        let mut fl = FreeList::new(0, 1024);
        let a = fl.alloc(100, 8).unwrap();
        let b = fl.alloc(200, 8).unwrap();
        let c = fl.alloc(50, 8).unwrap();
        assert!(fl.in_use() >= 350);
        // Free out of order to exercise both coalescing directions.
        fl.free(b).unwrap();
        fl.free(a).unwrap();
        fl.free(c).unwrap();
        assert!(fl.is_pristine());
    }

    #[test]
    fn allocations_respect_alignment() {
        let mut fl = FreeList::new(3, 4096); // deliberately misaligned base
        for align in [1usize, 2, 4, 8, 64, 256] {
            let off = fl.alloc(10, align).unwrap();
            assert_eq!(off % align, 0, "align {align}");
        }
    }

    #[test]
    fn allocations_never_overlap() {
        let mut fl = FreeList::new(0, 4096);
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for i in 1..20 {
            let size = i * 7;
            let off = fl.alloc(size, 8).unwrap();
            for &(o, s) in &spans {
                assert!(off + size <= o || o + s <= off, "overlap");
            }
            spans.push((off, size));
        }
    }

    #[test]
    fn out_of_memory_reported() {
        let mut fl = FreeList::new(0, 128);
        assert!(fl.alloc(64, 1).is_ok());
        assert!(matches!(fl.alloc(128, 1), Err(FabricError::OutOfMemory { .. })));
    }

    #[test]
    fn double_free_rejected() {
        let mut fl = FreeList::new(0, 128);
        let a = fl.alloc(16, 8).unwrap();
        fl.free(a).unwrap();
        assert_eq!(fl.free(a), Err(FabricError::InvalidFree { offset: a }));
    }

    #[test]
    fn free_of_unallocated_offset_rejected() {
        let mut fl = FreeList::new(0, 128);
        assert_eq!(fl.free(4), Err(FabricError::InvalidFree { offset: 4 }));
    }

    #[test]
    fn reuse_after_free() {
        let mut fl = FreeList::new(0, 64);
        let a = fl.alloc(64, 1).unwrap();
        assert!(fl.alloc(1, 1).is_err());
        fl.free(a).unwrap();
        assert!(fl.alloc(64, 1).is_ok());
    }

    #[test]
    fn allocation_size_tracks_requested_bytes() {
        let mut fl = FreeList::new(0, 1024);
        let a = fl.alloc(100, 64).unwrap();
        assert!(fl.allocation_size(a).unwrap() >= 100);
        assert_eq!(fl.allocation_size(a + 1), None);
    }

    #[test]
    fn zero_sized_alloc_gets_unique_offset() {
        let mut fl = FreeList::new(0, 64);
        let a = fl.alloc(0, 1).unwrap();
        let b = fl.alloc(0, 1).unwrap();
        assert_ne!(a, b);
        fl.free(a).unwrap();
        fl.free(b).unwrap();
        assert!(fl.is_pristine());
    }
}
