//! Deterministic fault injection for the simulated fabric.
//!
//! Real NICs drop, delay, reorder, and corrupt traffic; allocators run out
//! of registered memory under pressure. The [`FaultPlane`] lets tests and
//! benches subject the runtime to those failures *reproducibly*: every
//! fault decision is a pure function of `(seed, src, dst, seq, attempt)`,
//! so the same seed produces the same fault schedule for the same traffic
//! pattern regardless of thread interleaving — and retransmit attempt `n`
//! of a chunk always sees the same verdict, which is what lets a test
//! assert "this chunk is dropped twice, then delivered". Attempts *after*
//! a chunk's first delivering verdict are answered `Deliver` without a
//! counted draw (they can only be spurious timer fires or go-back-N window
//! resends — the simulated wire is lossless absent injection), so the
//! injected-fault counters themselves are seed-reproducible no matter how
//! the retransmit timer happens to fire.
//!
//! The plane sits below the reliable-delivery layer in the `QueueTransport`
//! lamellae (see DESIGN.md §4b): the transport asks
//! [`FaultPlane::chunk_action`] before each wire push and applies the
//! returned [`ChunkAction`] itself (the plane only decides and counts).
//! Allocation-failure injection hooks [`Fabric::alloc_heap`] and
//! [`Fabric::alloc_symmetric`] directly.
//!
//! Only *data-plane chunk deliveries* and *allocations* are faulted. The
//! control plane — ack words, barriers, the out-of-band bootstrap exchange,
//! and one-sided RDMA gets — stays reliable, mirroring how RDMA transports
//! layer unreliable datagram traffic over a reliable verbs substrate.
//!
//! [`Fabric::alloc_heap`]: crate::fabric::Fabric::alloc_heap
//! [`Fabric::alloc_symmetric`]: crate::fabric::Fabric::alloc_symmetric

use lamellar_metrics::{FaultMetrics, FaultStats};
use rand::{Rng, SeedableRng, SmallRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Per-direction fault probabilities, each in `[0, 1]`.
///
/// Probabilities are evaluated in a fixed priority order — drop, duplicate,
/// truncate, corrupt, delay — with a single draw each; the first hit wins,
/// so at most one fault applies per `(chunk, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Probability a chunk transmission is suppressed entirely.
    pub drop: f64,
    /// Probability a chunk is delivered twice (same bytes, same sequence
    /// number — exercises receive-side duplicate suppression).
    pub duplicate: f64,
    /// Probability a chunk is signalled with a shortened length (trailing
    /// bytes cut — exercises header/checksum validation).
    pub truncate: f64,
    /// Probability one bit of the chunk payload is flipped in flight.
    pub corrupt: f64,
    /// Probability a chunk is held back [`FaultConfig::delay_ns`] before
    /// delivery.
    pub delay: f64,
}

impl FaultRates {
    /// All-zero rates: no chunk faults for this direction.
    pub fn none() -> Self {
        Self::default()
    }

    /// True if every probability is zero.
    pub fn is_none(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.truncate == 0.0
            && self.corrupt == 0.0
            && self.delay == 0.0
    }
}

/// Construction knobs for a [`FaultPlane`], mirroring the
/// [`NetConfig`](crate::netmodel::NetConfig) builder style.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the deterministic fault schedule. Equal seeds reproduce
    /// equal schedules for equal traffic.
    pub seed: u64,
    /// Default chunk-fault rates for every src→dst direction.
    pub rates: FaultRates,
    /// Nanoseconds a delayed chunk is held back before transmission.
    pub delay_ns: u64,
    /// Probability a heap or symmetric allocation fails artificially.
    pub alloc_fail: f64,
    /// Per-direction rate overrides `(src, dst, rates)`; the first match
    /// wins over [`rates`](Self::rates).
    pub pair_rates: Vec<(usize, usize, FaultRates)>,
}

impl FaultConfig {
    /// A plane with the given seed and no faults armed; layer probabilities
    /// on with the builder methods.
    pub fn seeded(seed: u64) -> Self {
        FaultConfig {
            seed,
            rates: FaultRates::none(),
            delay_ns: 200_000,
            alloc_fail: 0.0,
            pair_rates: Vec::new(),
        }
    }

    /// Set the default drop probability.
    pub fn drop_prob(mut self, p: f64) -> Self {
        self.rates.drop = p;
        self
    }

    /// Set the default duplication probability.
    pub fn dup_prob(mut self, p: f64) -> Self {
        self.rates.duplicate = p;
        self
    }

    /// Set the default truncation probability.
    pub fn truncate_prob(mut self, p: f64) -> Self {
        self.rates.truncate = p;
        self
    }

    /// Set the default bit-flip probability.
    pub fn corrupt_prob(mut self, p: f64) -> Self {
        self.rates.corrupt = p;
        self
    }

    /// Set the default delay probability and the hold-back duration.
    pub fn delay_prob(mut self, p: f64, delay_ns: u64) -> Self {
        self.rates.delay = p;
        self.delay_ns = delay_ns;
        self
    }

    /// Set the artificial allocation-failure probability.
    pub fn alloc_fail_prob(mut self, p: f64) -> Self {
        self.alloc_fail = p;
        self
    }

    /// Override the rates for one src→dst direction.
    pub fn pair(mut self, src: usize, dst: usize, rates: FaultRates) -> Self {
        self.pair_rates.push((src, dst, rates));
        self
    }

    /// Rates in effect for the `src → dst` direction.
    pub fn rates_for(&self, src: usize, dst: usize) -> FaultRates {
        self.pair_rates
            .iter()
            .find(|(s, d, _)| *s == src && *d == dst)
            .map(|(_, _, r)| *r)
            .unwrap_or(self.rates)
    }
}

/// The fault the transport must apply to one `(chunk, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkAction {
    /// No fault: transmit normally.
    Deliver,
    /// Do not transmit; the chunk silently vanishes.
    Drop,
    /// Transmit twice (back to back, same sequence number).
    Duplicate,
    /// Signal `new_len` instead of the true length (trailing bytes cut).
    Truncate {
        /// The shortened length to signal, `1 <= new_len < len`.
        new_len: usize,
    },
    /// Flip bit `bit` of byte `byte` before transmission.
    Corrupt {
        /// Index of the payload byte to damage.
        byte: usize,
        /// Bit position within that byte, `0..8`.
        bit: u8,
    },
    /// Hold the chunk back `ns` nanoseconds before transmitting.
    Delay {
        /// Hold-back duration in nanoseconds.
        ns: u64,
    },
}

/// splitmix64 finalizer: the avalanche stage that turns structured keys
/// (small integers) into uniformly distributed seeds.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Fold `v` into hash state `h` (golden-ratio increment + avalanche).
fn combine(h: u64, v: u64) -> u64 {
    mix64(h.wrapping_add(0x9e3779b97f4a7c15).wrapping_add(v))
}

/// True when the action transmits the chunk's true bytes (possibly twice,
/// possibly late): after such a verdict the chunk has reached the wire and
/// any further attempt is a spurious or window retransmit.
fn delivers(action: ChunkAction) -> bool {
    matches!(action, ChunkAction::Deliver | ChunkAction::Duplicate | ChunkAction::Delay { .. })
}

/// The pure verdict draw for one `(src, dst, seq, attempt)` key — no
/// counters, no armed check. Fixed evaluation order with a single draw per
/// category; the first hit wins, so the per-category counters recorded by
/// [`FaultPlane::chunk_action`] partition the faulted chunks.
fn decide(
    cfg: &FaultConfig,
    rates: FaultRates,
    src: usize,
    dst: usize,
    seq: u64,
    attempt: u32,
    len: usize,
) -> ChunkAction {
    let mut key = combine(cfg.seed, src as u64);
    key = combine(key, dst as u64);
    key = combine(key, seq);
    key = combine(key, attempt as u64);
    let mut rng = SmallRng::seed_from_u64(key);
    if rng.gen_bool(rates.drop) {
        return ChunkAction::Drop;
    }
    if rng.gen_bool(rates.duplicate) {
        return ChunkAction::Duplicate;
    }
    if len > 1 && rng.gen_bool(rates.truncate) {
        return ChunkAction::Truncate { new_len: rng.gen_range(1..len) };
    }
    if len > 0 && rng.gen_bool(rates.corrupt) {
        return ChunkAction::Corrupt {
            byte: rng.gen_range(0..len),
            bit: (rng.next_u64() % 8) as u8,
        };
    }
    if rng.gen_bool(rates.delay) {
        return ChunkAction::Delay { ns: cfg.delay_ns };
    }
    ChunkAction::Deliver
}

/// Deterministic, seeded fault injector shared by every PE on a [`Fabric`].
///
/// The plane starts **disarmed** so world bootstrap (queue-block symmetric
/// allocation, barrier setup) cannot be faulted into a panic; the world
/// builder calls [`arm`](Self::arm) once construction completes. While
/// disarmed, every query answers "no fault".
///
/// [`Fabric`]: crate::fabric::Fabric
#[derive(Debug)]
pub struct FaultPlane {
    cfg: FaultConfig,
    armed: AtomicBool,
    /// Per-slot draw counters for allocation-failure decisions: one slot
    /// per PE heap plus a final slot for the shared symmetric allocator.
    /// Keying draws by (slot, count) keeps them deterministic per
    /// allocator as long as each allocator's call order is.
    alloc_draws: Vec<AtomicU64>,
    metrics: FaultMetrics,
}

impl FaultPlane {
    /// Build a plane for a fabric of `num_pes` PEs.
    pub fn new(cfg: FaultConfig, num_pes: usize) -> Self {
        FaultPlane {
            cfg,
            armed: AtomicBool::new(false),
            alloc_draws: (0..=num_pes).map(|_| AtomicU64::new(0)).collect(),
            metrics: FaultMetrics::new(),
        }
    }

    /// The configuration this plane was built with.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Start injecting. Called by the world builder after bootstrap; until
    /// then every query reports "no fault".
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Release);
    }

    /// Stop injecting (teardown paths that must not be faulted).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Release);
    }

    /// Whether the plane is currently injecting.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// Decide the fault for transmission `attempt` of the chunk with
    /// sequence number `seq` on the `src → dst` direction, where the chunk
    /// is `len` bytes long.
    ///
    /// Pure in `(seed, src, dst, seq, attempt)` — the caller must query at
    /// most once per `(chunk, attempt)` and apply the returned action,
    /// because the matching fault counter is recorded here.
    ///
    /// Attempts *after* the chunk's first delivering verdict (deliver,
    /// duplicate, or delay — anything that puts the true bytes on the
    /// wire) answer [`ChunkAction::Deliver`] without a fresh counted draw.
    /// The simulated wire is lossless absent injection, so such attempts
    /// are by construction either timer-spurious retransmits or go-back-N
    /// window resends; exempting them keeps the injected-fault counters a
    /// pure function of the seed and the traffic pattern, independent of
    /// retransmit-timer scheduling (DESIGN.md §4b).
    pub fn chunk_action(
        &self,
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u32,
        len: usize,
    ) -> ChunkAction {
        if !self.is_armed() {
            return ChunkAction::Deliver;
        }
        let rates = self.cfg.rates_for(src, dst);
        if rates.is_none() {
            return ChunkAction::Deliver;
        }
        // Verdicts are pure, so "has an earlier attempt already delivered?"
        // needs no state: replay the (cheap, bounded-by-retry-cap) prefix.
        if (0..attempt).any(|a| delivers(decide(&self.cfg, rates, src, dst, seq, a, len))) {
            return ChunkAction::Deliver;
        }
        let action = decide(&self.cfg, rates, src, dst, seq, attempt, len);
        match action {
            ChunkAction::Drop => self.metrics.record_drop(),
            ChunkAction::Duplicate => self.metrics.record_dup(),
            ChunkAction::Truncate { .. } => self.metrics.record_truncation(),
            ChunkAction::Corrupt { .. } => self.metrics.record_corruption(),
            ChunkAction::Delay { .. } => self.metrics.record_delay(),
            ChunkAction::Deliver => {}
        }
        action
    }

    fn fail_alloc(&self, slot: usize) -> bool {
        if !self.is_armed() || self.cfg.alloc_fail <= 0.0 {
            return false;
        }
        let count = self.alloc_draws[slot].fetch_add(1, Ordering::Relaxed);
        let key = combine(combine(combine(self.cfg.seed, 0xa110c), slot as u64), count);
        let fail = SmallRng::seed_from_u64(key).gen_bool(self.cfg.alloc_fail);
        if fail {
            self.metrics.record_alloc_failure();
        }
        fail
    }

    /// Decide whether the next heap allocation on `pe` fails artificially.
    /// Deterministic per `(seed, pe, allocation order)`.
    pub fn fail_heap_alloc(&self, pe: usize) -> bool {
        self.fail_alloc(pe)
    }

    /// Decide whether the next symmetric allocation fails artificially.
    /// Deterministic per `(seed, allocation order)`.
    pub fn fail_symmetric_alloc(&self) -> bool {
        self.fail_alloc(self.alloc_draws.len() - 1)
    }

    /// The live fault counters (what the injector did to the traffic).
    pub fn metrics(&self) -> &FaultMetrics {
        &self.metrics
    }

    /// Typed snapshot of the fault counters.
    pub fn stats(&self) -> FaultStats {
        self.metrics.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed_plane(cfg: FaultConfig) -> FaultPlane {
        let plane = FaultPlane::new(cfg, 2);
        plane.arm();
        plane
    }

    #[test]
    fn decisions_are_pure_functions_of_the_key() {
        let cfg = FaultConfig::seeded(7).drop_prob(0.3).corrupt_prob(0.3).dup_prob(0.3);
        let a = armed_plane(cfg.clone());
        let b = armed_plane(cfg);
        for seq in 0..200 {
            for attempt in 0..3 {
                assert_eq!(
                    a.chunk_action(0, 1, seq, attempt, 64),
                    b.chunk_action(0, 1, seq, attempt, 64),
                    "seq {seq} attempt {attempt} diverged"
                );
            }
        }
    }

    #[test]
    fn attempts_get_independent_verdicts() {
        // A chunk dropped on attempt 0 must not be doomed forever: with
        // p=0.5 some retransmit succeeds well within 64 attempts.
        let plane = armed_plane(FaultConfig::seeded(3).drop_prob(0.5));
        let mut delivered = false;
        for attempt in 0..64 {
            if plane.chunk_action(0, 1, 9, attempt, 32) == ChunkAction::Deliver {
                delivered = true;
                break;
            }
        }
        assert!(delivered, "no attempt of seq 9 ever delivered");
    }

    #[test]
    fn attempts_after_delivery_are_uncounted_deliveries() {
        // Spurious retransmits (timer fires although the chunk already made
        // it out) must neither fault the resend nor perturb the counters:
        // the schedule a seed produces is independent of retransmit timing.
        let plane = armed_plane(FaultConfig::seeded(3).drop_prob(0.5));
        for seq in 0..100u64 {
            // Query attempts in transport order until the first delivery...
            let mut attempt = 0;
            while plane.chunk_action(0, 1, seq, attempt, 32) != ChunkAction::Deliver {
                attempt += 1;
                assert!(attempt < 64, "seq {seq} never delivered");
            }
            let after_delivery = plane.stats();
            // ...then simulate spurious extra rounds: always Deliver, and
            // the counters must not move.
            for extra in 1..4 {
                assert_eq!(
                    plane.chunk_action(0, 1, seq, attempt + extra, 32),
                    ChunkAction::Deliver
                );
            }
            assert_eq!(plane.stats(), after_delivery, "spurious rounds moved counters");
        }
        // A run that suffered spurious rounds ends with the same counters
        // as a clean run of the same seed and traffic.
        let clean = armed_plane(FaultConfig::seeded(3).drop_prob(0.5));
        for seq in 0..100u64 {
            let mut attempt = 0;
            while clean.chunk_action(0, 1, seq, attempt, 32) != ChunkAction::Deliver {
                attempt += 1;
            }
        }
        assert_eq!(plane.stats(), clean.stats());
        assert!(plane.stats().drops_injected > 0);
    }

    #[test]
    fn rates_track_probabilities() {
        let plane = armed_plane(FaultConfig::seeded(11).drop_prob(0.2));
        let drops = (0..10_000)
            .filter(|&s| plane.chunk_action(0, 1, s, 0, 64) == ChunkAction::Drop)
            .count();
        assert!((1_500..2_500).contains(&drops), "p=0.2 drop count {drops}");
        assert_eq!(plane.stats().drops_injected, drops as u64);
    }

    #[test]
    fn pair_overrides_win_over_defaults() {
        let cfg = FaultConfig::seeded(5).drop_prob(1.0).pair(0, 1, FaultRates::none());
        let plane = armed_plane(cfg);
        assert_eq!(plane.chunk_action(0, 1, 0, 0, 16), ChunkAction::Deliver);
        assert_eq!(plane.chunk_action(1, 0, 0, 0, 16), ChunkAction::Drop);
    }

    #[test]
    fn disarmed_plane_never_faults() {
        let plane = FaultPlane::new(FaultConfig::seeded(1).drop_prob(1.0).alloc_fail_prob(1.0), 2);
        assert_eq!(plane.chunk_action(0, 1, 0, 0, 16), ChunkAction::Deliver);
        assert!(!plane.fail_heap_alloc(0));
        assert!(!plane.fail_symmetric_alloc());
        assert_eq!(plane.stats(), FaultStats::default());
        plane.arm();
        assert_eq!(plane.chunk_action(0, 1, 0, 0, 16), ChunkAction::Drop);
        plane.disarm();
        assert_eq!(plane.chunk_action(0, 1, 1, 0, 16), ChunkAction::Deliver);
    }

    #[test]
    fn corrupt_and_truncate_stay_in_bounds() {
        let plane = armed_plane(FaultConfig::seeded(9).truncate_prob(0.5).corrupt_prob(0.5));
        for seq in 0..1_000 {
            match plane.chunk_action(0, 1, seq, 0, 48) {
                ChunkAction::Truncate { new_len } => assert!((1..48).contains(&new_len)),
                ChunkAction::Corrupt { byte, bit } => {
                    assert!(byte < 48);
                    assert!(bit < 8);
                }
                ChunkAction::Deliver => {}
                other => panic!("unexpected action {other:?}"),
            }
        }
        // Tiny chunks cannot be truncated below one byte.
        let tiny = armed_plane(FaultConfig::seeded(9).truncate_prob(1.0));
        assert_eq!(tiny.chunk_action(0, 1, 0, 0, 1), ChunkAction::Deliver);
    }

    #[test]
    fn alloc_failures_are_deterministic_per_order() {
        let cfg = FaultConfig::seeded(21).alloc_fail_prob(0.3);
        let a = armed_plane(cfg.clone());
        let b = armed_plane(cfg);
        let draws_a: Vec<bool> = (0..100).map(|_| a.fail_heap_alloc(0)).collect();
        let draws_b: Vec<bool> = (0..100).map(|_| b.fail_heap_alloc(0)).collect();
        assert_eq!(draws_a, draws_b);
        assert!(draws_a.iter().any(|&f| f), "p=0.3 over 100 draws never failed");
        assert!(!draws_a.iter().all(|&f| f));
        assert_eq!(
            a.stats().alloc_failures_injected,
            draws_a.iter().filter(|&&f| f).count() as u64
        );
    }
}
