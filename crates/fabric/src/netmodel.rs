//! Network cost model.
//!
//! The paper's cluster: Mellanox HDR-100 InfiniBand, 12.5 GB/s peak, with a
//! libfabric verbs provider that switches from `fi_inject_write` (optimized
//! small-message path) to `fi_write` above an inject threshold — the cause of
//! the Fig. 2 bandwidth dip between 128 B and 256 B transfers.
//!
//! In simulation every transfer is a memcpy, so with no model all sizes run
//! at memory speed and Fig. 2 would be flat. The model charges each transfer
//!
//! ```text
//! delay(n) = per_message_latency(n) + n / bandwidth
//! per_message_latency(n) = inject_latency   if n <= inject_size
//!                          base_latency     otherwise
//! ```
//!
//! by spin-waiting, which reproduces the curve's shape: latency-bound small
//! transfers, the inject→write step, and saturation at peak bandwidth for
//! large transfers. **Disabled by default**: unit tests exercise the same
//! code paths at memory speed; benches enable it via
//! [`NetConfig::paper_like`] or the `LAMELLAR_NET_MODEL` env var.

use std::time::{Duration, Instant};

/// Tunable parameters of the cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Master switch; when false all costs are zero.
    pub enabled: bool,
    /// Per-message latency on the ordinary (`fi_write`-like) path, in ns.
    pub latency_ns: u64,
    /// Per-message latency on the small-message (`fi_inject_write`-like)
    /// path, in ns. Must be `<= latency_ns` for the model to make sense.
    pub inject_latency_ns: u64,
    /// Largest message (bytes) eligible for the inject path. The paper's
    /// provider switched between 128 B and 256 B.
    pub inject_size: usize,
    /// Peak link bandwidth in bytes per second (paper: 12.5 GB/s).
    pub bandwidth_bytes_per_sec: f64,
}

impl NetConfig {
    /// Model disabled: zero cost, used by tests.
    pub fn disabled() -> Self {
        NetConfig {
            enabled: false,
            latency_ns: 0,
            inject_latency_ns: 0,
            inject_size: 0,
            bandwidth_bytes_per_sec: f64::INFINITY,
        }
    }

    /// Parameters shaped like the paper's testbed, scaled so that benchmark
    /// sweeps finish quickly: 12.5 GB/s peak, ~1 µs write latency, ~0.35 µs
    /// inject latency, 192 B inject threshold (between the paper's observed
    /// 128 B and 256 B switch point).
    pub fn paper_like() -> Self {
        NetConfig {
            enabled: true,
            latency_ns: 1_000,
            inject_latency_ns: 350,
            inject_size: 192,
            bandwidth_bytes_per_sec: 12.5e9,
        }
    }

    /// Read configuration from the environment:
    /// `LAMELLAR_NET_MODEL=1` enables [`NetConfig::paper_like`], with
    /// optional overrides `LAMELLAR_NET_LAT_NS`, `LAMELLAR_NET_INJECT_NS`,
    /// `LAMELLAR_NET_INJECT_SIZE`, `LAMELLAR_NET_BW_GBPS`.
    pub fn from_env() -> Self {
        let enabled = std::env::var("LAMELLAR_NET_MODEL").map(|v| v == "1").unwrap_or(false);
        if !enabled {
            return NetConfig::disabled();
        }
        let mut cfg = NetConfig::paper_like();
        if let Ok(v) = std::env::var("LAMELLAR_NET_LAT_NS") {
            if let Ok(v) = v.parse() {
                cfg.latency_ns = v;
            }
        }
        if let Ok(v) = std::env::var("LAMELLAR_NET_INJECT_NS") {
            if let Ok(v) = v.parse() {
                cfg.inject_latency_ns = v;
            }
        }
        if let Ok(v) = std::env::var("LAMELLAR_NET_INJECT_SIZE") {
            if let Ok(v) = v.parse() {
                cfg.inject_size = v;
            }
        }
        if let Ok(v) = std::env::var("LAMELLAR_NET_BW_GBPS") {
            if let Ok(v) = v.parse::<f64>() {
                cfg.bandwidth_bytes_per_sec = v * 1e9;
            }
        }
        cfg
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::disabled()
    }
}

/// The runtime form of the model, applied on every fabric transfer.
#[derive(Debug)]
pub struct NetModel {
    cfg: NetConfig,
}

impl NetModel {
    /// Build a model from its configuration.
    pub fn new(cfg: NetConfig) -> Self {
        NetModel { cfg }
    }

    /// Whether costs are being charged.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Access the configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Whether a message of `bytes` takes the eager `fi_inject_write`-style
    /// path rather than the rendezvous `fi_write` path.
    ///
    /// Used both for cost accounting and for the fabric's inject/rendezvous
    /// split counters. With the model disabled the configured threshold is 0,
    /// so classification falls back to the paper-like 192 B switch point —
    /// the split stays meaningful in metrics-only runs.
    pub fn inject_path(&self, bytes: usize) -> bool {
        let threshold = if self.cfg.inject_size > 0 {
            self.cfg.inject_size
        } else {
            NetConfig::paper_like().inject_size
        };
        bytes <= threshold
    }

    /// The modeled wire time for a message of `bytes`.
    pub fn message_cost(&self, bytes: usize) -> Duration {
        if !self.cfg.enabled {
            return Duration::ZERO;
        }
        let lat = if bytes <= self.cfg.inject_size {
            self.cfg.inject_latency_ns
        } else {
            self.cfg.latency_ns
        };
        let wire_ns = (bytes as f64 / self.cfg.bandwidth_bytes_per_sec) * 1e9;
        Duration::from_nanos(lat.saturating_add(wire_ns as u64))
    }

    /// Charge the cost of a `bytes`-sized message by spin-waiting.
    ///
    /// Spin (not sleep): modeled latencies are well under scheduler
    /// granularity, and a real NIC keeps the CPU-visible completion latency
    /// in this range too.
    pub fn charge(&self, bytes: usize) {
        if !self.cfg.enabled {
            return;
        }
        let cost = self.message_cost(bytes);
        let start = Instant::now();
        while start.elapsed() < cost {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_is_free() {
        let m = NetModel::new(NetConfig::disabled());
        assert_eq!(m.message_cost(1 << 20), Duration::ZERO);
        let t = Instant::now();
        m.charge(1 << 20);
        assert!(t.elapsed() < Duration::from_millis(1));
    }

    #[test]
    fn inject_threshold_creates_latency_step() {
        let m = NetModel::new(NetConfig::paper_like());
        let small = m.message_cost(192);
        let big = m.message_cost(193);
        assert!(big > small, "crossing the inject threshold must cost more");
    }

    #[test]
    fn bandwidth_saturates_for_large_messages() {
        let cfg = NetConfig::paper_like();
        let m = NetModel::new(cfg.clone());
        // Effective bandwidth of a 4 MiB transfer should be close to peak.
        let n = 4 << 20;
        let cost = m.message_cost(n).as_secs_f64();
        let eff = n as f64 / cost;
        assert!(eff > 0.9 * cfg.bandwidth_bytes_per_sec, "eff {eff}");
        // While a 64 B transfer is latency-dominated, far from peak.
        let cost64 = m.message_cost(64).as_secs_f64();
        let eff64 = 64.0 / cost64;
        assert!(eff64 < 0.1 * cfg.bandwidth_bytes_per_sec, "eff64 {eff64}");
    }

    #[test]
    fn charge_actually_waits() {
        let mut cfg = NetConfig::paper_like();
        cfg.latency_ns = 200_000; // 200 µs so the test is robust
        let m = NetModel::new(cfg);
        let t = Instant::now();
        m.charge(1024);
        assert!(t.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn env_parsing_defaults_to_disabled() {
        // The test environment does not set LAMELLAR_NET_MODEL.
        if std::env::var("LAMELLAR_NET_MODEL").is_err() {
            assert!(!NetConfig::from_env().enabled);
        }
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;

    /// Cost must be monotone non-decreasing in message size except at the
    /// inject threshold (where the paper's Fig. 2 dip comes from).
    #[test]
    fn cost_monotone_within_regimes() {
        let m = NetModel::new(NetConfig::paper_like());
        let inject = m.config().inject_size;
        let mut prev = m.message_cost(1);
        for n in 2..=inject {
            let c = m.message_cost(n);
            assert!(c >= prev, "inject regime not monotone at {n}");
            prev = c;
        }
        let mut prev = m.message_cost(inject + 1);
        for n in (inject + 2)..(inject + 512) {
            let c = m.message_cost(n);
            assert!(c >= prev, "write regime not monotone at {n}");
            prev = c;
        }
    }

    /// Effective bandwidth must be strictly increasing across decades until
    /// saturation — the S-shape of every bandwidth curve.
    #[test]
    fn effective_bandwidth_increases_with_size() {
        let m = NetModel::new(NetConfig::paper_like());
        let eff = |n: usize| n as f64 / m.message_cost(n).as_secs_f64();
        assert!(eff(1 << 10) > eff(1 << 6));
        assert!(eff(1 << 16) > eff(1 << 10));
        assert!(eff(1 << 22) > eff(1 << 16));
    }
}
