//! ROFI / rofi-sys compatibility shim.
//!
//! The paper layers a C library (ROFI) over libfabric and an `unsafe` Rust
//! binding crate (rofi-sys) over that (Sec. III-A.1): "Every function
//! provided by ROFI-sys must be declared as `unsafe`, because the Rust
//! compiler cannot guarantee the behavior and safety of libraries written in
//! other languages."
//!
//! This module reproduces that API surface over the simulated fabric so the
//! Fig. 2 "Rofi(libfabric)" series can be measured at the same layer the
//! paper measured it: raw put/get with *manual* termination detection and no
//! runtime involvement. All transfer functions are `unsafe` for the same
//! reason the originals are — nothing checks for racing remote accesses.

use crate::fabric::FabricPe;
use crate::Result;

/// A per-PE ROFI context, the moral equivalent of the state `rofi_init`
/// establishes in the C library.
pub struct Rofi {
    pe: FabricPe,
}

impl Rofi {
    /// `rofi_init`: bind a context to this PE's fabric endpoint.
    pub fn init(pe: FabricPe) -> Self {
        Rofi { pe }
    }

    /// `rofi_get_id`: this PE's rank.
    pub fn get_id(&self) -> usize {
        self.pe.pe()
    }

    /// `rofi_get_size`: number of PEs in the job.
    pub fn get_size(&self) -> usize {
        self.pe.num_pes()
    }

    /// `rofi_alloc`: allocate a symmetric RDMA-registered region; the
    /// returned offset is valid on every PE.
    ///
    /// The real call is collective; here the shared symmetric allocator
    /// keeps layouts identical, so a single call suffices and callers
    /// barrier afterwards just as the C API requires.
    ///
    /// # Errors
    /// [`FabricError::OutOfMemory`](crate::FabricError::OutOfMemory) when
    /// the symmetric region is exhausted (or an armed fault plane injects
    /// the failure).
    pub fn alloc(&self, size: usize) -> Result<usize> {
        self.pe.fabric().alloc_symmetric(size, 64)
    }

    /// `rofi_release`: free a symmetric region.
    ///
    /// # Errors
    /// [`FabricError::InvalidFree`](crate::FabricError::InvalidFree) when
    /// `offset` is not a live symmetric allocation.
    pub fn release(&self, offset: usize) -> Result<()> {
        self.pe.fabric().free_symmetric(offset)
    }

    /// `rofi_put`: one-sided write of `src` to `pe`'s memory at `offset`.
    ///
    /// # Safety
    /// As in rofi-sys: the caller must ensure the remote range is not
    /// concurrently accessed and remains allocated for the duration.
    ///
    /// # Errors
    /// Invalid PE or out-of-bounds range — see [`FabricPe::put`].
    pub unsafe fn put(&self, pe: usize, offset: usize, src: &[u8]) -> Result<()> {
        // SAFETY: contract forwarded to the caller.
        unsafe { self.pe.put(pe, offset, src) }
    }

    /// `rofi_get`: one-sided read from `pe`'s memory at `offset`.
    ///
    /// # Safety
    /// As in rofi-sys: the caller must ensure the remote range is not
    /// concurrently written and remains allocated for the duration.
    ///
    /// # Errors
    /// Invalid PE or out-of-bounds range — see [`FabricPe::get`].
    pub unsafe fn get(&self, pe: usize, offset: usize, dst: &mut [u8]) -> Result<()> {
        // SAFETY: contract forwarded to the caller.
        unsafe { self.pe.get(pe, offset, dst) }
    }

    /// `rofi_barrier`: block until every PE has entered.
    pub fn barrier(&self) {
        self.pe.barrier();
    }

    /// Access the underlying fabric endpoint (used by the Lamellae layer,
    /// which wraps this shim exactly as ROFI_Lamellae wraps rofi-sys).
    pub fn endpoint(&self) -> &FabricPe {
        &self.pe
    }
}

impl std::fmt::Debug for Rofi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rofi").field("pe", &self.get_id()).field("size", &self.get_size()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Fabric, FabricConfig};
    use crate::netmodel::NetConfig;

    #[test]
    fn rofi_style_put_get_with_manual_termination() {
        let pes = Fabric::launch(FabricConfig {
            num_pes: 2,
            sym_len: 1 << 16,
            heap_len: 1 << 12,
            net: NetConfig::disabled(),
            metrics: true,
            fault: None,
        });
        let mut pes = pes.into_iter();
        let r0 = Rofi::init(pes.next().unwrap());
        let r1 = Rofi::init(pes.next().unwrap());
        assert_eq!(r0.get_id(), 0);
        assert_eq!(r1.get_size(), 2);

        let region = r0.alloc(1024).unwrap();
        // Manual termination detection, as in the paper's Fig. 2 raw tests:
        // write a known pattern, then barrier.
        let t = std::thread::spawn(move || {
            unsafe { r1.put(0, region, &[0x5a; 1024]).unwrap() };
            r1.barrier();
            r1
        });
        r0.barrier();
        let mut out = [0u8; 1024];
        unsafe { r0.get(0, region, &mut out).unwrap() };
        assert_eq!(out, [0x5a; 1024]);
        let r1 = t.join().unwrap();
        drop(r1);
        r0.release(region).unwrap();
    }
}
