//! # rofi-sim
//!
//! A simulated network fabric standing in for ROFI / libfabric / OFI
//! (paper Sec. III-A.1). See DESIGN.md §1 for the substitution rationale.
//!
//! The real Lamellar stack bottoms out in ROFI, a thin C shim over
//! libfabric exposing: registered RDMA memory regions, one-sided `put`/`get`
//! of raw bytes, a collective `barrier`, and (de)allocation of RDMA memory.
//! This crate provides exactly that surface for a set of *simulated* PEs that
//! live in one OS process:
//!
//! * [`arena::Arena`] — one registered memory region per PE, carved up by a
//!   first-fit free-list allocator ([`alloc::FreeList`]) into a *symmetric*
//!   region (collective allocations, identical offsets on every PE — used by
//!   the runtime's internal queues) and a *dynamic heap* (one-sided
//!   allocations, per-PE offsets — used for user data structures, Sec. III-A:
//!   "the remainder of the RDMA Memory Region is used as a one-sided dynamic
//!   heap").
//! * [`fabric::Fabric`] / [`fabric::FabricPe`] — the per-PE handle with
//!   `put`/`get`/atomic-flag operations and collectives.
//! * [`netmodel::NetModel`] — an optional cost model (per-message latency,
//!   per-byte bandwidth, an `fi_inject_write` small-message fast path) that
//!   reproduces the *shape* of the paper's Fig. 2 bandwidth curves. Disabled
//!   by default so tests run at memory speed over the identical code paths.
//! * [`rofi`] — an `unsafe` C-style API mirroring ROFI.h / the rofi-sys
//!   crate, measured directly by the Fig. 2 "Rofi(libfabric)" series.
//!
//! Everything above this crate (the Lamellae, AMs, arrays) sees only bytes
//! moving between PEs — the same contract the real hardware provides.

#![warn(missing_docs)]

pub mod alloc;
pub mod arena;
pub mod barrier;
pub mod fabric;
pub mod fault;
pub mod netmodel;
pub mod rofi;

pub use arena::Arena;
pub use barrier::SenseBarrier;
pub use fabric::{Fabric, FabricPe};
pub use fault::{ChunkAction, FaultConfig, FaultPlane, FaultRates};
pub use netmodel::{NetConfig, NetModel};

/// Errors surfaced by fabric operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// An offset/length pair fell outside the target arena.
    OutOfBounds {
        /// Start offset of the attempted access.
        offset: usize,
        /// Length of the attempted access.
        len: usize,
        /// Total size of the arena the access targeted.
        arena_len: usize,
    },
    /// The arena could not satisfy an allocation request.
    OutOfMemory {
        /// Bytes the caller asked for.
        requested: usize,
        /// Bytes still free in the region (possibly fragmented).
        available: usize,
    },
    /// A PE id outside `0..num_pes`.
    InvalidPe {
        /// The offending PE id.
        pe: usize,
        /// World size the id was checked against.
        num_pes: usize,
    },
    /// `free` was called with an offset that is not a live allocation.
    InvalidFree {
        /// The offset passed to `free`.
        offset: usize,
    },
    /// An atomic accessor was given a misaligned offset.
    Misaligned {
        /// The offending offset.
        offset: usize,
        /// Alignment the accessor requires.
        align: usize,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::OutOfBounds { offset, len, arena_len } => write!(
                f,
                "access [{offset}, {offset}+{len}) out of bounds of arena of {arena_len} bytes"
            ),
            FabricError::OutOfMemory { requested, available } => {
                write!(f, "arena exhausted: requested {requested} bytes, {available} free")
            }
            FabricError::InvalidPe { pe, num_pes } => {
                write!(f, "invalid PE {pe} (world has {num_pes} PEs)")
            }
            FabricError::InvalidFree { offset } => {
                write!(f, "free of non-allocated offset {offset}")
            }
            FabricError::Misaligned { offset, align } => {
                write!(f, "offset {offset} not aligned to {align}")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// Result alias for fabric operations.
pub type Result<T> = std::result::Result<T, FabricError>;
