//! A minimal oneshot channel connecting a spawned task to its
//! [`JoinHandle`](crate::JoinHandle) / AM-result future.
//!
//! Implemented from scratch (no external async runtime) following the
//! channel-building patterns of *Rust Atomics and Locks* ch. 5: a shared
//! slot guarded by a lock, plus a parked `Waker` to notify the receiver.

use parking_lot::Mutex;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

struct Shared<T> {
    state: Mutex<State<T>>,
}

enum State<T> {
    /// Nothing sent yet; holds the receiver's waker if it polled.
    Empty(Option<Waker>),
    /// Value delivered, not yet taken.
    Ready(T),
    /// Value taken by the receiver.
    Taken,
    /// Sender dropped without sending.
    Closed,
}

/// Sending half: delivers exactly one value.
pub struct OneshotSender<T> {
    shared: Arc<Shared<T>>,
    sent: bool,
}

/// Receiving half: a future resolving to `Some(value)` or `None` if the
/// sender was dropped.
pub struct OneshotReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a connected oneshot pair.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let shared = Arc::new(Shared { state: Mutex::new(State::Empty(None)) });
    (OneshotSender { shared: Arc::clone(&shared), sent: false }, OneshotReceiver { shared })
}

impl<T> OneshotSender<T> {
    /// Deliver the value, waking the receiver if it is parked.
    pub fn send(mut self, value: T) {
        self.sent = true;
        let waker = {
            let mut state = self.shared.state.lock();
            match std::mem::replace(&mut *state, State::Ready(value)) {
                State::Empty(w) => w,
                // Re-send is impossible (send consumes self), and the
                // receiver cannot have taken a value that was never sent.
                _ => unreachable!("oneshot sender observed impossible state"),
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        if self.sent {
            return;
        }
        let waker = {
            let mut state = self.shared.state.lock();
            match &mut *state {
                State::Empty(w) => {
                    let w = w.take();
                    *state = State::Closed;
                    w
                }
                _ => None,
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> OneshotReceiver<T> {
    /// Non-blocking check; `None` if nothing has arrived (or was taken).
    pub fn try_recv(&self) -> Option<T> {
        let mut state = self.shared.state.lock();
        match std::mem::replace(&mut *state, State::Taken) {
            State::Ready(v) => Some(v),
            prev => {
                *state = prev;
                None
            }
        }
    }
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.shared.state.lock();
        match std::mem::replace(&mut *state, State::Taken) {
            State::Ready(v) => Poll::Ready(Some(v)),
            State::Closed => {
                *state = State::Closed;
                Poll::Ready(None)
            }
            State::Taken => Poll::Ready(None),
            State::Empty(_) => {
                *state = State::Empty(Some(cx.waker().clone()));
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::task::{RawWaker, RawWakerVTable};

    fn noop_waker() -> Waker {
        fn clone(_: *const ()) -> RawWaker {
            RawWaker::new(std::ptr::null(), &VTABLE)
        }
        fn noop(_: *const ()) {}
        static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, noop, noop, noop);
        // SAFETY: all vtable fns are no-ops over a null pointer.
        unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), &VTABLE)) }
    }

    fn poll_once<T>(rx: &mut OneshotReceiver<T>) -> Poll<Option<T>> {
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        Pin::new(rx).poll(&mut cx)
    }

    #[test]
    fn send_then_recv() {
        let (tx, mut rx) = oneshot();
        tx.send(99u32);
        assert_eq!(poll_once(&mut rx), Poll::Ready(Some(99)));
    }

    #[test]
    fn recv_before_send_is_pending() {
        let (tx, mut rx) = oneshot::<u8>();
        assert_eq!(poll_once(&mut rx), Poll::Pending);
        tx.send(1);
        assert_eq!(poll_once(&mut rx), Poll::Ready(Some(1)));
    }

    #[test]
    fn dropped_sender_resolves_none() {
        let (tx, mut rx) = oneshot::<u8>();
        drop(tx);
        assert_eq!(poll_once(&mut rx), Poll::Ready(None));
    }

    #[test]
    fn try_recv_takes_at_most_once() {
        let (tx, rx) = oneshot();
        assert!(rx.try_recv().is_none());
        tx.send(5u8);
        assert_eq!(rx.try_recv(), Some(5));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = oneshot();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            tx.send(vec![1, 2, 3]);
        });
        // Spin-poll from this thread.
        let mut rx = rx;
        loop {
            if let Poll::Ready(v) = poll_once(&mut rx) {
                assert_eq!(v, Some(vec![1, 2, 3]));
                break;
            }
            std::hint::spin_loop();
        }
        t.join().unwrap();
    }
}
