//! Task representation and join handles.

use crate::oneshot::OneshotReceiver;
use parking_lot::Mutex;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Wake, Waker};

pub(crate) type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// Scheduling interface a task uses to requeue itself on wake.
pub(crate) trait Schedule: Send + Sync + 'static {
    fn schedule(&self, task: Arc<Task>);
    fn task_finished(&self);
}

/// A spawned unit of work: a boxed future plus its scheduling state.
pub(crate) struct Task {
    /// The future, present while the task is alive. The lock is held for the
    /// duration of a poll, so a concurrent wake that requeues the task will
    /// serialize behind the running poll.
    future: Mutex<Option<BoxFuture>>,
    /// True while the task sits in some queue; prevents duplicate enqueues.
    queued: AtomicBool,
    pool: Weak<dyn Schedule>,
}

impl Task {
    pub(crate) fn new(future: BoxFuture, pool: Weak<dyn Schedule>) -> Arc<Self> {
        Arc::new(Task { future: Mutex::new(Some(future)), queued: AtomicBool::new(false), pool })
    }

    /// Try to mark the task queued; returns true if the caller should
    /// actually enqueue it.
    pub(crate) fn transition_to_queued(&self) -> bool {
        !self.queued.swap(true, Ordering::AcqRel)
    }

    /// Run the task once: poll its future. Completed tasks drop their future
    /// and notify the pool for `wait_all` accounting.
    pub(crate) fn run(self: Arc<Self>) {
        // Clear queued *before* polling so wakes arriving during the poll
        // requeue the task rather than being lost.
        self.queued.store(false, Ordering::Release);
        let mut slot = self.future.lock();
        let Some(fut) = slot.as_mut() else {
            return; // already completed (spurious wake)
        };
        let waker = Waker::from(Arc::clone(&self));
        let mut cx = Context::from_waker(&waker);
        // Contain panics: a panicking AM/task must neither kill the worker
        // thread nor strand the `wait_all` accounting. The task is treated
        // as finished; its JoinHandle observes the dropped result sender.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)));
        match result {
            Ok(Poll::Pending) => {}
            Ok(Poll::Ready(())) | Err(_) => {
                *slot = None;
                drop(slot);
                if let Some(pool) = self.pool.upgrade() {
                    pool.task_finished();
                }
            }
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if self.transition_to_queued() {
            if let Some(pool) = self.pool.upgrade() {
                pool.schedule(self);
            }
        }
    }

    fn wake_by_ref(self: &Arc<Self>) {
        Arc::clone(self).wake();
    }
}

/// Handle to a spawned task's result.
///
/// Awaiting it yields the task's output. Dropping it detaches the task (it
/// keeps running), matching the semantics of Lamellar AM handles — the
/// runtime tracks completion separately for `wait_all()`.
pub struct JoinHandle<T> {
    pub(crate) rx: OneshotReceiver<T>,
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match Pin::new(&mut self.rx).poll(cx) {
            Poll::Ready(Some(v)) => Poll::Ready(v),
            // The task panicked or its pool was torn down mid-flight; there
            // is no value to produce, and like `std::thread::join` on a
            // panicked thread this is a programming error at the await site.
            Poll::Ready(None) => panic!("task dropped without completing (panicked task?)"),
            Poll::Pending => Poll::Pending,
        }
    }
}

impl<T> JoinHandle<T> {
    /// Non-blocking probe for the result.
    pub fn try_take(&self) -> Option<T> {
        self.rx.try_recv()
    }
}
