//! Exponential backoff for runtime spin loops.
//!
//! Several layers of the stack wait for progress made by *other* threads:
//! `ThreadPool::wait_idle` waits for workers to drain, `wait_all` in the
//! runtime waits for outstanding requests, tests wait for wire quiescence.
//! A bare `std::thread::yield_now()` loop burns a core and — worse on an
//! oversubscribed machine — can starve the very thread it is waiting on.
//!
//! [`Backoff`] escalates in three phases (the shape crossbeam uses):
//!
//! 1. **spin** — a few rounds of `core::hint::spin_loop`, doubling each
//!    time, for waits that resolve in nanoseconds;
//! 2. **yield** — `std::thread::yield_now`, giving the scheduler a chance
//!    to run the producer;
//! 3. **park** — short timed sleeps, bounding CPU burn for long waits while
//!    keeping wakeup latency in the tens of microseconds.
//!
//! Call [`Backoff::snooze`] once per failed poll and [`Backoff::reset`]
//! whenever work was observed, so bursts stay in the cheap spin phase.

use std::time::Duration;

/// Number of escalation steps spent busy-spinning (2^step iterations each).
const SPIN_LIMIT: u32 = 6;
/// Steps (after spinning) spent yielding to the OS scheduler.
const YIELD_LIMIT: u32 = 10;
/// Sleep length once the wait has escalated past yielding.
const PARK: Duration = Duration::from_micros(50);

/// An escalating wait: spin, then yield, then park.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// A fresh backoff in the spin phase.
    pub fn new() -> Self {
        Backoff::default()
    }

    /// Return to the spin phase; call after observing progress.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Wait once, escalating the strategy on each successive call.
    pub fn snooze(&mut self) {
        if self.step < SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                core::hint::spin_loop();
            }
        } else if self.step < SPIN_LIMIT + YIELD_LIMIT {
            std::thread::yield_now();
        } else {
            std::thread::sleep(PARK);
        }
        self.step = self.step.saturating_add(1);
    }

    /// True once snoozing has escalated to timed parking (diagnostics).
    pub fn is_parking(&self) -> bool {
        self.step >= SPIN_LIMIT + YIELD_LIMIT
    }
}

/// Duration-level exponential backoff: the retry-interval counterpart of
/// [`Backoff`]'s spin escalation. Where `Backoff` paces *polls* inside one
/// wait, `ExpBackoff` paces *attempts* across retries — each call to
/// [`ExpBackoff::next_delay`] yields the next interval in the geometric
/// schedule `base, base·factor, base·factor², …`, saturating at `cap`.
///
/// The AM-layer `RetryPolicy` builds its per-attempt deadline windows on
/// this schedule.
#[derive(Debug, Clone)]
pub struct ExpBackoff {
    next: Duration,
    factor: u32,
    cap: Duration,
}

impl ExpBackoff {
    /// A schedule starting at `base`, multiplying by `factor` each step,
    /// never exceeding `cap`. A `factor` of 0 or 1 yields a constant
    /// schedule of `min(base, cap)`.
    pub fn new(base: Duration, factor: u32, cap: Duration) -> Self {
        ExpBackoff { next: base.min(cap), factor: factor.max(1), cap }
    }

    /// The next interval in the schedule (advances the schedule).
    pub fn next_delay(&mut self) -> Duration {
        let d = self.next;
        self.next = d.saturating_mul(self.factor).min(self.cap);
        d
    }

    /// The interval the next [`ExpBackoff::next_delay`] call will return,
    /// without advancing.
    pub fn peek(&self) -> Duration {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_to_parking_and_resets() {
        let mut b = Backoff::new();
        assert!(!b.is_parking());
        for _ in 0..(SPIN_LIMIT + YIELD_LIMIT) {
            b.snooze();
        }
        assert!(b.is_parking());
        b.snooze(); // parks (50µs) without panicking
        b.reset();
        assert!(!b.is_parking());
    }

    #[test]
    fn step_saturates() {
        let mut b = Backoff { step: u32::MAX };
        b.snooze();
        assert!(b.is_parking());
    }

    #[test]
    fn exp_backoff_doubles_and_caps() {
        let mut e = ExpBackoff::new(Duration::from_millis(10), 2, Duration::from_millis(35));
        assert_eq!(e.next_delay(), Duration::from_millis(10));
        assert_eq!(e.next_delay(), Duration::from_millis(20));
        assert_eq!(e.peek(), Duration::from_millis(35));
        assert_eq!(e.next_delay(), Duration::from_millis(35)); // capped
        assert_eq!(e.next_delay(), Duration::from_millis(35)); // stays capped
    }

    #[test]
    fn exp_backoff_degenerate_factors_are_constant() {
        for factor in [0, 1] {
            let mut e = ExpBackoff::new(Duration::from_millis(5), factor, Duration::from_secs(1));
            assert_eq!(e.next_delay(), Duration::from_millis(5));
            assert_eq!(e.next_delay(), Duration::from_millis(5));
        }
        // base above cap clamps immediately.
        let mut e = ExpBackoff::new(Duration::from_secs(9), 2, Duration::from_secs(1));
        assert_eq!(e.next_delay(), Duration::from_secs(1));
    }
}
