//! # lamellar-executor
//!
//! The Thread Pool layer of the Lamellar stack (paper Sec. III-B): a
//! work-stealing, multi-threaded executor for Rust futures.
//!
//! > "Lamellar fully supports Rust Futures and the async/await programming
//! > model; as such, Lamellar thread pools are considered Rust Executors.
//! > ... The Lamellar thread pool utilizes a work-stealing implementation
//! > with respect to individual PEs."
//!
//! Each simulated PE owns one [`ThreadPool`]. The pool runs:
//! * user-submitted futures ([`ThreadPool::spawn`] — "Lamellar enables users
//!   to submit their own Futures for execution on the thread pool"),
//! * Active Message execution tasks, and
//! * the communication tasks produced by the Lamellae.
//!
//! Design: a global injector queue ([`crossbeam_deque::Injector`]) feeds
//! per-worker LIFO deques; idle workers steal from siblings before parking.
//! [`ThreadPool::block_on`] *helps* — while the blocked future is pending,
//! the calling thread executes pool tasks, so "block_on only blocks the
//! calling PE" (Listing 1) and cannot starve the runtime even when every
//! worker is busy.
//!
//! An ablation (`single_queue` mode) replaces the per-worker deques with the
//! shared injector only, used by `bench/bin/ablation_executor` to measure
//! what work-stealing buys.

pub mod backoff;
pub mod oneshot;
pub mod pool;
pub mod task;

pub use backoff::{Backoff, ExpBackoff};
pub use oneshot::{oneshot, OneshotReceiver, OneshotSender};
pub use pool::{PoolConfig, ThreadPool};
pub use task::JoinHandle;
