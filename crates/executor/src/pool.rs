//! The work-stealing thread pool.

use crate::oneshot::oneshot;
use crate::task::{JoinHandle, Schedule, Task};
use crossbeam_deque::{Injector, Stealer, Worker};
use lamellar_metrics::{ExecutorMetrics, ExecutorStats};
use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::future::Future;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

/// Pool construction parameters.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of worker threads ("threads per PE" in the paper's runs;
    /// the best Lamellar configuration used 4).
    pub workers: usize,
    /// Ablation switch: disable per-worker deques and run every task through
    /// the shared injector queue.
    pub single_queue: bool,
    /// Prefix for worker thread names (helpful in stack traces).
    pub thread_name: String,
    /// Record spawn/complete/steal counters and per-worker queue-depth
    /// high-water marks ([`ExecutorMetrics`]).
    pub metrics: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8),
            single_queue: false,
            thread_name: "lamellar-worker".to_string(),
            metrics: true,
        }
    }
}

impl PoolConfig {
    /// A pool with exactly `n` workers.
    pub fn with_workers(n: usize) -> Self {
        PoolConfig { workers: n.max(1), ..Default::default() }
    }
}

struct PoolInner {
    injector: Injector<Arc<Task>>,
    stealers: Vec<Stealer<Arc<Task>>>,
    /// Wakeup channel for parked workers.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    shutdown: AtomicBool,
    /// Tasks spawned but not yet finished — drives `wait_all` semantics.
    outstanding: AtomicUsize,
    single_queue: bool,
    /// Identity used by worker threads to recognize their own pool.
    id: usize,
    /// Instrumentation: per-worker executed-task counts.
    executed: Vec<AtomicUsize>,
    /// Instrumentation: tasks obtained by stealing from a sibling.
    steals: Vec<AtomicUsize>,
    /// Executor-layer observability (spawn/complete/steal, queue HWMs).
    metrics: Arc<ExecutorMetrics>,
}

impl Schedule for PoolInner {
    fn schedule(&self, task: Arc<Task>) {
        // If called from one of this pool's workers, push to its local deque
        // (the work-stealing fast path); otherwise use the global injector.
        let pushed_local = !self.single_queue
            && CURRENT_WORKER.with(|cw| {
                if let Some(cur) = cw.borrow().as_ref() {
                    if cur.pool_id == self.id {
                        cur.worker.push(task.clone());
                        // Guard here, not just inside the recorder: len() on the
                        // shim deque takes a lock, which the disabled path must
                        // not pay.
                        if self.metrics.enabled() {
                            self.metrics.record_queue_depth(cur.index, cur.worker.len() as u64);
                        }
                        return true;
                    }
                }
                false
            });
        if !pushed_local {
            self.injector.push(task);
        }
        self.idle_cv.notify_one();
    }

    fn task_finished(&self) {
        self.metrics.record_complete();
        self.outstanding.fetch_sub(1, Ordering::AcqRel);
    }
}

struct CurrentWorker {
    pool_id: usize,
    index: usize,
    worker: Worker<Arc<Task>>,
}

thread_local! {
    static CURRENT_WORKER: RefCell<Option<CurrentWorker>> = const { RefCell::new(None) };
}

/// A per-PE work-stealing executor.
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spin up the pool.
    pub fn new(cfg: PoolConfig) -> Self {
        let workers: Vec<Worker<Arc<Task>>> =
            (0..cfg.workers).map(|_| Worker::new_lifo()).collect();
        let stealers = workers.iter().map(|w| w.stealer()).collect();
        let inner = Arc::new(PoolInner {
            injector: Injector::new(),
            stealers,
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            outstanding: AtomicUsize::new(0),
            single_queue: cfg.single_queue,
            id: 0, // fixed up below once the Arc address is known
            executed: (0..cfg.workers).map(|_| AtomicUsize::new(0)).collect(),
            steals: (0..cfg.workers).map(|_| AtomicUsize::new(0)).collect(),
            metrics: Arc::new(ExecutorMetrics::new(cfg.metrics, cfg.workers)),
        });
        // The pool id is the Arc's address — unique for the pool's lifetime.
        let id = Arc::as_ptr(&inner) as usize;
        // SAFETY-free fixup: `id` is plain data written before any worker
        // thread starts; we use an atomic-free write via Arc::get_mut.
        let inner = {
            let mut inner = inner;
            // No other Arc clones exist yet.
            Arc::get_mut(&mut inner).expect("sole owner").id = id;
            inner
        };
        let threads = workers
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("{}-{}", cfg.thread_name, i))
                    .spawn(move || worker_loop(inner, w, i))
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool { inner, threads }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Spawn a future onto the pool, returning a handle to its result.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        self.inner.metrics.record_spawn();
        self.inner.outstanding.fetch_add(1, Ordering::AcqRel);
        let (tx, rx) = oneshot();
        let wrapped = async move {
            tx.send(fut.await);
        };
        let task = Task::new(
            Box::pin(wrapped),
            Arc::downgrade(&self.inner) as std::sync::Weak<dyn Schedule>,
        );
        if task.transition_to_queued() {
            self.inner.schedule(task);
        }
        JoinHandle { rx }
    }

    /// Tasks spawned but not yet completed.
    pub fn outstanding(&self) -> usize {
        self.inner.outstanding.load(Ordering::Acquire)
    }

    /// The live executor-layer metrics registry (shared with the runtime's
    /// `RuntimeStats` assembly).
    pub fn metrics(&self) -> &Arc<ExecutorMetrics> {
        &self.inner.metrics
    }

    /// Typed snapshot of the executor-layer counters.
    pub fn stats(&self) -> ExecutorStats {
        self.inner.metrics.snapshot()
    }

    /// Instrumentation snapshot: per-worker `(executed, stolen)` counts.
    /// Stolen counts tasks a worker took from a *sibling's* deque — the
    /// work-stealing fast path the paper's Thread Pool layer relies on.
    pub fn worker_stats(&self) -> Vec<(usize, usize)> {
        self.inner
            .executed
            .iter()
            .zip(&self.inner.steals)
            .map(|(e, s)| (e.load(Ordering::Relaxed), s.load(Ordering::Relaxed)))
            .collect()
    }

    /// Drive `fut` to completion on the calling thread.
    ///
    /// While pending, the caller *helps* the pool by executing queued tasks,
    /// so a `block_on` inside a saturated runtime still makes progress
    /// (Listing 1: "block_on only blocks the calling PE").
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        let signal = Arc::new(BlockOnSignal::default());
        let waker = Waker::from(Arc::clone(&signal));
        let mut cx = Context::from_waker(&waker);
        let mut fut = std::pin::pin!(fut);
        loop {
            if let Poll::Ready(v) = fut.as_mut().poll(&mut cx) {
                return v;
            }
            // Help: run pool work while we wait. Re-poll as soon as either
            // our waker fired or we ran something (which may have been the
            // task we are waiting on).
            loop {
                if signal.take() {
                    break;
                }
                if !self.try_run_one_external() {
                    signal.wait_timeout(Duration::from_micros(200));
                    break;
                }
            }
        }
    }

    /// Block until every spawned task (AM, communication task, user future)
    /// has completed — the engine behind the paper's `wait_all()`.
    pub fn wait_idle(&self) {
        let mut backoff = crate::Backoff::new();
        while self.outstanding() != 0 {
            if self.try_run_one_external() {
                backoff.reset();
            } else {
                backoff.snooze();
            }
        }
    }

    /// Try to execute one task from the shared queues (used by helpers that
    /// are not workers: `block_on`, `wait_idle`, progress threads).
    fn try_run_one_external(&self) -> bool {
        // Steal from the injector first, then from workers.
        loop {
            match self.inner.injector.steal() {
                crossbeam_deque::Steal::Success(task) => {
                    task.run();
                    return true;
                }
                crossbeam_deque::Steal::Retry => continue,
                crossbeam_deque::Steal::Empty => break,
            }
        }
        for stealer in &self.inner.stealers {
            loop {
                match stealer.steal() {
                    crossbeam_deque::Steal::Success(task) => {
                        task.run();
                        return true;
                    }
                    crossbeam_deque::Steal::Retry => continue,
                    crossbeam_deque::Steal::Empty => break,
                }
            }
        }
        false
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.idle_cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.threads.len())
            .field("outstanding", &self.outstanding())
            .finish()
    }
}

fn worker_loop(inner: Arc<PoolInner>, worker: Worker<Arc<Task>>, index: usize) {
    // Register this thread as a worker so `schedule` can use the local deque.
    CURRENT_WORKER.with(|cw| {
        *cw.borrow_mut() = Some(CurrentWorker { pool_id: inner.id, index, worker });
    });
    let run_one = |inner: &PoolInner| -> bool {
        CURRENT_WORKER.with(|cw| {
            let borrow = cw.borrow();
            let cur = borrow.as_ref().expect("worker registered");
            if let Some((task, stolen)) = find_task(inner, &cur.worker, index) {
                // Drop the borrow before running: the task may spawn (and
                // thus re-borrow the thread-local to push local work).
                drop(borrow);
                inner.executed[index].fetch_add(1, Ordering::Relaxed);
                if stolen {
                    inner.steals[index].fetch_add(1, Ordering::Relaxed);
                    inner.metrics.record_steal();
                }
                task.run();
                true
            } else {
                false
            }
        })
    };
    loop {
        if run_one(&inner) {
            continue;
        }
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Park with a timeout: the timeout closes the race between the
        // empty-queue check and a concurrent push+notify.
        let mut guard = inner.idle_lock.lock();
        inner.idle_cv.wait_for(&mut guard, Duration::from_millis(1));
    }
    CURRENT_WORKER.with(|cw| *cw.borrow_mut() = None);
}

/// Find the next task; the boolean reports whether it was stolen from a
/// sibling worker (vs the local deque or the shared injector).
fn find_task(
    inner: &PoolInner,
    local: &Worker<Arc<Task>>,
    index: usize,
) -> Option<(Arc<Task>, bool)> {
    if let Some(t) = local.pop() {
        return Some((t, false));
    }
    // Refill from the injector (batch steal amortizes contention).
    loop {
        match inner.injector.steal_batch_and_pop(local) {
            crossbeam_deque::Steal::Success(t) => return Some((t, false)),
            crossbeam_deque::Steal::Retry => continue,
            crossbeam_deque::Steal::Empty => break,
        }
    }
    // Steal from siblings, starting after ourselves to spread contention.
    let n = inner.stealers.len();
    for k in 1..n {
        let victim = (index + k) % n;
        loop {
            match inner.stealers[victim].steal_batch_and_pop(local) {
                crossbeam_deque::Steal::Success(t) => return Some((t, true)),
                crossbeam_deque::Steal::Retry => continue,
                crossbeam_deque::Steal::Empty => break,
            }
        }
    }
    None
}

/// Waker for `block_on`: a flag plus a condvar to park the blocked thread.
#[derive(Default)]
struct BlockOnSignal {
    fired: Mutex<bool>,
    cv: Condvar,
}

impl BlockOnSignal {
    fn take(&self) -> bool {
        std::mem::take(&mut *self.fired.lock())
    }

    fn wait_timeout(&self, dur: Duration) {
        let mut fired = self.fired.lock();
        if !*fired {
            self.cv.wait_for(&mut fired, dur);
        }
        *fired = false;
    }
}

impl Wake for BlockOnSignal {
    fn wake(self: Arc<Self>) {
        *self.fired.lock() = true;
        self.cv.notify_one();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        *self.fired.lock() = true;
        self.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::pin::Pin;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn spawn_and_block_on_result() {
        let pool = ThreadPool::new(PoolConfig::with_workers(2));
        let h = pool.spawn(async { 21 * 2 });
        assert_eq!(pool.block_on(h), 42);
    }

    #[test]
    fn block_on_plain_future() {
        let pool = ThreadPool::new(PoolConfig::with_workers(1));
        assert_eq!(pool.block_on(async { "done" }), "done");
    }

    #[test]
    fn many_tasks_all_complete() {
        let pool = ThreadPool::new(PoolConfig::with_workers(4));
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..1000)
            .map(|i| {
                let c = Arc::clone(&counter);
                pool.spawn(async move {
                    c.fetch_add(1, Ordering::Relaxed);
                    i
                })
            })
            .collect();
        let mut sum = 0usize;
        for h in handles {
            sum += pool.block_on(h);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(sum, (0..1000).sum());
    }

    #[test]
    fn wait_idle_drains_detached_tasks() {
        let pool = ThreadPool::new(PoolConfig::with_workers(3));
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..500 {
            let c = Arc::clone(&counter);
            drop(pool.spawn(async move {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        // Recursive spawning exercises the local-deque push path.
        let pool = Arc::new(ThreadPool::new(PoolConfig::with_workers(4)));
        let counter = Arc::new(AtomicUsize::new(0));

        fn fanout(pool: Arc<ThreadPool>, counter: Arc<AtomicUsize>, depth: usize) {
            counter.fetch_add(1, Ordering::Relaxed);
            if depth == 0 {
                return;
            }
            for _ in 0..2 {
                let p = Arc::clone(&pool);
                let c = Arc::clone(&counter);
                let p2 = Arc::clone(&pool);
                drop(p2.spawn(async move { fanout(p, c, depth - 1) }));
            }
        }
        fanout(Arc::clone(&pool), Arc::clone(&counter), 6);
        pool.wait_idle();
        // 2^7 - 1 nodes in the spawn tree.
        assert_eq!(counter.load(Ordering::Relaxed), 127);
    }

    #[test]
    fn single_queue_mode_works() {
        let mut cfg = PoolConfig::with_workers(3);
        cfg.single_queue = true;
        let pool = ThreadPool::new(cfg);
        let h = pool.spawn(async { vec![1, 2, 3] });
        assert_eq!(pool.block_on(h), vec![1, 2, 3]);
        pool.wait_idle();
    }

    #[test]
    fn block_on_helps_when_workers_are_busy() {
        // 1 worker, occupied by a long-running task that waits on a flag
        // only set by a second task. block_on must execute the second task
        // itself to avoid deadlock.
        let pool = ThreadPool::new(PoolConfig::with_workers(1));
        let flag = Arc::new(AtomicUsize::new(0));
        let f1 = Arc::clone(&flag);
        let busy = pool.spawn(async move {
            while f1.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
                // Yield to the executor too, so this doesn't monopolize
                // the single worker in a non-preemptive runtime.
                YieldOnce::default().await;
            }
        });
        let f2 = Arc::clone(&flag);
        let setter = pool.spawn(async move {
            f2.store(1, Ordering::Release);
        });
        pool.block_on(async move {
            setter.await;
            busy.await;
        });
    }

    /// A future that returns Pending once, waking itself immediately.
    #[derive(Default)]
    struct YieldOnce {
        yielded: bool,
    }

    impl Future for YieldOnce {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.yielded {
                Poll::Ready(())
            } else {
                self.yielded = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }

    #[test]
    fn wakers_requeue_pending_tasks() {
        let pool = ThreadPool::new(PoolConfig::with_workers(2));
        let h = pool.spawn(async {
            for _ in 0..10 {
                YieldOnce::default().await;
            }
            "survived"
        });
        assert_eq!(pool.block_on(h), "survived");
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(PoolConfig::with_workers(2));
        let h = pool.spawn(async { 1 });
        assert_eq!(pool.block_on(h), 1);
        drop(pool); // must not hang
    }

    #[test]
    fn worker_stats_account_for_executed_tasks() {
        let pool = ThreadPool::new(PoolConfig::with_workers(2));
        for _ in 0..100 {
            drop(pool.spawn(async {}));
        }
        pool.wait_idle();
        let stats = pool.worker_stats();
        assert_eq!(stats.len(), 2);
        let total: usize = stats.iter().map(|&(e, _)| e).sum();
        // block_on/wait_idle helpers may run some tasks themselves, so the
        // workers account for at most all 100.
        assert!(total <= 100);
        // Steals never exceed executions.
        for &(e, s) in &stats {
            assert!(s <= e);
        }
    }

    #[test]
    fn panicked_task_does_not_kill_pool() {
        let pool = ThreadPool::new(PoolConfig::with_workers(2));
        drop(pool.spawn(async {
            panic!("task panic");
        }));
        pool.wait_idle();
        // Pool still works afterwards.
        let h = pool.spawn(async { 7 });
        assert_eq!(pool.block_on(h), 7);
    }
}
