//! Executor stress: heavy spawn storms, cross-thread wakes, and mixed
//! block_on/spawn interleavings.

use lamellar_executor::{oneshot, PoolConfig, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn ten_thousand_tasks_from_many_threads() {
    let pool = Arc::new(ThreadPool::new(PoolConfig::with_workers(4)));
    let counter = Arc::new(AtomicUsize::new(0));
    let spawners: Vec<_> = (0..4)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                for _ in 0..2_500 {
                    let c = Arc::clone(&counter);
                    drop(pool.spawn(async move {
                        c.fetch_add(1, Ordering::Relaxed);
                    }));
                }
            })
        })
        .collect();
    for s in spawners {
        s.join().unwrap();
    }
    pool.wait_idle();
    assert_eq!(counter.load(Ordering::Relaxed), 10_000);
}

#[test]
fn chained_oneshots_across_tasks() {
    // A pipeline of tasks, each waiting on the previous stage's oneshot —
    // exercises cross-task wakers heavily.
    let pool = ThreadPool::new(PoolConfig::with_workers(3));
    const STAGES: usize = 200;
    let (first_tx, mut rx) = oneshot::<usize>();
    for _ in 0..STAGES {
        let (tx, next_rx) = oneshot::<usize>();
        drop(pool.spawn(async move {
            let v = rx.await.expect("stage input");
            tx.send(v + 1);
        }));
        rx = next_rx;
    }
    first_tx.send(0);
    let out = pool.block_on(async move { rx.await.expect("pipeline output") });
    assert_eq!(out, STAGES);
}

#[test]
fn block_on_from_multiple_threads_concurrently() {
    let pool = Arc::new(ThreadPool::new(PoolConfig::with_workers(2)));
    let threads: Vec<_> = (0..6)
        .map(|i| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let h = pool.spawn(async move { i * 10 });
                pool.block_on(h)
            })
        })
        .collect();
    let mut results: Vec<usize> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    results.sort_unstable();
    assert_eq!(results, vec![0, 10, 20, 30, 40, 50]);
}

#[test]
fn deep_async_recursion_via_boxing() {
    fn countdown(
        pool: Arc<ThreadPool>,
        n: usize,
    ) -> std::pin::Pin<Box<dyn std::future::Future<Output = usize> + Send>> {
        Box::pin(async move {
            if n == 0 {
                0
            } else {
                let p = Arc::clone(&pool);
                let h = pool.spawn(async move { countdown(p, n - 1).await });
                h.await + 1
            }
        })
    }
    let pool = Arc::new(ThreadPool::new(PoolConfig::with_workers(3)));
    let p = Arc::clone(&pool);
    let out = pool.block_on(countdown(p, 100));
    assert_eq!(out, 100);
}
