//! Shared kernel plumbing: configurations, deterministic per-PE RNG, and
//! result records.

use std::time::Duration;

/// Problem size for Histogram and IndexGather (paper defaults: 1,000 table
/// elements per core, 10,000,000 updates per core, 10,000-op aggregation
/// buffers — scale down with `scaled`).
#[derive(Debug, Clone, Copy)]
pub struct TableConfig {
    /// Distributed-table elements per PE.
    pub table_per_pe: usize,
    /// Updates/requests issued per PE.
    pub updates_per_pe: usize,
    /// Aggregation buffer limit (ops per buffer).
    pub batch: usize,
    /// RNG seed (combined with the PE id).
    pub seed: u64,
}

impl TableConfig {
    /// The paper's parameters divided by `scale` (scale = 1 reproduces the
    /// evaluation's per-core numbers).
    pub fn paper_scaled(scale: usize) -> Self {
        let scale = scale.max(1);
        TableConfig {
            table_per_pe: 1_000,
            updates_per_pe: (10_000_000 / scale).max(1),
            batch: 10_000,
            seed: 0xBA1E,
        }
    }

    /// A small configuration for tests.
    pub fn test_small() -> Self {
        TableConfig { table_per_pe: 50, updates_per_pe: 2_000, batch: 128, seed: 7 }
    }
}

/// Problem size for Randperm (paper: 1,000,000 elements per core to
/// permute; target array twice that).
#[derive(Debug, Clone, Copy)]
pub struct PermConfig {
    /// Permutation elements per PE.
    pub perm_per_pe: usize,
    /// Target slots per PE (paper: 2× perm_per_pe).
    pub target_per_pe: usize,
    /// Aggregation buffer limit.
    pub batch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl PermConfig {
    /// The paper's parameters divided by `scale`.
    pub fn paper_scaled(scale: usize) -> Self {
        let scale = scale.max(1);
        let perm = (1_000_000 / scale).max(1);
        PermConfig { perm_per_pe: perm, target_per_pe: 2 * perm, batch: 10_000, seed: 0xDA27 }
    }

    /// A small configuration for tests.
    pub fn test_small() -> Self {
        PermConfig { perm_per_pe: 200, target_per_pe: 400, batch: 64, seed: 11 }
    }
}

/// One kernel run's outcome.
#[derive(Debug, Clone, Copy)]
pub struct KernelResult {
    /// Wall time of the timed section (excludes setup/verification).
    pub elapsed: Duration,
    /// Operations performed by the *whole world* in the timed section.
    pub global_ops: usize,
}

impl KernelResult {
    /// Millions of updates per second, the paper's Fig. 3/4 metric.
    pub fn mups(&self) -> f64 {
        self.global_ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }
}

/// SplitMix64 — a tiny, high-quality deterministic RNG so every variant
/// sees an identical update stream for a given (seed, pe).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded per PE.
    pub fn new(seed: u64, pe: usize) -> Self {
        SplitMix64 { state: seed ^ ((pe as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// The random global indices a PE uses for Histogram/IndexGather.
pub fn random_indices(cfg: &TableConfig, pe: usize, global_len: usize) -> Vec<usize> {
    let mut rng = SplitMix64::new(cfg.seed, pe);
    (0..cfg.updates_per_pe).map(|_| rng.below(global_len)).collect()
}

/// Check that `values` (gathered across PEs, any order) form exactly the
/// set `0..n`.
pub fn is_permutation(mut values: Vec<u64>, n: usize) -> bool {
    if values.len() != n {
        return false;
    }
    values.sort_unstable();
    values.into_iter().eq(0..n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_pe_dependent() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(1, 0);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(1, 0);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(1, 1);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(3, 2);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn permutation_checker() {
        assert!(is_permutation(vec![2, 0, 1], 3));
        assert!(!is_permutation(vec![0, 1, 1], 3));
        assert!(!is_permutation(vec![0, 1], 3));
        assert!(!is_permutation(vec![0, 1, 3], 3));
    }

    #[test]
    fn mups_metric() {
        let r = KernelResult { elapsed: Duration::from_secs(2), global_ops: 4_000_000 };
        assert!((r.mups() - 2.0).abs() < 1e-9);
    }
}
