//! Histogram baselines over the simulated OpenSHMEM substrate: Exstack,
//! Exstack2, Conveyors, Selectors, and the Chapel-style DstAggregator
//! (the five comparison series of Fig. 3).

use crate::common::{random_indices, KernelResult, TableConfig};
use oshmem_sim::chapel_agg::DstAggregator;
use oshmem_sim::convey::Convey;
use oshmem_sim::exstack::Exstack;
use oshmem_sim::exstack2::Exstack2;
use oshmem_sim::selector::Selector;
use oshmem_sim::ShmemCtx;
use std::time::Instant;

fn verify(ctx: &ShmemCtx, table: oshmem_sim::SymSlice<u64>, cfg: &TableConfig) {
    ctx.barrier_all();
    // SAFETY: all updates complete before the barrier.
    let local: u64 = unsafe { ctx.local_slice(table) }.iter().sum();
    // Gather local sums through a tiny symmetric array.
    let sums = ctx.shmem_malloc::<u64>(ctx.n_pes());
    for pe in 0..ctx.n_pes() {
        ctx.p(sums, pe, ctx.my_pe(), local);
    }
    ctx.barrier_all();
    // SAFETY: all puts complete before the barrier.
    let total: u64 = unsafe { ctx.local_slice(sums) }.iter().sum();
    assert_eq!(total as usize, cfg.updates_per_pe * ctx.n_pes(), "histogram lost updates");
    ctx.barrier_all();
}

/// Bulk-synchronous Exstack histogram (`histo_exstack` in BALE).
pub fn histo_exstack(ctx: &ShmemCtx, cfg: &TableConfig) -> KernelResult {
    let npes = ctx.n_pes();
    let glen = cfg.table_per_pe * npes;
    let table = ctx.shmem_malloc::<u64>(cfg.table_per_pe);
    let indices = random_indices(cfg, ctx.my_pe(), glen);
    let mut ex = Exstack::<u32>::new(ctx, cfg.batch.min(4096));
    ctx.barrier_all();

    let timer = Instant::now();
    let mut i = 0;
    while ex.proceed(ctx, i == indices.len()) {
        while i < indices.len() {
            let g = indices[i];
            let (dst, local) = (g / cfg.table_per_pe, (g % cfg.table_per_pe) as u32);
            if !ex.push(dst, local) {
                break;
            }
            i += 1;
        }
        ex.exchange(ctx);
        // SAFETY: only this PE touches its shard between exchanges.
        let shard = unsafe { ctx.local_slice_mut(table) };
        while let Some((_src, local)) = ex.pop(ctx) {
            shard[local as usize] += 1;
        }
    }
    ctx.barrier_all();
    let elapsed = timer.elapsed();

    verify(ctx, table, cfg);
    KernelResult { elapsed, global_ops: cfg.updates_per_pe * npes }
}

/// Asynchronous Exstack2 histogram.
pub fn histo_exstack2(ctx: &ShmemCtx, cfg: &TableConfig) -> KernelResult {
    let npes = ctx.n_pes();
    let glen = cfg.table_per_pe * npes;
    let table = ctx.shmem_malloc::<u64>(cfg.table_per_pe);
    let indices = random_indices(cfg, ctx.my_pe(), glen);
    let mut ex = Exstack2::<u32>::new(ctx, cfg.batch.min(4096));
    ctx.barrier_all();

    let timer = Instant::now();
    let mut i = 0;
    loop {
        // Push a slice, then service arrivals — interleaving send and
        // receive is the asynchronous model's point.
        let burst = (i + 4096).min(indices.len());
        while i < burst {
            let g = indices[i];
            ex.push(ctx, g / cfg.table_per_pe, (g % cfg.table_per_pe) as u32);
            i += 1;
        }
        let more = ex.advance(ctx, i == indices.len());
        {
            // SAFETY: each PE updates only its own shard.
            let shard = unsafe { ctx.local_slice_mut(table) };
            while let Some((_src, local)) = ex.pop() {
                shard[local as usize] += 1;
            }
        }
        if !more && i == indices.len() {
            break;
        }
    }
    ctx.barrier_all();
    let elapsed = timer.elapsed();

    verify(ctx, table, cfg);
    KernelResult { elapsed, global_ops: cfg.updates_per_pe * npes }
}

/// Multi-hop Conveyors histogram.
pub fn histo_convey(ctx: &ShmemCtx, cfg: &TableConfig) -> KernelResult {
    let npes = ctx.n_pes();
    let glen = cfg.table_per_pe * npes;
    let table = ctx.shmem_malloc::<u64>(cfg.table_per_pe);
    let indices = random_indices(cfg, ctx.my_pe(), glen);
    let mut conv = Convey::<u32>::new(ctx, cfg.batch.min(4096));
    ctx.barrier_all();

    let timer = Instant::now();
    let mut i = 0;
    loop {
        let burst = (i + 4096).min(indices.len());
        while i < burst {
            let g = indices[i];
            conv.push(ctx, g / cfg.table_per_pe, (g % cfg.table_per_pe) as u32);
            i += 1;
        }
        let more = conv.advance(ctx, i == indices.len());
        {
            // SAFETY: each PE updates only its own shard.
            let shard = unsafe { ctx.local_slice_mut(table) };
            while let Some(local) = conv.pull() {
                shard[local as usize] += 1;
            }
        }
        if !more && i == indices.len() {
            break;
        }
    }
    ctx.barrier_all();
    let elapsed = timer.elapsed();

    verify(ctx, table, cfg);
    KernelResult { elapsed, global_ops: cfg.updates_per_pe * npes }
}

/// Actor-model Selectors histogram.
pub fn histo_selector(ctx: &ShmemCtx, cfg: &TableConfig) -> KernelResult {
    let npes = ctx.n_pes();
    let glen = cfg.table_per_pe * npes;
    let table = ctx.shmem_malloc::<u64>(cfg.table_per_pe);
    let indices = random_indices(cfg, ctx.my_pe(), glen);
    let mut sel = Selector::<u32, 1>::new(ctx, cfg.batch.min(4096));
    ctx.barrier_all();

    let timer = Instant::now();
    for &g in &indices {
        sel.send(ctx, 0, g / cfg.table_per_pe, (g % cfg.table_per_pe) as u32);
    }
    sel.done();
    // SAFETY: the handler is the only accessor of this PE's shard during
    // execute (all other PEs update via messages to their own shards).
    let shard = unsafe { ctx.local_slice_mut(table) };
    sel.execute(ctx, |_mb, _src, local| {
        shard[local as usize] += 1;
    });
    ctx.barrier_all();
    let elapsed = timer.elapsed();

    verify(ctx, table, cfg);
    KernelResult { elapsed, global_ops: cfg.updates_per_pe * npes }
}

/// Chapel-style automatic aggregation (DstAggregator) histogram.
pub fn histo_chapel(ctx: &ShmemCtx, cfg: &TableConfig) -> KernelResult {
    let npes = ctx.n_pes();
    let glen = cfg.table_per_pe * npes;
    let table = ctx.shmem_malloc::<u64>(cfg.table_per_pe);
    let indices = random_indices(cfg, ctx.my_pe(), glen);
    let mut agg = DstAggregator::new(ctx, table, cfg.batch.min(8192), true);
    ctx.barrier_all();

    let timer = Instant::now();
    for &g in &indices {
        agg.copy(ctx, g / cfg.table_per_pe, g % cfg.table_per_pe, 1);
    }
    agg.flush_all(ctx);
    ctx.barrier_all();
    let elapsed = timer.elapsed();

    verify(ctx, table, cfg);
    KernelResult { elapsed, global_ops: cfg.updates_per_pe * npes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oshmem_sim::shmem_launch;

    fn run(f: fn(&ShmemCtx, &TableConfig) -> KernelResult) {
        let cfg = TableConfig::test_small();
        let results = shmem_launch(4, 16, move |ctx| f(&ctx, &cfg));
        assert_eq!(results.len(), 4);
        for r in results {
            assert!(r.elapsed.as_nanos() > 0);
        }
    }

    #[test]
    fn exstack_histogram() {
        run(histo_exstack);
    }

    #[test]
    fn exstack2_histogram() {
        run(histo_exstack2);
    }

    #[test]
    fn convey_histogram() {
        run(histo_convey);
    }

    #[test]
    fn selector_histogram() {
        run(histo_selector);
    }

    #[test]
    fn chapel_histogram() {
        run(histo_chapel);
    }
}
