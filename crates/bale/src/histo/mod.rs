//! Histogram (paper Sec. IV-B.1, Fig. 3): "Each PE generates N indices
//! uniformly at random from the range of a distributed array. It then
//! increments the table's value at that index. Although the kernel is
//! simple it represents a common communication pattern (small message
//! all-to-all) in many parallel applications."

pub mod baselines;

use crate::common::{random_indices, KernelResult, TableConfig};
use lamellar_core::darc::Darc;
use lamellar_core::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// The manually-aggregated AM: a `Vec` of destination-local indices, plus a
/// Darc to the destination's table shard ("uses AMs to manually aggregate
/// indices (into a Vec) by destination PE ... the AM iterates through the
/// Vec of indices and atomically updates the corresponding entries").
#[derive(Clone, Debug)]
pub struct HistoBufAm {
    /// Each PE's shard of the distributed table.
    pub table: Darc<Vec<AtomicUsize>>,
    /// Destination-local indices to increment.
    pub idxs: Vec<u32>,
}

lamellar_core::impl_codec!(HistoBufAm { table, idxs });

impl LamellarAm for HistoBufAm {
    type Output = ();
    async fn exec(self, _ctx: AmContext) {
        for &i in &self.idxs {
            self.table[i as usize].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Sums the executing PE's table shard (verification).
#[derive(Clone, Debug)]
pub struct ShardSumAm {
    /// The shared table.
    pub table: Darc<Vec<AtomicUsize>>,
}

lamellar_core::impl_codec!(ShardSumAm { table });

impl LamellarAm for ShardSumAm {
    type Output = usize;
    async fn exec(self, _ctx: AmContext) -> usize {
        self.table.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }
}

/// Lamellar **AM** Histogram: manual aggregation by destination PE — the
/// paper's best-at-scale variant.
pub fn histo_lamellar_am(world: &LamellarWorld, cfg: &TableConfig) -> KernelResult {
    let npes = world.num_pes();
    let me = world.my_pe();
    let glen = cfg.table_per_pe * npes;
    let table: Darc<Vec<AtomicUsize>> =
        Darc::new(&world.team(), (0..cfg.table_per_pe).map(|_| AtomicUsize::new(0)).collect());
    let indices = random_indices(cfg, me, glen);
    world.barrier();

    let timer = Instant::now();
    // Bin indices by destination PE (block distribution of the table).
    let mut bins: Vec<Vec<u32>> = vec![Vec::with_capacity(cfg.batch); npes];
    for &g in &indices {
        let dst = g / cfg.table_per_pe;
        let local = (g % cfg.table_per_pe) as u32;
        bins[dst].push(local);
        if bins[dst].len() >= cfg.batch {
            let idxs = std::mem::replace(&mut bins[dst], Vec::with_capacity(cfg.batch));
            // Fire-and-forget: the increments return nothing, so elide the
            // reply and let wait_all absorb the counted-ack completions.
            world.exec_unit_am_pe(dst, HistoBufAm { table: table.clone(), idxs });
        }
    }
    for (dst, idxs) in bins.into_iter().enumerate() {
        if !idxs.is_empty() {
            world.exec_unit_am_pe(dst, HistoBufAm { table: table.clone(), idxs });
        }
    }
    world.wait_all();
    world.barrier();
    let elapsed = timer.elapsed();

    // Verify: total increments across shards == total updates.
    if me == 0 {
        let sums = world.block_on(world.exec_am_all(ShardSumAm { table: table.clone() }));
        let total: usize = sums.into_iter().sum();
        assert_eq!(total, cfg.updates_per_pe * npes, "histogram lost updates");
    }
    world.barrier();
    KernelResult { elapsed, global_ops: cfg.updates_per_pe * npes }
}

/// Lamellar **AtomicArray** Histogram: Listing 2 — all aggregation,
/// sub-batching, and dispatch left to the runtime.
pub fn histo_lamellar_atomic_array(world: &LamellarWorld, cfg: &TableConfig) -> KernelResult {
    let npes = world.num_pes();
    let glen = cfg.table_per_pe * npes;
    let mut table =
        lamellar_array::AtomicArray::<usize>::new(world, glen, lamellar_array::Distribution::Block);
    table.set_batch_limit(cfg.batch);
    let rnd_i = random_indices(cfg, world.my_pe(), glen);
    world.barrier();

    let timer = Instant::now();
    table.batch_add_ff(rnd_i, 1); // the histogram kernel, fire-and-forget
    world.wait_all();
    world.barrier();
    let elapsed = timer.elapsed();

    let sum = world.block_on(table.sum());
    assert_eq!(sum, cfg.updates_per_pe * npes, "histogram lost updates");
    world.barrier();
    KernelResult { elapsed, global_ops: cfg.updates_per_pe * npes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::TableConfig;
    use lamellar_core::world::launch;

    #[test]
    fn lamellar_am_histogram_conserves_updates() {
        let cfg = TableConfig::test_small();
        let results = launch(4, move |world| histo_lamellar_am(&world, &cfg));
        for r in results {
            assert_eq!(r.global_ops, cfg.updates_per_pe * 4);
            assert!(r.mups() > 0.0);
        }
    }

    #[test]
    fn lamellar_atomic_array_histogram_conserves_updates() {
        let cfg = TableConfig::test_small();
        let results = launch(2, move |world| histo_lamellar_atomic_array(&world, &cfg));
        assert_eq!(results.len(), 2);
    }
}
