//! Randperm baselines: dart throwing over Exstack (bulk-synchronous
//! rounds), Exstack2, and Conveyors (asynchronous with hit/miss replies) —
//! the OpenSHMEM-side series of Fig. 5.

use crate::common::{is_permutation, KernelResult, PermConfig, SplitMix64};
use oshmem_sim::convey::Convey;
use oshmem_sim::exstack::Exstack;
use oshmem_sim::exstack2::Exstack2;
use oshmem_sim::ShmemCtx;
use std::time::Instant;

/// A dart throw on the wire: thrower, destination-local slot, dart value.
#[derive(Clone, Copy, Default)]
struct Throw {
    src: u32,
    slot: u32,
    dart: u64,
}

/// A reject: the dart comes back to its thrower.
#[derive(Clone, Copy, Default)]
struct Reject {
    dart: u64,
}

/// An ack (asynchronous variants): dart resolved, hit or miss.
#[derive(Clone, Copy, Default)]
struct Ack {
    dart: u64,
    hit: bool,
}

/// Gather each PE's in-order slice and verify on PE 0 through symmetric
/// memory (count exchange + bulk puts).
fn verify_shmem(ctx: &ShmemCtx, local: &[u64], n: usize) {
    let npes = ctx.n_pes();
    let counts = ctx.shmem_malloc::<u64>(npes);
    for pe in 0..npes {
        ctx.p(counts, pe, ctx.my_pe(), local.len() as u64);
    }
    ctx.barrier_all();
    // SAFETY: counts complete before the barrier.
    let counts_v: Vec<u64> = unsafe { ctx.local_slice(counts) }.to_vec();
    let total: u64 = counts_v.iter().sum();
    assert_eq!(total as usize, n, "dart count mismatch");
    // Everyone puts its slice into PE 0's gather buffer at its prefix.
    let gather = ctx.shmem_malloc::<u64>(n.max(1));
    let start: u64 = counts_v[..ctx.my_pe()].iter().sum();
    if !local.is_empty() {
        ctx.put(gather, 0, start as usize, local);
    }
    ctx.barrier_all();
    if ctx.my_pe() == 0 {
        // SAFETY: all puts complete before the barrier.
        let all = unsafe { ctx.local_slice(gather) }.to_vec();
        assert!(is_permutation(all, n), "result is not a permutation");
    }
    ctx.barrier_all();
}

/// Bulk-synchronous Exstack dart throwing.
pub fn randperm_exstack(ctx: &ShmemCtx, cfg: &PermConfig) -> KernelResult {
    let npes = ctx.n_pes();
    let me = ctx.my_pe();
    let n = cfg.perm_per_pe * npes;
    let tlen = cfg.target_per_pe * npes;
    let mut target = vec![0u64; cfg.target_per_pe]; // 0 = empty, dart+1
    let mut rng = SplitMix64::new(cfg.seed, me);
    let cap = cfg.batch.min(2048);
    let mut throw_ex = Exstack::<Throw>::new(ctx, cap);
    let mut rej_ex = Exstack::<Reject>::new(ctx, cap);
    let mut darts: Vec<u64> =
        (0..cfg.perm_per_pe).map(|i| (me * cfg.perm_per_pe + i) as u64 + 1).collect();
    ctx.barrier_all();

    let timer = Instant::now();
    while throw_ex.proceed(ctx, darts.is_empty()) {
        // Throw what fits this round.
        let mut kept = Vec::new();
        for dart in darts.drain(..) {
            let g = rng.below(tlen);
            let t = Throw { src: me as u32, slot: (g % cfg.target_per_pe) as u32, dart };
            if !throw_ex.push(g / cfg.target_per_pe, t) {
                kept.push(dart);
            }
        }
        darts = kept;
        throw_ex.exchange(ctx);
        while let Some((_from, t)) = throw_ex.pop(ctx) {
            let slot = &mut target[t.slot as usize];
            if *slot == 0 {
                *slot = t.dart;
            } else {
                // Rejects mirror throws (≤ cap per source per round).
                assert!(rej_ex.push(t.src as usize, Reject { dart: t.dart }));
            }
        }
        rej_ex.exchange(ctx);
        while let Some((_from, r)) = rej_ex.pop(ctx) {
            darts.push(r.dart);
        }
    }
    ctx.barrier_all();
    let elapsed = timer.elapsed();

    let local: Vec<u64> = target.iter().filter(|&&v| v != 0).map(|v| v - 1).collect();
    verify_shmem(ctx, &local, n);
    KernelResult { elapsed, global_ops: n }
}

/// Shared asynchronous dart loop for Exstack2 and Conveyors: every throw is
/// acknowledged hit or miss, so each PE tracks its outstanding darts.
macro_rules! async_randperm {
    ($ctx:expr, $cfg:expr, $throws:expr, $acks:expr, $push_t:expr, $push_a:expr, $adv_t:expr, $adv_a:expr, $pop_t:expr, $pop_a:expr) => {{
        let ctx = $ctx;
        let cfg = $cfg;
        let npes = ctx.n_pes();
        let me = ctx.my_pe();
        let n = cfg.perm_per_pe * npes;
        let tlen = cfg.target_per_pe * npes;
        let mut target = vec![0u64; cfg.target_per_pe];
        let mut rng = SplitMix64::new(cfg.seed, me);
        let mut darts: Vec<u64> =
            (0..cfg.perm_per_pe).map(|i| (me * cfg.perm_per_pe + i) as u64 + 1).collect();
        let mut outstanding = 0usize;
        ctx.barrier_all();

        let timer = Instant::now();
        let stall_limit = std::time::Duration::from_secs(
            std::env::var("LAMELLAR_STALL_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(180),
        );
        loop {
            assert!(
                timer.elapsed() < stall_limit,
                "randperm stalled on pe{me}: outstanding={outstanding}"
            );
            for dart in darts.drain(..) {
                let g = rng.below(tlen);
                let t = Throw { src: me as u32, slot: (g % cfg.target_per_pe) as u32, dart };
                $push_t(ctx, $throws, g / cfg.target_per_pe, t);
                outstanding += 1;
            }
            let throws_done = outstanding == 0 && darts.is_empty();
            let t_more = $adv_t(ctx, $throws, throws_done);
            while let Some(t) = $pop_t($throws) {
                let slot = &mut target[t.slot as usize];
                let hit = *slot == 0;
                if hit {
                    *slot = t.dart;
                }
                $push_a(ctx, $acks, t.src as usize, Ack { dart: t.dart, hit });
            }
            let a_more = $adv_a(ctx, $acks, !t_more && throws_done);
            while let Some(a) = $pop_a($acks) {
                outstanding -= 1;
                if !a.hit {
                    darts.push(a.dart);
                }
            }
            if !t_more && !a_more && outstanding == 0 && darts.is_empty() {
                break;
            }
        }
        ctx.barrier_all();
        let elapsed = timer.elapsed();

        let local: Vec<u64> = target.iter().filter(|&&v| v != 0).map(|v| v - 1).collect();
        verify_shmem(ctx, &local, n);
        KernelResult { elapsed, global_ops: n }
    }};
}

/// Asynchronous Exstack2 dart throwing.
pub fn randperm_exstack2(ctx: &ShmemCtx, cfg: &PermConfig) -> KernelResult {
    let cap = cfg.batch.min(2048);
    let mut throws = Exstack2::<Throw>::new(ctx, cap);
    let mut acks = Exstack2::<Ack>::new(ctx, cap);
    async_randperm!(
        ctx,
        cfg,
        &mut throws,
        &mut acks,
        |c: &ShmemCtx, e: &mut Exstack2<Throw>, d, t| e.push(c, d, t),
        |c: &ShmemCtx, e: &mut Exstack2<Ack>, d, a| e.push(c, d, a),
        |c: &ShmemCtx, e: &mut Exstack2<Throw>, done| e.advance(c, done),
        |c: &ShmemCtx, e: &mut Exstack2<Ack>, done| e.advance(c, done),
        |e: &mut Exstack2<Throw>| e.pop().map(|(_s, t)| t),
        |e: &mut Exstack2<Ack>| e.pop().map(|(_s, a)| a)
    )
}

/// Multi-hop Conveyors dart throwing.
pub fn randperm_convey(ctx: &ShmemCtx, cfg: &PermConfig) -> KernelResult {
    let cap = cfg.batch.min(2048);
    let mut throws = Convey::<Throw>::new(ctx, cap);
    let mut acks = Convey::<Ack>::new(ctx, cap);
    async_randperm!(
        ctx,
        cfg,
        &mut throws,
        &mut acks,
        |c: &ShmemCtx, e: &mut Convey<Throw>, d, t| e.push(c, d, t),
        |c: &ShmemCtx, e: &mut Convey<Ack>, d, a| e.push(c, d, a),
        |c: &ShmemCtx, e: &mut Convey<Throw>, done| e.advance(c, done),
        |c: &ShmemCtx, e: &mut Convey<Ack>, done| e.advance(c, done),
        |e: &mut Convey<Throw>| e.pull(),
        |e: &mut Convey<Ack>| e.pull()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use oshmem_sim::shmem_launch;

    #[test]
    fn exstack_randperm() {
        let cfg = PermConfig::test_small();
        shmem_launch(3, 16, move |ctx| randperm_exstack(&ctx, &cfg));
    }

    #[test]
    fn exstack2_randperm() {
        let cfg = PermConfig::test_small();
        shmem_launch(3, 16, move |ctx| randperm_exstack2(&ctx, &cfg));
    }

    #[test]
    fn convey_randperm() {
        let cfg = PermConfig::test_small();
        shmem_launch(4, 16, move |ctx| randperm_convey(&ctx, &cfg));
    }
}
