//! Randperm (paper Sec. IV-B.3, Fig. 5): build a random permutation of
//! `0..N-1` with the "dart throwing algorithm" — each PE throws its darts
//! (its slice of `0..N`) at random slots of a target array at least as
//! large as `N`; a dart sticks in an empty slot, occupied slots force a
//! re-throw; finally the target is scanned in order to collect the stuck
//! darts.
//!
//! Four Lamellar implementations, as in the paper:
//! * [`randperm_array_darts`] — AtomicArray + `batch_compare_exchange` +
//!   distributed-iterator collect.
//! * [`randperm_am_darts`] — manual AM aggregation of throws and rejects.
//! * [`randperm_am_darts_opt`] — rejected darts re-slot *locally* on the
//!   target PE ("when a dart encounters an occupied slot, it will randomly
//!   select a new location on the current PE").
//! * [`randperm_am_push`] — locally shuffle, then push each dart to a
//!   random PE's append-only list; "a dart throw never fails, so
//!   communication is minimized".

pub mod baselines;

use crate::common::{is_permutation, KernelResult, PermConfig, SplitMix64};
use lamellar_array::iter::DistIterExt;
use lamellar_array::prelude::*;
use lamellar_core::darc::Darc;
use lamellar_core::prelude::*;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Gather each PE's in-order local dart list and check the union is a
/// permutation of `0..n` (rank 0 checks; everyone synchronizes).
fn verify_distributed(world: &LamellarWorld, local_in_order: Vec<u64>, n: usize) {
    let team = world.team();
    let per_pe = team.deposit_all(local_in_order);
    if world.my_pe() == 0 {
        let all: Vec<u64> = per_pe.iter().flatten().copied().collect();
        assert!(is_permutation(all, n), "result is not a permutation of 0..{n}");
    }
    world.barrier();
}

/// **Array Darts**: throws via `batch_compare_exchange` on an AtomicArray,
/// collection via the distributed Collect iterator. Slot encoding: 0 =
/// empty, dart `d` stored as `d + 1`.
pub fn randperm_array_darts(world: &LamellarWorld, cfg: &PermConfig) -> KernelResult {
    let npes = world.num_pes();
    let me = world.my_pe();
    let n = cfg.perm_per_pe * npes;
    let tlen = cfg.target_per_pe * npes;
    let mut target = AtomicArray::<u64>::new(world, tlen, Distribution::Block);
    target.set_batch_limit(cfg.batch);
    let mut rng = SplitMix64::new(cfg.seed, me);
    // My darts: the global ids me*perm_per_pe .. (me+1)*perm_per_pe.
    let mut darts: Vec<u64> =
        (0..cfg.perm_per_pe).map(|i| (me * cfg.perm_per_pe + i) as u64 + 1).collect();
    world.barrier();

    let timer = Instant::now();
    while !darts.is_empty() {
        let slots: Vec<usize> = darts.iter().map(|_| rng.below(tlen)).collect();
        let results = world.block_on(target.batch_compare_exchange(slots, 0u64, darts.clone()));
        // "If the location is already occupied, the dart must be thrown
        // again until it sticks."
        darts =
            darts.into_iter().zip(results).filter_map(|(d, r)| r.is_err().then_some(d)).collect();
    }
    world.wait_all();
    world.barrier();
    // "Once all darts have stuck, the target array iterates to collect
    // darts in the order they appear, forming a size-N random permutation."
    let perm =
        target.dist_iter().filter(|v| *v != 0).map(|v| v - 1).collect_array(Distribution::Block);
    world.barrier();
    let elapsed = timer.elapsed();

    assert_eq!(perm.len(), n);
    if me == 0 {
        let mut all = vec![0u64; n];
        // SAFETY: collection complete (barrier above), nobody writes.
        unsafe { perm.get_unchecked(0, &mut all) };
        assert!(is_permutation(all, n), "result is not a permutation");
    }
    world.barrier();
    KernelResult { elapsed, global_ops: n }
}

/// Per-PE target shard used by the AM variants: slots (0 = empty) plus a
/// fill counter so the optimized variant can detect a full PE.
#[derive(Debug)]
pub struct Shard {
    slots: Vec<AtomicU64>,
    filled: AtomicUsize,
}

impl Shard {
    fn new(len: usize) -> Self {
        Shard { slots: (0..len).map(|_| AtomicU64::new(0)).collect(), filled: AtomicUsize::new(0) }
    }

    /// Try to stick `dart` (already +1 encoded) at `slot`; true on success.
    fn try_stick(&self, slot: usize, dart: u64) -> bool {
        let ok =
            self.slots[slot].compare_exchange(0, dart, Ordering::AcqRel, Ordering::Acquire).is_ok();
        if ok {
            self.filled.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Darts stuck in this shard, in slot order, decoded.
    fn in_order(&self) -> Vec<u64> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .filter(|&v| v != 0)
            .map(|v| v - 1)
            .collect()
    }
}

/// Aggregated dart throw: each dart targets a specific local slot; rejects
/// come back to the thrower.
#[derive(Clone, Debug)]
pub struct ThrowAm {
    /// The destination PE's target shard.
    pub shard: Darc<Shard>,
    /// Destination-local slots, one per dart.
    pub slots: Vec<u32>,
    /// +1-encoded darts.
    pub darts: Vec<u64>,
}

lamellar_core::impl_codec!(ThrowAm { shard, slots, darts });

impl LamellarAm for ThrowAm {
    type Output = Vec<u64>;
    async fn exec(self, _ctx: AmContext) -> Vec<u64> {
        let mut rejects = Vec::new();
        for (&slot, &dart) in self.slots.iter().zip(&self.darts) {
            if !self.shard.try_stick(slot as usize, dart) {
                rejects.push(dart);
            }
        }
        rejects
    }
}

/// Aggregated dart throw with local re-slotting: a rejected dart probes
/// other slots on the *same* PE; only a completely full PE rejects.
#[derive(Clone, Debug)]
pub struct ThrowOptAm {
    /// The destination PE's target shard.
    pub shard: Darc<Shard>,
    /// Initial destination-local slots.
    pub slots: Vec<u32>,
    /// +1-encoded darts.
    pub darts: Vec<u64>,
    /// Probe seed.
    pub seed: u64,
}

lamellar_core::impl_codec!(ThrowOptAm { shard, slots, darts, seed });

impl LamellarAm for ThrowOptAm {
    type Output = Vec<u64>;
    async fn exec(self, _ctx: AmContext) -> Vec<u64> {
        let len = self.shard.slots.len();
        let mut rng = SplitMix64::new(self.seed, 0);
        let mut rejects = Vec::new();
        'darts: for (&slot, &dart) in self.slots.iter().zip(&self.darts) {
            if self.shard.try_stick(slot as usize, dart) {
                continue;
            }
            // "randomly select a new location on the current PE
            // (unless all locations on this PE are filled)".
            while self.shard.filled.load(Ordering::Relaxed) < len {
                if self.shard.try_stick(rng.below(len), dart) {
                    continue 'darts;
                }
            }
            rejects.push(dart);
        }
        rejects
    }
}

/// Push-variant target: an append-only per-PE list.
#[derive(Clone, Debug)]
pub struct PushAm {
    /// The destination PE's list.
    pub list: Darc<Mutex<Vec<u64>>>,
    /// Darts to append (raw values, not +1 encoded — a push never fails).
    pub darts: Vec<u64>,
}

lamellar_core::impl_codec!(PushAm { list, darts });

impl LamellarAm for PushAm {
    type Output = ();
    async fn exec(self, _ctx: AmContext) {
        self.list.lock().extend_from_slice(&self.darts);
    }
}

fn throw_rounds<F>(
    world: &LamellarWorld,
    cfg: &PermConfig,
    rng: &mut SplitMix64,
    mut launch_bin: F,
) -> std::time::Duration
where
    F: FnMut(usize, Vec<u32>, Vec<u64>) -> lamellar_core::am::AmHandle<Vec<u64>>,
{
    let npes = world.num_pes();
    let me = world.my_pe();
    let tlen = cfg.target_per_pe * npes;
    let mut darts: Vec<u64> =
        (0..cfg.perm_per_pe).map(|i| (me * cfg.perm_per_pe + i) as u64 + 1).collect();
    world.barrier();

    let timer = Instant::now();
    while !darts.is_empty() {
        // Bin throws by destination PE (block distribution of the target).
        let mut slot_bins: Vec<Vec<u32>> = vec![Vec::new(); npes];
        let mut dart_bins: Vec<Vec<u64>> = vec![Vec::new(); npes];
        let mut handles = Vec::new();
        for d in darts.drain(..) {
            let g = rng.below(tlen);
            let dst = g / cfg.target_per_pe;
            slot_bins[dst].push((g % cfg.target_per_pe) as u32);
            dart_bins[dst].push(d);
            if slot_bins[dst].len() >= cfg.batch {
                handles.push(launch_bin(
                    dst,
                    std::mem::take(&mut slot_bins[dst]),
                    std::mem::take(&mut dart_bins[dst]),
                ));
            }
        }
        for dst in 0..npes {
            if !slot_bins[dst].is_empty() {
                handles.push(launch_bin(
                    dst,
                    std::mem::take(&mut slot_bins[dst]),
                    std::mem::take(&mut dart_bins[dst]),
                ));
            }
        }
        for h in handles {
            darts.extend(world.block_on(h));
        }
    }
    world.wait_all();
    world.barrier();
    timer.elapsed()
}

/// **AM Darts**: manual aggregation of throws; rejects return to the
/// thrower and are re-thrown anywhere.
pub fn randperm_am_darts(world: &LamellarWorld, cfg: &PermConfig) -> KernelResult {
    let npes = world.num_pes();
    let n = cfg.perm_per_pe * npes;
    let shard = Darc::new(&world.team(), Shard::new(cfg.target_per_pe));
    let mut rng = SplitMix64::new(cfg.seed, world.my_pe());
    let shard2 = shard.clone();
    let elapsed = throw_rounds(world, cfg, &mut rng, |dst, slots, darts| {
        world.exec_am_pe(dst, ThrowAm { shard: shard2.clone(), slots, darts })
    });
    verify_distributed(world, shard.in_order(), n);
    KernelResult { elapsed, global_ops: n }
}

/// **AM Darts Opt**: rejects re-slot locally on the destination PE.
pub fn randperm_am_darts_opt(world: &LamellarWorld, cfg: &PermConfig) -> KernelResult {
    let npes = world.num_pes();
    let n = cfg.perm_per_pe * npes;
    let shard = Darc::new(&world.team(), Shard::new(cfg.target_per_pe));
    let mut rng = SplitMix64::new(cfg.seed, world.my_pe());
    let shard2 = shard.clone();
    let seed = cfg.seed ^ 0x5EED;
    let elapsed = throw_rounds(world, cfg, &mut rng, |dst, slots, darts| {
        world.exec_am_pe(dst, ThrowOptAm { shard: shard2.clone(), slots, darts, seed })
    });
    verify_distributed(world, shard.in_order(), n);
    KernelResult { elapsed, global_ops: n }
}

/// **AM Push**: shuffle locally, then append each dart to a random PE's
/// list — no throw ever fails.
pub fn randperm_am_push(world: &LamellarWorld, cfg: &PermConfig) -> KernelResult {
    let npes = world.num_pes();
    let me = world.my_pe();
    let n = cfg.perm_per_pe * npes;
    let list = Darc::new(&world.team(), Mutex::new(Vec::<u64>::new()));
    let mut rng = SplitMix64::new(cfg.seed, me);
    let mut darts: Vec<u64> =
        (0..cfg.perm_per_pe).map(|i| (me * cfg.perm_per_pe + i) as u64).collect();
    world.barrier();

    let timer = Instant::now();
    // "first randomizes the darts slice on each PE (locally)" —
    // Fisher-Yates.
    for i in (1..darts.len()).rev() {
        darts.swap(i, rng.below(i + 1));
    }
    // "then randomly selects another PE for each dart ... it is pushed to
    // the end of the Target vector on that PE".
    let mut bins: Vec<Vec<u64>> = vec![Vec::new(); npes];
    for d in darts {
        let dst = rng.below(npes);
        bins[dst].push(d);
        if bins[dst].len() >= cfg.batch {
            // Fire-and-forget push: no reply needed, wait_all covers
            // completion via counted acks.
            world.exec_unit_am_pe(
                dst,
                PushAm { list: list.clone(), darts: std::mem::take(&mut bins[dst]) },
            );
        }
    }
    for (dst, darts) in bins.into_iter().enumerate() {
        if !darts.is_empty() {
            world.exec_unit_am_pe(dst, PushAm { list: list.clone(), darts });
        }
    }
    world.wait_all();
    world.barrier();
    let elapsed = timer.elapsed();

    let local = list.lock().clone();
    verify_distributed(world, local, n);
    KernelResult { elapsed, global_ops: n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamellar_core::world::launch;

    #[test]
    fn array_darts_produces_permutation() {
        let cfg = PermConfig::test_small();
        launch(3, move |world| randperm_array_darts(&world, &cfg));
    }

    #[test]
    fn am_darts_produces_permutation() {
        let cfg = PermConfig::test_small();
        launch(3, move |world| randperm_am_darts(&world, &cfg));
    }

    #[test]
    fn am_darts_opt_produces_permutation() {
        let cfg = PermConfig::test_small();
        launch(2, move |world| randperm_am_darts_opt(&world, &cfg));
    }

    #[test]
    fn am_push_produces_permutation() {
        let cfg = PermConfig::test_small();
        launch(2, move |world| randperm_am_push(&world, &cfg));
    }

    #[test]
    fn shard_try_stick_semantics() {
        let s = Shard::new(4);
        assert!(s.try_stick(2, 7));
        assert!(!s.try_stick(2, 8));
        assert_eq!(s.in_order(), vec![6]);
        assert_eq!(s.filled.load(Ordering::Relaxed), 1);
    }
}
