//! # bale-suite
//!
//! The BALE kernels of the paper's evaluation (Sec. IV-B) — Histogram,
//! IndexGather, and Randperm — each in every variant the paper measures:
//!
//! | kernel | Lamellar variants | baselines |
//! |---|---|---|
//! | Histogram (Fig. 3) | manual-aggregation AM, `AtomicArray::batch_add` | Exstack, Exstack2, Conveyors, Selectors, Chapel DstAggregator |
//! | IndexGather (Fig. 4) | manual-aggregation AM, `ReadOnlyArray::batch_load` | Exstack, Exstack2, Conveyors, Selectors, Chapel SrcAggregator |
//! | Randperm (Fig. 5) | Array Darts, AM Darts, AM Darts Opt, AM Push | Exstack, Exstack2, Conveyors |
//!
//! Every kernel verifies its own result (update conservation for Histogram,
//! exact gathered values for IndexGather, a true permutation for Randperm).
//! The `lamellar-bench` harnesses drive these functions across PE counts to
//! regenerate the paper's figures.

pub mod common;
pub mod histo;
pub mod index_gather;
pub mod randperm;
