//! IndexGather baselines: request/response over Exstack, Exstack2,
//! Conveyors, Selectors, and the Chapel-style SrcAggregator (Fig. 4).

use crate::common::{random_indices, KernelResult, TableConfig};
use crate::index_gather::table_value;
use oshmem_sim::chapel_agg::SrcAggregator;
use oshmem_sim::convey::Convey;
use oshmem_sim::exstack::Exstack;
use oshmem_sim::exstack2::Exstack2;
use oshmem_sim::selector::Selector;
use oshmem_sim::{ShmemCtx, SymSlice};
use std::time::Instant;

/// A gather request on the wire: requester, requester-side slot,
/// owner-local index.
#[derive(Clone, Copy, Default)]
struct Req {
    src: u32,
    slot: u32,
    idx: u32,
}

/// A gather response: requester-side slot and the value.
#[derive(Clone, Copy, Default)]
struct Resp {
    slot: u32,
    val: u64,
}

fn make_table(ctx: &ShmemCtx, cfg: &TableConfig) -> SymSlice<u64> {
    let table = ctx.shmem_malloc::<u64>(cfg.table_per_pe);
    // SAFETY: each PE fills only its own shard, before the barrier.
    let local = unsafe { ctx.local_slice_mut(table) };
    for (l, v) in local.iter_mut().enumerate() {
        *v = table_value(ctx.my_pe() * cfg.table_per_pe + l);
    }
    ctx.barrier_all();
    table
}

fn check(target: &[u64], indices: &[usize]) {
    for (slot, &g) in indices.iter().enumerate() {
        assert_eq!(target[slot], table_value(g), "index gather returned a wrong value");
    }
}

/// Bulk-synchronous Exstack IndexGather (two exstacks: requests, replies).
pub fn ig_exstack(ctx: &ShmemCtx, cfg: &TableConfig) -> KernelResult {
    let npes = ctx.n_pes();
    let glen = cfg.table_per_pe * npes;
    let table = make_table(ctx, cfg);
    let indices = random_indices(cfg, ctx.my_pe(), glen);
    let mut target = vec![0u64; indices.len()];
    let cap = cfg.batch.min(2048);
    let mut req_ex = Exstack::<Req>::new(ctx, cap);
    let mut rep_ex = Exstack::<Resp>::new(ctx, cap);
    ctx.barrier_all();

    let timer = Instant::now();
    let me = ctx.my_pe() as u32;
    let mut i = 0;
    while req_ex.proceed(ctx, i == indices.len()) {
        while i < indices.len() {
            let g = indices[i];
            let dst = g / cfg.table_per_pe;
            let req = Req { src: me, slot: i as u32, idx: (g % cfg.table_per_pe) as u32 };
            if !req_ex.push(dst, req) {
                break;
            }
            i += 1;
        }
        req_ex.exchange(ctx);
        {
            // SAFETY: shard contents are immutable after setup.
            let shard = unsafe { ctx.local_slice(table) };
            while let Some((_from, req)) = req_ex.pop(ctx) {
                let resp = Resp { slot: req.slot, val: shard[req.idx as usize] };
                // Reply buffers mirror request buffers, so this cannot
                // overflow (≤ cap requests arrive per source per round).
                assert!(rep_ex.push(req.src as usize, resp), "reply buffer overflow");
            }
        }
        rep_ex.exchange(ctx);
        while let Some((_from, resp)) = rep_ex.pop(ctx) {
            target[resp.slot as usize] = resp.val;
        }
    }
    ctx.barrier_all();
    let elapsed = timer.elapsed();

    check(&target, &indices);
    ctx.barrier_all();
    KernelResult { elapsed, global_ops: cfg.updates_per_pe * npes }
}

/// Generic asynchronous request/response IndexGather driver shared by
/// Exstack2 and Conveyors (both expose push/advance/pop-style APIs).
macro_rules! async_ig {
    ($ctx:expr, $cfg:expr, $reqs:expr, $reps:expr, $push_req:expr, $push_rep:expr, $adv_req:expr, $adv_rep:expr, $pop_req:expr, $pop_rep:expr, $dbg_req:expr, $dbg_rep:expr) => {{
        let ctx = $ctx;
        let cfg = $cfg;
        let npes = ctx.n_pes();
        let glen = cfg.table_per_pe * npes;
        let table = make_table(ctx, cfg);
        let indices = random_indices(cfg, ctx.my_pe(), glen);
        let mut target = vec![0u64; indices.len()];
        let mut pending = indices.len();
        ctx.barrier_all();

        let timer = Instant::now();
        let me = ctx.my_pe() as u32;
        let mut i = 0;
        let stall_limit = std::time::Duration::from_secs(
            std::env::var("LAMELLAR_STALL_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(180),
        );
        let mut last_state = (true, true);
        loop {
            assert!(
                timer.elapsed() < stall_limit,
                "index-gather stalled on pe{me}: pending={pending} i={i} last(req_more,rep_more)={last_state:?}\n  reqs: {}\n  reps: {}",
                $dbg_req(ctx, $reqs),
                $dbg_rep(ctx, $reps),
            );
            let burst = (i + 2048).min(indices.len());
            while i < burst {
                let g = indices[i];
                let dst = g / cfg.table_per_pe;
                let req = Req { src: me, slot: i as u32, idx: (g % cfg.table_per_pe) as u32 };
                $push_req(ctx, $reqs, dst, req);
                i += 1;
            }
            let req_more = $adv_req(ctx, $reqs, i == indices.len());
            {
                // SAFETY: shard contents are immutable after setup.
                let shard = unsafe { ctx.local_slice(table) };
                while let Some(req) = $pop_req($reqs) {
                    let resp = Resp { slot: req.slot, val: shard[req.idx as usize] };
                    $push_rep(ctx, $reps, req.src as usize, resp);
                }
            }
            // Replies can stop only after no request can ever arrive again.
            let rep_more = $adv_rep(ctx, $reps, !req_more && i == indices.len());
            while let Some(resp) = $pop_rep($reps) {
                target[resp.slot as usize] = resp.val;
                pending -= 1;
            }
            last_state = (req_more, rep_more);
            if !req_more && !rep_more && pending == 0 {
                break;
            }
        }
        ctx.barrier_all();
        let elapsed = timer.elapsed();

        check(&target, &indices);
        ctx.barrier_all();
        KernelResult { elapsed, global_ops: cfg.updates_per_pe * npes }
    }};
}

/// Asynchronous Exstack2 IndexGather.
pub fn ig_exstack2(ctx: &ShmemCtx, cfg: &TableConfig) -> KernelResult {
    let cap = cfg.batch.min(2048);
    let mut reqs = Exstack2::<Req>::new(ctx, cap);
    let mut reps = Exstack2::<Resp>::new(ctx, cap);
    async_ig!(
        ctx,
        cfg,
        &mut reqs,
        &mut reps,
        |c: &ShmemCtx, e: &mut Exstack2<Req>, d, r| e.push(c, d, r),
        |c: &ShmemCtx, e: &mut Exstack2<Resp>, d, r| e.push(c, d, r),
        |c: &ShmemCtx, e: &mut Exstack2<Req>, done| e.advance(c, done),
        |c: &ShmemCtx, e: &mut Exstack2<Resp>, done| e.advance(c, done),
        |e: &mut Exstack2<Req>| e.pop().map(|(_s, r)| r),
        |e: &mut Exstack2<Resp>| e.pop().map(|(_s, r)| r),
        |c: &ShmemCtx, e: &mut Exstack2<Req>| e.debug_state(c),
        |c: &ShmemCtx, e: &mut Exstack2<Resp>| e.debug_state(c)
    )
}

/// Multi-hop Conveyors IndexGather.
pub fn ig_convey(ctx: &ShmemCtx, cfg: &TableConfig) -> KernelResult {
    let cap = cfg.batch.min(2048);
    let mut reqs = Convey::<Req>::new(ctx, cap);
    let mut reps = Convey::<Resp>::new(ctx, cap);
    async_ig!(
        ctx,
        cfg,
        &mut reqs,
        &mut reps,
        |c: &ShmemCtx, e: &mut Convey<Req>, d, r| e.push(c, d, r),
        |c: &ShmemCtx, e: &mut Convey<Resp>, d, r| e.push(c, d, r),
        |c: &ShmemCtx, e: &mut Convey<Req>, done| e.advance(c, done),
        |c: &ShmemCtx, e: &mut Convey<Resp>, done| e.advance(c, done),
        |e: &mut Convey<Req>| e.pull(),
        |e: &mut Convey<Resp>| e.pull(),
        |c: &ShmemCtx, e: &mut Convey<Req>| e.debug_state(c),
        |c: &ShmemCtx, e: &mut Convey<Resp>| e.debug_state(c)
    )
}

/// Actor-model Selectors IndexGather: one selector per direction —
/// requests quiesce first (so reply senders know when to declare done),
/// then replies.
pub fn ig_selector(ctx: &ShmemCtx, cfg: &TableConfig) -> KernelResult {
    let npes = ctx.n_pes();
    let glen = cfg.table_per_pe * npes;
    let table = make_table(ctx, cfg);
    let indices = random_indices(cfg, ctx.my_pe(), glen);
    let mut target = vec![0u64; indices.len()];
    let mut pending = indices.len();
    let cap = cfg.batch.min(2048);
    let mut req_sel = Selector::<Req, 1>::new(ctx, cap);
    let mut rep_sel = Selector::<Resp, 1>::new(ctx, cap);
    ctx.barrier_all();

    let timer = Instant::now();
    let me = ctx.my_pe() as u32;
    for (slot, &g) in indices.iter().enumerate() {
        let dst = g / cfg.table_per_pe;
        req_sel.send(
            ctx,
            0,
            dst,
            Req { src: me, slot: slot as u32, idx: (g % cfg.table_per_pe) as u32 },
        );
    }
    req_sel.done();
    // SAFETY: shard contents are immutable after setup.
    let shard = unsafe { ctx.local_slice(table) };
    let mut outgoing_replies: Vec<(usize, Resp)> = Vec::new();
    let mut reps_done = false;
    loop {
        let req_more = req_sel.step(ctx, |_mb, _src, req: Req| {
            outgoing_replies
                .push((req.src as usize, Resp { slot: req.slot, val: shard[req.idx as usize] }));
        });
        for (dst, rep) in outgoing_replies.drain(..) {
            rep_sel.send(ctx, 0, dst, rep);
        }
        if !req_more && !reps_done {
            // No request can ever arrive again: our last reply is sent.
            reps_done = true;
            rep_sel.done();
        }
        let rep_more = rep_sel.step(ctx, |_mb, _src, resp: Resp| {
            target[resp.slot as usize] = resp.val;
            pending -= 1;
        });
        if reps_done && !req_more && !rep_more && pending == 0 {
            break;
        }
    }
    ctx.barrier_all();
    let elapsed = timer.elapsed();

    check(&target, &indices);
    ctx.barrier_all();
    KernelResult { elapsed, global_ops: cfg.updates_per_pe * npes }
}

/// Chapel-style SrcAggregator IndexGather — the paper's fastest series:
/// "allocates additional buffers for each PE to communicate with one
/// another using RDMA".
pub fn ig_chapel(ctx: &ShmemCtx, cfg: &TableConfig) -> KernelResult {
    let npes = ctx.n_pes();
    let glen = cfg.table_per_pe * npes;
    let table = make_table(ctx, cfg);
    let indices = random_indices(cfg, ctx.my_pe(), glen);
    let mut target = vec![0u64; indices.len()];
    let mut agg = SrcAggregator::new(ctx, table, cfg.batch.min(8192));
    ctx.barrier_all();

    let timer = Instant::now();
    for (slot, &g) in indices.iter().enumerate() {
        agg.copy(ctx, &mut target, g / cfg.table_per_pe, slot, g % cfg.table_per_pe);
    }
    agg.flush_all(ctx, &mut target);
    ctx.barrier_all();
    let elapsed = timer.elapsed();

    check(&target, &indices);
    ctx.barrier_all();
    KernelResult { elapsed, global_ops: cfg.updates_per_pe * npes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oshmem_sim::shmem_launch;

    fn run(f: fn(&ShmemCtx, &TableConfig) -> KernelResult, pes: usize) {
        let cfg = TableConfig::test_small();
        let results = shmem_launch(pes, 16, move |ctx| f(&ctx, &cfg));
        assert_eq!(results.len(), pes);
    }

    #[test]
    fn exstack_ig() {
        run(ig_exstack, 3);
    }

    #[test]
    fn exstack2_ig() {
        run(ig_exstack2, 3);
    }

    #[test]
    fn convey_ig() {
        run(ig_convey, 4);
    }

    #[test]
    fn chapel_ig() {
        run(ig_chapel, 3);
    }

    #[test]
    fn selector_ig() {
        run(ig_selector, 2);
    }
}
