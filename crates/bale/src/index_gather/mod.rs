//! IndexGather (paper Sec. IV-B.2, Fig. 4): read random elements from a
//! distributed table — "more difficult to execute efficiently since the
//! runtime needs to both (1) manage the initial remote read requests and
//! (2) return the results of those reads."
//!
//! ```text
//! for (i, rand_i) in random_indices.enumerate() {
//!     target[i] = table[rand_i];
//! }
//! ```
//!
//! Unlike histogram/randperm this kernel *fetches* values, so every AM
//! keeps a tracked reply — it cannot ride the fire-and-forget unit path.
//! It still benefits from the sharded pending table: thousands of handles
//! are outstanding at once and completions no longer serialize on one
//! global request-map lock.

pub mod baselines;

use crate::common::{random_indices, KernelResult, TableConfig};
use lamellar_array::prelude::*;
use lamellar_core::darc::Darc;
use lamellar_core::prelude::*;
use std::time::Instant;

/// Table values are a known function of the global index so every variant
/// can verify its gathered data exactly.
pub fn table_value(global_index: usize) -> u64 {
    (global_index as u64).wrapping_mul(2654435761).rotate_left(11) ^ 0xBA1E
}

/// The manually-aggregated gather AM: destination-local indices in, values
/// out (the second message of the request/response pair).
#[derive(Clone, Debug)]
pub struct IgBufAm {
    /// Each PE's shard of the read-only table.
    pub table: Darc<Vec<u64>>,
    /// Destination-local indices to read.
    pub idxs: Vec<u32>,
}

lamellar_core::impl_codec!(IgBufAm { table, idxs });

impl LamellarAm for IgBufAm {
    type Output = Vec<u64>;
    async fn exec(self, _ctx: AmContext) -> Vec<u64> {
        self.idxs.iter().map(|&i| self.table[i as usize]).collect()
    }
}

/// Lamellar **AM** IndexGather: manual aggregation, explicit reply routing.
pub fn ig_lamellar_am(world: &LamellarWorld, cfg: &TableConfig) -> KernelResult {
    let npes = world.num_pes();
    let me = world.my_pe();
    let glen = cfg.table_per_pe * npes;
    // Block-distributed table shard with verifiable contents.
    let shard: Vec<u64> =
        (0..cfg.table_per_pe).map(|l| table_value(me * cfg.table_per_pe + l)).collect();
    let table = Darc::new(&world.team(), shard);
    let indices = random_indices(cfg, me, glen);
    let mut target = vec![0u64; indices.len()];
    world.barrier();

    let timer = Instant::now();
    // Bin requests by destination, remembering each request's target slot.
    let mut bins: Vec<Vec<u32>> = vec![Vec::with_capacity(cfg.batch); npes];
    let mut slots: Vec<Vec<u32>> = vec![Vec::with_capacity(cfg.batch); npes];
    let mut handles: Vec<(Vec<u32>, lamellar_core::am::AmHandle<Vec<u64>>)> = Vec::new();
    let flush = |dst: usize, bins: &mut Vec<Vec<u32>>, slots: &mut Vec<Vec<u32>>| {
        if bins[dst].is_empty() {
            return None;
        }
        let idxs = std::mem::replace(&mut bins[dst], Vec::with_capacity(cfg.batch));
        let s = std::mem::replace(&mut slots[dst], Vec::with_capacity(cfg.batch));
        Some((s, world.exec_am_pe(dst, IgBufAm { table: table.clone(), idxs })))
    };
    for (slot, &g) in indices.iter().enumerate() {
        let dst = g / cfg.table_per_pe;
        bins[dst].push((g % cfg.table_per_pe) as u32);
        slots[dst].push(slot as u32);
        if bins[dst].len() >= cfg.batch {
            handles.extend(flush(dst, &mut bins, &mut slots));
        }
    }
    for dst in 0..npes {
        handles.extend(flush(dst, &mut bins, &mut slots));
    }
    // Scatter replies back into the target in request order.
    for (s, h) in handles {
        let vals = world.block_on(h);
        for (slot, v) in s.into_iter().zip(vals) {
            target[slot as usize] = v;
        }
    }
    world.wait_all();
    world.barrier();
    let elapsed = timer.elapsed();

    for (slot, &g) in indices.iter().enumerate() {
        assert_eq!(target[slot], table_value(g), "index gather returned a wrong value");
    }
    world.barrier();
    KernelResult { elapsed, global_ops: cfg.updates_per_pe * npes }
}

/// Lamellar **ReadOnlyArray** IndexGather: the paper's
/// `target = world.block_on(table.batch_load(rnd_idxs))`.
pub fn ig_lamellar_read_only(world: &LamellarWorld, cfg: &TableConfig) -> KernelResult {
    let npes = world.num_pes();
    let glen = cfg.table_per_pe * npes;
    // Fill through an UnsafeArray, then convert (the paper's construction).
    let arr = UnsafeArray::<u64>::new(world, glen, Distribution::Block);
    world.barrier();
    if world.my_pe() == 0 {
        let vals: Vec<u64> = (0..glen).map(table_value).collect();
        // SAFETY: sole writer before the barrier inside the conversion.
        unsafe { arr.put_unchecked(0, &vals) };
    }
    world.barrier();
    let mut table = arr.into_read_only();
    table.set_batch_limit(cfg.batch);
    let rnd_idxs = random_indices(cfg, world.my_pe(), glen);
    world.barrier();

    let timer = Instant::now();
    let target = world.block_on(table.batch_load(rnd_idxs.clone()));
    world.wait_all();
    world.barrier();
    let elapsed = timer.elapsed();

    for (slot, &g) in rnd_idxs.iter().enumerate() {
        assert_eq!(target[slot], table_value(g), "index gather returned a wrong value");
    }
    world.barrier();
    KernelResult { elapsed, global_ops: cfg.updates_per_pe * npes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lamellar_core::world::launch;

    #[test]
    fn lamellar_am_ig_gathers_correct_values() {
        let cfg = TableConfig::test_small();
        let results = launch(3, move |world| ig_lamellar_am(&world, &cfg));
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn lamellar_read_only_ig_gathers_correct_values() {
        let cfg = TableConfig::test_small();
        let results = launch(2, move |world| ig_lamellar_read_only(&world, &cfg));
        assert_eq!(results.len(), 2);
    }
}
