//! Property tests over the BALE kernels: conservation and permutation
//! invariants must hold for arbitrary (small) problem shapes, not just the
//! tuned benchmark sizes.

use bale_suite::common::{PermConfig, TableConfig};
use lamellar_core::world::launch;
use oshmem_sim::shmem_launch;
use proptest::prelude::*;

proptest! {
    // Each case spins up worlds; keep counts small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Histogram conserves updates for arbitrary table sizes, update
    /// counts, and batch limits — across both substrates.
    #[test]
    fn histogram_conserves_for_arbitrary_shapes(
        table_per_pe in 1usize..64,
        updates_per_pe in 1usize..800,
        batch in 1usize..300,
        seed in 0u64..1000,
    ) {
        let cfg = TableConfig { table_per_pe, updates_per_pe, batch, seed };
        // Lamellar AtomicArray path (verifies internally via sum()).
        launch(2, move |world| {
            bale_suite::histo::histo_lamellar_atomic_array(&world, &cfg)
        });
        // Exstack path (verifies internally via symmetric gather).
        shmem_launch(2, 8, move |ctx| {
            bale_suite::histo::baselines::histo_exstack(&ctx, &cfg)
        });
    }

    /// Randperm produces a true permutation for arbitrary sizes and target
    /// ratios ≥ 1 (the dart board must be at least as large as N).
    #[test]
    fn randperm_is_permutation_for_arbitrary_shapes(
        perm_per_pe in 1usize..150,
        extra in 0usize..150,
        batch in 1usize..100,
        seed in 0u64..1000,
    ) {
        let cfg = PermConfig {
            perm_per_pe,
            target_per_pe: perm_per_pe + extra.max(1),
            batch,
            seed,
        };
        // Internal verification asserts the permutation property.
        launch(2, move |world| {
            bale_suite::randperm::randperm_am_darts(&world, &cfg)
        });
    }

    /// IndexGather returns exact values for arbitrary shapes (Lamellar
    /// ReadOnlyArray path; verifies every gathered element internally).
    #[test]
    fn index_gather_exact_for_arbitrary_shapes(
        table_per_pe in 1usize..64,
        updates_per_pe in 1usize..600,
        batch in 1usize..200,
        seed in 0u64..1000,
    ) {
        let cfg = TableConfig { table_per_pe, updates_per_pe, batch, seed };
        launch(2, move |world| {
            bale_suite::index_gather::ig_lamellar_read_only(&world, &cfg)
        });
    }
}
