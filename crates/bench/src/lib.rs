//! # lamellar-bench
//!
//! Harnesses regenerating every figure of the paper's evaluation
//! (Sec. IV, Figs. 2–5) plus the DESIGN.md ablations. Each figure has:
//!
//! * a **binary** (`cargo run -p lamellar-bench --release --bin fig<N>_…`)
//!   that prints the figure's rows/series as a table and writes a CSV to
//!   `bench_out/`, and
//! * a **Criterion bench** (`cargo bench -p lamellar-bench --bench
//!   fig<N>_…`) sampling a reduced version of the same measurement.
//!
//! Absolute numbers come from the simulated fabric, not the paper's
//! InfiniBand cluster; EXPERIMENTS.md compares the *shapes* (who wins,
//! crossovers, scaling trends) against the paper.

use std::fmt::Write as _;
use std::io::Write as _;

/// Simple `--key value` argument extraction for the harness binaries.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Comma-separated usize list argument (e.g. `--pes 1,2,4,8`).
pub fn arg_usize_list(name: &str, default: &[usize]) -> Vec<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_else(|| default.to_vec())
}

/// A results table: one row per sweep point, one column per series.
pub struct ResultTable {
    title: String,
    x_label: String,
    series: Vec<String>,
    rows: Vec<(String, Vec<Option<f64>>)>,
    unit: String,
}

impl ResultTable {
    /// Start a table for `title`, x axis `x_label`, columns `series`.
    pub fn new(title: &str, x_label: &str, unit: &str, series: &[&str]) -> Self {
        ResultTable {
            title: title.to_string(),
            x_label: x_label.to_string(),
            series: series.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            unit: unit.to_string(),
        }
    }

    /// Add one sweep point's measurements (in series order; `None` = not
    /// run).
    pub fn push_row(&mut self, x: impl ToString, values: Vec<Option<f64>>) {
        assert_eq!(values.len(), self.series.len());
        self.rows.push((x.to_string(), values));
    }

    /// Render the table the way the paper reports the figure.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ({}) ==", self.title, self.unit);
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {s:>16}");
        }
        let _ = writeln!(out);
        for (x, vals) in &self.rows {
            let _ = write!(out, "{x:>12}");
            for v in vals {
                match v {
                    Some(v) if *v >= 100.0 => {
                        let _ = write!(out, " {v:>16.1}");
                    }
                    Some(v) => {
                        let _ = write!(out, " {v:>16.4}");
                    }
                    None => {
                        let _ = write!(out, " {:>16}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Write `bench_out/<name>.csv` next to the workspace root.
    pub fn write_csv(&self, name: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = std::path::Path::new("bench_out");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path)?;
        write!(f, "{}", self.x_label)?;
        for s in &self.series {
            write!(f, ",{s}")?;
        }
        writeln!(f)?;
        for (x, vals) in &self.rows {
            write!(f, "{x}")?;
            for v in vals {
                match v {
                    Some(v) => write!(f, ",{v}")?,
                    None => write!(f, ",")?,
                }
            }
            writeln!(f)?;
        }
        Ok(path)
    }
}

/// Pretty-print a transfer size (Fig. 2's x axis).
pub fn fmt_size(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}KB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_writes_csv() {
        let mut t = ResultTable::new("Fig X", "pes", "MUPS", &["a", "b"]);
        t.push_row(2, vec![Some(1.5), None]);
        t.push_row(4, vec![Some(250.0), Some(3.0)]);
        let s = t.render();
        assert!(s.contains("Fig X"));
        assert!(s.contains("250.0"));
        assert!(s.contains('-'));
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(8), "8B");
        assert_eq!(fmt_size(2048), "2KB");
        assert_eq!(fmt_size(4 << 20), "4MB");
    }
}
