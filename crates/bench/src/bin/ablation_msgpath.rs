//! Ablation — zero-copy message path (DESIGN.md, "Message path & buffer
//! lifecycle").
//!
//! Measures what pooled buffers + encode-in-place buy on the aggregated
//! hot send path. Two variants push identical framed Request envelopes
//! through a real `QueueTransport` pair:
//!
//! * **legacy-copy** — what the runtime did before the refactor: serialize
//!   the payload into a fresh `Vec`, build an owned `Envelope`, frame it
//!   into a second `Vec`, then copy that into the aggregation buffer.
//! * **encode-in-place** — the current path: `send_with` +
//!   `frame_request_with` encode straight into the pooled aggregation
//!   buffer.
//!
//! A counting global allocator reports heap allocations per AM alongside
//! wall time; in steady state the in-place path performs zero intermediate
//! allocations per envelope (the pool recycles every buffer).
//!
//! Usage: `... --bin ablation_msgpath [--msgs 200000] [--payload 64]`

use lamellar_bench::{arg_usize, ResultTable};
use lamellar_core::lamellae::queue::{queue_footprint, QueueTransport};
use lamellar_core::proto::{self, Envelope};
use rofi_sim::fabric::{Fabric, FabricConfig};
use rofi_sim::NetConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator with an allocation-event counter (alloc + realloc; a
/// realloc is the `Vec` growth the zero-copy path is meant to eliminate).
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Harness {
    q0: QueueTransport,
    q1: QueueTransport,
}

fn harness() -> Harness {
    let buf_size = 64 << 10;
    let mut eps = Fabric::launch(FabricConfig {
        num_pes: 2,
        sym_len: queue_footprint(2, buf_size) + 4096,
        heap_len: 4096,
        net: NetConfig::disabled(),
        metrics: true,
        fault: None,
    });
    let base = eps[0].fabric().alloc_symmetric(queue_footprint(2, buf_size), 64).unwrap();
    let ep1 = eps.pop().unwrap();
    let ep0 = eps.pop().unwrap();
    Harness {
        q0: QueueTransport::new(ep0, base, buf_size, 16 << 10),
        q1: QueueTransport::new(ep1, base, buf_size, 16 << 10),
    }
}

/// Run `send` for `msgs` messages, draining the receiver inline, and return
/// (ns per AM, allocation events per AM). The first quarter is warmup: it
/// fills the buffer pools so the measured region sees steady state.
fn run(h: &Harness, msgs: usize, mut send: impl FnMut(&QueueTransport, u64)) -> (f64, f64) {
    let warmup = msgs / 4;
    let drain = |h: &Harness| {
        h.q0.flush();
        h.q1.progress(&mut |_, _| {});
    };
    for seq in 0..warmup {
        send(&h.q0, seq as u64);
        if seq % 32 == 31 {
            drain(h);
        }
    }
    while !h.q0.outgoing_empty() {
        drain(h);
    }
    let t0 = Instant::now();
    let a0 = ALLOC_EVENTS.load(Ordering::Relaxed);
    for seq in 0..msgs {
        send(&h.q0, seq as u64);
        if seq % 32 == 31 {
            drain(h);
        }
    }
    while !h.q0.outgoing_empty() {
        drain(h);
    }
    let allocs = ALLOC_EVENTS.load(Ordering::Relaxed) - a0;
    let ns = t0.elapsed().as_nanos() as f64;
    (ns / msgs as f64, allocs as f64 / msgs as f64)
}

fn main() {
    let msgs = arg_usize("--msgs", 200_000);
    let payload_len = arg_usize("--payload", 64);
    let src: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();

    println!("Ablation: message-path allocations, {msgs} AMs of {payload_len} B payload");
    let mut table = ResultTable::new(
        "Zero-copy message path",
        "variant",
        "ns / allocs per AM",
        &["ns-per-am", "allocs-per-am"],
    );

    {
        let h = harness();
        let src = src.clone();
        let (ns, allocs) = run(&h, msgs, move |q, seq| {
            // Pre-refactor shape: payload Vec + owned Envelope + frame Vec,
            // then a copy into the aggregation buffer.
            let payload = src.clone();
            let env = Envelope::Request(1, seq, 0, payload);
            let mut buf = Vec::new();
            proto::frame(&env, &mut buf);
            q.send(1, &buf);
        });
        table.push_row("legacy-copy", vec![Some(ns), Some(allocs)]);
    }

    {
        let h = harness();
        let src = src.clone();
        let (ns, allocs) = run(&h, msgs, move |q, seq| {
            q.send_with(1, proto::framed_request_len(src.len()), &mut |buf| {
                proto::frame_request_with(buf, 1, seq, 0, src.len(), |b| b.extend_from_slice(&src));
            });
        });
        table.push_row("encode-in-place", vec![Some(ns), Some(allocs)]);
        let hit_rate = h.q0.stats().pool_hit_rate().unwrap_or(0.0);
        println!("sender pool hit rate: {:.1}%", hit_rate * 100.0);
    }

    print!("{}", table.render());
    let _ = table.write_csv("ablation_msgpath");
}
