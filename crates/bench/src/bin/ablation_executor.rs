//! Ablation — work-stealing vs single-queue executor (DESIGN.md §4).
//!
//! The paper (Sec. III-B): "The Lamellar thread pool utilizes a
//! work-stealing implementation." This harness measures a recursive
//! fan-out task graph and a flat task burst under both scheduling modes of
//! [`lamellar_executor::ThreadPool`].
//!
//! Usage: `... --bin ablation_executor [--tasks 20000] [--workers 4]`

use lamellar_bench::{arg_usize, ResultTable};
use lamellar_executor::{PoolConfig, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn flat_burst(pool: &ThreadPool, tasks: usize) -> f64 {
    let counter = Arc::new(AtomicUsize::new(0));
    let t = Instant::now();
    for _ in 0..tasks {
        let c = Arc::clone(&counter);
        drop(pool.spawn(async move {
            // A little CPU work per task.
            let mut x = 0u64;
            for i in 0..64 {
                x = x.wrapping_mul(31).wrapping_add(i);
            }
            std::hint::black_box(x);
            c.fetch_add(1, Ordering::Relaxed);
        }));
    }
    pool.wait_idle();
    assert_eq!(counter.load(Ordering::Relaxed), tasks);
    tasks as f64 / t.elapsed().as_secs_f64()
}

fn fanout(pool: Arc<ThreadPool>, counter: Arc<AtomicUsize>, depth: usize) {
    counter.fetch_add(1, Ordering::Relaxed);
    if depth == 0 {
        return;
    }
    for _ in 0..2 {
        let p = Arc::clone(&pool);
        let c = Arc::clone(&counter);
        let spawn_on = Arc::clone(&pool);
        drop(spawn_on.spawn(async move { fanout(p, c, depth - 1) }));
    }
}

fn recursive_tree(pool: Arc<ThreadPool>, depth: usize) -> f64 {
    let counter = Arc::new(AtomicUsize::new(0));
    let expect = (1usize << (depth + 1)) - 1;
    let t = Instant::now();
    fanout(Arc::clone(&pool), Arc::clone(&counter), depth);
    pool.wait_idle();
    assert_eq!(counter.load(Ordering::Relaxed), expect);
    expect as f64 / t.elapsed().as_secs_f64()
}

fn main() {
    let tasks = arg_usize("--tasks", 20_000);
    let workers = arg_usize("--workers", 4);
    let depth = 13; // 16383-node spawn tree

    println!("Ablation: executor scheduling, {workers} workers");
    let mut table =
        ResultTable::new("Executor", "mode", "tasks/s", &["flat-burst", "recursive-tree"]);
    for (label, single) in [("work-stealing", false), ("single-queue", true)] {
        let pool = Arc::new(ThreadPool::new(PoolConfig {
            workers,
            single_queue: single,
            thread_name: format!("abl-{label}"),
            metrics: false,
        }));
        let flat = flat_burst(&pool, tasks);
        let tree = recursive_tree(Arc::clone(&pool), depth);
        let stats = pool.worker_stats();
        let (exec, stolen): (usize, usize) =
            stats.iter().fold((0, 0), |(e, s), &(we, ws)| (e + we, s + ws));
        println!("  {label}: workers executed {exec} tasks, {stolen} via stealing");
        table.push_row(label, vec![Some(flat), Some(tree)]);
    }
    print!("{}", table.render());
    let _ = table.write_csv("ablation_executor");
}
