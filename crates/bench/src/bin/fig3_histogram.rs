//! Fig. 3 — Histogram kernel performance (MUPS, higher is better).
//!
//! Sweeps PE counts and runs all seven implementations from the paper:
//! Exstack, Exstack2, Conveyors, Selectors, Chapel(DstAggregator),
//! Lamellar AM (manual aggregation), Lamellar AtomicArray (Listing 2).
//!
//! Paper parameters: 1,000 table elements/core, 10,000,000 updates/core,
//! 10,000-op buffers; `--scale` divides the update count for laptop runs.
//!
//! Usage: `cargo run --release -p lamellar-bench --bin fig3_histogram
//! [--pes 1,2,4] [--scale 200] [--reps 3]`

use bale_suite::common::{KernelResult, TableConfig};
use bale_suite::histo::baselines::*;
use bale_suite::histo::{histo_lamellar_am, histo_lamellar_atomic_array};
use lamellar_bench::{arg_usize, arg_usize_list, ResultTable};
use lamellar_core::config::{Backend, WorldConfig};
use lamellar_core::world::launch_with_config;
use oshmem_sim::{shmem_launch, ShmemCtx};

fn best(results: Vec<KernelResult>) -> f64 {
    // Kernel sections are collective; take the max elapsed (the real
    // completion time) to compute MUPS.
    let ops = results[0].global_ops;
    let worst = results.iter().map(|r| r.elapsed).max().unwrap();
    ops as f64 / worst.as_secs_f64() / 1e6
}

fn run_shmem(
    pes: usize,
    cfg: TableConfig,
    reps: usize,
    f: fn(&ShmemCtx, &TableConfig) -> KernelResult,
) -> f64 {
    (0..reps).map(|_| best(shmem_launch(pes, 64, move |ctx| f(&ctx, &cfg)))).fold(0.0, f64::max)
}

fn run_lamellar(
    pes: usize,
    cfg: TableConfig,
    reps: usize,
    f: fn(&lamellar_core::world::LamellarWorld, &TableConfig) -> KernelResult,
) -> f64 {
    (0..reps)
        .map(|_| {
            let wc =
                WorldConfig::new(pes).backend(if pes == 1 { Backend::Smp } else { Backend::Rofi });
            best(launch_with_config(wc, move |world| f(&world, &cfg)))
        })
        .fold(0.0, f64::max)
}

fn main() {
    let pes_list = arg_usize_list("--pes", &[1, 2, 4]);
    let scale = arg_usize("--scale", 500);
    let reps = arg_usize("--reps", 2);
    let cfg = TableConfig::paper_scaled(scale);
    println!(
        "Fig. 3 reproduction: Histogram, {} updates/PE (paper: 10M/core ÷ {scale}), table {}/PE, batch {} (avg of {reps} reps, best)",
        cfg.updates_per_pe, cfg.table_per_pe, cfg.batch
    );

    let series = [
        "Exstack",
        "Exstack2",
        "Conveyors",
        "Selectors",
        "Chapel",
        "Lamellar-AM",
        "Lamellar-Array",
    ];
    let mut table = ResultTable::new("Fig. 3: Histogram", "PEs", "MUPS", &series);
    for &pes in &pes_list {
        let row = vec![
            Some(run_shmem(pes, cfg, reps, histo_exstack)),
            Some(run_shmem(pes, cfg, reps, histo_exstack2)),
            Some(run_shmem(pes, cfg, reps, histo_convey)),
            Some(run_shmem(pes, cfg, reps, histo_selector)),
            Some(run_shmem(pes, cfg, reps, histo_chapel)),
            Some(run_lamellar(pes, cfg, reps, histo_lamellar_am)),
            Some(run_lamellar(pes, cfg, reps, histo_lamellar_atomic_array)),
        ];
        table.push_row(pes, row);
        eprintln!("  finished {pes} PEs");
    }
    print!("{}", table.render());
    if let Ok(p) = table.write_csv("fig3_histogram") {
        println!("csv: {}", p.display());
    }
}
