//! Ablation — reliable delivery under injected loss (DESIGN.md §4b).
//!
//! Measures what the go-back-N layer costs as the fault plane's drop rate
//! rises: a sender pushes framed Request envelopes through a real
//! `QueueTransport` pair in reliable mode while the injector drops a
//! configured fraction of chunks, and we report **goodput** (delivered
//! messages per second, after retransmits recover the losses) plus the
//! retransmit count the recovery cost.
//!
//! The `no-plane` row runs the same traffic with the fault plane absent
//! entirely (default wire format, no sequence headers); against it, the 0%
//! row isolates the reliable layer's own overhead — sequence header + ack
//! tracking with no faults to recover.
//!
//! Usage: `... --bin ablation_faultplane [--msgs 50000] [--payload 64]`

use lamellar_bench::{arg_usize, ResultTable};
use lamellar_core::lamellae::queue::{queue_footprint, QueueTransport};
use lamellar_core::proto;
use rofi_sim::fabric::{Fabric, FabricConfig};
use rofi_sim::{FaultConfig, FaultPlane, NetConfig};
use std::sync::Arc;
use std::time::Instant;

struct Harness {
    q0: QueueTransport,
    q1: QueueTransport,
    /// `None` for the no-plane baseline row (unreliable fast path).
    plane: Option<Arc<FaultPlane>>,
}

/// Build a 2-PE transport pair. `Some(drop)` installs a fault plane with
/// that drop probability (reliable mode engages automatically); `None`
/// omits the plane entirely — the default loss-free wire format, the
/// overhead baseline the reliable rows are compared against.
fn harness(drop: Option<f64>) -> Harness {
    let buf_size = 64 << 10;
    let mut eps = Fabric::launch(FabricConfig {
        num_pes: 2,
        sym_len: queue_footprint(2, buf_size) + 4096,
        heap_len: 4096,
        net: NetConfig::disabled(),
        metrics: true,
        fault: drop.map(|d| FaultConfig::seeded(0xab1a_7e5f).drop_prob(d)),
    });
    let base = eps[0].fabric().alloc_symmetric(queue_footprint(2, buf_size), 64).unwrap();
    let plane = eps[0].fabric().fault_plane().cloned();
    let ep1 = eps.pop().unwrap();
    let ep0 = eps.pop().unwrap();
    if let Some(p) = &plane {
        p.arm();
    }
    Harness {
        q0: QueueTransport::new(ep0, base, buf_size, 16 << 10),
        q1: QueueTransport::new(ep1, base, buf_size, 16 << 10),
        plane,
    }
}

/// Push `msgs` messages through the pair, pumping both ends until every
/// payload has been delivered, and return (goodput in msgs/sec,
/// retransmits, drops injected).
fn run(h: &Harness, msgs: usize, payload: &[u8]) -> (f64, u64, u64) {
    let mut delivered = 0usize;
    let t0 = Instant::now();
    for seq in 0..msgs {
        h.q0.send_with(1, proto::framed_request_len(payload.len()), &mut |buf| {
            proto::frame_request_with(buf, 1, seq as u64, 0, payload.len(), |b| {
                b.extend_from_slice(payload)
            });
        });
        if seq % 32 == 31 {
            h.q0.flush();
            h.q1.progress(&mut |_, chunk| delivered += proto::deframe_raw(chunk).count());
        }
    }
    // Drain: retransmit timers only fire while the sender pumps, so keep
    // flushing until the window is empty and everything has landed.
    while delivered < msgs {
        h.q0.flush();
        h.q1.progress(&mut |_, chunk| delivered += proto::deframe_raw(chunk).count());
    }
    let secs = t0.elapsed().as_secs_f64();
    let stats = h.q0.stats();
    let drops = h.plane.as_ref().map(|p| p.stats().drops_injected).unwrap_or(0);
    (msgs as f64 / secs, stats.retransmits, drops)
}

fn main() {
    let msgs = arg_usize("--msgs", 50_000);
    let payload_len = arg_usize("--payload", 64);
    let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();

    println!("Ablation: goodput vs. drop rate, {msgs} AMs of {payload_len} B payload");
    let mut table = ResultTable::new(
        "Reliable delivery under loss",
        "drop-rate-%",
        "goodput / recovery",
        &["msgs-per-sec", "retransmits", "drops-injected"],
    );

    // Baseline: no fault plane at all — the default wire format with no
    // sequence headers or ack tracking.
    let h = harness(None);
    let (goodput, _, _) = run(&h, msgs, &payload);
    table.push_row("no-plane", vec![Some(goodput), None, None]);

    for drop_pct in [0.0, 0.5, 1.0, 2.0, 5.0, 10.0] {
        let h = harness(Some(drop_pct / 100.0));
        let (goodput, retransmits, drops) = run(&h, msgs, &payload);
        table.push_row(
            format!("{drop_pct}"),
            vec![Some(goodput), Some(retransmits as f64), Some(drops as f64)],
        );
    }

    print!("{}", table.render());
    let _ = table.write_csv("ablation_faultplane");
}
