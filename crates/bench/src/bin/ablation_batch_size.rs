//! Ablation — batch-op sub-batch size (DESIGN.md §4).
//!
//! The paper's evaluation fixed 10,000 operations per buffer ("For
//! AtomicArray, the runtime automatically splits batch_add into
//! sub-batches of up to 10,000 elements"). This harness sweeps the limit
//! on the AtomicArray Histogram.
//!
//! Usage: `... --bin ablation_batch_size [--pes 2] [--scale 2000]`

use bale_suite::common::TableConfig;
use bale_suite::histo::histo_lamellar_atomic_array;
use lamellar_bench::{arg_usize, ResultTable};
use lamellar_core::config::{Backend, WorldConfig};
use lamellar_core::world::launch_with_config;

fn main() {
    let pes = arg_usize("--pes", 2);
    let scale = arg_usize("--scale", 2000);
    let batches = [100usize, 1_000, 10_000, 50_000];

    println!("Ablation: batch_add sub-batch size, AtomicArray Histogram, {pes} PEs");
    let mut table = ResultTable::new("Sub-batch size", "batch", "MUPS", &["Histogram-AtomicArray"]);
    for &batch in &batches {
        let mut cfg = TableConfig::paper_scaled(scale);
        cfg.batch = batch;
        let mups = {
            let wc = WorldConfig::new(pes).backend(Backend::Rofi);
            let results =
                launch_with_config(wc, move |world| histo_lamellar_atomic_array(&world, &cfg));
            let worst = results.iter().map(|r| r.elapsed).max().unwrap();
            results[0].global_ops as f64 / worst.as_secs_f64() / 1e6
        };
        table.push_row(batch, vec![Some(mups)]);
    }
    print!("{}", table.render());
    let _ = table.write_csv("ablation_batch_size");
}
