//! Fig. 4 — IndexGather kernel performance (MUPS, higher is better).
//!
//! Same seven series as Fig. 3, with reads instead of writes: Exstack,
//! Exstack2, Conveyors, Selectors, Chapel (SrcAggregator — the paper's
//! winner), Lamellar AM, and Lamellar ReadOnlyArray (`batch_load`).
//! Expected shape: everyone below their Histogram numbers (two messages
//! per op), Chapel on top, and the two Lamellar curves *reversed* relative
//! to Fig. 3 at scale.
//!
//! Usage: `cargo run --release -p lamellar-bench --bin fig4_indexgather
//! [--pes 1,2,4] [--scale 500] [--reps 2]`

use bale_suite::common::{KernelResult, TableConfig};
use bale_suite::index_gather::baselines::*;
use bale_suite::index_gather::{ig_lamellar_am, ig_lamellar_read_only};
use lamellar_bench::{arg_usize, arg_usize_list, ResultTable};
use lamellar_core::config::{Backend, WorldConfig};
use lamellar_core::world::launch_with_config;
use oshmem_sim::{shmem_launch, ShmemCtx};

fn best(results: Vec<KernelResult>) -> f64 {
    let ops = results[0].global_ops;
    let worst = results.iter().map(|r| r.elapsed).max().unwrap();
    ops as f64 / worst.as_secs_f64() / 1e6
}

fn run_shmem(
    pes: usize,
    cfg: TableConfig,
    reps: usize,
    f: fn(&ShmemCtx, &TableConfig) -> KernelResult,
) -> f64 {
    (0..reps).map(|_| best(shmem_launch(pes, 64, move |ctx| f(&ctx, &cfg)))).fold(0.0, f64::max)
}

fn run_lamellar(
    pes: usize,
    cfg: TableConfig,
    reps: usize,
    f: fn(&lamellar_core::world::LamellarWorld, &TableConfig) -> KernelResult,
) -> f64 {
    (0..reps)
        .map(|_| {
            let wc =
                WorldConfig::new(pes).backend(if pes == 1 { Backend::Smp } else { Backend::Rofi });
            best(launch_with_config(wc, move |world| f(&world, &cfg)))
        })
        .fold(0.0, f64::max)
}

fn main() {
    let pes_list = arg_usize_list("--pes", &[1, 2, 4]);
    let scale = arg_usize("--scale", 500);
    let reps = arg_usize("--reps", 2);
    let cfg = TableConfig::paper_scaled(scale);
    println!(
        "Fig. 4 reproduction: IndexGather, {} requests/PE (paper: 10M/core ÷ {scale}), table {}/PE, batch {}",
        cfg.updates_per_pe, cfg.table_per_pe, cfg.batch
    );

    let series = [
        "Exstack",
        "Exstack2",
        "Conveyors",
        "Selectors",
        "Chapel",
        "Lamellar-AM",
        "Lamellar-ReadOnly",
    ];
    let mut table = ResultTable::new("Fig. 4: IndexGather", "PEs", "MUPS", &series);
    for &pes in &pes_list {
        let row = vec![
            Some(run_shmem(pes, cfg, reps, ig_exstack)),
            Some(run_shmem(pes, cfg, reps, ig_exstack2)),
            Some(run_shmem(pes, cfg, reps, ig_convey)),
            Some(run_shmem(pes, cfg, reps, ig_selector)),
            Some(run_shmem(pes, cfg, reps, ig_chapel)),
            Some(run_lamellar(pes, cfg, reps, ig_lamellar_am)),
            Some(run_lamellar(pes, cfg, reps, ig_lamellar_read_only)),
        ];
        table.push_row(pes, row);
        eprintln!("  finished {pes} PEs");
    }
    print!("{}", table.render());
    if let Ok(p) = table.write_csv("fig4_indexgather") {
        println!("csv: {}", p.display());
    }
}
