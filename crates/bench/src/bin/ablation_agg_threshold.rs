//! Ablation — aggregation threshold (DESIGN.md §4).
//!
//! The paper: "the runtime performs aggregation for message sizes smaller
//! than 100K (this threshold is configurable; 100KB is the default, with
//! this test indicating 512KB - 1MB are more appropriate for our system)".
//! This harness sweeps the threshold and reports Histogram throughput and
//! mid-size AM bandwidth, showing where the Fig. 2 dip moves.
//!
//! Usage: `... --bin ablation_agg_threshold [--pes 2] [--scale 2000]`

use bale_suite::common::TableConfig;
use bale_suite::histo::histo_lamellar_am;
use lamellar_bench::{arg_usize, ResultTable};
use lamellar_core::config::{Backend, WorldConfig};
use lamellar_core::world::launch_with_config;

fn main() {
    if std::env::var("LAMELLAR_NET_MODEL").is_err() {
        std::env::set_var("LAMELLAR_NET_MODEL", "1");
    }
    let pes = arg_usize("--pes", 2);
    let scale = arg_usize("--scale", 500);
    let mut cfg = TableConfig::paper_scaled(scale);
    // Small AM batches so the *wire-level* aggregation threshold (not the
    // application-level binning) is what varies.
    cfg.batch = arg_usize("--batch", 128);
    let thresholds: Vec<usize> = vec![16 << 10, 50 << 10, 100 << 10, 256 << 10, 512 << 10, 1 << 20];

    println!("Ablation: aggregation threshold sweep, Histogram AM, {pes} PEs");
    let mut table = ResultTable::new(
        "Aggregation threshold",
        "threshold",
        "MUPS / wire-puts",
        &["Histogram-AM", "fabric-puts"],
    );
    for &thresh in &thresholds {
        let (mups, puts) = {
            let wc = WorldConfig::new(pes).backend(Backend::Rofi).agg_threshold(thresh);
            let results = launch_with_config(wc, move |world| {
                let r = histo_lamellar_am(&world, &cfg);
                (r, world.stats().fabric.puts)
            });
            let worst = results.iter().map(|(r, _)| r.elapsed).max().unwrap();
            let puts = results[0].1; // fabric-global counter
            (results[0].0.global_ops as f64 / worst.as_secs_f64() / 1e6, puts as f64)
        };
        table.push_row(lamellar_bench::fmt_size(thresh), vec![Some(mups), Some(puts)]);
    }
    print!("{}", table.render());
    let _ = table.write_csv("ablation_agg_threshold");
}
