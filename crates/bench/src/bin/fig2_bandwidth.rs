//! Fig. 2 — *Put*-like bandwidth curves (higher is better).
//!
//! Reproduces the paper's seven transfer mechanisms between two PEs, with
//! the network cost model enabled (Mellanox-HDR-100-like parameters):
//!
//! 1. `Rofi(libfabric)` — the raw ROFI shim, manual termination detection.
//! 2. `MemRegion` — unsafe SharedMemoryRegion put (light wrapper on ROFI).
//! 3. `UnsafeArray (unchecked)` — direct RDMA `put_unchecked`.
//! 4. `UnsafeArray` — AM-based put that switches to direct RDMA above the
//!    aggregation threshold.
//! 5. `LocalLockArray` — AM-based put under the PE-wide RwLock.
//! 6. `AtomicArray` — AM-based put with element-wise atomic stores.
//! 7. `AM` — an active message carrying a `Vec<u8>` whose exec returns
//!    immediately.
//!
//! Expected shape (paper Fig. 2): the three raw paths sit near the peak
//! for ≥32 KB; a latency step appears where `fi_inject_write` gives way to
//! `fi_write` (128→256 B); the runtime paths cost more, dip at the 100 KB
//! aggregation threshold, and UnsafeArray rejoins the raw paths beyond it.
//!
//! Usage: `cargo run --release -p lamellar-bench --bin fig2_bandwidth
//! [--max-mb 4] [--budget-mb 8] [--get]`
//!
//! `--get` additionally measures the *get* direction (the paper omits it:
//! "Lamellar get transfers follow the same trends as put"): raw ROFI get,
//! MemRegion get, and the safe `ReadOnlyArray::get_direct`.

use lamellar_array::prelude::*;
use lamellar_bench::{arg_usize, fmt_size, ResultTable};
use lamellar_core::config::{Backend, WorldConfig};
use lamellar_core::prelude::SharedMemoryRegion;
use rofi_sim::fabric::{Fabric, FabricConfig};
use rofi_sim::rofi::Rofi;
use rofi_sim::NetConfig;
use std::time::Instant;

lamellar_core::am! {
    /// The Fig. 2 AM series: raw bytes in, immediate return.
    pub struct BlobAm { pub data: Vec<u8> }
    exec(_am, _ctx) -> () { }
}

fn transfers_for(size: usize, budget: usize) -> usize {
    // The paper used 262143 transfers below 4 KB and 1GB/size above; we
    // scale the byte budget down for a single-machine run.
    (budget / size).clamp(4, 4096)
}

/// The "Rofi(libfabric)" series: raw shim puts with manual termination
/// detection (pattern + barrier), measured on a standalone 2-PE fabric.
fn rofi_series(sizes: &[usize], budget: usize) -> Vec<f64> {
    let mut eps = Fabric::launch(FabricConfig {
        num_pes: 2,
        sym_len: (*sizes.last().unwrap() + 4096).next_power_of_two(),
        heap_len: 4096,
        net: NetConfig::from_env(),
        metrics: true,
        fault: None,
    });
    let r1 = Rofi::init(eps.pop().unwrap());
    let r0 = Rofi::init(eps.pop().unwrap());
    let region = r0.alloc(*sizes.last().unwrap()).expect("rofi alloc");
    // PE1 idles in barriers, one per size (manual termination detection).
    let n_sizes = sizes.len();
    let peer = std::thread::spawn(move || {
        for _ in 0..n_sizes {
            r1.barrier();
        }
    });
    let mut out = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let n = transfers_for(size, budget);
        let buf = vec![0x5au8; size];
        let t = Instant::now();
        for _ in 0..n {
            // SAFETY: PE1 never touches the region during the test.
            unsafe { r0.put(1, region, &buf).expect("rofi put") };
        }
        out.push((n * size) as f64 / 1e6 / t.elapsed().as_secs_f64());
        r0.barrier();
    }
    peer.join().expect("rofi peer");
    r0.release(region).expect("rofi release");
    out
}

/// The optional get-direction table (paper footnote 3).
fn get_series(sizes: &[usize], budget: usize) {
    let series = ["Rofi-get", "MemRegion-get", "ReadOnlyArray-get"];
    let sizes2 = sizes.to_vec();
    let results = lamellar_core::world::launch_with_config(
        WorldConfig::new(2).backend(Backend::Rofi).threads_per_pe(2),
        move |world| {
            let me = world.my_pe();
            let max = *sizes2.last().unwrap();
            let region: SharedMemoryRegion<u8> = world.alloc_shared_mem_region(max);
            let arr = UnsafeArray::<u8>::new(&world, 2 * max, Distribution::Block);
            world.barrier();
            if me == 1 {
                // SAFETY: sole writer before the conversion barrier.
                unsafe { arr.put_unchecked(max, &vec![0x77u8; max]) };
            }
            world.barrier();
            let ro = arr.into_read_only();
            let mut rows = Vec::new();
            for &size in &sizes2 {
                let n = transfers_for(size, budget);
                let mut buf = vec![0u8; size];
                let mb = (n * size) as f64 / 1e6;
                let mut row = Vec::new();
                world.barrier();
                if me == 0 {
                    // Raw fabric-level get through the region (ROFI layer).
                    let t = Instant::now();
                    for _ in 0..n {
                        // SAFETY: PE1 never writes during the test.
                        unsafe { region.get(1, 0, &mut buf) };
                    }
                    row.push(Some(mb / t.elapsed().as_secs_f64()));
                    // MemRegion get (same wrapper, second curve).
                    let t = Instant::now();
                    for _ in 0..n {
                        // SAFETY: as above.
                        unsafe { region.get(1, 0, &mut buf) };
                    }
                    row.push(Some(mb / t.elapsed().as_secs_f64()));
                    // Safe direct get on the immutable array.
                    let t = Instant::now();
                    for _ in 0..n {
                        ro.get_direct(max, &mut buf);
                    }
                    row.push(Some(mb / t.elapsed().as_secs_f64()));
                } else {
                    row.extend([None, None, None]);
                }
                world.barrier();
                rows.push(row);
            }
            rows
        },
    );
    let mut table = ResultTable::new("Fig. 2 (get direction)", "size", "MB/s", &series);
    for (i, &size) in sizes.iter().enumerate() {
        table.push_row(fmt_size(size), results[0][i].clone());
    }
    print!("{}", table.render());
    let _ = table.write_csv("fig2_bandwidth_get");
}

fn main() {
    // The cost model is the whole point of this figure.
    if std::env::var("LAMELLAR_NET_MODEL").is_err() {
        std::env::set_var("LAMELLAR_NET_MODEL", "1");
    }
    let max_size = arg_usize("--max-mb", 4) << 20;
    let budget = arg_usize("--budget-mb", 8) << 20;
    let sizes: Vec<usize> = std::iter::successors(Some(1usize), |s| Some(s * 2))
        .take_while(|&s| s <= max_size)
        .collect();

    let series = [
        "Rofi(libfabric)",
        "MemRegion",
        "UnsafeArray-unchecked",
        "UnsafeArray",
        "LocalLockArray",
        "AtomicArray",
        "AM",
    ];
    println!("Fig. 2 reproduction: put-like bandwidth, 2 PEs, cost model on");
    println!(
        "paper parameters: 262143 transfers <=4KB, 1GB/size above; here: budget {} per size",
        fmt_size(budget)
    );

    // Series 1 measured at the raw ROFI layer on its own fabric.
    let rofi_bw = rofi_series(&sizes, budget);

    let sizes2 = sizes.clone();
    let results = lamellar_core::world::launch_with_config(
        WorldConfig::new(2).backend(Backend::Rofi).threads_per_pe(2),
        move |world| {
            let mut rows: Vec<Vec<Option<f64>>> = Vec::new();
            let me = world.my_pe();

            // Series 1/2: raw region put with manual termination detection.
            let region: SharedMemoryRegion<u8> =
                world.alloc_shared_mem_region(*sizes2.last().unwrap());
            // Arrays for series 3..6.
            let elems = *sizes2.last().unwrap();
            let unsafe_arr = UnsafeArray::<u8>::new(&world, 2 * elems, Distribution::Block);
            let ll_arr = LocalLockArray::<u8>::new(&world, 2 * elems, Distribution::Block);
            let at_arr = AtomicArray::<u8>::new(&world, 2 * elems, Distribution::Block);
            world.barrier();

            for &size in &sizes2 {
                let n = transfers_for(size, budget);
                let buf = vec![0xa5u8; size];
                let mut row: Vec<Option<f64>> = Vec::new();
                let mb = (n * size) as f64 / 1e6;

                // -- Rofi(libfabric): measured on the standalone fabric
                // before the world launched; slot filled in afterwards.
                row.push(None);

                // -- MemRegion: the unsafe SharedMemoryRegion wrapper.
                world.barrier();
                if me == 0 {
                    let t = Instant::now();
                    for _ in 0..n {
                        // SAFETY: as above.
                        unsafe { region.put(1, 0, &buf) };
                    }
                    row.push(Some(mb / t.elapsed().as_secs_f64()));
                } else {
                    row.push(None);
                }
                world.barrier();

                // -- UnsafeArray unchecked: direct RDMA into PE1's block.
                world.barrier();
                if me == 0 {
                    let t = Instant::now();
                    for _ in 0..n {
                        // SAFETY: PE1's block, untouched by others.
                        unsafe { unsafe_arr.put_unchecked(elems, &buf) };
                    }
                    row.push(Some(mb / t.elapsed().as_secs_f64()));
                } else {
                    row.push(None);
                }
                world.barrier();

                // -- UnsafeArray (runtime path with threshold switch).
                world.barrier();
                if me == 0 {
                    let t = Instant::now();
                    for _ in 0..n {
                        // SAFETY: runtime-managed, but the type is unsafe.
                        drop(unsafe { unsafe_arr.put(elems, buf.clone()) });
                    }
                    world.wait_all();
                    row.push(Some(mb / t.elapsed().as_secs_f64()));
                } else {
                    row.push(None);
                }
                world.barrier();

                // -- LocalLockArray.
                world.barrier();
                if me == 0 {
                    let t = Instant::now();
                    for _ in 0..n {
                        drop(ll_arr.put(elems, buf.clone()));
                    }
                    world.wait_all();
                    row.push(Some(mb / t.elapsed().as_secs_f64()));
                } else {
                    row.push(None);
                }
                world.barrier();

                // -- AtomicArray.
                world.barrier();
                if me == 0 {
                    let t = Instant::now();
                    for _ in 0..n {
                        drop(at_arr.put(elems, buf.clone()));
                    }
                    world.wait_all();
                    row.push(Some(mb / t.elapsed().as_secs_f64()));
                } else {
                    row.push(None);
                }
                world.barrier();

                // -- AM with Vec<u8> payload.
                world.barrier();
                if me == 0 {
                    let t = Instant::now();
                    for _ in 0..n {
                        drop(world.exec_am_pe(1, BlobAm { data: buf.clone() }));
                    }
                    world.wait_all();
                    row.push(Some(mb / t.elapsed().as_secs_f64()));
                } else {
                    row.push(None);
                }
                world.barrier();

                rows.push(row);
            }
            rows
        },
    );

    let mut table = ResultTable::new("Fig. 2: put bandwidth", "size", "MB/s", &series);
    for (i, &size) in sizes.iter().enumerate() {
        let mut row = results[0][i].clone();
        row[0] = Some(rofi_bw[i]);
        table.push_row(fmt_size(size), row);
    }
    print!("{}", table.render());
    if let Ok(p) = table.write_csv("fig2_bandwidth") {
        println!("csv: {}", p.display());
    }
    if std::env::args().any(|a| a == "--get") {
        get_series(&sizes, budget);
    }
}
