//! Ablation — reply elision & counted completions (DESIGN.md §4d).
//!
//! Runs the manually-aggregated Lamellar-AM histogram with the
//! fire-and-forget unit path **on** (requests travel as `RequestUnit`
//! envelopes, completion returns as bulk `AckCount` credits) and **off**
//! (the pre-refactor tracked path: every batch AM allocates a pending slot
//! and pays a per-op `Reply` envelope), across a sweep of aggregation
//! batch sizes.
//!
//! Reported per cell: throughput in MUPS and wire envelopes per update
//! (both directions, summed over PEs). The elided path should roughly
//! halve wire messages per op — the reply stream collapses into a handful
//! of cumulative acks — and the win in MUPS grows as batches shrink,
//! because the tracked path pays one reply per AM while acks amortize.
//!
//! Usage: `cargo run --release -p lamellar-bench --bin
//! ablation_reply_elision [--pes 4] [--scale 500] [--reps 2]
//! [--batches 100,1000,10000]`

use bale_suite::common::{KernelResult, TableConfig};
use bale_suite::histo::histo_lamellar_am;
use lamellar_bench::{arg_usize, arg_usize_list, ResultTable};
use lamellar_core::config::{Backend, WorldConfig};
use lamellar_core::world::launch_with_config;

/// Best-of-`reps` MUPS plus wire envelopes per update for one
/// (batch, elision) cell. Messages are counted with the runtime's own
/// metrics (lamellae msgs_sent, summed across PEs) over a window that
/// brackets the kernel; msgs/op is taken from the best-throughput rep.
fn run(pes: usize, cfg: TableConfig, reps: usize, elision: bool) -> (f64, f64) {
    let mut best = (0.0f64, 0.0f64);
    for _ in 0..reps {
        let wc = WorldConfig::new(pes)
            .backend(if pes == 1 { Backend::Smp } else { Backend::Rofi })
            .reply_elision(elision);
        let results: Vec<(KernelResult, u64)> = launch_with_config(wc, move |world| {
            world.barrier();
            let before = world.stats();
            world.barrier();
            let r = histo_lamellar_am(&world, &cfg);
            world.barrier();
            (r, world.stats().delta(&before).lamellae.msgs_sent)
        });
        let ops = results[0].0.global_ops;
        let worst = results.iter().map(|(r, _)| r.elapsed).max().unwrap();
        let mups = ops as f64 / worst.as_secs_f64() / 1e6;
        let msgs: u64 = results.iter().map(|&(_, m)| m).sum();
        if mups > best.0 {
            best = (mups, msgs as f64 / ops as f64);
        }
    }
    best
}

fn main() {
    let pes = arg_usize("--pes", 4);
    let scale = arg_usize("--scale", 500);
    let reps = arg_usize("--reps", 2);
    let batches = arg_usize_list("--batches", &[100, 1_000, 10_000]);
    let base = TableConfig::paper_scaled(scale);
    println!(
        "Ablation: reply elision, {pes}-PE AM histogram, {} updates/PE (best of {reps} reps)",
        base.updates_per_pe
    );

    let series = ["MUPS-elided", "MUPS-tracked", "msgs/op-elided", "msgs/op-tracked"];
    let mut table =
        ResultTable::new("Reply elision ablation", "batch", "MUPS | wire msgs per op", &series);
    for &batch in &batches {
        let cfg = TableConfig { batch, ..base };
        let (on_mups, on_msgs) = run(pes, cfg, reps, true);
        let (off_mups, off_msgs) = run(pes, cfg, reps, false);
        table.push_row(batch, vec![Some(on_mups), Some(off_mups), Some(on_msgs), Some(off_msgs)]);
        eprintln!("  batch {batch}: {on_mups:.2} vs {off_mups:.2} MUPS, {on_msgs:.4} vs {off_msgs:.4} msgs/op");
    }
    print!("{}", table.render());
    if let Ok(p) = table.write_csv("ablation_reply_elision") {
        println!("csv: {}", p.display());
    }
}
