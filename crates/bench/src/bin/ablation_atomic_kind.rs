//! Ablation — NativeAtomicArray vs GenericAtomicArray (DESIGN.md §4).
//!
//! The paper's AtomicArray has two sub-types (Sec. III-F.1): native Rust
//! atomics where the element type has them, and a 1-byte mutex per element
//! otherwise. This harness runs the same Histogram through both paths
//! (`AtomicArray::new` vs `AtomicArray::new_generic`) to measure the cost
//! of the lock-based fallback.
//!
//! Usage: `... --bin ablation_atomic_kind [--pes 2] [--scale 2000]`

use bale_suite::common::{random_indices, TableConfig};
use lamellar_array::prelude::*;
use lamellar_bench::{arg_usize, ResultTable};
use lamellar_core::config::{Backend, WorldConfig};
use lamellar_core::world::launch_with_config;
use std::time::Instant;

fn run(pes: usize, cfg: TableConfig, generic: bool) -> f64 {
    let wc = WorldConfig::new(pes).backend(if pes == 1 { Backend::Smp } else { Backend::Rofi });
    let results = launch_with_config(wc, move |world| {
        let glen = cfg.table_per_pe * world.num_pes();
        let mut table = if generic {
            AtomicArray::<usize>::new_generic(&world, glen, Distribution::Block)
        } else {
            AtomicArray::<usize>::new(&world, glen, Distribution::Block)
        };
        assert_eq!(table.is_native(), !generic);
        table.set_batch_limit(cfg.batch);
        let rnd = random_indices(&cfg, world.my_pe(), glen);
        world.barrier();
        let t = Instant::now();
        world.block_on(table.batch_add(rnd, 1));
        world.wait_all();
        world.barrier();
        let elapsed = t.elapsed();
        assert_eq!(world.block_on(table.sum()), cfg.updates_per_pe * world.num_pes());
        world.barrier();
        elapsed
    });
    let worst = results.into_iter().max().unwrap();
    (cfg.updates_per_pe * pes) as f64 / worst.as_secs_f64() / 1e6
}

fn main() {
    let pes = arg_usize("--pes", 2);
    let scale = arg_usize("--scale", 2000);
    let cfg = TableConfig::paper_scaled(scale);

    println!("Ablation: AtomicArray native atomics vs 1-byte-mutex elements, {pes} PEs");
    let mut table = ResultTable::new("Atomic kind", "variant", "MUPS", &["Histogram-AtomicArray"]);
    table.push_row("native", vec![Some(run(pes, cfg, false))]);
    table.push_row("generic", vec![Some(run(pes, cfg, true))]);
    print!("{}", table.render());
    let _ = table.write_csv("ablation_atomic_kind");
}
