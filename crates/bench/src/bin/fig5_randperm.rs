//! Fig. 5 — Randperm running time (seconds, **lower** is better).
//!
//! Series: the four Lamellar variants (Array Darts, AM Darts, AM Darts
//! Opt, AM Push) and the OpenSHMEM-side baselines (Exstack, Exstack2,
//! Conveyors). Paper parameters: 1M elements/core to permute, 2M/core
//! target; expected shape: roughly flat per-PE time (work per PE is
//! constant), with the communication-minimizing variants (Darts Opt, Push)
//! fastest.
//!
//! Usage: `cargo run --release -p lamellar-bench --bin fig5_randperm
//! [--pes 1,2,4] [--scale 200] [--reps 2]`

use bale_suite::common::{KernelResult, PermConfig};
use bale_suite::randperm::baselines::*;
use bale_suite::randperm::*;
use lamellar_bench::{arg_usize, arg_usize_list, ResultTable};
use lamellar_core::config::{Backend, WorldConfig};
use lamellar_core::world::launch_with_config;
use oshmem_sim::{shmem_launch, ShmemCtx};

fn secs(results: Vec<KernelResult>) -> f64 {
    results.iter().map(|r| r.elapsed).max().unwrap().as_secs_f64()
}

fn run_shmem(
    pes: usize,
    cfg: PermConfig,
    reps: usize,
    f: fn(&ShmemCtx, &PermConfig) -> KernelResult,
) -> f64 {
    (0..reps)
        .map(|_| secs(shmem_launch(pes, 64, move |ctx| f(&ctx, &cfg))))
        .fold(f64::INFINITY, f64::min)
}

fn run_lamellar(
    pes: usize,
    cfg: PermConfig,
    reps: usize,
    f: fn(&lamellar_core::world::LamellarWorld, &PermConfig) -> KernelResult,
) -> f64 {
    (0..reps)
        .map(|_| {
            let wc =
                WorldConfig::new(pes).backend(if pes == 1 { Backend::Smp } else { Backend::Rofi });
            secs(launch_with_config(wc, move |world| f(&world, &cfg)))
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let pes_list = arg_usize_list("--pes", &[1, 2, 4]);
    let scale = arg_usize("--scale", 200);
    let reps = arg_usize("--reps", 2);
    let cfg = PermConfig::paper_scaled(scale);
    println!(
        "Fig. 5 reproduction: Randperm, {} elements/PE to permute (paper: 1M/core ÷ {scale}), target {}/PE",
        cfg.perm_per_pe, cfg.target_per_pe
    );

    let series =
        ["Exstack", "Exstack2", "Conveyors", "Array-Darts", "AM-Darts", "AM-Darts-Opt", "AM-Push"];
    let mut table = ResultTable::new("Fig. 5: Randperm time", "PEs", "seconds", &series);
    for &pes in &pes_list {
        let row = vec![
            Some(run_shmem(pes, cfg, reps, randperm_exstack)),
            Some(run_shmem(pes, cfg, reps, randperm_exstack2)),
            Some(run_shmem(pes, cfg, reps, randperm_convey)),
            Some(run_lamellar(pes, cfg, reps, randperm_array_darts)),
            Some(run_lamellar(pes, cfg, reps, randperm_am_darts)),
            Some(run_lamellar(pes, cfg, reps, randperm_am_darts_opt)),
            Some(run_lamellar(pes, cfg, reps, randperm_am_push)),
        ];
        table.push_row(pes, row);
        eprintln!("  finished {pes} PEs");
    }
    print!("{}", table.render());
    if let Ok(p) = table.write_csv("fig5_randperm") {
        println!("csv: {}", p.display());
    }
}
