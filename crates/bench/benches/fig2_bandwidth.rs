//! Criterion sampling of the Fig. 2 transfer mechanisms at three
//! representative sizes (small / threshold / large). The companion binary
//! `fig2_bandwidth` sweeps the full curve.
//!
//! Structure: the benchmark thread acts as PE 0; a helper thread acts as
//! PE 1, participating in the collective constructions and then parking
//! (its progress engine keeps servicing PE 0's traffic) until told to
//! tear down.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lamellar_array::prelude::*;
use lamellar_core::config::{Backend, WorldConfig};
use lamellar_core::prelude::*;
use lamellar_core::world::spawn_worlds;
use std::sync::mpsc;

lamellar_core::am! {
    /// Raw-bytes AM whose exec returns immediately (the Fig. 2 AM series).
    pub struct BlobAm { pub data: Vec<u8> }
    exec(_am, _ctx) -> () { }
}

const MAX: usize = 1 << 20;

fn bench_fig2(c: &mut Criterion) {
    let mut worlds = spawn_worlds(WorldConfig::new(2).backend(Backend::Rofi).threads_per_pe(2));
    let w1 = worlds.pop().unwrap();
    let w0 = worlds.pop().unwrap();

    // PE 1: mirror the collective constructions, then park.
    let (stop_tx, stop_rx) = mpsc::channel::<()>();
    let peer = std::thread::spawn(move || {
        let _region: SharedMemoryRegion<u8> = w1.alloc_shared_mem_region(MAX);
        let _arr = UnsafeArray::<u8>::new(&w1, 2 * MAX, Distribution::Block);
        w1.barrier();
        let _ = stop_rx.recv();
        // Dropping everything here joins PE 0 in the teardown barrier.
    });

    // PE 0 (this thread): the same collectives, in the same order.
    let region: SharedMemoryRegion<u8> = w0.alloc_shared_mem_region(MAX);
    let arr = UnsafeArray::<u8>::new(&w0, 2 * MAX, Distribution::Block);
    w0.barrier();

    let mut group = c.benchmark_group("fig2_put");
    for size in [256usize, 100 << 10, 1 << 20] {
        group.throughput(Throughput::Bytes(size as u64));
        group.sample_size(10);
        let buf = vec![7u8; size];
        group.bench_with_input(BenchmarkId::new("memregion", size), &size, |b, _| {
            b.iter(|| {
                // SAFETY: PE1 never reads/writes this range.
                unsafe { region.put(1, 0, &buf) };
            })
        });
        group.bench_with_input(BenchmarkId::new("unsafe_unchecked", size), &size, |b, _| {
            b.iter(|| {
                // SAFETY: PE1's block, untouched elsewhere.
                unsafe { arr.put_unchecked(MAX, &buf) };
            })
        });
        group.bench_with_input(BenchmarkId::new("am", size), &size, |b, _| {
            b.iter(|| {
                drop(w0.exec_am_pe(1, BlobAm { data: buf.clone() }));
                w0.wait_all();
            })
        });
    }
    group.finish();

    // Teardown: release PE 1 first so both sides meet in the final barrier.
    drop(stop_tx);
    drop(arr);
    drop(region);
    drop(w0);
    let _ = peer.join();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
