//! Criterion sampling of the Fig. 5 Randperm implementations at a small
//! fixed size (2 PEs). The companion binary `fig5_randperm` sweeps PE
//! counts and all seven series.

use bale_suite::common::PermConfig;
use bale_suite::randperm::baselines::randperm_exstack;
use bale_suite::randperm::{randperm_am_darts, randperm_am_push, randperm_array_darts};
use criterion::{criterion_group, criterion_main, Criterion};
use lamellar_core::config::{Backend, WorldConfig};
use lamellar_core::world::launch_with_config;
use oshmem_sim::shmem_launch;

fn small_cfg() -> PermConfig {
    PermConfig { perm_per_pe: 2_000, target_per_pe: 4_000, batch: 1_000, seed: 42 }
}

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_randperm_2pe");
    group.sample_size(10);
    let cfg = small_cfg();

    group.bench_function("array_darts", |b| {
        b.iter(|| {
            launch_with_config(WorldConfig::new(2).backend(Backend::Rofi), move |world| {
                randperm_array_darts(&world, &cfg)
            })
        })
    });
    group.bench_function("am_darts", |b| {
        b.iter(|| {
            launch_with_config(WorldConfig::new(2).backend(Backend::Rofi), move |world| {
                randperm_am_darts(&world, &cfg)
            })
        })
    });
    group.bench_function("am_push", |b| {
        b.iter(|| {
            launch_with_config(WorldConfig::new(2).backend(Backend::Rofi), move |world| {
                randperm_am_push(&world, &cfg)
            })
        })
    });
    group.bench_function("exstack", |b| {
        b.iter(|| shmem_launch(2, 32, move |ctx| randperm_exstack(&ctx, &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
