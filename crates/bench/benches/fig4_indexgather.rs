//! Criterion sampling of the Fig. 4 IndexGather implementations at a small
//! fixed size (2 PEs). The companion binary `fig4_indexgather` sweeps PE
//! counts and all seven series.

use bale_suite::common::TableConfig;
use bale_suite::index_gather::baselines::{ig_chapel, ig_exstack};
use bale_suite::index_gather::{ig_lamellar_am, ig_lamellar_read_only};
use criterion::{criterion_group, criterion_main, Criterion};
use lamellar_core::config::{Backend, WorldConfig};
use lamellar_core::world::launch_with_config;
use oshmem_sim::shmem_launch;

fn small_cfg() -> TableConfig {
    TableConfig { table_per_pe: 1_000, updates_per_pe: 20_000, batch: 2_000, seed: 42 }
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_indexgather_2pe");
    group.sample_size(10);
    let cfg = small_cfg();

    group.bench_function("lamellar_am", |b| {
        b.iter(|| {
            launch_with_config(WorldConfig::new(2).backend(Backend::Rofi), move |world| {
                ig_lamellar_am(&world, &cfg)
            })
        })
    });
    group.bench_function("lamellar_read_only", |b| {
        b.iter(|| {
            launch_with_config(WorldConfig::new(2).backend(Backend::Rofi), move |world| {
                ig_lamellar_read_only(&world, &cfg)
            })
        })
    });
    group.bench_function("exstack", |b| {
        b.iter(|| shmem_launch(2, 32, move |ctx| ig_exstack(&ctx, &cfg)))
    });
    group.bench_function("chapel_agg", |b| {
        b.iter(|| shmem_launch(2, 32, move |ctx| ig_chapel(&ctx, &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
