//! Criterion microbenchmarks of the runtime's building blocks: codec
//! throughput, executor spawn/turnaround, oneshot latency, and the
//! wire-queue fast path. These quantify the per-op overheads behind the
//! macro results in Figs. 2–5.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lamellar_codec::Codec;
use lamellar_core::lamellae::queue::{queue_footprint, QueueTransport};
use lamellar_executor::{oneshot, PoolConfig, ThreadPool};
use rofi_sim::fabric::{Fabric, FabricConfig};
use rofi_sim::NetConfig;
use std::sync::Arc;

/// Metrics on/off follows the runtime's own switch (`LAMELLAR_METRICS=0`
/// disables), so the disabled-path overhead can be measured directly.
fn metrics_enabled() -> bool {
    std::env::var("LAMELLAR_METRICS").map(|v| v != "0").unwrap_or(true)
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    group.sample_size(30);

    let payload: Vec<u64> = (0..1000).collect();
    group.throughput(Throughput::Bytes((payload.len() * 8) as u64));
    group.bench_function("encode_vec_u64_1k", |b| {
        let mut buf = Vec::with_capacity(9000);
        b.iter(|| {
            buf.clear();
            payload.encode(&mut buf);
            std::hint::black_box(&buf);
        })
    });
    let bytes = payload.to_bytes();
    group.bench_function("decode_vec_u64_1k", |b| {
        b.iter(|| std::hint::black_box(Vec::<u64>::from_bytes(&bytes).unwrap()))
    });
    group.finish();
}

fn bench_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor");
    group.sample_size(20);
    let mut cfg = PoolConfig::with_workers(2);
    cfg.metrics = metrics_enabled();
    let pool = ThreadPool::new(cfg);

    group.bench_function("spawn_await_roundtrip", |b| {
        b.iter(|| {
            let h = pool.spawn(async { 1u32 });
            std::hint::black_box(pool.block_on(h))
        })
    });
    group.bench_function("spawn_burst_100_detached", |b| {
        b.iter(|| {
            for _ in 0..100 {
                drop(pool.spawn(async {}));
            }
            pool.wait_idle();
        })
    });
    group.bench_function("oneshot_send_recv", |b| {
        b.iter(|| {
            let (tx, rx) = oneshot::<u64>();
            tx.send(7);
            std::hint::black_box(rx.try_recv())
        })
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_queue");
    group.sample_size(20);
    let buf_size = 64 << 10;
    let endpoints = Fabric::launch(FabricConfig {
        num_pes: 2,
        sym_len: queue_footprint(2, buf_size) + 4096,
        heap_len: 4096,
        net: NetConfig::disabled(),
        metrics: metrics_enabled(),
        fault: None,
    });
    let base = endpoints[0].fabric().alloc_symmetric(queue_footprint(2, buf_size), 64).unwrap();
    let qs: Vec<Arc<QueueTransport>> = endpoints
        .into_iter()
        .map(|ep| Arc::new(QueueTransport::with_metrics(ep, base, buf_size, 1, metrics_enabled())))
        .collect();

    for size in [64usize, 4096] {
        group.throughput(Throughput::Bytes(size as u64));
        let msg = vec![7u8; size];
        group.bench_function(format!("send_recv_{size}B"), |b| {
            b.iter(|| {
                qs[0].send(1, &msg);
                let mut got = 0usize;
                while got == 0 {
                    qs[1].progress(&mut |_, d| got += d.len());
                    qs[0].flush();
                }
                std::hint::black_box(got)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_executor, bench_wire);
criterion_main!(benches);
