//! Criterion sampling of the Fig. 3 Histogram implementations at a small
//! fixed size (2 PEs). The companion binary `fig3_histogram` sweeps PE
//! counts and all seven series.

use bale_suite::common::TableConfig;
use bale_suite::histo::baselines::{histo_chapel, histo_exstack};
use bale_suite::histo::{histo_lamellar_am, histo_lamellar_atomic_array};
use criterion::{criterion_group, criterion_main, Criterion};
use lamellar_core::config::{Backend, WorldConfig};
use lamellar_core::world::launch_with_config;
use oshmem_sim::shmem_launch;

fn small_cfg() -> TableConfig {
    TableConfig { table_per_pe: 1_000, updates_per_pe: 20_000, batch: 2_000, seed: 42 }
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_histogram_2pe");
    group.sample_size(10);
    let cfg = small_cfg();

    group.bench_function("lamellar_am", |b| {
        b.iter(|| {
            launch_with_config(WorldConfig::new(2).backend(Backend::Rofi), move |world| {
                histo_lamellar_am(&world, &cfg)
            })
        })
    });
    group.bench_function("lamellar_atomic_array", |b| {
        b.iter(|| {
            launch_with_config(WorldConfig::new(2).backend(Backend::Rofi), move |world| {
                histo_lamellar_atomic_array(&world, &cfg)
            })
        })
    });
    group.bench_function("exstack", |b| {
        b.iter(|| shmem_launch(2, 32, move |ctx| histo_exstack(&ctx, &cfg)))
    });
    group.bench_function("chapel_agg", |b| {
        b.iter(|| shmem_launch(2, 32, move |ctx| histo_chapel(&ctx, &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
