#!/usr/bin/env bash
# Repo CI gate: release build, workspace tests, and warning-free clippy.
# Run from the repo root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo build --release -p lamellar-bench (benches compile)"
cargo build --release -p lamellar-bench --bins

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "CI OK"
