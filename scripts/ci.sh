#!/usr/bin/env bash
# Repo CI gate: release build, workspace tests, and warning-free clippy.
# Run from the repo root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Resilience-suite hygiene: panics caught by the runtime print full traces,
# and a regression that reintroduces a hang fails the gate instead of
# wedging CI (the suite's slowest healthy run is well under this ceiling).
export RUST_BACKTRACE=1
TEST_TIMEOUT="${CI_TEST_TIMEOUT:-900}"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo build --release -p lamellar-bench (benches compile)"
cargo build --release -p lamellar-bench --bins

echo "==> cargo test -q (hard ${TEST_TIMEOUT}s timeout)"
timeout --signal=KILL "$TEST_TIMEOUT" cargo test -q --workspace

echo "==> perf smoke: unit-AM histogram gate (aggregation factor, zero replies)"
# Deterministic counts, not timings: a tiny 4-PE unit-AM histogram must show
# zero reply envelopes and a healthy envelopes-per-chunk aggregation factor.
cargo test -q --release --test perf_smoke

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "CI OK"
