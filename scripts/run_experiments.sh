#!/usr/bin/env bash
# Regenerate every figure and ablation of the paper's evaluation.
# Results print to stdout and CSVs land in bench_out/.
set -euo pipefail
cd "$(dirname "$0")/.."

PES="${PES:-1,2,4}"
SCALE_TABLE="${SCALE_TABLE:-500}"   # divides 10M updates/core (Figs. 3-4)
SCALE_PERM="${SCALE_PERM:-200}"     # divides 1M elements/core (Fig. 5)
REPS="${REPS:-2}"

cargo build --release -p lamellar-bench --bins

run() { echo; echo ">>> $*"; "$@"; }

run ./target/release/fig2_bandwidth --max-mb 4 --budget-mb 8
run ./target/release/fig3_histogram   --pes "$PES" --scale "$SCALE_TABLE" --reps "$REPS"
run ./target/release/fig4_indexgather --pes "$PES" --scale "$SCALE_TABLE" --reps "$REPS"
run ./target/release/fig5_randperm    --pes "$PES" --scale "$SCALE_PERM"  --reps "$REPS"

run ./target/release/ablation_agg_threshold --pes 2 --scale 2000
run ./target/release/ablation_batch_size    --pes 2 --scale 2000
run ./target/release/ablation_atomic_kind   --pes 2 --scale 2000
run ./target/release/ablation_executor
run ./target/release/ablation_msgpath       --msgs 200000 --payload 64
run ./target/release/ablation_faultplane    --msgs 50000  --payload 64
run ./target/release/ablation_reply_elision --pes 4 --scale 100 --reps 3
