//! Shared helpers for examples and integration tests.

/// Parse a `NAME=value`-style env var with a default, used by examples to
/// size workloads.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}
