pub mod util;
