//! Top-level crate of the Lamellar reproduction: examples, integration
//! tests, and the unified [`prelude`].

pub mod util;

/// One-stop imports for applications: the Active Message machinery and
/// world launchers (from `lamellar-core`), the distributed array types
/// (from `lamellar-array`), and the typed observability snapshots read
/// through `world.stats()` (from `lamellar-metrics`).
///
/// ```ignore
/// use lamellar_repro::prelude::*;
///
/// launch(2, |world| {
///     let before = world.stats();
///     // ... run a phase ...
///     println!("{}", world.stats().delta(&before));
/// });
/// ```
pub mod prelude {
    pub use lamellar_array::prelude::*;
    pub use lamellar_core::prelude::*;
    pub use lamellar_metrics::{
        AmStats, ExecutorStats, FabricStats, FaultStats, HistogramSnapshot, LamellaeStats,
        RuntimeStats,
    };
}
