//! The Randperm kernel (paper Sec. IV-B.3): all four Lamellar variants
//! side by side on the same problem, each verified to produce a true
//! permutation.
//!
//! ```text
//! cargo run --release --example randperm
//! LAMELLAR_PES=4 PERM_PER_PE=50000 cargo run --release --example randperm
//! ```

use bale_suite::common::PermConfig;
use bale_suite::randperm::{
    randperm_am_darts, randperm_am_darts_opt, randperm_am_push, randperm_array_darts,
};
use lamellar_repro::prelude::*;
use lamellar_repro::util::env_usize;

fn main() {
    let num_pes = env_usize("LAMELLAR_PES", 2);
    let perm_per_pe = env_usize("PERM_PER_PE", 20_000);
    let cfg =
        PermConfig { perm_per_pe, target_per_pe: 2 * perm_per_pe, batch: 4_096, seed: 0xD1CE };

    type Variant =
        (&'static str, fn(&LamellarWorld, &PermConfig) -> bale_suite::common::KernelResult);
    let variants: [Variant; 4] = [
        ("Array Darts ", randperm_array_darts),
        ("AM Darts    ", randperm_am_darts),
        ("AM Darts Opt", randperm_am_darts_opt),
        ("AM Push     ", randperm_am_push),
    ];

    println!(
        "randperm of {} elements over {num_pes} PEs (target 2x, verified permutations)",
        perm_per_pe * num_pes
    );
    for (name, f) in variants {
        let results = launch(num_pes, move |world| f(&world, &cfg));
        let worst = results.iter().map(|r| r.elapsed).max().unwrap();
        println!("  {name}  {worst:>12.3?}");
    }
}
