//! The IndexGather kernel (paper Sec. IV-B.2) on a `ReadOnlyArray`:
//! `target = world.block_on(table.batch_load(rnd_idxs))`.
//!
//! ```text
//! cargo run --release --example index_gather
//! LAMELLAR_PES=4 cargo run --release --example index_gather
//! ```

use lamellar_repro::prelude::*;
use lamellar_repro::util::env_usize;
use rand::Rng;
use std::time::Instant;

fn main() {
    let num_pes = env_usize("LAMELLAR_PES", 2);
    let t_len = env_usize("T_LEN", 100_000);
    let l_reqs = env_usize("L_REQUESTS", 200_000);

    launch(num_pes, move |world| {
        // Build the table through an UnsafeArray, then convert to
        // ReadOnly — after conversion, no handle anywhere can write, which
        // is what makes direct RDMA gets safe.
        let arr = UnsafeArray::<u64>::new(&world, t_len, Distribution::Block);
        world.barrier();
        if world.my_pe() == 0 {
            let vals: Vec<u64> = (0..t_len as u64).map(|i| i * 2).collect();
            // SAFETY: sole writer; conversion below synchronizes.
            unsafe { arr.put_unchecked(0, &vals) };
        }
        world.barrier();
        let table = arr.into_read_only();

        let mut rng = rand::thread_rng();
        let rnd_idxs: Vec<usize> = (0..l_reqs).map(|_| rng.gen_range(0..t_len)).collect();
        world.barrier();

        let timer = Instant::now();
        let target = world.block_on(table.batch_load(rnd_idxs.clone())); // IG kernel
        world.barrier();
        let elapsed = timer.elapsed();

        // Verify every gathered value.
        for (slot, &idx) in rnd_idxs.iter().enumerate() {
            assert_eq!(target[slot], idx as u64 * 2);
        }
        if world.my_pe() == 0 {
            println!(
                "gathered {} values/PE on {} PEs in {:?} ({:.2} MUPS)",
                l_reqs,
                world.num_pes(),
                elapsed,
                (l_reqs * world.num_pes()) as f64 / elapsed.as_secs_f64() / 1e6
            );
        }
        world.barrier();
    });
}
