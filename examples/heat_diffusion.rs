//! A small domain application on the array layer: 1-D explicit heat
//! diffusion over a block-distributed `LocalLockArray`, with halo exchange
//! through safe array loads — the kind of stencil workload the paper's
//! introduction motivates for PGAS runtimes.
//!
//! Each PE owns a contiguous block (Block distribution); every step it
//! reads its two halo cells from the neighbouring PEs with safe
//! element-loads, updates its interior under the local write lock, and
//! barriers.
//!
//! ```text
//! cargo run --release --example heat_diffusion
//! LAMELLAR_PES=4 GRID=4096 STEPS=200 cargo run --release --example heat_diffusion
//! ```

use lamellar_repro::prelude::*;
use lamellar_repro::util::env_usize;

fn main() {
    let num_pes = env_usize("LAMELLAR_PES", 2);
    let grid = env_usize("GRID", 1024);
    let steps = env_usize("STEPS", 100);
    let alpha = 0.1f64;

    launch(num_pes, move |world| {
        let me = world.my_pe();
        let npes = world.num_pes();
        let field = LocalLockArray::<f64>::new(&world, grid, Distribution::Block);
        let block = grid.div_ceil(npes);
        let my_start = me * block;
        let my_len = grid.saturating_sub(my_start).min(block);
        world.barrier();

        // Initial condition: a hot spike in the middle of the bar.
        if me == 0 {
            world.block_on(field.store(grid / 2, 1000.0));
        }
        world.wait_all();
        world.barrier();

        let initial: f64 = world.block_on(field.sum());
        for _step in 0..steps {
            // Halo reads via safe loads (AM-routed to the owners).
            let left = if my_start > 0 { world.block_on(field.load(my_start - 1)) } else { 0.0 };
            let right = if my_start + my_len < grid {
                world.block_on(field.load(my_start + my_len))
            } else {
                0.0
            };
            // Everyone finishes reading the old state before anyone writes.
            world.barrier();
            if my_len > 0 {
                let mut guard = field.write_local_data();
                let old: Vec<f64> = guard.to_vec();
                for i in 0..my_len {
                    let l = if i == 0 { left } else { old[i - 1] };
                    let r = if i + 1 == my_len { right } else { old[i + 1] };
                    // Neumann boundary: clamp at the bar's ends.
                    let l = if my_start + i == 0 { old[i] } else { l };
                    let r = if my_start + i == grid - 1 { old[i] } else { r };
                    guard[i] = old[i] + alpha * (l - 2.0 * old[i] + r);
                }
            }
            world.barrier();
        }

        // Diffusion conserves total heat (Neumann boundaries).
        let total: f64 = world.block_on(field.sum());
        if me == 0 {
            println!("heat: initial {initial:.3}, after {steps} steps {total:.3}");
            assert!((total - initial).abs() < 1e-6 * initial.max(1.0), "heat not conserved");
            let mid = world.block_on(field.load(grid / 2));
            println!("spike diffused: center now {mid:.3} (< 1000)");
            assert!(mid < 1000.0);
        }
        world.barrier();
    });
}
