//! Quickstart: the paper's Listing 1 "Hello World", adapted to this
//! reproduction's thread-per-PE launcher.
//!
//! ```text
//! cargo run --release --example quickstart
//! LAMELLAR_PES=4 cargo run --release --example quickstart
//! ```

use lamellar_repro::prelude::*;

// #[AmData] + #[am] in the paper; the am! macro here generates the struct,
// its serialization, and the LamellarAm impl in one declaration.
lamellar_core::am! {
    /// Greets from whichever PE it lands on.
    pub struct HelloWorldAm { pub name: String }
    exec(am, ctx) -> String {
        let line = format!("PE{}: hello {}!", ctx.current_pe(), am.name);
        println!("{line}");
        line
    }
}

fn main() {
    let num_pes = lamellar_repro::util::env_usize("LAMELLAR_PES", 2);

    // The launcher plays the role slurm plays in the paper: it decides the
    // number of PEs and runs this closure once per PE (SPMD).
    launch(num_pes, |world| {
        // Listing 1, line by line:
        let am = HelloWorldAm { name: String::from("World") };
        let request = world.exec_am_all(am); // all PEs → all PEs
        let replies = world.block_on(request); // only blocks the local PE
        world.barrier(); // global sync

        if world.my_pe() == 0 {
            println!("PE0 gathered {} replies", replies.len());
        }

        if world.my_pe() != 0 {
            let am = HelloWorldAm { name: String::from("World2") };
            let _detached = world.exec_am_pe(0, am); // send to PE0
            world.wait_all(); // only blocks the local PE
        }
        // No explicit finalize: dropping `world` at the end of the closure
        // runs the deinitialization protocol — every PE stays alive (and
        // keeps executing incoming AMs) until all PEs are ready.
    });
    println!("world deinitialized cleanly");
}
