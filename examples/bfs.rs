//! Distributed level-synchronous BFS — an irregular graph workload of the
//! kind the paper's introduction motivates for PGAS runtimes.
//!
//! The graph is a deterministic random digraph in CSR form, partitioned
//! by vertex block across PEs (each PE owns `n/npes` vertices and their
//! adjacency lists). Each BFS level:
//!
//! 1. every PE expands its frontier vertices' edges locally,
//! 2. discovered neighbours are claimed with
//!    `batch_compare_exchange(dist, UNSET, level+1)` on an `AtomicArray`
//!    (exactly-once settlement, like the Randperm darts),
//! 3. successful claims owned by each PE become its next frontier
//!    (gathered with a distributed-iterator pass).
//!
//! Verifies the triangle inequality on every edge (levels differ by ≤ 1
//! across an edge out of a reached vertex) and that every reachable vertex
//! is settled.
//!
//! ```text
//! cargo run --release --example bfs
//! LAMELLAR_PES=4 VERTICES=20000 DEGREE=8 cargo run --release --example bfs
//! ```

use lamellar_repro::prelude::*;
use lamellar_repro::util::env_usize;

const UNSET: u64 = u64::MAX;

/// Deterministic pseudo-random edge target.
fn edge_target(v: usize, k: usize, n: usize) -> usize {
    let x = (v as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((k as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    let x = (x ^ (x >> 31)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x % n as u64) as usize
}

fn main() {
    let num_pes = env_usize("LAMELLAR_PES", 2);
    let n = env_usize("VERTICES", 10_000);
    let degree = env_usize("DEGREE", 6);

    launch(num_pes, move |world| {
        let me = world.my_pe();
        let npes = world.num_pes();
        // dist[v] = BFS level, UNSET until discovered.
        let dist = AtomicArray::<u64>::new(&world, n, Distribution::Block);
        world.barrier();
        if me == 0 {
            world.block_on(dist.batch_store((0..n).collect(), UNSET));
            world.block_on(dist.store(0, 0)); // root = vertex 0, level 0
        }
        world.wait_all();
        world.barrier();

        // My vertex block.
        let block = n.div_ceil(npes);
        let lo = (me * block).min(n);
        let hi = ((me + 1) * block).min(n);

        let mut frontier: Vec<usize> = if lo == 0 { vec![0] } else { vec![] };
        let mut level: u64 = 0;
        let timer = std::time::Instant::now();
        loop {
            // Expand: candidate neighbours of my frontier.
            let mut targets: Vec<usize> = Vec::with_capacity(frontier.len() * degree);
            for &v in &frontier {
                for k in 0..degree {
                    targets.push(edge_target(v, k, n));
                }
            }
            targets.sort_unstable();
            targets.dedup();
            // Claim: settle each candidate at level+1 iff still UNSET.
            if !targets.is_empty() {
                world.block_on(dist.batch_compare_exchange(targets, UNSET, level + 1));
            }
            world.wait_all();
            world.barrier();
            // Gather my next frontier: my vertices settled at level+1.
            let next_level = level + 1;
            let mine = world.block_on(
                dist.sub_array(lo..hi)
                    .dist_iter()
                    .enumerate()
                    .filter_map(move |(i, d)| (d == next_level).then_some(i))
                    .collect_local(),
            );
            frontier = mine.into_iter().map(|i| i + lo).collect();
            // Collective emptiness check via the team deposit.
            let counts = world.team().deposit_all(frontier.len());
            level += 1;
            if counts.iter().sum::<usize>() == 0 {
                break;
            }
        }
        world.barrier();
        let elapsed = timer.elapsed();

        // Verification: every edge out of a reached vertex settles its
        // head within one more level, and vertex 0 is at level 0.
        let levels = world.block_on(dist.get(lo, hi - lo));
        for (i, &dv) in levels.iter().enumerate() {
            let v = lo + i;
            if dv == UNSET {
                continue;
            }
            for k in 0..degree {
                let u = edge_target(v, k, n);
                let du = world.block_on(dist.load(u));
                assert!(du <= dv + 1, "edge ({v},{u}): levels {dv} -> {du}");
            }
        }
        if me == 0 {
            assert_eq!(world.block_on(dist.load(0)), 0);
            let reached = world.block_on(dist.dist_iter().filter(|&d| d != UNSET).count_local());
            println!(
                "bfs: {n} vertices, degree {degree}, {npes} PEs: {} levels in {elapsed:?} (pe0 reached {reached} locally)",
                level
            );
        }
        world.barrier();
    });
}
