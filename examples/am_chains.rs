//! Active-message dependency chains and Darcs (paper Secs. III-C, III-E):
//! a ring of nested AMs that carries a Darc around the world, mutating
//! each PE's local instance as it passes — "users can easily construct AM
//! dependency chains and use recursive design patterns".
//!
//! ```text
//! cargo run --release --example am_chains
//! LAMELLAR_PES=5 LAPS=3 cargo run --release --example am_chains
//! ```

use lamellar_repro::prelude::*;
use lamellar_repro::util::env_usize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Hops around the ring, bumping each PE's local counter instance; when
/// `hops` runs out it returns the trail of visited PEs.
#[derive(Clone, Debug)]
struct RingAm {
    counter: Darc<AtomicUsize>,
    hops: usize,
    trail: Vec<usize>,
}

lamellar_core::impl_codec!(RingAm { counter, hops, trail });

impl LamellarAm for RingAm {
    type Output = Vec<usize>;
    async fn exec(self, ctx: AmContext) -> Vec<usize> {
        // Each PE has its own *independent instance* behind the Darc;
        // deref reaches the local one.
        self.counter.fetch_add(1, Ordering::Relaxed);
        let mut trail = self.trail;
        trail.push(ctx.current_pe());
        if self.hops == 0 {
            trail
        } else {
            // Launch the next hop from inside this AM — a nested AM via
            // the ambient world handle.
            let next = (ctx.current_pe() + 1) % ctx.num_pes();
            let world = ctx.world();
            world
                .exec_am_pe(
                    next,
                    RingAm { counter: self.counter.clone(), hops: self.hops - 1, trail },
                )
                .await
        }
    }
}

fn main() {
    let num_pes = env_usize("LAMELLAR_PES", 3);
    let laps = env_usize("LAPS", 2);

    launch(num_pes, move |world| {
        let team = world.team();
        let counter = Darc::new(&team, AtomicUsize::new(0));
        world.barrier();

        if world.my_pe() == 0 {
            let hops = laps * world.num_pes();
            let trail = world.block_on(
                world.exec_am_pe(0, RingAm { counter: counter.clone(), hops, trail: vec![] }),
            );
            println!("trail: {trail:?}");
            assert_eq!(trail.len(), hops + 1);
        }
        world.barrier();

        // Every PE was visited `laps` times, plus PE0's extra initial visit.
        let mine = counter.load(Ordering::Relaxed);
        let expect = laps + usize::from(world.my_pe() == 0);
        assert_eq!(mine, expect);
        println!("PE{}: local counter = {mine}", world.my_pe());
        world.barrier();
    });
}
