//! Listing 2 of the paper: the Histogram kernel on an `AtomicArray`,
//! with the exact structure (and the closing sum-reduction check) of the
//! published example — scaled down so it runs in seconds on a laptop.
//!
//! ```text
//! cargo run --release --example histogram
//! LAMELLAR_PES=4 T_LEN=100000 L_UPDATES=1000000 cargo run --release --example histogram
//! ```

use lamellar_repro::prelude::*;
use lamellar_repro::util::env_usize;
use rand::Rng;
use std::time::Instant;

fn main() {
    let num_pes = env_usize("LAMELLAR_PES", 2);
    let t_len = env_usize("T_LEN", 100_000); // global table length
    let l_updates = env_usize("L_UPDATES", 200_000); // updates per PE

    launch(num_pes, move |world| {
        // let table = AtomicArray::<usize>::new(&world, T_LEN, Distribution::Block);
        let table = AtomicArray::<usize>::new(&world, t_len, Distribution::Block);
        let mut rng = rand::thread_rng();
        let rnd_i = (0..l_updates) // generate random indices
            .map(|_| rng.gen_range(0..t_len))
            .collect::<Vec<_>>();
        world.barrier();
        let timer = Instant::now();
        table.batch_add_ff(rnd_i, 1); // histogram kernel, fire-and-forget
        world.wait_all(); // counted acks: all remote adds have executed
        world.barrier();
        if world.my_pe() == 0 {
            println!("Elapsed time: {:?}", timer.elapsed());
        }
        let sum = world.block_on(table.sum());
        assert_eq!(sum, l_updates * world.num_pes()); // no updates missed
        if world.my_pe() == 0 {
            println!(
                "verified: {} updates across {} PEs all landed ({:.2} MUPS)",
                sum,
                world.num_pes(),
                sum as f64 / timer.elapsed().as_secs_f64() / 1e6
            );
        }
        world.barrier();
    });
}
