//! Task-level resilience suite (DESIGN.md §4c): panic isolation, AM
//! deadlines, cancellation, and the liveness watchdog.
//!
//! Every test runs a real multi-PE world and asserts the end-to-end
//! contract: a failing or silent remote never crashes the serving PE and
//! never hangs the caller — the failure surfaces as a typed `AmError`
//! within bounded time, and `wait_all` always terminates.

use lamellar_core::am::{AmError, AmOpts};
use lamellar_core::config::WatchdogConfig;
use lamellar_repro::prelude::*;
use std::time::{Duration, Instant};

lamellar_core::am! {
    /// Echo AM: returns its payload (the healthy-path control).
    pub struct EchoAm { pub tag: u64 }
    exec(am, ctx) -> (u64, u64) {
        (am.tag, ctx.current_pe() as u64)
    }
}

lamellar_core::am! {
    /// Panics on execution when `boom` is set.
    pub struct PanicAm { pub boom: bool }
    exec(am, _ctx) -> u64 {
        if am.boom {
            panic!("injected AM panic (tag 42)");
        }
        7
    }
}

lamellar_core::am! {
    /// Sleeps on the destination's worker thread before replying —
    /// synchronous on purpose, to model a genuinely slow handler.
    pub struct SlowAm { pub sleep_ms: u64 }
    exec(am, _ctx) -> u64 {
        std::thread::sleep(std::time::Duration::from_millis(am.sleep_ms));
        am.sleep_ms
    }
}

/// A panicking remote AM resolves the caller's fallible handle to
/// `Err(RemotePanic { pe, .. })`, the serving PE keeps executing subsequent
/// AMs on the same workers, and `wait_all` terminates.
#[test]
fn remote_panic_is_isolated_and_typed() {
    let cfg = WorldConfig::new(2).backend(Backend::Rofi).agg_threshold(256);
    let stats = lamellar_core::world::launch_with_config(cfg, |world| {
        world.barrier();
        let before = world.stats();
        world.barrier();
        if world.my_pe() == 0 {
            // Local panic: same typed error, pe = self.
            match world.block_on(world.exec_am_pe(0, PanicAm { boom: true }).fallible()) {
                Err(AmError::RemotePanic { pe: 0, msg }) => {
                    assert!(msg.contains("injected AM panic"), "local panic message: {msg}")
                }
                other => panic!("expected local RemotePanic, got {other:?}"),
            }
            // Remote panic: the error names the destination PE.
            match world.block_on(world.exec_am_pe(1, PanicAm { boom: true }).fallible()) {
                Err(AmError::RemotePanic { pe: 1, msg }) => {
                    assert!(msg.contains("injected AM panic"), "remote panic message: {msg}")
                }
                other => panic!("expected remote RemotePanic, got {other:?}"),
            }
            // The serving PE survived: its pool still executes AMs, and a
            // mixed batch after the crash behaves normally.
            for tag in 0..8 {
                let (t, served_by) = world.block_on(world.exec_am_pe(1, EchoAm { tag }));
                assert_eq!((t, served_by), (tag, 1));
            }
            assert_eq!(world.block_on(world.exec_am_pe(1, PanicAm { boom: false })), 7);
        }
        world.wait_all();
        world.barrier();
        world.stats().delta(&before)
    });
    // One panic caught locally on PE0, one on the serving PE1.
    assert_eq!(stats[0].am.panics_caught, 1, "PE0 local panic caught");
    assert_eq!(stats[1].am.panics_caught, 1, "PE1 remote panic caught");
}

/// With a severed pair and a retransmit timeout far above the deadline, a
/// per-call deadline resolves the future to `Err(Timeout)` quickly instead
/// of waiting for the reliable layer to declare the pair dead.
#[test]
fn deadline_beats_severed_pair_to_a_typed_timeout() {
    let mut sever = FaultRates::none();
    sever.drop = 1.0;
    let fault = FaultConfig::seeded(0x7e57).pair(0, 1, sever);
    let cfg = WorldConfig::new(2)
        .backend(Backend::Rofi)
        .agg_threshold(256)
        .faults(fault)
        // Pair death needs 20 empty retransmit rounds — 40 s at this
        // timeout. If the test finishes fast, the deadline won (not the
        // reliable layer giving up).
        .retransmit_timeout(Duration::from_secs(2));
    let elapsed = lamellar_core::world::launch_with_config(cfg, |world| {
        if world.my_pe() != 0 {
            world.barrier();
            return Duration::ZERO;
        }
        let start = Instant::now();
        let h = world.exec_am_pe_with(
            1,
            EchoAm { tag: 1 },
            AmOpts::deadline(Duration::from_millis(200)),
        );
        match world.block_on(h.fallible()) {
            Err(AmError::Timeout { pe: 1, attempts: 1 }) => {}
            other => panic!("expected Timeout{{pe:1, attempts:1}}, got {other:?}"),
        }
        world.wait_all(); // terminates: the timed-out future is accounted for
        let elapsed = start.elapsed();
        world.barrier();
        elapsed
    });
    assert!(
        elapsed[0] >= Duration::from_millis(200) && elapsed[0] < Duration::from_millis(1500),
        "deadline should fire at ~200 ms, well before any transport give-up: {:?}",
        elapsed[0]
    );
}

/// Cancelling an in-flight AM releases its pending-reply slot: `wait_all`
/// returns without waiting for the slow remote handler, the cancel counter
/// records it, and a late reply is dropped harmlessly.
#[test]
fn cancellation_releases_pending_reply_slots() {
    let cfg = WorldConfig::new(2).backend(Backend::Rofi).agg_threshold(256);
    let stats = lamellar_core::world::launch_with_config(cfg, |world| {
        world.barrier();
        let before = world.stats();
        world.barrier();
        if world.my_pe() == 0 {
            // Explicit cancel of a slow AM: wait_all must not wait the
            // full handler duration.
            let h = world.exec_am_pe(1, SlowAm { sleep_ms: 800 });
            assert!(h.cancel(), "in-flight AM is cancellable");
            let start = Instant::now();
            world.wait_all();
            assert!(
                start.elapsed() < Duration::from_millis(500),
                "wait_all blocked on a cancelled AM for {:?}",
                start.elapsed()
            );

            // Drop-guard form: dropping an unresolved guard cancels too.
            let g = world.exec_am_pe(1, SlowAm { sleep_ms: 800 }).cancel_on_drop();
            drop(g);
            let start = Instant::now();
            world.wait_all();
            assert!(start.elapsed() < Duration::from_millis(500), "guard drop did not cancel");

            // Cancel after completion is a no-op returning false.
            let h = world.exec_am_pe(1, EchoAm { tag: 9 });
            world.wait_all(); // reply has arrived and resolved the slot
            assert!(!h.cancel(), "completed AM is not cancellable");

            // Local AMs are never cancellable (already executing here).
            let h = world.exec_am_pe(0, EchoAm { tag: 10 });
            assert!(!h.cancel(), "local AM is not cancellable");
            world.wait_all();
        }
        world.wait_all();
        world.barrier();
        // Let the cancelled handlers' late replies land (and be dropped)
        // before the final snapshot, so teardown sees a quiet wire.
        std::thread::sleep(Duration::from_millis(900));
        world.barrier();
        world.stats().delta(&before)
    });
    assert_eq!(stats[0].am.cancelled, 2, "one explicit cancel + one guard drop");
    // The remote handlers still ran to completion and sent (dropped)
    // replies — cancellation is a local disclaimer, not a remote abort.
    assert_eq!(stats[1].am.received, 3, "PE1 executed all three remote AMs");
}

/// With the fail-mode watchdog armed and a severed pair, a wait that would
/// otherwise hang terminates: the watchdog dumps diagnostics, resolves the
/// stalled request to `Err(Stalled)`, and `try_wait_all` reports it.
#[test]
fn watchdog_fails_stalled_wait_with_diagnostics() {
    let mut sever = FaultRates::none();
    sever.drop = 1.0;
    let fault = FaultConfig::seeded(0x57a1).pair(0, 1, sever);
    let cfg = WorldConfig::new(2)
        .backend(Backend::Rofi)
        .agg_threshold(256)
        .faults(fault)
        // Transport give-up pushed far out: the watchdog must be what
        // unblocks the wait.
        .retransmit_timeout(Duration::from_secs(10))
        .watchdog(WatchdogConfig::fail(Duration::from_millis(200)));
    let outcomes = lamellar_core::world::launch_with_config(cfg, |world| {
        if world.my_pe() != 0 {
            world.barrier();
            return (None, world.stats());
        }
        let h = world.exec_am_pe(1, EchoAm { tag: 5 }).fallible();
        let start = Instant::now();
        let verdict = world.try_wait_all();
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(5),
            "watchdog should fire at ~200 ms zero-progress, took {elapsed:?}"
        );
        match &verdict {
            Err(AmError::Stalled { pe: 1, waited }) => {
                assert!(*waited >= Duration::from_millis(200), "waited {waited:?}")
            }
            other => panic!("expected Err(Stalled{{pe:1,..}}), got {other:?}"),
        }
        // The stalled future itself resolved to the same typed error.
        match world.block_on(h) {
            Err(AmError::Stalled { pe: 1, .. }) => {}
            other => panic!("expected handle to resolve Stalled, got {other:?}"),
        }
        world.barrier();
        (Some(verdict), world.stats())
    });
    let stats = &outcomes[0].1;
    assert!(stats.am.stalls >= 1, "watchdog verdict recorded: {}", stats.am.stalls);
}

/// A healthy world under the watchdog never trips it: normal traffic makes
/// progress, and `try_wait_all` returns `Ok`.
#[test]
fn watchdog_stays_quiet_on_a_healthy_world() {
    let cfg = WorldConfig::new(2)
        .backend(Backend::Rofi)
        .agg_threshold(256)
        .watchdog(WatchdogConfig::fail(Duration::from_millis(250)));
    let stats = lamellar_core::world::launch_with_config(cfg, |world| {
        let me = world.my_pe();
        let dst = (me + 1) % world.num_pes();
        for tag in 0..20 {
            let (t, served_by) = world.block_on(world.exec_am_pe(dst, EchoAm { tag }));
            assert_eq!((t, served_by), (tag, dst as u64));
        }
        drop(world.exec_am_pe(dst, SlowAm { sleep_ms: 100 }));
        world.try_wait_all().expect("healthy world must not stall");
        world.barrier();
        world.stats()
    });
    for (pe, s) in stats.iter().enumerate() {
        assert_eq!(s.am.stalls, 0, "PE{pe} spurious watchdog verdict");
    }
}
